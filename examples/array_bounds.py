"""Array-bounds checking: the classic octagon application.

The octagon domain was motivated by proving array accesses safe in
embedded C code (Venet & Brat, PLDI'04 -- cited as the variable-packing
predecessor in the paper).  The pattern: an access ``a[i]`` is safe iff
``0 <= i <= n - 1``, and proving it across loops requires the
*relational* facts ``i <= n - 1`` / ``i - j <= c`` that intervals lose.

This example checks three kernels: a forward scan, a two-pointer sweep
(needs ``lo <= hi``) and a sliding window (needs ``j - i <= w``).

Run:  python examples/array_bounds.py
"""

from repro.analysis.analyzer import analyze_source

FORWARD_SCAN = """
// for (i = 0; i < n; i++) read a[i];
n = [1, 1000];
i = 0;
while (i < n) {
  assert(i >= 0);
  assert(i <= n - 1);   // a[i] in bounds
  i = i + 1;
}
"""

TWO_POINTER = """
// classic partition sweep: lo from the left, hi from the right.
n = [2, 1000];
lo = 0;
hi = n - 1;
while (lo < hi) {
  assert(lo >= 0);
  assert(lo <= n - 1);  // a[lo] in bounds
  assert(hi >= 0);
  assert(hi <= n - 1);  // a[hi] in bounds
  lo = lo + 1;
  hi = hi - 1;
}
"""

SLIDING_WINDOW = """
// window of width w over a buffer of size n.
n = [10, 1000];
w = 4;
i = 0;
while (i + w <= n) {
  j = i;
  while (j < i + w) {
    assert(j >= 0);
    assert(j <= n - 1);  // a[j] in bounds
    j = j + 1;
  }
  i = i + 1;
}
"""


def check(name, source, domain):
    result = analyze_source(source, domain=domain)
    verified = sum(1 for c in result.checks if c.verified)
    total = len(result.checks)
    print(f"  {name:15s} {verified}/{total} access checks proven"
          f"{'  <-- all safe' if verified == total else ''}")
    return verified, total


def main() -> None:
    kernels = [("forward scan", FORWARD_SCAN),
               ("two pointer", TWO_POINTER),
               ("sliding window", SLIDING_WINDOW)]
    for domain in ("octagon", "interval"):
        print(f"--- {domain} domain ---")
        for name, source in kernels:
            check(name, source, domain)
        print()
    print("The relational kernels (two-pointer, sliding window) need the")
    print("octagon facts lo <= hi and j - i <= w; intervals cannot prove")
    print("those accesses safe.")


if __name__ == "__main__":
    main()
