"""Backward analysis: necessary preconditions and assertion triage.

Forward abstract interpretation answers "what holds here?"; the
backward engine answers "from which inputs can this happen?".  This
example uses it two ways:

1. compute the necessary precondition of an error condition -- if it is
   `false`, the error is unreachable (an alternative proof); otherwise
   it describes the only inputs that could trigger it;
2. confirm a reachable violation with the concrete interpreter, using
   the precondition to pick the input.

Run:  python examples/backward_analysis.py
"""

import random

from repro.analysis.backward import necessary_precondition
from repro.frontend import build_cfg, parse_program
from repro.frontend.ast_nodes import Cmp, Num, Var
from repro.frontend.interp import Interpreter

SAFE = """
x = [0, 50];
y = x + 10;
if (y > 70) { err = 1; } else { err = 0; }
"""

UNSAFE = """
x = [0, 100];
y = x + 10;
if (y > 70) { err = 1; } else { err = 0; }
"""


def triage(name, source):
    cfg = build_cfg(parse_program(source).procedures[0])
    err_cond = Cmp("==", Var("err"), Num(1.0))
    pre = necessary_precondition(cfg, err_cond)
    print(f"--- {name} ---")
    print(source.strip())
    print("necessary precondition of reaching the exit with err == 1:")
    if pre.is_bottom():
        print("   false  ->  the error is PROVED UNREACHABLE")
        print()
        return
    for line in pre.pretty(names=cfg.variables).splitlines():
        print(f"   {line}")
    # 'true' at the entry is correct (x is drawn inside the program);
    # the interesting condition lives right after the draw.
    from repro.analysis.backward import BackwardEngine
    from repro.domains import get_domain
    result = BackwardEngine().analyze(cfg, get_domain("octagon"),
                                      cfg.exit, err_cond)
    after_draw = cfg.edges[0].dst  # the node after "x = [..]"
    mid = result.at(after_draw)
    print("condition on x right after the draw:")
    for line in mid.pretty(names=cfg.variables).splitlines():
        print(f"   {line}")
    # The precondition is necessary, not sufficient; confirm with a
    # concrete run steered into the described region.
    proc = parse_program(source).procedures[0]
    for seed in range(200):
        interp = Interpreter(random.Random(seed))
        try:
            result = interp.run(proc)
        except Exception:
            continue
        env = result.env
        if env.get("err") == 1.0:
            print(f"   confirmed concretely with x = {env['x']:g} "
                  f"(seed {seed})")
            break
    print()


def main() -> None:
    triage("safe version", SAFE)
    triage("unsafe version", UNSAFE)
    print("The backward engine proved the first variant safe without")
    print("any forward invariant, and produced the input region that")
    print("breaks the second.")


if __name__ == "__main__":
    main()
