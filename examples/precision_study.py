"""Precision/cost study across the five shipped abstract domains.

Runs a small program suite through interval, pentagon, zone, octagon
(optimised) and the APRON-style octagon baseline, reporting which
assertions each domain proves and how long each analysis takes.  The
classic precision ladder emerges:

    interval  <  pentagon  <  zone  <  octagon

with the two octagon implementations proving exactly the same facts
(they are the same abstraction) at very different cost.

Run:  python examples/precision_study.py
"""

import time

from repro.analysis.analyzer import analyze_source

PROGRAMS = {
    "bounds only": """
        x = [0, 10];
        y = x * 2;
        assert(y <= 20);
    """,
    "strict order": """
        n = [1, 100];
        i = 0;
        while (i < n) {
          assert(i <= n - 1);   // needs i < n (pentagon and up)
          i = i + 1;
        }
    """,
    "difference": """
        x = [0, 10]; y = x; k = [0, 5]; i = 0;
        while (i < k) { y = y + 1; i = i + 1; }
        assert(y >= x);         // needs y - x >= 0 (zone and up)
    """,
    "sum": """
        x = [0, 3];
        y = 3 - x;
        assert(x + y <= 3);     // needs x + y (octagon only)
    """,
}

DOMAINS = ["interval", "pentagon", "zone", "octagon", "apron"]


def main() -> None:
    header = f"{'program':14s}" + "".join(f"{d:>11s}" for d in DOMAINS)
    print(header)
    print("-" * len(header))
    times = {d: 0.0 for d in DOMAINS}
    for name, source in PROGRAMS.items():
        cells = []
        for domain in DOMAINS:
            start = time.perf_counter()
            result = analyze_source(source, domain=domain)
            times[domain] += time.perf_counter() - start
            verified = sum(c.verified for c in result.checks)
            total = len(result.checks)
            cells.append(f"{verified}/{total}" + (" *" if verified == total else "  "))
        print(f"{name:14s}" + "".join(f"{c:>11s}" for c in cells))
    print()
    print("total analysis time per domain:")
    for domain in DOMAINS:
        print(f"  {domain:10s} {times[domain]*1e3:8.1f} ms")
    print()
    print("* = all assertions proven.  Each row adds an abstraction")
    print("requirement; only the octagons prove everything.  The two")
    print("octagon implementations prove identical facts -- on programs")
    print("this small the scalar baseline is competitive; the optimised")
    print("library pulls ahead as variable counts grow (see benchmarks/).")


if __name__ == "__main__":
    main()
