"""Quickstart: the Octagon abstract domain in five minutes.

Builds octagons from constraints, applies the core domain operators
(closure, meet, join, widening), and shows the online decomposition
that makes this library fast.

Run:  python examples/quickstart.py
"""

from repro import LinExpr, Octagon, OctConstraint


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Build an octagon from constraints over 3 variables x, y, z.
    # ------------------------------------------------------------------
    x, y, z = 0, 1, 2
    oct1 = Octagon.from_constraints(3, [
        OctConstraint.upper(x, 4.0),        # x <= 4
        OctConstraint.lower(x, 0.0),        # x >= 0
        OctConstraint.diff(y, x, 1.0),      # y - x <= 1
        OctConstraint.diff(x, y, 0.0),      # x - y <= 0  (so x <= y <= x+1)
    ])
    print("octagon:", oct1)
    print("constraints:")
    for cons in oct1.to_constraints():
        print("   ", cons)

    # ------------------------------------------------------------------
    # 2. Closure derives implied constraints (here: bounds on y).
    # ------------------------------------------------------------------
    print("\nbounds of y before stating any:", oct1.bounds(y))
    print("(the closure combined y - x <= 1 with x <= 4)")

    # ------------------------------------------------------------------
    # 3. Relational queries: bound arbitrary linear expressions.
    # ------------------------------------------------------------------
    lo, hi = oct1.bound_linexpr(LinExpr({x: 1.0, y: -1.0}))
    print(f"\nx - y  is in  [{lo}, {hi}]")

    # ------------------------------------------------------------------
    # 4. Lattice operators.
    # ------------------------------------------------------------------
    oct2 = Octagon.from_box([(2.0, 8.0), (2.0, 8.0), (0.0, 0.0)])
    joined = oct1.join(oct2)
    met = oct1.meet(oct2)
    print("\njoin bounds of x:", joined.bounds(x))
    print("meet bounds of x:", met.bounds(x))
    print("meet is included in both inputs:",
          met.is_leq(oct1) and met.is_leq(oct2))

    # ------------------------------------------------------------------
    # 5. Widening: the loop-acceleration operator.
    # ------------------------------------------------------------------
    step0 = Octagon.from_box([(0.0, 0.0)])
    step1 = Octagon.from_box([(0.0, 1.0)])
    widened = step0.widening(step0.join(step1))
    print("\nafter widening a growing bound, x is in:", widened.bounds(0))

    # ------------------------------------------------------------------
    # 6. Online decomposition: unrelated variable groups are kept as
    #    independent components, and operators only touch the relevant
    #    submatrices (the paper's key optimisation).
    # ------------------------------------------------------------------
    big = Octagon.top(8)
    big = big.meet_constraint(OctConstraint.sum(0, 1, 5.0))
    big = big.meet_constraint(OctConstraint.diff(4, 5, 2.0))
    print("\n8-variable octagon with two constraint groups:")
    print("  kind:", big.kind)
    print("  independent components:", big.partition.canonical())
    print("  sparsity D =", round(big.sparsity, 3))

    # ------------------------------------------------------------------
    # 7. Transfer functions: programs statements as domain operations.
    # ------------------------------------------------------------------
    state = Octagon.from_box([(0.0, 10.0), (0.0, 0.0), (0.0, 0.0)])
    state = state.assign_var(y, x, coeff=1, offset=1.0)   # y := x + 1
    state = state.assume_linear(LinExpr({x: 1.0}, -3.0))  # assume x <= 3
    print("\nafter y := x + 1; assume x <= 3:")
    print("  x in", state.bounds(x), " y in", state.bounds(y))
    lo, hi = state.bound_linexpr(LinExpr({y: 1.0, x: -1.0}))
    print(f"  y - x in [{lo}, {hi}]   (the relation survived the assume)")


if __name__ == "__main__":
    main()
