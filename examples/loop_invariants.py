"""Loop invariants: analysing the paper's running example (Figure 2).

Runs the full abstract interpreter on

    x = 1; y = x;
    while (x <= m) { x = x + 1; y = y + x; }

with the octagon domain and with the interval domain, showing the
relational invariant (y >= x) that only the octagon can prove.

Run:  python examples/loop_invariants.py
"""

from repro.analysis.analyzer import analyze_source
from repro.core.constraints import LinExpr

PROGRAM = """
x = 1;
y = x;
m = [0, 100];
while (x <= m) {
  x = x + 1;
  y = y + x;
}
assert(y >= x - 1);
assert(x >= 1);
assert(x <= 101);
"""


def describe(result, domain_name):
    proc = result.procedures[0]
    print(f"--- {domain_name} domain ---")
    state = proc.invariant_at_exit()
    names = proc.cfg.variables
    for v, name in enumerate(names):
        lo, hi = state.bounds(v)
        print(f"  {name} in [{lo}, {hi}]")
    y_minus_x = state.bound_linexpr(
        LinExpr({names.index("y"): 1.0, names.index("x"): -1.0}))
    print(f"  y - x in [{y_minus_x[0]}, {y_minus_x[1]}]")
    for check in result.checks:
        status = "VERIFIED" if check.verified else "cannot prove"
        print(f"  assert({check.cond_text}): {status}")
    print()


def main() -> None:
    print("program under analysis:")
    print(PROGRAM)
    describe(analyze_source(PROGRAM, domain="octagon"), "octagon")
    describe(analyze_source(PROGRAM, domain="interval"), "interval")
    print("The octagon proves the relational assertion y >= x - 1; the")
    print("interval domain cannot relate y and x and fails on it.")


if __name__ == "__main__":
    main()
