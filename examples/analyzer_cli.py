"""A tiny command-line static analyzer over the numerical domains.

Usage:
    python examples/analyzer_cli.py [FILE] [--domain octagon|apron|interval]
                                    [--invariants] [--widening-delay N]

Without FILE, a demo program is analysed.  Prints per-procedure
assertion results and (with --invariants) the invariant at every
program point.

Run:  python examples/analyzer_cli.py --invariants
"""

import argparse
import sys

from repro.analysis import Analyzer
from repro.core.bounds import INF

DEMO = """
proc saturate {
  x = [-100, 100];
  if (x > 50) { x = 50; }
  if (x < -50) { x = -50; }
  assert(x >= -50);
  assert(x <= 50);
}

proc accumulate {
  total = 0;
  i = 0;
  n = [0, 10];
  while (i < n) {
    total = total + 2;
    i = i + 1;
  }
  assert(total >= 0);
  assert(total >= i);  // relational: needs the octagon fact total - i >= 0
  assert(i <= n);
}
"""


def fmt_bound(value: float) -> str:
    if value == INF:
        return "+oo"
    if value == -INF:
        return "-oo"
    return f"{value:g}"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("file", nargs="?", help="source file (default: demo)")
    parser.add_argument("--domain", default="octagon",
                        choices=["octagon", "apron", "interval"])
    parser.add_argument("--invariants", action="store_true",
                        help="print the invariant at every program point")
    parser.add_argument("--widening-delay", type=int, default=2)
    args = parser.parse_args(argv)

    if args.file:
        with open(args.file) as fh:
            source = fh.read()
    else:
        source = DEMO
        print("(no file given; analysing the built-in demo)\n")

    analyzer = Analyzer(domain=args.domain, widening_delay=args.widening_delay)
    result = analyzer.analyze(source)

    failures = 0
    for proc in result.procedures:
        print(f"proc {proc.name}  ({len(proc.cfg.variables)} variables, "
              f"{proc.cfg.n_nodes} program points)")
        if args.invariants:
            names = proc.cfg.variables
            for node in range(proc.cfg.n_nodes):
                state = proc.fixpoint.at(node)
                if state.is_bottom():
                    print(f"  point {node}: unreachable")
                    continue
                bounds = ", ".join(
                    f"{name} in [{fmt_bound(state.bounds(v)[0])}, "
                    f"{fmt_bound(state.bounds(v)[1])}]"
                    for v, name in enumerate(names))
                print(f"  point {node}: {bounds}")
        for check in proc.checks:
            status = "VERIFIED" if check.verified else "FAILED TO PROVE"
            if not check.verified:
                failures += 1
            print(f"  assert({check.cond_text}): {status}")
        print()
    total = len(result.checks)
    print(f"{total - failures}/{total} assertions verified "
          f"with the {args.domain} domain in {result.seconds:.3f}s")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
