"""Online decomposition in action (the paper's key idea).

Builds a growing octagon whose variables fall into independent groups,
and shows:

1. the maintained independent components and the DBM kind switching
   (Top -> Decomposed -> Dense) as constraints are added;
2. the closure-time gap between the monolithic dense closure and the
   decomposed closure on the same matrix;
3. what happens after a widening makes the octagon sparse again (the
   Fig. 7 effect).

Run:  python examples/decomposition_demo.py
"""

import time

import numpy as np

from repro import Octagon, OctConstraint, SwitchPolicy
from repro.core.closure_dense import closure_dense_numpy
from repro.core.closure_decomposed import closure_decomposed
from repro.core.partition import Partition


def build_grouped_octagon(n_groups: int, group_size: int) -> Octagon:
    n = n_groups * group_size
    oct_ = Octagon.top(n)
    for g in range(n_groups):
        base = g * group_size
        for k in range(group_size - 1):
            oct_ = oct_.meet_constraint(
                OctConstraint.diff(base + k, base + k + 1, float(k + 1)))
        oct_ = oct_.meet_constraint(OctConstraint.upper(base, 10.0))
    return oct_


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Kind evolution.
    # ------------------------------------------------------------------
    oct_ = Octagon.top(12)
    print("fresh octagon:      ", oct_)
    oct_ = oct_.meet_constraint(OctConstraint.diff(0, 1, 1.0))
    print("one constraint:     ", oct_)
    print("  components:", oct_.partition.canonical())
    oct_ = oct_.meet_constraint(OctConstraint.diff(6, 7, 1.0))
    print("second group:       ", oct_)
    print("  components:", oct_.partition.canonical())
    oct_ = oct_.meet_constraint(OctConstraint.diff(1, 6, 1.0))
    print("bridging constraint:", oct_)
    print("  components:", oct_.partition.canonical())

    # ------------------------------------------------------------------
    # 2. Decomposed vs monolithic closure on the same matrix.
    # ------------------------------------------------------------------
    print("\nclosure time, 8 groups x 8 variables (n = 64):")
    grouped = build_grouped_octagon(8, 8)
    mat = grouped.closure().mat  # warm representative matrix

    dense_in = mat.copy()
    start = time.perf_counter()
    closure_dense_numpy(dense_in)
    t_dense = time.perf_counter() - start

    dec_in = mat.copy()
    part = Partition.from_matrix(mat)
    start = time.perf_counter()
    closure_decomposed(dec_in, part)
    t_dec = time.perf_counter() - start

    agree = np.allclose(np.where(np.isinf(dense_in), 1e300, dense_in),
                        np.where(np.isinf(dec_in), 1e300, dec_in))
    print(f"  monolithic dense closure: {t_dense * 1e3:8.2f} ms")
    print(f"  decomposed closure:       {t_dec * 1e3:8.2f} ms"
          f"   ({t_dense / max(t_dec, 1e-9):.1f}x faster, same result: {agree})")

    # ------------------------------------------------------------------
    # 3. Widening re-sparsifies (the Fig. 7 effect).
    # ------------------------------------------------------------------
    grown = grouped.closure()
    looser = build_grouped_octagon(8, 8)
    looser = Octagon.from_matrix(looser.closure().mat + 1.0)  # all bounds grew
    widened = grown.widening(looser)
    print("\nafter widening against a strictly larger iterate:")
    print("  before:", grown)
    print("  after: ", widened)
    print("  sparsity went from "
          f"{grown.sparsity:.2f} to {widened.sparsity:.2f}")

    # ------------------------------------------------------------------
    # 4. The switching policy is configurable.
    # ------------------------------------------------------------------
    eager = SwitchPolicy(threshold=0.95, decompose=True)
    off = SwitchPolicy(decompose=False)
    a = Octagon.top(12, policy=eager).meet_constraint(OctConstraint.upper(0, 1.0))
    b = Octagon.top(12, policy=off).meet_constraint(OctConstraint.upper(0, 1.0))
    print("\nsame constraint under two policies:")
    print("  eager decomposition:", a.kind, a.partition.canonical())
    print("  decomposition off:  ", b.kind)


if __name__ == "__main__":
    main()
