"""Backward analysis: necessary preconditions of reaching a condition.

Given a CFG, a target node and a condition, this engine computes at
every program point an over-approximation of the states from which some
execution *may reach* the target satisfying the condition:

    B(node) superset of { s | exists path node ->* target,
                              final state satisfies the condition }

Transfer runs the program backwards:

* an assignment edge applies the domain's **substitution** (backward
  assignment) -- see :meth:`repro.core.Octagon.substitute_linexpr`;
* an ``assume g`` edge meets with ``g`` (a path must pass the guard);
* ``havoc``/interval assignments drop the written variable;
* a node joins over its *outgoing* edges; loop heads are widened.

The result is useful for the classic applications: if ``B(entry)`` is
bottom, the target condition is unreachable (an alternative proof of an
assertion); otherwise ``B(entry)`` is a necessary precondition that can
seed a counterexample search.

Currently the octagon domains implement substitution, so the engine is
specific to them (duck-typed on ``substitute_linexpr``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..core.budget import Budget, governed
from ..core.constraints import LinExpr
from ..errors import AnalysisInterrupted, BudgetExceeded
from ..frontend.ast_nodes import (
    Assign, AssignInterval, Assume, BExpr, Havoc,
)
from ..frontend.cfg import CFG
from .plan import compile_backward_cfg
from .transfer import apply_assume, linearize


@dataclass
class BackwardResult:
    """Per-node necessary precondition plus statistics."""

    states: Dict[int, object]
    iterations: int

    def at(self, node: int):
        return self.states[node]

    def precondition(self, cfg: CFG):
        return self.states[cfg.entry]


@dataclass
class BackwardEngine:
    """Worklist solver for the backward may-reach analysis."""

    widening_delay: int = 2
    max_iterations: int = 50_000
    integer_mode: bool = True
    compile_transfer: bool = True

    def analyze(self, cfg: CFG, factory, target: int,
                condition: Optional[BExpr] = None,
                budget: Optional[Budget] = None) -> BackwardResult:
        """Necessary precondition of reaching ``target`` (optionally
        with ``condition`` holding there)."""
        n = len(cfg.variables)
        var_index = cfg.var_index
        bottom = factory.bottom(n)
        states: Dict[int, object] = {node: bottom.copy()
                                     for node in range(cfg.n_nodes)}
        seed = factory.top(n)
        if condition is not None:
            seed = apply_assume(seed, condition, var_index,
                                integer_mode=self.integer_mode)

        # Backward plans: each edge's reversed action compiled once.
        plans = (compile_backward_cfg(cfg, integer_mode=self.integer_mode)
                 if self.compile_transfer else None)
        if plans is not None:
            succ_pairs = plans.successors
        else:
            succ_pairs = {node: [(e.dst, e) for e in edges]
                          for node, edges in cfg.successors.items()}

        order = cfg.reverse_postorder()
        priority = {node: -i for i, node in enumerate(order)}  # reverse
        visits: Dict[int, int] = {}
        worklist = [target]
        pending = {target}
        iterations = 0
        try:
            with governed(budget):
                while worklist:
                    iterations += 1
                    if budget is not None:
                        budget.checkpoint()
                    if iterations > self.max_iterations:
                        raise AnalysisInterrupted(
                            "iterations",
                            "backward analysis did not converge within "
                            f"{self.max_iterations} iterations",
                            partial_states=dict(states),
                            iterations=iterations)
                    worklist.sort(key=lambda nd: priority.get(nd, 0))
                    node = worklist.pop(0)
                    pending.discard(node)
                    new = seed.copy() if node == target else bottom
                    if plans is not None:
                        for dst, plan in succ_pairs.get(node, ()):
                            post = states[dst]
                            new = new.join(post if plan is None else plan(post))
                    else:
                        for dst, edge in succ_pairs.get(node, ()):
                            new = new.join(self._transfer_back(
                                states[dst], edge, var_index))
                    old = states[node]
                    if new.is_leq(old):
                        continue
                    merged = old.join(new)
                    if node in cfg.loop_heads:
                        visits[node] = visits.get(node, 0) + 1
                        if visits[node] > self.widening_delay:
                            merged = old.widening(merged)
                    states[node] = merged
                    for edge in cfg.predecessors.get(node, []):
                        if edge.src not in pending:
                            pending.add(edge.src)
                            worklist.append(edge.src)
                    # The node's own successors do not change, but re-push
                    # the node itself if it is its own predecessor via a
                    # self loop.
        except BudgetExceeded as exc:
            raise AnalysisInterrupted(
                exc.reason, str(exc), partial_states=dict(states),
                iterations=iterations) from exc
        return BackwardResult(states, iterations)

    def _transfer_back(self, post, edge, var_index):
        """One edge, backwards."""
        action = edge.action
        if action is None:
            return post
        if isinstance(action, Assume):
            return apply_assume(post, action.cond, var_index,
                                integer_mode=self.integer_mode)
        if isinstance(action, Assign):
            v = var_index[action.target]
            lin = linearize(action.expr, var_index)
            if lin is not None:
                return post.substitute_linexpr(v, lin)
            # Non-affine: any pre-state value of v could have produced
            # a value in the (unknown) result; drop v's constraints.
            return post.forget(v)
        if isinstance(action, AssignInterval):
            # v := [lo, hi]: some value in the range must land in post,
            # so meet with the range before dropping v.
            v = var_index[action.target]
            limited = post
            if action.hi != float("inf"):
                limited = limited.assume_linear(LinExpr({v: 1.0}, -action.hi))
            if action.lo != float("-inf"):
                limited = limited.assume_linear(LinExpr({v: -1.0}, action.lo))
            return limited.forget(v)
        if isinstance(action, Havoc):
            # v gets an arbitrary fresh value: the pre-state places no
            # constraint on v.
            return post.forget(var_index[action.target])
        raise TypeError(f"cannot run {action!r} backwards")


def necessary_precondition(source_or_cfg, condition: Optional[BExpr] = None,
                           *, domain: str = "octagon",
                           target: Optional[int] = None,
                           compile_transfer: bool = True) -> object:
    """Convenience wrapper: precondition of reaching the exit (or
    ``target``) of a single-procedure program."""
    from ..domains.domain import get_domain
    from ..frontend.cfg import build_cfg
    from ..frontend.parser import parse_program

    if isinstance(source_or_cfg, str):
        cfg = build_cfg(parse_program(source_or_cfg).procedures[0])
    else:
        cfg = source_or_cfg
    engine = BackwardEngine(compile_transfer=compile_transfer)
    result = engine.analyze(cfg, get_domain(domain),
                            cfg.exit if target is None else target,
                            condition)
    return result.precondition(cfg)
