"""Abstract-interpretation substrate: transfer functions, the worklist
fixpoint engine with widening/narrowing, and the end-to-end analyzer."""

from .analyzer import AnalysisResult, Analyzer, CheckResult, ProcedureResult
from .backward import BackwardEngine, BackwardResult, necessary_precondition
from .fixpoint import FixpointEngine, FixpointResult
from .transfer import apply_action, apply_assume, eval_interval, linearize

__all__ = [
    "AnalysisResult",
    "Analyzer",
    "BackwardEngine",
    "BackwardResult",
    "necessary_precondition",
    "CheckResult",
    "FixpointEngine",
    "FixpointResult",
    "ProcedureResult",
    "apply_action",
    "apply_assume",
    "eval_interval",
    "linearize",
]
