"""Abstract-interpretation substrate: transfer functions, the worklist
fixpoint engine with widening/narrowing, and the end-to-end analyzer."""

from .analyzer import AnalysisResult, Analyzer, CheckResult, ProcedureResult
from .backward import BackwardEngine, BackwardResult, necessary_precondition
from .fixpoint import FixpointEngine, FixpointResult
from .plan import (
    CompiledCFG, compile_action, compile_backward_cfg, compile_cfg,
)
from .transfer import apply_action, apply_assume, eval_interval, linearize

__all__ = [
    "AnalysisResult",
    "Analyzer",
    "BackwardEngine",
    "BackwardResult",
    "necessary_precondition",
    "CheckResult",
    "CompiledCFG",
    "FixpointEngine",
    "FixpointResult",
    "ProcedureResult",
    "apply_action",
    "apply_assume",
    "compile_action",
    "compile_backward_cfg",
    "compile_cfg",
    "eval_interval",
    "linearize",
]
