"""The end-to-end analyzer: source text in, invariants and checks out.

:class:`Analyzer` composes the substrate -- lexer/parser, CFG builder
and fixpoint engine -- around a pluggable abstract domain.  This is the
role CPAchecker/TouchBoost/DPS/DIZY play in the paper: a host analysis
that drives the octagon library through its API.  Swapping
``domain="octagon"`` for ``domain="apron"`` re-runs the identical
analysis on the baseline implementation, which is exactly how the
paper's Figure 8 / Table 3 comparisons are reproduced.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple, Union

from ..core import stats
from ..core.budget import Budget
from ..obs import metrics, trace
from ..domains.domain import DomainFactory, get_domain
from ..errors import AnalysisInterrupted
from ..frontend.ast_nodes import Assert, Procedure, Program
from ..frontend.cfg import CFG, build_cfg
from ..frontend.parser import parse_program
from .fixpoint import FixpointEngine, FixpointResult
from .transfer import apply_assume

#: The precision degradation ladder: when a procedure exhausts its
#: budget at one rung, the analyzer retries it one rung down with a
#: fresh budget.  Every rung is strictly cheaper (zones drop the
#: sum constraints, intervals drop all relational information), so a
#: descent terminates; every rung is an over-approximation of the one
#: above it, so the degraded invariants are sound -- some checks just
#: become unknown instead of verified.
LADDER = {
    "octagon": ("octagon", "zone", "interval"),
    "sparse-octagon": ("sparse-octagon", "zone", "interval"),
    "apron": ("apron", "zone", "interval"),
    "zone": ("zone", "interval"),
    "pentagon": ("pentagon", "interval"),
    "interval": ("interval",),
}

metrics.REGISTRY.counter("degradations",
                         "Procedures retried at a lower precision rung")
metrics.REGISTRY.counter("fixpoint_runs",
                         "Fixpoint solves started (one per procedure per "
                         "ladder rung attempted)")


@dataclass
class CheckResult:
    """Outcome of one assertion."""

    procedure: str
    node: int
    cond_text: str
    verified: bool


@dataclass
class ProcedureResult:
    name: str
    cfg: CFG
    fixpoint: FixpointResult
    checks: List[CheckResult]
    #: Domain that actually produced the invariants (may be a lower
    #: ladder rung than the analyzer's configured domain).
    domain_used: str = ""
    #: True when the procedure was re-run at a lower rung, or fell all
    #: the way through to synthesized top states.
    degraded: bool = False
    #: True when even the last rung exhausted its budget and the
    #: invariants are the trivial (sound) top states.
    exhausted: bool = False

    def invariant_at_exit(self):
        return self.fixpoint.at(self.cfg.exit)

    def box_at_exit(self) -> List[Tuple[float, float]]:
        return self.invariant_at_exit().to_box()


@dataclass
class AnalysisResult:
    procedures: List[ProcedureResult]
    seconds: float
    octagon_stats: Optional[stats.StatsCollector] = None

    @property
    def checks(self) -> List[CheckResult]:
        return [c for proc in self.procedures for c in proc.checks]

    @property
    def all_verified(self) -> bool:
        return all(c.verified for c in self.checks)

    @property
    def degraded(self) -> bool:
        return any(proc.degraded for proc in self.procedures)

    def procedure(self, name: str) -> ProcedureResult:
        for proc in self.procedures:
            if proc.name == name:
                return proc
        raise KeyError(name)


@dataclass
class Analyzer:
    """A ready-to-run static analyzer over a numerical domain."""

    domain: Union[str, DomainFactory] = "octagon"
    widening_delay: int = 2
    narrowing_steps: int = 3
    widening_thresholds: Sequence[float] = field(default_factory=tuple)
    integer_mode: bool = True
    compile_transfer: bool = True
    #: Resource budget per procedure *attempt* (each ladder rung gets a
    #: fresh budget): wall-clock seconds, fixpoint iterations, DBM
    #: cells of closure traffic.  ``None`` means unbounded.
    time_budget: Optional[float] = None
    iteration_budget: Optional[int] = None
    cell_budget: Optional[int] = None
    #: Descend the precision ladder on budget exhaustion instead of
    #: propagating :class:`~repro.errors.AnalysisInterrupted`.
    degrade: bool = True
    #: Sparsity threshold for the ``sparse-octagon`` domain's
    #: graph-vs-dense representation switch (``None`` keeps the domain
    #: default).  Ignored by the other domains.
    sparse_threshold: Optional[float] = None

    def _factory(self) -> DomainFactory:
        if isinstance(self.domain, str):
            return get_domain(self.domain)
        return self.domain

    def _budgeted(self) -> bool:
        return (self.time_budget is not None
                or self.iteration_budget is not None
                or self.cell_budget is not None)

    def _fresh_budget(self) -> Optional[Budget]:
        if not self._budgeted():
            return None
        return Budget(time_limit=self.time_budget,
                      max_iterations=self.iteration_budget,
                      max_cells=self.cell_budget)

    def _rung_factory(self, rung: Union[str, DomainFactory]):
        """Resolve a ladder rung to a factory, honouring the configured
        sparsity threshold for the graph-backed octagon."""
        if not isinstance(rung, str):
            return rung
        if rung == "sparse-octagon" and self.sparse_threshold is not None:
            from ..core.kinds import GraphPolicy
            from ..domains.sparse_octagon import ConfiguredSparseOctagonFactory
            return ConfiguredSparseOctagonFactory(
                GraphPolicy(threshold=self.sparse_threshold),
                name="sparse-octagon")
        return get_domain(rung)

    def _rungs(self) -> List[Union[str, DomainFactory]]:
        """The domains to try for each procedure, most precise first."""
        if isinstance(self.domain, str) and self.degrade:
            return list(LADDER.get(self.domain, (self.domain,)))
        return [self.domain]

    def analyze(self, source_or_program: Union[str, Program, Procedure],
                *, collect: bool = False) -> AnalysisResult:
        """Analyze a source string / Program / Procedure.

        With ``collect=True`` a fresh stats collector records octagon
        operator timings and closure events for the benchmarks.
        """
        if isinstance(source_or_program, str):
            with trace.span("parse"):
                program = parse_program(source_or_program)
        elif isinstance(source_or_program, Procedure):
            program = Program([source_or_program])
        else:
            program = source_or_program
        engine = FixpointEngine(
            widening_delay=self.widening_delay,
            narrowing_steps=self.narrowing_steps,
            widening_thresholds=self.widening_thresholds,
            integer_mode=self.integer_mode,
            compile_transfer=self.compile_transfer,
        )
        start = time.perf_counter()
        results: List[ProcedureResult] = []
        collector: Optional[stats.StatsCollector] = None

        def rung_name(rung) -> str:
            return rung if isinstance(rung, str) else getattr(
                rung, "name", type(rung).__name__)

        def solve(cfg: CFG) -> Tuple[FixpointResult, str, bool, bool]:
            """One procedure down the ladder: (fixpoint, domain_used,
            degraded, exhausted)."""
            rungs = self._rungs()
            last_exc: Optional[AnalysisInterrupted] = None
            for i, rung in enumerate(rungs):
                factory = self._rung_factory(rung)
                with trace.span("rung", domain=rung_name(rung)) as sp:
                    try:
                        stats.bump("fixpoint_runs")
                        fix = engine.analyze(cfg, factory,
                                             budget=self._fresh_budget())
                    except AnalysisInterrupted as exc:
                        stats.bump("budget_interrupts")
                        sp.set(interrupted=True)
                        if not self.degrade:
                            raise
                        stats.bump("degradations")
                        last_exc = exc
                        continue
                return fix, rung_name(rung), i > 0, False
            # Every rung exhausted its budget: fall back to the trivial
            # sound answer -- top at every node.  The checks become
            # unknown, never wrong.
            factory = self._rung_factory(rungs[-1])
            n = len(cfg.variables)
            top = factory.top(n)
            states = {node: top.copy() for node in range(cfg.n_nodes)}
            fix = FixpointResult(
                states, last_exc.iterations if last_exc else 0, 0, 0)
            return fix, rung_name(rungs[-1]), True, True

        def run() -> None:
            for proc in program.procedures:
                with trace.span("procedure", name=proc.name) as sp:
                    cfg = build_cfg(proc)
                    fix, used, degraded, exhausted = solve(cfg)
                    sp.set(domain=used, degraded=degraded)
                    checks = [self._discharge(proc.name, cfg, fix, node, chk)
                              for node, chk in cfg.checks]
                results.append(ProcedureResult(
                    proc.name, cfg, fix, checks, domain_used=used,
                    degraded=degraded, exhausted=exhausted))

        if collect:
            with stats.collecting() as collector:
                run()
        else:
            run()
        elapsed = time.perf_counter() - start
        return AnalysisResult(results, elapsed, collector)

    def _discharge(self, proc_name: str, cfg: CFG, fix: FixpointResult,
                   node: int, check: Assert) -> CheckResult:
        """An assertion holds if the invariant cannot violate it."""
        from ..frontend.pretty import pretty_bexpr

        state = fix.at(node)
        if state.is_bottom():
            verified = True  # unreachable code satisfies everything
        else:
            violating = apply_assume(state, check.cond, cfg.var_index,
                                     negate=True, integer_mode=self.integer_mode)
            verified = violating.is_bottom()
        return CheckResult(proc_name, node, pretty_bexpr(check.cond), verified)


def analyze_source(source: str, *, domain: str = "octagon", **kwargs) -> AnalysisResult:
    """One-call convenience wrapper around :class:`Analyzer`."""
    return Analyzer(domain=domain, **kwargs).analyze(source)
