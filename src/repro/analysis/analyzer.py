"""The end-to-end analyzer: source text in, invariants and checks out.

:class:`Analyzer` composes the substrate -- lexer/parser, CFG builder
and fixpoint engine -- around a pluggable abstract domain.  This is the
role CPAchecker/TouchBoost/DPS/DIZY play in the paper: a host analysis
that drives the octagon library through its API.  Swapping
``domain="octagon"`` for ``domain="apron"`` re-runs the identical
analysis on the baseline implementation, which is exactly how the
paper's Figure 8 / Table 3 comparisons are reproduced.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple, Union

from ..core import stats
from ..domains.domain import DomainFactory, get_domain
from ..frontend.ast_nodes import Assert, Procedure, Program
from ..frontend.cfg import CFG, build_cfg
from ..frontend.parser import parse_program
from .fixpoint import FixpointEngine, FixpointResult
from .transfer import apply_assume


@dataclass
class CheckResult:
    """Outcome of one assertion."""

    procedure: str
    node: int
    cond_text: str
    verified: bool


@dataclass
class ProcedureResult:
    name: str
    cfg: CFG
    fixpoint: FixpointResult
    checks: List[CheckResult]

    def invariant_at_exit(self):
        return self.fixpoint.at(self.cfg.exit)

    def box_at_exit(self) -> List[Tuple[float, float]]:
        return self.invariant_at_exit().to_box()


@dataclass
class AnalysisResult:
    procedures: List[ProcedureResult]
    seconds: float
    octagon_stats: Optional[stats.StatsCollector] = None

    @property
    def checks(self) -> List[CheckResult]:
        return [c for proc in self.procedures for c in proc.checks]

    @property
    def all_verified(self) -> bool:
        return all(c.verified for c in self.checks)

    def procedure(self, name: str) -> ProcedureResult:
        for proc in self.procedures:
            if proc.name == name:
                return proc
        raise KeyError(name)


@dataclass
class Analyzer:
    """A ready-to-run static analyzer over a numerical domain."""

    domain: Union[str, DomainFactory] = "octagon"
    widening_delay: int = 2
    narrowing_steps: int = 3
    widening_thresholds: Sequence[float] = field(default_factory=tuple)
    integer_mode: bool = True
    compile_transfer: bool = True

    def _factory(self) -> DomainFactory:
        if isinstance(self.domain, str):
            return get_domain(self.domain)
        return self.domain

    def analyze(self, source_or_program: Union[str, Program, Procedure],
                *, collect: bool = False) -> AnalysisResult:
        """Analyze a source string / Program / Procedure.

        With ``collect=True`` a fresh stats collector records octagon
        operator timings and closure events for the benchmarks.
        """
        if isinstance(source_or_program, str):
            program = parse_program(source_or_program)
        elif isinstance(source_or_program, Procedure):
            program = Program([source_or_program])
        else:
            program = source_or_program
        factory = self._factory()
        engine = FixpointEngine(
            widening_delay=self.widening_delay,
            narrowing_steps=self.narrowing_steps,
            widening_thresholds=self.widening_thresholds,
            integer_mode=self.integer_mode,
            compile_transfer=self.compile_transfer,
        )
        start = time.perf_counter()
        results: List[ProcedureResult] = []
        collector: Optional[stats.StatsCollector] = None

        def run() -> None:
            for proc in program.procedures:
                cfg = build_cfg(proc)
                fix = engine.analyze(cfg, factory)
                checks = [self._discharge(proc.name, cfg, fix, node, chk)
                          for node, chk in cfg.checks]
                results.append(ProcedureResult(proc.name, cfg, fix, checks))

        if collect:
            with stats.collecting() as collector:
                run()
        else:
            run()
        elapsed = time.perf_counter() - start
        return AnalysisResult(results, elapsed, collector)

    def _discharge(self, proc_name: str, cfg: CFG, fix: FixpointResult,
                   node: int, check: Assert) -> CheckResult:
        """An assertion holds if the invariant cannot violate it."""
        from ..frontend.pretty import pretty_bexpr

        state = fix.at(node)
        if state.is_bottom():
            verified = True  # unreachable code satisfies everything
        else:
            violating = apply_assume(state, check.cond, cfg.var_index,
                                     negate=True, integer_mode=self.integer_mode)
            verified = violating.is_bottom()
        return CheckResult(proc_name, node, pretty_bexpr(check.cond), verified)


def analyze_source(source: str, *, domain: str = "octagon", **kwargs) -> AnalysisResult:
    """One-call convenience wrapper around :class:`Analyzer`."""
    return Analyzer(domain=domain, **kwargs).analyze(source)
