"""Transfer functions: from mini-language actions to domain operations.

The bridge between the front end and any abstract domain implementing
the :class:`~repro.domains.domain.AbstractDomain` protocol:

* affine expressions are *linearised* into :class:`LinExpr` and handed
  to ``assign_linexpr`` / ``assume_linear`` (the octagon handles the
  octagonal shapes exactly and interval-linearises the rest);
* non-affine expressions (variable products) are evaluated in interval
  arithmetic over the current state's bounds and assigned as intervals;
* boolean conditions are pushed to negation normal form; conjunction
  maps to sequential refinement, disjunction to a join of refinements.

Comparisons use real-valued semantics: strict inequalities are
approximated by their non-strict closure, and ``!=`` refines to the
join of the two strict sides.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from ..core.constraints import LinExpr
from ..frontend.ast_nodes import (
    AExpr, Assign, AssignInterval, Assume, BExpr, BinOp, BoolLit, BoolOp,
    Cmp, Havoc, Neg, Not, Num, Var,
)
from ..frontend.cfg import Action


def linearize(expr: AExpr, var_index: Dict[str, int]) -> Optional[LinExpr]:
    """Convert an affine expression to a LinExpr; None if non-affine."""
    if isinstance(expr, Num):
        return LinExpr.of_const(expr.value)
    if isinstance(expr, Var):
        return LinExpr.of_var(var_index[expr.name])
    if isinstance(expr, Neg):
        inner = linearize(expr.operand, var_index)
        return None if inner is None else inner.scaled(-1.0)
    if isinstance(expr, BinOp):
        left = linearize(expr.left, var_index)
        right = linearize(expr.right, var_index)
        if left is None or right is None:
            return None
        if expr.op == "+":
            return left.plus(right)
        if expr.op == "-":
            return left.minus(right)
        if expr.op == "*":
            if not left.coeffs:
                return right.scaled(left.const)
            if not right.coeffs:
                return left.scaled(right.const)
            return None  # variable * variable: non-affine
    return None


def eval_interval(
    expr: AExpr,
    bounds: Callable[[int], Tuple[float, float]],
    var_index: Dict[str, int],
) -> Tuple[float, float]:
    """Interval evaluation of an arbitrary expression (handles products)."""
    if isinstance(expr, Num):
        return (expr.value, expr.value)
    if isinstance(expr, Var):
        return bounds(var_index[expr.name])
    if isinstance(expr, Neg):
        lo, hi = eval_interval(expr.operand, bounds, var_index)
        return (-hi, -lo)
    if isinstance(expr, BinOp):
        llo, lhi = eval_interval(expr.left, bounds, var_index)
        rlo, rhi = eval_interval(expr.right, bounds, var_index)
        if expr.op == "+":
            return (llo + rlo, lhi + rhi)
        if expr.op == "-":
            return (llo - rhi, lhi - rlo)
        if expr.op == "*":
            candidates = []
            for a in (llo, lhi):
                for b in (rlo, rhi):
                    prod = a * b
                    if prod != prod:  # 0 * inf -> nan: contributes 0
                        prod = 0.0
                    candidates.append(prod)
            return (min(candidates), max(candidates))
    raise TypeError(f"cannot evaluate {expr!r}")


def apply_action(state, action: Action, var_index: Dict[str, int],
                 *, integer_mode: bool = True):
    """Apply one CFG edge action to an abstract state."""
    if action is None:
        return state
    if isinstance(action, Assign):
        v = var_index[action.target]
        lin = linearize(action.expr, var_index)
        if lin is not None:
            return state.assign_linexpr(v, lin)
        lo, hi = eval_interval(action.expr, state.bounds, var_index)
        return state.assign_interval(v, lo, hi)
    if isinstance(action, AssignInterval):
        return state.assign_interval(var_index[action.target], action.lo, action.hi)
    if isinstance(action, Havoc):
        return state.forget(var_index[action.target])
    if isinstance(action, Assume):
        return apply_assume(state, action.cond, var_index, integer_mode=integer_mode)
    raise TypeError(f"cannot apply {action!r}")


def apply_assume(state, cond: BExpr, var_index: Dict[str, int], *,
                 negate: bool = False, integer_mode: bool = True):
    """Refine ``state`` with ``cond`` (or its negation).

    With ``integer_mode`` (the default -- the workload programs are
    integer programs) strict comparisons tighten by one:
    ``e < 0  ==>  e <= -1``.  Over the reals they fall back to their
    non-strict closure, which is sound but cannot separate boundaries.
    """
    if isinstance(cond, BoolLit):
        value = cond.value != negate
        return state if value else type(state).bottom(state.n)
    if isinstance(cond, Not):
        return apply_assume(state, cond.operand, var_index,
                            negate=not negate, integer_mode=integer_mode)
    if isinstance(cond, BoolOp):
        # De Morgan under negation.
        conjunctive = (cond.op == "&&") != negate

        def go(s, sub):
            return apply_assume(s, sub, var_index,
                                negate=negate, integer_mode=integer_mode)

        if conjunctive:
            return go(go(state, cond.left), cond.right)
        # Disjunction: a bottom side contributes nothing to the union,
        # so skip the join (``join(bottom, x)`` would only copy ``x``).
        left = go(state, cond.left)
        if left.is_bottom():
            return go(state, cond.right)
        right = go(state, cond.right)
        if right.is_bottom():
            return left
        return left.join(right)
    if isinstance(cond, Cmp):
        return _apply_cmp(state, cond, var_index, negate, integer_mode)
    raise TypeError(f"cannot assume {cond!r}")


_NEGATED = {"<": ">=", "<=": ">", ">": "<=", ">=": "<", "==": "!=", "!=": "=="}


def _leq_zero(state, diff: LinExpr, strict: bool, integer_mode: bool):
    """Refine with ``diff <= 0`` / ``diff < 0``."""
    if strict and integer_mode:
        diff = diff.plus(LinExpr.of_const(1.0))
        strict = False
    return state.assume_linear(diff, strict=strict)


def _apply_cmp(state, cmp_: Cmp, var_index: Dict[str, int], negate: bool,
               integer_mode: bool):
    op = _NEGATED[cmp_.op] if negate else cmp_.op
    left = linearize(cmp_.left, var_index)
    right = linearize(cmp_.right, var_index)
    if left is None or right is None:
        # Non-affine comparison: no refinement (sound).
        return state
    diff = left.minus(right)  # condition is: diff OP 0
    if op in ("<", "<="):
        return _leq_zero(state, diff, op == "<", integer_mode)
    if op in (">", ">="):
        return _leq_zero(state, diff.scaled(-1.0), op == ">", integer_mode)
    if op == "==":
        refined = _leq_zero(state, diff, False, integer_mode)
        return _leq_zero(refined, diff.scaled(-1.0), False, integer_mode)
    # '!=': the union of the two strict sides (joined only when both
    # sides are feasible -- a bottom side short-circuits the join).
    lt = _leq_zero(state, diff, True, integer_mode)
    if lt.is_bottom():
        return _leq_zero(state, diff.scaled(-1.0), True, integer_mode)
    gt = _leq_zero(state, diff.scaled(-1.0), True, integer_mode)
    if gt.is_bottom():
        return lt
    return lt.join(gt)
