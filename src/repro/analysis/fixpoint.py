"""Fixpoint engine: recursive iteration over the loop nesting tree.

The engine implements the classic abstract-interpretation solver with a
Bourdoncle-style *recursive* iteration strategy.  For CFGs produced by
the front end, the loop nesting tree is known (structured programs),
and each loop is solved as a unit:

* the loop head accumulates joins of its incoming values, switching to
  **widening** after ``widening_delay`` growing iterations (optionally
  against a threshold set);
* on every (re-)iteration the loop **body is recomputed from scratch**
  in reverse postorder, recursively re-solving nested loops.  This
  "reset" semantics is what recovers precision that a flat worklist
  loses: a variable that is constant around an inner loop but grows
  across outer iterations never gets widened away at the inner head;
* once stable, up to ``narrowing_steps`` descending passes refine the
  head invariant (standard narrowing: only infinite bounds improve),
  re-propagating the body after each successful refinement.

Hand-built CFGs without a loop tree fall back to a generic priority
worklist with widening at the annotated loop heads.

The engine is generic over any domain implementing the
:class:`~repro.domains.domain.AbstractDomain` protocol -- in particular
both the optimised :class:`~repro.core.Octagon` and the baseline
:class:`~repro.core.ApronOctagon`, which is how the paper's end-to-end
comparisons run identical analysis logic over both implementations.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..core.budget import Budget, governed
from ..obs import trace
from ..errors import AnalysisInterrupted, BudgetExceeded
from ..frontend.cfg import CFG, LoopInfo
from .plan import CompiledCFG, compile_cfg
from .transfer import apply_action


@dataclass
class FixpointResult:
    """Invariants per CFG node plus iteration statistics."""

    states: Dict[int, object]
    iterations: int
    widenings: int
    narrowings: int

    def at(self, node: int):
        return self.states[node]


@dataclass
class FixpointEngine:
    """Configurable fixpoint solver."""

    widening_delay: int = 2
    narrowing_steps: int = 3
    widening_thresholds: Sequence[float] = field(default_factory=tuple)
    max_iterations: int = 100_000
    integer_mode: bool = True
    compile_transfer: bool = True

    # ------------------------------------------------------------------
    # public entry point
    # ------------------------------------------------------------------
    def analyze(self, cfg: CFG, factory, entry_state=None,
                budget: Optional[Budget] = None) -> FixpointResult:
        """Run to fixpoint; ``factory`` is a DomainFactory-like object.

        With a ``budget``, the solve checkpoints once per node
        recomputation and the closure kernels charge their traffic to
        it ambiently; exhaustion surfaces as
        :class:`~repro.errors.AnalysisInterrupted` carrying the
        partial (not yet converged, possibly unsound) state map.
        """
        # Variable-level thresholds: include doubled values so the
        # unary DBM entries (2v <= 2t) are captured too.  Built once per
        # run -- every widening call shares the same set.
        self._threshold_set = (
            sorted({float(t) for t in self.widening_thresholds}
                   | {2.0 * float(t) for t in self.widening_thresholds})
            if self.widening_thresholds else None)
        if self.compile_transfer:
            with trace.span("compile"):
                plans = compile_cfg(cfg, integer_mode=self.integer_mode)
        else:
            plans = None
        with governed(budget):
            with trace.span("fixpoint", nodes=cfg.n_nodes) as sp:
                if cfg.loop_tree is not None:
                    result = self._analyze_structured(cfg, factory,
                                                      entry_state, plans,
                                                      budget)
                else:
                    result = self._analyze_worklist(cfg, factory,
                                                    entry_state, plans,
                                                    budget)
                sp.set(iterations=result.iterations,
                       widenings=result.widenings)
            return result

    # ------------------------------------------------------------------
    # shared helpers
    # ------------------------------------------------------------------
    def _widen(self, old, new):
        ts = getattr(self, "_threshold_set", None)
        if ts and hasattr(old, "widening_thresholds"):
            return old.widening_thresholds(new, ts)
        return old.widening(new)

    # ------------------------------------------------------------------
    # structured (recursive) strategy
    # ------------------------------------------------------------------
    def _analyze_structured(self, cfg: CFG, factory, entry_state,
                            plans: CompiledCFG = None,
                            budget: Optional[Budget] = None) -> FixpointResult:
        n = len(cfg.variables)
        var_index = cfg.var_index
        bottom = factory.bottom(n)
        states: Dict[int, object] = {node: bottom.copy() for node in range(cfg.n_nodes)}
        states[cfg.entry] = (entry_state.copy() if entry_state is not None
                             else factory.top(n))
        rpo_pos = {node: i for i, node in enumerate(cfg.reverse_postorder())}
        counters = {"iterations": 0, "widenings": 0, "narrowings": 0}

        def bump_iteration():
            counters["iterations"] += 1
            if budget is not None:
                budget.checkpoint()
            if counters["iterations"] > self.max_iterations:
                raise AnalysisInterrupted(
                    "iterations",
                    "fixpoint did not converge within "
                    f"{self.max_iterations} iterations",
                    partial_states=dict(states),
                    iterations=counters["iterations"])

        if plans is not None:
            pred_plans = plans.predecessors

            def recompute(node):
                bump_iteration()
                acc = bottom
                for src, plan in pred_plans.get(node, ()):
                    out = states[src] if plan is None else plan(states[src])
                    acc = acc.join(out)
                return acc
        else:
            def recompute(node):
                bump_iteration()
                acc = bottom
                for edge in cfg.predecessors.get(node, []):
                    out = apply_action(states[edge.src], edge.action, var_index,
                                       integer_mode=self.integer_mode)
                    acc = acc.join(out)
                return acc

        # Per-node transfer spans cost a dict build per recomputation,
        # so the instrumented variant is only installed when tracing is
        # on -- the disabled path keeps the bare closures above.
        if trace.enabled():
            plain_recompute = recompute

            def recompute(node):
                t0 = time.perf_counter()
                acc = plain_recompute(node)
                trace.emit("recompute", t0, time.perf_counter(),
                           args={"node": node})
                return acc

        def propagate_region(nodes_in_order, subloops_by_head):
            handled = set()
            for node in nodes_in_order:
                if node in handled:
                    continue
                sub = subloops_by_head.get(node)
                if sub is not None:
                    solve_loop(sub)
                    handled |= sub.nodes
                else:
                    states[node] = recompute(node)

        def solve_loop(loop: LoopInfo) -> None:
            body_nodes = sorted(loop.nodes - {loop.head},
                                key=lambda nd: rpo_pos.get(nd, nd))
            subs = {sub.head: sub for sub in loop.subloops}
            # Reset semantics: the component is re-solved from scratch
            # relative to its current entry values.
            states[loop.head] = bottom
            for node in body_nodes:
                states[node] = bottom
            visits = 0
            while True:
                new_head = recompute(loop.head)
                if visits > 0 and new_head.is_leq(states[loop.head]):
                    break
                if visits > self.widening_delay:
                    counters["widenings"] += 1
                    states[loop.head] = self._widen(states[loop.head], new_head)
                else:
                    states[loop.head] = states[loop.head].join(new_head)
                propagate_region(body_nodes, subs)
                visits += 1
            # Descending (narrowing) passes on this component.
            for _ in range(self.narrowing_steps):
                new_head = recompute(loop.head)
                refined = states[loop.head].narrowing(new_head)
                if refined.is_leq(states[loop.head]) and \
                        not states[loop.head].is_leq(refined):
                    counters["narrowings"] += 1
                    states[loop.head] = refined
                    propagate_region(body_nodes, subs)
                else:
                    break

        if trace.enabled():
            plain_solve_loop = solve_loop

            def solve_loop(loop: LoopInfo) -> None:
                with trace.span("loop", head=loop.head,
                                nodes=len(loop.nodes)):
                    plain_solve_loop(loop)

        top_order = sorted((node for node in range(cfg.n_nodes)
                            if node != cfg.entry),
                           key=lambda nd: rpo_pos.get(nd, nd))
        try:
            propagate_region(top_order,
                             {loop.head: loop for loop in cfg.loop_tree})
        except BudgetExceeded as exc:
            raise AnalysisInterrupted(
                exc.reason, str(exc), partial_states=dict(states),
                iterations=counters["iterations"]) from exc
        return FixpointResult(states, counters["iterations"],
                              counters["widenings"], counters["narrowings"])

    # ------------------------------------------------------------------
    # generic worklist fallback (hand-built CFGs)
    # ------------------------------------------------------------------
    def _analyze_worklist(self, cfg: CFG, factory, entry_state,
                          plans: CompiledCFG = None,
                          budget: Optional[Budget] = None) -> FixpointResult:
        n = len(cfg.variables)
        var_index = cfg.var_index
        bottom = factory.bottom(n)
        states: Dict[int, object] = {node: bottom.copy() for node in range(cfg.n_nodes)}
        states[cfg.entry] = (entry_state.copy() if entry_state is not None
                             else factory.top(n))

        priority = {node: i for i, node in enumerate(cfg.reverse_postorder())}
        visits: Dict[int, int] = {}
        iterations = widenings = narrowings = 0

        # Successor/predecessor transfers as (other_node, plan) pairs.
        # Interpreted mode (the ablation baseline) builds the pairs once
        # up front so its inner loops stay allocation-free too; the
        # difference under measurement is purely plan-vs-interpreter.
        if plans is not None:
            succ_pairs = plans.successors
            pred_pairs = plans.predecessors

            def transfer(state, plan):
                return state if plan is None else plan(state)
        else:
            succ_pairs = {node: [(e.dst, e.action) for e in edges]
                          for node, edges in cfg.successors.items()}
            pred_pairs = {node: [(e.src, e.action) for e in edges]
                          for node, edges in cfg.predecessors.items()}

            def transfer(state, action):
                return apply_action(state, action, var_index,
                                    integer_mode=self.integer_mode)

        # As in the structured solver: per-edge transfer spans are only
        # installed when tracing is on, so the hot loop stays bare.
        if trace.enabled():
            plain_transfer = transfer

            def transfer(state, plan):
                t0 = time.perf_counter()
                out = plain_transfer(state, plan)
                trace.emit("transfer", t0, time.perf_counter())
                return out

        worklist: List[tuple] = []
        seen = set()

        def push(node: int) -> None:
            if node not in seen:
                seen.add(node)
                heapq.heappush(worklist, (priority.get(node, node), node))

        push(cfg.entry)
        try:
            while worklist:
                iterations += 1
                if budget is not None:
                    budget.checkpoint()
                if iterations > self.max_iterations:
                    raise AnalysisInterrupted(
                        "iterations",
                        "fixpoint did not converge "
                        f"within {self.max_iterations} iterations",
                        partial_states=dict(states), iterations=iterations)
                _, node = heapq.heappop(worklist)
                seen.discard(node)
                state = states[node]
                if state.is_bottom():
                    continue
                for dst, action in succ_pairs.get(node, ()):
                    out = transfer(state, action)
                    old = states[dst]
                    if out.is_leq(old):
                        continue
                    merged = old.join(out)
                    if dst in cfg.loop_heads:
                        visits[dst] = visits.get(dst, 0) + 1
                        if visits[dst] > self.widening_delay:
                            widenings += 1
                            merged = self._widen(old, merged)
                    states[dst] = merged
                    push(dst)
        except BudgetExceeded as exc:
            raise AnalysisInterrupted(
                exc.reason, str(exc), partial_states=dict(states),
                iterations=iterations) from exc

        # Descending (narrowing) passes.
        for _ in range(self.narrowing_steps):
            changed = False
            for node in sorted(range(cfg.n_nodes), key=lambda x: priority.get(x, x)):
                if node == cfg.entry:
                    continue
                preds = pred_pairs.get(node, ())
                if not preds:
                    continue
                new = factory.bottom(n)
                for src, action in preds:
                    new = new.join(transfer(states[src], action))
                refined = (states[node].narrowing(new)
                           if node in cfg.loop_heads else new)
                if refined.is_leq(states[node]) and not states[node].is_leq(refined):
                    states[node] = refined
                    changed = True
                    narrowings += 1
            if not changed:
                break

        return FixpointResult(states, iterations, widenings, narrowings)
