"""Compiled transfer plans: per-edge action compilation.

The interpreter in :mod:`repro.analysis.transfer` re-does, on *every*
fixpoint iteration, work that the CFG fixes once per analysis: it
re-walks the ``Assume``/``Assign`` ASTs, re-linearises the same
expressions, re-resolves variable names through ``var_index`` and
re-derives the negation-normal form of every branch condition.  This
module performs all of that exactly once per edge and per analysis:

* :func:`compile_action` turns one CFG edge action into a
  :class:`TransferPlan` -- a plain Python closure ``state -> state``
  with every linearisation resolved, every variable index bound and
  every assume tree flattened into conjunction/disjunction plan nodes;
* conjunctive chains of *unary octagonal* comparisons on one variable
  (range guards ``lo <= x && x <= hi``, equality tests ``x == c``) are
  pre-decomposed into :class:`OctConstraint` batches executed with a
  single ``meet_constraints`` call -- one incremental closure instead
  of one per comparison;
* disjunctions and ``!=`` short-circuit to bottom early;
* :func:`compile_cfg` / :func:`compile_backward_cfg` compile a whole
  CFG's edges once and hand the fixpoint engines plan-resolved
  adjacency lists.

Determinism contract (enforced by tests): the compiled executor is
**matrix-identical** to the interpreted path, not merely equivalent up
to closure.  Every plan performs the same domain-level operations in
the same order as :func:`repro.analysis.transfer.apply_action`, except
where both orders provably produce the *canonical closed* DBM of the
same constraint set:

* a batched ``meet_constraints`` over unary constraints sharing one
  variable ends in an incremental closure, i.e. the canonical closed
  form -- exactly what the per-comparison interpreted sequence (each
  step of which also ends canonically closed) produces;
* octagon transfer outputs otherwise depend only on the closed form of
  their input, and the one representation-sensitive operator
  (widening) only ever sees join/widening outputs, which the above
  keeps bit-identical.

Because widening left arguments stay bit-identical, iteration,
widening and narrowing counts match the interpreter exactly -- the
ablation (``--no-compile``) changes constant factors only.

The batched fast path engages for the two DBM-backed octagon
implementations (whose ``assume_linear`` it specialises); every other
domain falls back to the very same ``assume_linear`` calls the
interpreter would make, so compilation is behaviour-preserving for all
domains.

Counters (via :mod:`repro.core.stats` global counter sources):
``plans_compiled``, ``plan_exec``, ``constraints_batched`` and
``closures_avoided`` (incremental closures saved by batching).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from ..core import stats
from ..obs import metrics
from ..core.apron_octagon import ApronOctagon
from ..core.bounds import is_finite
from ..core.constraints import LinExpr, OctConstraint
from ..core.octagon import Octagon
from ..domains.sparse_octagon import SparseOctagon
from ..frontend.ast_nodes import (
    Assign, AssignInterval, Assume, BExpr, BoolLit, BoolOp, Cmp, Havoc, Not,
)
from ..frontend.cfg import CFG, Action
from .transfer import _NEGATED, eval_interval, linearize

#: A compiled edge action: ``state -> state``.  ``None`` stands for the
#: identity plan (``None`` actions and trivially-true assumes), letting
#: engines skip the call entirely.
TransferPlan = Optional[Callable]

# ----------------------------------------------------------------------
# hot-path counters (module globals, snapshotted by StatsCollector)
# ----------------------------------------------------------------------
_COUNTS: Dict[str, int] = {
    "plans_compiled": 0,
    "plan_exec": 0,
    "constraints_batched": 0,
    "closures_avoided": 0,
}

stats.register_counter_source(lambda: dict(_COUNTS))

metrics.REGISTRY.counter("plans_compiled",
                         "CFG edge actions compiled to transfer plans")
metrics.REGISTRY.counter("plan_exec", "Compiled transfer-plan executions")
metrics.REGISTRY.counter("constraints_batched",
                         "Octagonal constraints applied via one batched meet")
metrics.REGISTRY.counter("closures_avoided",
                         "Incremental closures elided by constraint batching")


def counters() -> Dict[str, int]:
    """Cumulative plan-layer counters (for tests)."""
    return dict(_COUNTS)


# The DBM-backed octagon implementations whose ``assume_linear`` the
# batched constraint path specialises exactly (canonical closed output).
_BATCHABLE = (Octagon, ApronOctagon, SparseOctagon)


# ----------------------------------------------------------------------
# comparison compilation
# ----------------------------------------------------------------------
class _Test:
    """One compiled ``diff <= 0`` refinement (strict already folded).

    ``constraint`` is the static octagonal decomposition when ``diff``
    is a single unit-coefficient variable (the only shape for which the
    interpreted ``assume_linear`` derives a state-independent
    constraint set), else ``None``.
    """

    __slots__ = ("diff", "strict", "constraint")

    def __init__(self, diff: LinExpr, strict: bool):
        self.diff = diff
        self.strict = strict
        self.constraint: Optional[OctConstraint] = None
        coeffs = {v: c for v, c in diff.coeffs.items() if c != 0.0}
        if len(coeffs) == 1:
            ((v, c),) = coeffs.items()
            # c*v + const <= 0  ==>  c*v <= -const; the finiteness guard
            # mirrors ``assume_linear`` (an infinite bound contributes no
            # constraint there, so it must not contribute one here).
            if c in (1.0, -1.0) and is_finite(-diff.const):
                self.constraint = OctConstraint(v, int(c), v, 0, -diff.const)


def _make_test(diff: LinExpr, strict: bool, integer_mode: bool) -> _Test:
    """Mirror of :func:`transfer._leq_zero`'s integer tightening."""
    if strict and integer_mode:
        diff = diff.plus(LinExpr.of_const(1.0))
        strict = False
    return _Test(diff, strict)


def _const_truth(diff: LinExpr) -> Optional[bool]:
    """``diff <= 0`` decided at compile time for variable-free diffs."""
    if any(c != 0.0 for c in diff.coeffs.values()):
        return None
    return diff.const <= 0


# Compile-time condition nodes.  ``True``/``False`` literals are the
# Python booleans; everything else is a node with ``executor()``.
class _TestChain:
    """A maximal run of tests executed sequentially (conjunction).

    Consecutive statically-decomposed tests on one common variable are
    fused into a single ``meet_constraints`` batch.
    """

    def __init__(self, tests: List[_Test]):
        self.tests = tests

    def executor(self) -> Callable:
        steps = _chain_steps(self.tests)
        if len(steps) == 1:
            return steps[0]

        def run_chain(state):
            cur = state
            for step in steps:
                cur = step(cur)
                if getattr(cur, "_bottom", False):
                    break  # bottom is absorbing for every later step
            return cur

        return run_chain


def _chain_steps(tests: List[_Test]) -> List[Callable]:
    """Group a test chain into batched / general executor steps."""
    steps: List[Callable] = []
    i = 0
    while i < len(tests):
        test = tests[i]
        if test.constraint is None:
            steps.append(_lin_step(test.diff, test.strict))
            i += 1
            continue
        var = test.constraint.i
        group = [test]
        while (i + len(group) < len(tests)
               and tests[i + len(group)].constraint is not None
               and tests[i + len(group)].constraint.i == var):
            group.append(tests[i + len(group)])
        steps.append(_batch_step(group))
        i += len(group)
    return steps


def _lin_step(diff: LinExpr, strict: bool) -> Callable:
    """General linear test: the interpreter's own ``assume_linear``."""
    def step(state):
        return state.assume_linear(diff, strict=strict)
    return step


def _batch_step(group: List[_Test]) -> Callable:
    """``k`` unary tests on one variable as one ``meet_constraints``.

    For the DBM octagons this is the per-test interpreted sequence with
    the intermediate incremental closures elided: both end in the
    canonical closed form of the same system, so the result matrices
    are identical while ``k - 1`` incremental closures are saved.
    """
    cons: Tuple[OctConstraint, ...] = tuple(t.constraint for t in group)
    fallback = [(t.diff, t.strict) for t in group]
    n_cons = len(cons)
    saved = n_cons - 1

    def step(state, _c=_COUNTS):
        if isinstance(state, _BATCHABLE):
            if state.is_bottom():
                return state.copy()
            _c["constraints_batched"] += n_cons
            _c["closures_avoided"] += saved
            return state.closure().meet_constraints(cons)
        cur = state
        for diff, strict in fallback:
            cur = cur.assume_linear(diff, strict=strict)
        return cur

    return step


def _identity(state):
    return state


def _to_bottom(state):
    return type(state).bottom(state.n)


def _disj_executor(left: Callable, right: Callable) -> Callable:
    """``left || right`` with the early bottom short-circuits of
    :func:`transfer.apply_assume` (join skipped when a side is bottom)."""
    def run_disj(state):
        a = left(state)
        if a.is_bottom():
            return right(state)
        b = right(state)
        if b.is_bottom():
            return a
        return a.join(b)
    return run_disj


def _compile_cond(cond: BExpr, var_index: Dict[str, int], negate: bool,
                  integer_mode: bool):
    """Compile a condition to ``True`` / ``False`` / an executor node.

    Negation is pushed to the leaves at compile time (the interpreter
    re-derives the same NNF on every application).
    """
    if isinstance(cond, BoolLit):
        return cond.value != negate
    if isinstance(cond, Not):
        return _compile_cond(cond.operand, var_index, not negate, integer_mode)
    if isinstance(cond, BoolOp):
        conjunctive = (cond.op == "&&") != negate
        left = _compile_cond(cond.left, var_index, negate, integer_mode)
        right = _compile_cond(cond.right, var_index, negate, integer_mode)
        if conjunctive:
            if left is False or right is False:
                return False  # bottom absorbs the remaining refinements
            if left is True:
                return right
            if right is True:
                return left
            parts = []
            for sub in (left, right):
                if isinstance(sub, _TestChain):
                    parts.extend(sub.tests)  # flatten nested conjunctions
                else:
                    parts.append(sub)
            if all(isinstance(p, _Test) for p in parts):
                return _TestChain(parts)
            return _ConjNode(parts)
        # Disjunction: both branches refine the same entry state.  A
        # trivially-true side must stay a node: the interpreter joins
        # the *unrefined* (possibly unclosed) state with the other
        # side, and that join's output matrix is what widening sees --
        # simplifying it away would not be matrix-identical.  Bottom
        # sides do vanish exactly (the interpreter's short-circuit).
        if left is False:
            return right
        if right is False:
            return left
        return _DisjNode(left, right)
    if isinstance(cond, Cmp):
        return _compile_cmp(cond, var_index, negate, integer_mode)
    raise TypeError(f"cannot compile {cond!r}")


class _ConjNode:
    """Conjunction with non-test parts (nested disjunctions)."""

    def __init__(self, parts: List[object]):
        self.parts = parts

    def executor(self) -> Callable:
        steps: List[Callable] = []
        run: List[_Test] = []
        for part in self.parts:
            if isinstance(part, _Test):
                run.append(part)
                continue
            if run:
                steps.extend(_chain_steps(run))
                run = []
            steps.append(_node_executor(part))
        if run:
            steps.extend(_chain_steps(run))

        def run_conj(state):
            cur = state
            for step in steps:
                cur = step(cur)
                if getattr(cur, "_bottom", False):
                    break
            return cur

        return run_conj


class _DisjNode:
    def __init__(self, left, right):
        self.left = left
        self.right = right

    def executor(self) -> Callable:
        return _disj_executor(_node_executor(self.left),
                              _node_executor(self.right))


def _node_executor(node) -> Callable:
    """Executor of one compiled condition node (or literal)."""
    if node is True:
        return _identity
    if node is False:
        return _to_bottom
    if isinstance(node, _Test):
        return _TestChain([node]).executor()
    return node.executor()


def _compile_cmp(cmp_: Cmp, var_index: Dict[str, int], negate: bool,
                 integer_mode: bool):
    """Compile one comparison, mirroring :func:`transfer._apply_cmp`."""
    op = _NEGATED[cmp_.op] if negate else cmp_.op
    left = linearize(cmp_.left, var_index)
    right = linearize(cmp_.right, var_index)
    if left is None or right is None:
        return True  # non-affine comparison: no refinement (sound)
    diff = left.minus(right)
    if op in ("<", "<="):
        return _finish_test(_make_test(diff, op == "<", integer_mode))
    if op in (">", ">="):
        return _finish_test(
            _make_test(diff.scaled(-1.0), op == ">", integer_mode))
    if op == "==":
        lo = _make_test(diff, False, integer_mode)
        hi = _make_test(diff.scaled(-1.0), False, integer_mode)
        truths = (_const_truth(lo.diff), _const_truth(hi.diff))
        if truths[0] is not None and truths[1] is not None:
            return truths[0] and truths[1]
        return _TestChain([lo, hi])
    # '!=': the union of the two strict sides.
    lt = _make_test(diff, True, integer_mode)
    gt = _make_test(diff.scaled(-1.0), True, integer_mode)
    lt_node = _finish_test(lt)
    gt_node = _finish_test(gt)
    if lt_node is True or gt_node is True:
        return True
    if lt_node is False:
        return gt_node
    if gt_node is False:
        return lt_node
    return _DisjNode(lt_node, gt_node)


def _finish_test(test: _Test):
    truth = _const_truth(test.diff)
    return test if truth is None else truth


# ----------------------------------------------------------------------
# action compilation
# ----------------------------------------------------------------------
def compile_action(action: Action, var_index: Dict[str, int], *,
                   integer_mode: bool = True) -> TransferPlan:
    """Compile one CFG edge action to a transfer plan.

    Returns ``None`` for identity actions (``None`` edges and
    trivially-true assumes); otherwise a closure performing the same
    domain operations as :func:`transfer.apply_action`.
    """
    if action is None:
        return None
    if isinstance(action, Assign):
        return _compile_assign(action, var_index)
    if isinstance(action, AssignInterval):
        v = var_index[action.target]
        lo, hi = action.lo, action.hi

        def run_interval(state, _c=_COUNTS):
            _c["plan_exec"] += 1
            return state.assign_interval(v, lo, hi)

        return run_interval
    if isinstance(action, Havoc):
        v = var_index[action.target]

        def run_havoc(state, _c=_COUNTS):
            _c["plan_exec"] += 1
            return state.forget(v)

        return run_havoc
    if isinstance(action, Assume):
        node = _compile_cond(action.cond, var_index, False, integer_mode)
        if node is True:
            return None
        fn = _node_executor(node)

        def run_assume(state, _c=_COUNTS):
            _c["plan_exec"] += 1
            return fn(state)

        return run_assume
    raise TypeError(f"cannot compile {action!r}")


def _compile_assign(action: Assign, var_index: Dict[str, int]) -> Callable:
    """Hoist the linearisation and (where safe) the shape dispatch.

    The compiled plan hands each domain the very same ``LinExpr`` the
    interpreter would (zero coefficients and all): ``assign_linexpr``
    implementations dispatch on its shape per domain, and duplicating
    that dispatch here would have to match every domain's quirks.  Only
    for the two matrix octagon domains -- whose prologue is verbatim
    the filter-and-dispatch below -- is the shape resolved at compile
    time, behind a runtime ``isinstance`` gate.
    """
    v = var_index[action.target]
    lin = linearize(action.expr, var_index)
    if lin is None:
        expr = action.expr

        def run_nonaffine(state, _c=_COUNTS):
            _c["plan_exec"] += 1
            lo, hi = eval_interval(expr, state.bounds, var_index)
            return state.assign_interval(v, lo, hi)

        return run_nonaffine

    # The matrix domains' ``assign_linexpr`` prologue is exactly this
    # filter-and-dispatch, so it can be resolved once at compile time
    # for them; every other domain keeps its own dispatch on the raw
    # expression.
    coeffs = {w: c for w, c in lin.coeffs.items() if c != 0.0}
    if not coeffs:
        const = lin.const

        def run_const(state, _c=_COUNTS):
            _c["plan_exec"] += 1
            if isinstance(state, _BATCHABLE):
                return state.assign_const(v, const)
            return state.assign_linexpr(v, lin)

        return run_const
    if len(coeffs) == 1:
        ((w, c),) = coeffs.items()
        if c in (1.0, -1.0):
            coeff, offset = int(c), lin.const

            def run_var(state, _c=_COUNTS):
                _c["plan_exec"] += 1
                if isinstance(state, _BATCHABLE):
                    return state.assign_var(v, w, coeff=coeff, offset=offset)
                return state.assign_linexpr(v, lin)

            return run_var

    def run_linexpr(state, _c=_COUNTS):
        _c["plan_exec"] += 1
        return state.assign_linexpr(v, lin)

    return run_linexpr


# ----------------------------------------------------------------------
# whole-CFG compilation (forward and backward)
# ----------------------------------------------------------------------
class CompiledCFG:
    """Per-edge plans of one CFG, as plan-resolved adjacency lists.

    ``predecessors[node]`` / ``successors[node]`` hold ``(other_node,
    plan)`` pairs aligned with the CFG's own adjacency lists; a ``None``
    plan is the identity.
    """

    __slots__ = ("predecessors", "successors", "n_plans")

    def __init__(self, predecessors, successors, n_plans: int):
        self.predecessors = predecessors
        self.successors = successors
        self.n_plans = n_plans


def compile_cfg(cfg: CFG, *, integer_mode: bool = True) -> CompiledCFG:
    """Compile every edge action of ``cfg`` exactly once."""
    var_index = cfg.var_index
    plans: Dict[int, TransferPlan] = {}
    n_plans = 0
    for edge in cfg.edges:
        plan = compile_action(edge.action, var_index,
                              integer_mode=integer_mode)
        plans[id(edge)] = plan
        if plan is not None:
            n_plans += 1
    pred = {node: [(e.src, plans[id(e)]) for e in edges]
            for node, edges in cfg.predecessors.items()}
    succ = {node: [(e.dst, plans[id(e)]) for e in edges]
            for node, edges in cfg.successors.items()}
    _COUNTS["plans_compiled"] += n_plans
    return CompiledCFG(pred, succ, n_plans)


def compile_backward_action(action: Action, var_index: Dict[str, int], *,
                            integer_mode: bool = True) -> TransferPlan:
    """Compile one edge action for the backward (precondition) engine,
    mirroring :meth:`repro.analysis.backward.BackwardEngine._transfer_back`."""
    if action is None:
        return None
    if isinstance(action, Assume):
        return compile_action(action, var_index, integer_mode=integer_mode)
    if isinstance(action, Assign):
        v = var_index[action.target]
        lin = linearize(action.expr, var_index)
        if lin is None:
            def run_forget_na(state, _c=_COUNTS):
                _c["plan_exec"] += 1
                return state.forget(v)
            return run_forget_na

        def run_subst(state, _c=_COUNTS):
            _c["plan_exec"] += 1
            return state.substitute_linexpr(v, lin)

        return run_subst
    if isinstance(action, AssignInterval):
        v = var_index[action.target]
        upper = (LinExpr({v: 1.0}, -action.hi)
                 if action.hi != float("inf") else None)
        lower = (LinExpr({v: -1.0}, action.lo)
                 if action.lo != float("-inf") else None)

        def run_interval_back(state, _c=_COUNTS):
            _c["plan_exec"] += 1
            limited = state
            if upper is not None:
                limited = limited.assume_linear(upper)
            if lower is not None:
                limited = limited.assume_linear(lower)
            return limited.forget(v)

        return run_interval_back
    if isinstance(action, Havoc):
        v = var_index[action.target]

        def run_havoc_back(state, _c=_COUNTS):
            _c["plan_exec"] += 1
            return state.forget(v)

        return run_havoc_back
    raise TypeError(f"cannot compile {action!r} backwards")


def compile_backward_cfg(cfg: CFG, *, integer_mode: bool = True) -> CompiledCFG:
    """Backward plans for every edge, as successor adjacency lists."""
    var_index = cfg.var_index
    plans: Dict[int, TransferPlan] = {}
    n_plans = 0
    for edge in cfg.edges:
        plan = compile_backward_action(edge.action, var_index,
                                       integer_mode=integer_mode)
        plans[id(edge)] = plan
        if plan is not None:
            n_plans += 1
    pred = {node: [(e.src, plans[id(e)]) for e in edges]
            for node, edges in cfg.predecessors.items()}
    succ = {node: [(e.dst, plans[id(e)]) for e in edges]
            for node, edges in cfg.successors.items()}
    _COUNTS["plans_compiled"] += n_plans
    return CompiledCFG(pred, succ, n_plans)
