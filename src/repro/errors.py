"""Shared error taxonomy for the analyzer and the batch service.

Historically each layer raised bare ``RuntimeError``/``ValueError``
with ad-hoc message strings; callers that wanted to react (retry a
dead worker, degrade an over-budget analysis, evict a corrupt cache
entry) had to pattern-match on text.  This module is the one place
those failure modes are named:

* :class:`BudgetExceeded` -- a cooperative resource budget (wall-clock
  deadline, iteration cap, DBM-cell cap) was exhausted at a
  checkpoint.  Raised by :class:`repro.core.budget.Budget`.
* :class:`AnalysisInterrupted` -- a fixpoint computation stopped before
  convergence (budget exhaustion or the engine's iteration backstop).
  Carries the *partial* invariant map computed so far -- useful for
  diagnostics, but **not sound** as an analysis result; the
  degradation ladder in :class:`repro.analysis.analyzer.Analyzer`
  reacts by re-running the procedure in a cheaper domain.
* :class:`CacheCorrupt` -- a persistent cache entry failed validation
  (unparsable JSON, schema/version mismatch).  The cache evicts the
  entry and treats the lookup as a miss.
* :class:`WorkerDied` -- a batch worker process exited without
  reporting a result (segfault, OOM-kill, injected fault).
* :class:`IntegrityError` -- the paranoid-mode DBM sentinel
  (:mod:`repro.core.sentinel`) found a structural invariant violated:
  incoherent matrix, stale closed flag, wrong ``nni``, or an invalid
  COW/closure-cache stamp.

``BudgetExceeded`` and ``AnalysisInterrupted`` also subclass
``RuntimeError`` so code (and tests) written against the old bare
raises keep working.
"""

from __future__ import annotations

from typing import Optional


class ReproError(Exception):
    """Base class of every library-defined error."""


class BudgetExceeded(ReproError, RuntimeError):
    """A resource budget was exhausted at a cooperative checkpoint.

    ``reason`` is one of ``"deadline"``, ``"iterations"`` or
    ``"cells"``; ``spent``/``limit`` quantify the exhausted resource.
    """

    def __init__(self, reason: str, message: str, *,
                 spent: float = 0.0, limit: float = 0.0):
        super().__init__(message)
        self.reason = reason
        self.spent = spent
        self.limit = limit


class AnalysisInterrupted(ReproError, RuntimeError):
    """A fixpoint run stopped before convergence.

    ``partial_states`` is the per-node invariant map at the moment of
    interruption (best effort; may be ``None``).  The map is *not* a
    sound fixpoint -- nodes not yet stabilised under-approximate their
    true invariant -- so no verdict may be discharged from it.
    ``reason`` mirrors :class:`BudgetExceeded` (plus ``"iterations"``
    for the engine's own convergence backstop).
    """

    def __init__(self, reason: str, message: str, *,
                 partial_states: Optional[dict] = None,
                 iterations: int = 0):
        super().__init__(message)
        self.reason = reason
        self.partial_states = partial_states
        self.iterations = iterations


class CacheCorrupt(ReproError):
    """A persistent cache entry failed validation and was evicted."""

    def __init__(self, path, detail: str):
        super().__init__(f"corrupt cache entry {path}: {detail}")
        self.path = path
        self.detail = detail


class WorkerDied(ReproError):
    """A batch worker exited without reporting (crash, kill, OOM)."""

    def __init__(self, exit_code: Optional[int], *,
                 stage: str = "before reporting"):
        super().__init__(f"worker died {stage} (exit code {exit_code})")
        self.exit_code = exit_code


class IntegrityError(ReproError):
    """The paranoid DBM sentinel found a structural invariant violated."""

    def __init__(self, check: str, detail: str):
        super().__init__(f"DBM integrity violation [{check}]: {detail}")
        self.check = check
        self.detail = detail


__all__ = [
    "AnalysisInterrupted",
    "BudgetExceeded",
    "CacheCorrupt",
    "IntegrityError",
    "ReproError",
    "WorkerDied",
]
