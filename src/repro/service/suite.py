"""The 17-benchmark suite through the batch service.

:func:`run_suite` is the shared execution path behind
``python -m repro batch --suite``, the ``bench_batch_service``
benchmark and any caller that wants Table 3's workload as one batch:
build one :class:`AnalysisJob` per benchmark (labelled with the
benchmark name) and push them through :func:`run_batch`.
"""

from __future__ import annotations

from typing import List, Optional

from ..workloads.suite import load_suite
from .cache import ResultCache
from .job import AnalysisJob
from .journal import BatchJournal
from .scheduler import BatchResult, run_batch


def suite_jobs(scale: Optional[str] = None, *, domain: str = "octagon",
               analyzer: Optional[str] = None, **options) -> List[AnalysisJob]:
    """One job per suite benchmark (optionally one analyzer family)."""
    return [bench.job(scale=scale, domain=domain, **options)
            for bench in load_suite(analyzer)]


def run_suite(scale: Optional[str] = None, *, domain: str = "octagon",
              analyzer: Optional[str] = None, workers: Optional[int] = None,
              timeout: Optional[float] = None, retries: int = 1,
              cache: Optional[ResultCache] = None,
              use_cache: bool = False,
              journal: Optional[BatchJournal] = None,
              resume: bool = False, **options) -> BatchResult:
    """Run the whole suite as a batch.

    Caching is opt-in here (``use_cache=True`` or an explicit
    ``cache``): benchmark callers usually want fresh timings, while the
    CLI front door passes its own cache according to ``--no-cache``.
    """
    if cache is None and use_cache:
        cache = ResultCache()
    jobs = suite_jobs(scale, domain=domain, analyzer=analyzer, **options)
    return run_batch(jobs, workers=workers, timeout=timeout, retries=retries,
                     cache=cache, journal=journal, resume=resume)
