"""Persistent, content-addressed result cache for the batch service.

Layout: one JSON file per job under ``<root>/v<version>/<key>.json``,
where ``root`` defaults to ``$REPRO_CACHE_DIR`` or ``~/.cache/repro``
and ``version`` is the package version.  Keying the directory *and*
stamping every entry with the version means a package upgrade
invalidates the whole store passively -- old entries are simply never
looked up again -- while a corrupted or mis-stamped file found under
the live directory is evicted on contact.

Counters: the cache keeps its own ``hits``/``misses``/``evictions``
totals for CLI reporting and also bumps the same names (prefixed
``result_cache_``) through :func:`repro.core.stats.bump`, so an active
stats collector sees cache behaviour next to the octagon hot-path
counters.

Writes are atomic (temp file + ``os.replace``) so a batch killed
mid-write never leaves a truncated entry, and only ``outcome="ok"``
results are stored -- timeouts and errors are environmental, not
properties of the job content.
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
from pathlib import Path
from typing import Optional

from .. import __version__
from ..core import stats
from ..core.serialize import job_result_from_dict, job_result_to_dict
from ..errors import CacheCorrupt
from ..obs import events, metrics
from ..testing import faults
from .job import OUTCOME_OK, JobResult

_KEY_SUFFIX = ".json"

metrics.REGISTRY.counter("result_cache_hits",
                         "Batch jobs served from the persistent cache")
metrics.REGISTRY.counter("result_cache_misses",
                         "Persistent-cache lookups that found nothing")
metrics.REGISTRY.counter("result_cache_evictions",
                         "Corrupt or stale cache entries removed")
metrics.REGISTRY.counter("result_cache_write_errors",
                         "Cache writes that failed (ENOSPC, permissions)")


def default_cache_root() -> str:
    """``$REPRO_CACHE_DIR`` if set, else ``~/.cache/repro``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return env
    return os.path.join(os.path.expanduser("~"), ".cache", "repro")


class ResultCache:
    """Content-addressed JSON-on-disk store of :class:`JobResult`\\ s."""

    def __init__(self, root: Optional[str] = None, *,
                 version: Optional[str] = None) -> None:
        self.root = Path(root if root is not None else default_cache_root())
        self.version = version if version is not None else __version__
        self.dir = self.root / f"v{self.version}"
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.stores = 0
        self.write_errors = 0
        #: Set after an unrecoverable write error (ENOSPC, read-only
        #: dir): reads keep working, further writes are skipped for the
        #: rest of the run instead of failing every job.
        self.disabled = False
        #: The last :class:`~repro.errors.CacheCorrupt` evicted, if any.
        self.last_corruption: Optional[CacheCorrupt] = None

    # ------------------------------------------------------------------
    def _path(self, key: str) -> Path:
        return self.dir / f"{key}{_KEY_SUFFIX}"

    def get(self, key: str) -> Optional[JobResult]:
        """The cached result for ``key``, or None on miss.

        A hit is returned with ``cached=True``.  Unreadable, corrupt or
        version-mismatched entries are evicted and count as misses.
        """
        path = self._path(key)
        try:
            with open(path) as fh:
                entry = json.load(fh)
            if entry.get("repro_version") != self.version:
                raise ValueError("version stamp mismatch")
            result = job_result_from_dict(entry["result"])
        except FileNotFoundError:
            self._miss()
            return None
        except (ValueError, KeyError, TypeError, OSError) as exc:
            corruption = CacheCorrupt(path, f"{type(exc).__name__}: {exc}")
            events.warning("result_cache_evicted", path=str(path),
                           error=str(corruption))
            self._evict(path, corruption)
            self._miss()
            return None
        self.hits += 1
        stats.bump("result_cache_hits")
        result.cached = True
        return result

    def put(self, key: str, result: JobResult) -> bool:
        """Store an ``ok`` result atomically; returns True if written.

        A write failure (ENOSPC, read-only directory, permission loss)
        is an environment problem, not an analysis problem: the cache
        disables itself for the rest of the run with a warning instead
        of crashing the batch, and reads continue to work.
        """
        if result.outcome != OUTCOME_OK or self.disabled:
            return False
        tmp = None
        try:
            if faults.fire("cache_enospc"):
                faults.raise_enospc(str(self.dir))
            self.dir.mkdir(parents=True, exist_ok=True)
            entry = {"repro_version": self.version,
                     "result": job_result_to_dict(result)}
            fd, tmp = tempfile.mkstemp(dir=str(self.dir), suffix=".tmp")
            with os.fdopen(fd, "w") as fh:
                json.dump(entry, fh)
            os.replace(tmp, self._path(key))
        except OSError as exc:
            if tmp is not None:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
            self.write_errors += 1
            stats.bump("result_cache_write_errors")
            self.disabled = True
            events.warning("result_cache_disabled", dir=str(self.dir),
                           error=str(exc))
            return False
        self.stores += 1
        return True

    def _miss(self) -> None:
        self.misses += 1
        stats.bump("result_cache_misses")

    def _evict(self, path: Path, corruption: Optional[CacheCorrupt] = None) -> None:
        if corruption is not None:
            self.last_corruption = corruption
        try:
            path.unlink()
        except OSError:
            pass
        self.evictions += 1
        stats.bump("result_cache_evictions")

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        try:
            return sum(1 for p in self.dir.iterdir()
                       if p.suffix == _KEY_SUFFIX)
        except OSError:
            return 0

    def prune_stale(self) -> int:
        """Delete entries left by other package versions; returns count."""
        removed = 0
        try:
            versions = list(self.root.iterdir())
        except OSError:
            return 0
        for child in versions:
            if not child.is_dir() or child == self.dir:
                continue
            if not child.name.startswith("v"):
                continue
            removed += sum(1 for p in child.iterdir()
                           if p.suffix == _KEY_SUFFIX)
            shutil.rmtree(child, ignore_errors=True)
            self.evictions += 1
            stats.bump("result_cache_evictions")
        return removed

    def clear(self) -> None:
        shutil.rmtree(self.dir, ignore_errors=True)

    def counter_summary(self) -> dict:
        return {"result_cache_hits": self.hits,
                "result_cache_misses": self.misses,
                "result_cache_evictions": self.evictions,
                "result_cache_stores": self.stores,
                "result_cache_write_errors": self.write_errors}
