"""Zero-copy result transport for the batch scheduler's worker pipes.

The scheduler's workers used to ship results with default-protocol
``Connection.send`` pickling: every DBM a job kept crossed the pipe as
an in-band copy inside the pickle stream, then again into the parent's
deserialised object -- two full copies of data that is pure
``float64`` and already contiguous.  This module replaces that with a
two-lane envelope:

* **Inline lane** (small results).  ``pickle.dumps(payload,
  protocol=5, buffer_callback=...)`` splits the payload into a pickle
  *body* and the raw out-of-band buffers (protocol 5, PEP 574).  Both
  ship over the pipe with ``send_bytes`` -- still a copy, but exactly
  one, with no protocol-0/2 escaping of binary data.
* **Shared-memory lane** (large results).  When the out-of-band bytes
  reach :data:`SHM_THRESHOLD`, the worker concatenates them into one
  :class:`multiprocessing.shared_memory.SharedMemory` segment and
  ships only the pickle body plus ``(segment name, buffer lengths)``.
  The parent attaches the segment and unpickles with ``buffers=``
  views *into the mapping*, so the result's arrays are backed by the
  shared pages -- the DBM floats are written once by the worker and
  never copied again.

Shared-memory lifetime protocol (POSIX semantics):

1. The worker creates the segment under the deterministic name
   ``repro_shm_<parent pid>_<worker pid>`` and immediately
   *unregisters* it from its own ``resource_tracker`` -- otherwise the
   tracker would unlink the segment when the (short-lived) worker
   exits, racing the parent's attach.
2. The parent attaches, then unlinks the name **immediately**: an
   attached POSIX mapping survives the unlink, so the arrays stay
   valid for as long as the parent holds the :class:`ShmArena`, while
   the name can never leak past this point.
3. Failure windows are covered by janitors keyed on the deterministic
   name: :func:`sweep_worker` (parent, after killing or reaping a dead
   worker) and :func:`sweep_orphans` (batch start, plus segments whose
   creating batch process no longer exists).  The worker itself
   unlinks on a failed send.

Every lane is counted (parent side, where the batch summary lives):
``bytes_shipped`` is what actually crossed the pipe, ``bytes_zero_copy``
is what moved through shared memory instead, and
``shm_blocks_created``/``shm_blocks_attached`` audit the lifetime
protocol (a created block that is never attached is a leak candidate).
"""

from __future__ import annotations

import dataclasses
import os
import pickle
import re
from multiprocessing import resource_tracker, shared_memory
from typing import Dict, List, Optional, Tuple

from ..obs import events, metrics

#: Prefix of every segment name this module creates (janitor key).
SHM_PREFIX = "repro_shm"

#: Out-of-band payload size (bytes) at which the shared-memory lane
#: engages.  Below this the segment setup (shm_open + mmap + two
#: syscalls to unlink) costs more than one memcpy through the pipe.
SHM_THRESHOLD = 64 * 1024

#: Job source size (bytes) at which submission wraps the text in a
#: :class:`_Blob` so it rides the out-of-band buffer lanes instead of
#: the pickle body.  Below this the wrapper costs more than it saves.
JOB_BLOB_THRESHOLD = 4 * 1024

_SEG_RE = re.compile(rf"^{SHM_PREFIX}_(\d+)_(\d+)(?:_job)?$")

#: Process-wide ablation switch (bench): False forces the inline lane.
#: Module global so a ``fork`` start method propagates it to workers.
_ZERO_COPY = True

# Parent-side transport counters, snapshotted per batch by the
# scheduler (module globals like the kernel/COW counters: the recv
# path runs once per job, but the batch summary wants process deltas,
# not per-collector events).
_COUNTS: Dict[str, int] = {
    "bytes_shipped": 0,
    "bytes_zero_copy": 0,
    "shm_blocks_created": 0,
    "shm_blocks_attached": 0,
    "shm_blocks_swept": 0,
    # Submission (parent -> worker) lane, counted on the parent where
    # the batch summary lives -- the worker's own counters die with it.
    "job_bytes_shipped": 0,
    "job_bytes_zero_copy": 0,
    "job_shm_blocks_created": 0,
}

metrics.register_counter_source(lambda: dict(_COUNTS))
metrics.REGISTRY.counter(
    "bytes_shipped", "Bytes that crossed a worker result pipe")
metrics.REGISTRY.counter(
    "bytes_zero_copy",
    "Result bytes moved through shared memory instead of the pipe")
metrics.REGISTRY.counter(
    "shm_blocks_created", "Shared-memory result segments created by workers")
metrics.REGISTRY.counter(
    "shm_blocks_attached", "Shared-memory result segments attached and consumed")
metrics.REGISTRY.counter(
    "shm_blocks_swept", "Orphaned shared-memory segments removed by janitors")
metrics.REGISTRY.counter(
    "job_bytes_shipped", "Bytes that crossed a job submission pipe")
metrics.REGISTRY.counter(
    "job_bytes_zero_copy",
    "Job submission bytes moved through shared memory instead of the pipe")
metrics.REGISTRY.counter(
    "job_shm_blocks_created",
    "Shared-memory submission segments created for workers")


def set_zero_copy(flag: bool) -> None:
    """Enable/disable the shared-memory lane (bench ablation knob)."""
    global _ZERO_COPY
    _ZERO_COPY = bool(flag)


def zero_copy_enabled() -> bool:
    return _ZERO_COPY


def transport_counters() -> Dict[str, int]:
    """Snapshot of the parent-side transport counters."""
    return dict(_COUNTS)


def segment_name(parent_pid: int, worker_pid: int) -> str:
    return f"{SHM_PREFIX}_{parent_pid}_{worker_pid}"


def job_segment_name(parent_pid: int, worker_pid: int) -> str:
    """Submission-lane segment for one worker.

    Distinct from :func:`segment_name` because the two lanes can be in
    flight at once for the same (parent, worker) pair: the parent ships
    the job while the previous attempt's result segment may still be
    unreaped after a crash.
    """
    return f"{SHM_PREFIX}_{parent_pid}_{worker_pid}_job"


#: Segments whose mapping could not be closed yet because a consumer
#: still holds a view into them (already unlinked -- only the mapping
#: lingers).  Kept referenced so their ``__del__`` never runs against
#: live exports; retried opportunistically.
_DEFERRED_CLOSE: List[shared_memory.SharedMemory] = []


def _retry_deferred_close() -> None:
    global _DEFERRED_CLOSE
    still_open = []
    for seg in _DEFERRED_CLOSE:
        try:
            seg.close()
        except BufferError:
            still_open.append(seg)
    _DEFERRED_CLOSE = still_open


class ShmArena:
    """Keeps a consumed result's shared-memory mapping alive.

    The unpickled arrays are views into the segment, so the arena must
    outlive every array it backs; the scheduler parks it on the
    :class:`~repro.service.job.JobResult` it transported.  ``release``
    drops the views and closes the mapping; it tolerates the
    ``BufferError`` CPython raises when someone still holds a view
    (the mapping then lives until the views are garbage-collected).
    """

    def __init__(self, segment: shared_memory.SharedMemory,
                 views: List[memoryview]) -> None:
        self._segment = segment
        self._views = views

    @property
    def nbytes(self) -> int:
        return self._segment.size

    def release(self) -> None:
        for view in self._views:
            view.release()
        self._views = []
        segment, self._segment = self._segment, None
        if segment is None:
            return
        try:
            segment.close()
        except BufferError:
            # A consumer kept a live view (e.g. a DBM array it is still
            # reading); park the segment so its mapping stays valid and
            # its destructor never races the export.
            _DEFERRED_CLOSE.append(segment)

    def __del__(self) -> None:  # best effort; release() is the real path
        try:
            self.release()
        except Exception:
            pass


class _Blob:
    """Protocol-5 wrapper routing a ``bytes`` payload out-of-band.

    Plain ``bytes``/``str`` always pickle *in-band* (only objects
    exposing the buffer protocol through ``PickleBuffer`` go
    out-of-band), so a large job source would ride the pickle body no
    matter what lane the envelope picks.  Wrapping it in a ``_Blob``
    hands the bytes to the buffer lanes: over shared memory the text is
    written once by the sender and materialised once by the receiver.
    """

    __slots__ = ("_data",)

    def __init__(self, data) -> None:
        self._data = data

    def bytes(self) -> bytes:
        data = self._data
        return data if isinstance(data, bytes) else bytes(data)

    def __reduce_ex__(self, protocol):
        if protocol >= 5:
            return (_Blob, (pickle.PickleBuffer(self._data),))
        return (_Blob, (self.bytes(),))


# ----------------------------------------------------------------------
# sender side (worker results, parent job submissions)
# ----------------------------------------------------------------------
def send_payload(conn, payload: object, *, segment: Optional[str] = None,
                 count_prefix: Optional[str] = None) -> None:
    """Ship ``payload`` over ``conn``: protocol-5 body + buffer lanes.

    ``segment`` names the shared-memory segment should the zero-copy
    lane engage; the default is the worker-result name
    ``repro_shm_<parent pid>_<own pid>``.  With ``count_prefix`` the
    *sender* bumps ``<prefix>bytes_shipped``/``<prefix>bytes_zero_copy``
    /``<prefix>shm_blocks_created`` -- used by the submission lane,
    whose receiver (the worker) cannot report counters back.
    """
    buffers: List[pickle.PickleBuffer] = []
    body = pickle.dumps(payload, protocol=5, buffer_callback=buffers.append)
    raws = [buf.raw() for buf in buffers]
    total = sum(raw.nbytes for raw in raws)
    if _ZERO_COPY and 0 < total and total >= SHM_THRESHOLD:
        name = (segment if segment is not None
                else segment_name(os.getppid(), os.getpid()))
        try:
            seg = shared_memory.SharedMemory(name=name, create=True,
                                             size=total)
        except (FileExistsError, OSError):
            seg = None  # pid-reuse collision or no /dev/shm: inline lane
        if seg is not None:
            # The worker exits right after this send; stop its resource
            # tracker from unlinking the segment out from under the
            # parent's attach.
            try:
                resource_tracker.unregister(seg._name, "shared_memory")
            except Exception:
                pass
            offset = 0
            lengths = []
            for raw in raws:
                seg.buf[offset:offset + raw.nbytes] = raw
                offset += raw.nbytes
                lengths.append(raw.nbytes)
            for buf in buffers:
                buf.release()
            try:
                wire = pickle.dumps(("shm", name, lengths, body), protocol=5)
                conn.send_bytes(wire)
            except BaseException:
                # The receiver will never attach; reclaim the name now.
                # Low-level unlink: ``seg.unlink()`` would also send the
                # tracker an unregister for a name we already unregistered.
                _raw_unlink(seg._name)
                raise
            finally:
                seg.close()
            if count_prefix is not None:
                _COUNTS[count_prefix + "bytes_shipped"] += len(wire)
                _COUNTS[count_prefix + "bytes_zero_copy"] += total
                _COUNTS[count_prefix + "shm_blocks_created"] += 1
            return
    # The envelope itself must pickle, and memoryviews do not: the
    # inline lane materialises each buffer once (the copy the shm lane
    # exists to avoid) and ships them beside the body.
    envelope = pickle.dumps(("inline", body, [bytes(raw) for raw in raws]),
                            protocol=5)
    for buf in buffers:
        buf.release()
    conn.send_bytes(envelope)
    if count_prefix is not None:
        _COUNTS[count_prefix + "bytes_shipped"] += len(envelope)


def wrap_job(job, ctx=None) -> tuple:
    """Envelope one job for the submission lane.

    Large source text is wrapped in a :class:`_Blob` so it rides the
    zero-copy buffer lanes instead of the pickle body; small jobs pass
    through untouched.  ``ctx`` (a :class:`~repro.obs.trace.TraceContext`
    or ``None``) rides as a trailing envelope element so the serve
    supervisor's trace identity crosses the pipe with the job it
    belongs to.  The wrapped form is opaque -- feed it to
    :func:`unwrap_job`/:func:`unwrap_job_ctx` (or embed it in a larger
    payload shipped with :func:`send_payload`, as the serve supervisor
    does).
    """
    source = getattr(job, "source", None)
    if isinstance(source, str) and len(source) >= JOB_BLOB_THRESHOLD:
        stripped = dataclasses.replace(job, source="")
        envelope = ("src-blob", stripped, _Blob(source.encode("utf-8")))
    else:
        envelope = ("plain", job)
    if ctx is not None:
        envelope = envelope + (ctx,)
    return envelope


def unwrap_job(payload: tuple):
    """Reconstitute a job from its :func:`wrap_job` envelope."""
    return unwrap_job_ctx(payload)[0]


def unwrap_job_ctx(payload: tuple):
    """Reconstitute ``(job, trace context)`` from a job envelope.

    The context element is optional on the wire (ctx-free senders emit
    the bare two/three-element envelope), so both forms decode here.
    """
    if payload[0] == "src-blob":
        job, blob = payload[1], payload[2]
        ctx = payload[3] if len(payload) > 3 else None
        return (dataclasses.replace(job,
                                    source=blob.bytes().decode("utf-8")),
                ctx)
    return payload[1], (payload[2] if len(payload) > 2 else None)


def send_job(conn, job, *, worker_pid: int,
             parent_pid: Optional[int] = None) -> None:
    """Submit ``job`` to a worker over its job pipe (parent side).

    Large source text is wrapped in a :class:`_Blob` so submission
    shares the zero-copy buffer lanes with results; the segment name is
    the ``_job``-suffixed twin of the result segment, keyed on the
    *submitting* process (which under a ``spawn`` start method is not
    the worker's ``getppid`` view of the world -- hence explicit pids).
    """
    send_payload(conn, wrap_job(job),
                 segment=job_segment_name(parent_pid or os.getpid(),
                                          worker_pid),
                 count_prefix="job_")


def recv_job(conn):
    """Receive one submitted job (worker side of the job pipe)."""
    payload, arena = recv_payload(conn, count=False)
    try:
        return unwrap_job(payload)
    finally:
        if arena is not None:
            arena.release()


# ----------------------------------------------------------------------
# receiver side
# ----------------------------------------------------------------------
def recv_payload(conn, *, count: bool = True) -> Tuple[object, Optional[ShmArena]]:
    """Receive one envelope; returns ``(payload, arena)``.

    ``arena`` is ``None`` on the inline lane.  On the shared-memory
    lane the segment is unlinked *before* this function returns (step 2
    of the lifetime protocol); the returned arena is the only thing
    keeping the payload's buffers mapped.  ``count=False`` skips the
    receive-side counters -- the submission lane counts on the sender,
    where the batch summary lives.
    """
    _retry_deferred_close()
    wire = conn.recv_bytes()
    if count:
        _COUNTS["bytes_shipped"] += len(wire)
    envelope = pickle.loads(wire)
    if envelope[0] == "inline":
        _, body, raws = envelope
        return pickle.loads(body, buffers=raws), None
    _, name, lengths, body = envelope
    if count:
        _COUNTS["shm_blocks_created"] += 1
    # Attaching registers the segment with this process's resource
    # tracker (CPython registers on attach, not only on create); the
    # unlink below sends the matching unregister, so no extra tracker
    # bookkeeping is needed here.
    seg = shared_memory.SharedMemory(name=name)
    if count:
        _COUNTS["shm_blocks_attached"] += 1
    views: List[memoryview] = []
    offset = 0
    for length in lengths:
        views.append(seg.buf[offset:offset + length])
        offset += length
        if count:
            _COUNTS["bytes_zero_copy"] += length
    payload = pickle.loads(body, buffers=views)
    # Unlink immediately: the attached mapping (held by the arena)
    # survives; the *name* can no longer leak whatever happens next.
    try:
        seg.unlink()
    except FileNotFoundError:
        pass
    return payload, ShmArena(seg, views)


# ----------------------------------------------------------------------
# janitors
# ----------------------------------------------------------------------
def _raw_unlink(tracked_name: str) -> None:
    """``shm_unlink`` without resource-tracker traffic (see callers)."""
    try:
        from _posixshmem import shm_unlink
    except ImportError:
        return
    try:
        shm_unlink(tracked_name)
    except FileNotFoundError:
        pass


def _unlink_segment(name: str) -> bool:
    try:
        seg = shared_memory.SharedMemory(name=name)
    except (FileNotFoundError, OSError):
        return False
    try:
        seg.unlink()  # attach registered it; unlink unregisters
    finally:
        seg.close()
    _COUNTS["shm_blocks_swept"] += 1
    events.warning("shm_segment_swept", segment=name)
    return True


def sweep_worker(worker_pid: Optional[int],
                 parent_pid: Optional[int] = None) -> bool:
    """Reclaim the segment of one dead/killed worker, if it left one.

    Called by the scheduler whenever a worker dies without delivering a
    result (kill, timeout, crash): the worker may have created its
    result segment and been killed inside the send window, or died
    before attaching the submission segment the parent created for it.
    """
    if worker_pid is None:
        return False
    parent = parent_pid or os.getpid()
    swept = _unlink_segment(segment_name(parent, worker_pid))
    swept = _unlink_segment(job_segment_name(parent, worker_pid)) or swept
    return swept


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True  # exists, owned by someone else
    except OSError:
        return False
    return True


def sweep_orphans(shm_dir: str = "/dev/shm") -> int:
    """Reclaim every segment whose creating batch no longer runs.

    Scans the POSIX shm directory for this module's deterministic names
    and unlinks any whose *parent* pid is dead (a previous batch that
    crashed) or equals this process (a previous batch in this process:
    by the time a new batch starts, no worker of ours is in flight).
    Returns the number of segments reclaimed; a no-op where the shm
    filesystem is not exposed as a directory.
    """
    try:
        entries = os.listdir(shm_dir)
    except OSError:
        return 0
    swept = 0
    for entry in entries:
        match = _SEG_RE.match(entry)
        if match is None:
            continue
        parent_pid = int(match.group(1))
        if parent_pid == os.getpid() or not _pid_alive(parent_pid):
            if _unlink_segment(entry):
                swept += 1
    return swept
