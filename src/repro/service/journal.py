"""Crash-resumable batches: an append-only journal of finished jobs.

A batch over many programs can die halfway -- OOM-killer, SIGKILL, a
power cut -- with hours of finished work lost, because results only
existed in the parent's memory (the persistent cache stores ``ok``
results, but not ``degraded``/``timeout``/``error`` ones, and may be
disabled or cold).  The journal closes that gap:

* :func:`run_batch <repro.service.scheduler.run_batch>` appends one
  JSON line per *finished* job -- every final outcome, in completion
  order -- and flushes + fsyncs each line, so the journal is exactly as
  complete as the work actually done;
* ``python -m repro batch --resume`` loads the journal before
  scheduling: jobs whose key already has a line are served from it
  (marked ``resumed=True``) and only unfinished jobs re-run;
* a process killed *mid-write* leaves a dangling partial last line;
  :meth:`BatchJournal.load` tolerates exactly that -- undecodable
  lines are dropped (counted as ``journal_torn_lines``), never fatal;
* starting the same batch *fresh* (no ``--resume``) atomically rotates
  a leftover journal aside (``.bak``) instead of appending to it.

Identity: the default journal path is keyed by the batch's content --
the SHA-256 over the sorted job keys -- so "the same batch" resumes
and "a different batch" gets a different file, with no coordination.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Dict, Optional, Sequence

from ..core import stats
from ..core.serialize import job_result_from_dict, job_result_to_dict
from ..obs import metrics
from .cache import default_cache_root
from .job import AnalysisJob, JobResult

metrics.REGISTRY.counter("journal_records",
                         "Finished jobs appended to the batch journal")
metrics.REGISTRY.counter("journal_torn_lines",
                         "Undecodable journal lines dropped on load")
metrics.REGISTRY.counter("journal_rotations",
                         "Leftover journals rotated aside (.bak)")


def batch_id(jobs: Sequence[AnalysisJob]) -> str:
    """Content-addressed identity of a batch: hash of its job keys.

    Order-insensitive: the same set of jobs is the same batch however
    the caller enumerates it.
    """
    digest = hashlib.sha256()
    for key in sorted(job.key() for job in jobs):
        digest.update(key.encode("ascii"))
        digest.update(b"\n")
    return digest.hexdigest()[:16]


class BatchJournal:
    """Append-only JSONL record of finished jobs for one batch."""

    def __init__(self, path) -> None:
        self.path = Path(path)
        self._fh = None
        self.records = 0
        self.torn_lines = 0

    @classmethod
    def for_jobs(cls, jobs: Sequence[AnalysisJob],
                 root: Optional[str] = None) -> "BatchJournal":
        """The default journal for this batch, under the cache root."""
        base = Path(root if root is not None else default_cache_root())
        return cls(base / "journals" / f"{batch_id(jobs)}.jsonl")

    # ------------------------------------------------------------------
    # reading (resume)
    # ------------------------------------------------------------------
    def load(self) -> Dict[str, JobResult]:
        """Finished jobs recorded so far, keyed by job key.

        Tolerates the torn tail a mid-write crash leaves behind: any
        line that fails to decode is skipped (and counted), because a
        lost last record only costs re-running one job.  Later lines
        win when a key repeats (a retry after a previous torn run).
        """
        done: Dict[str, JobResult] = {}
        try:
            with open(self.path, encoding="utf-8") as fh:
                lines = fh.read().splitlines()
        except FileNotFoundError:
            return done
        except OSError:
            return done
        for line in lines:
            if not line.strip():
                continue
            try:
                entry = json.loads(line)
                result = job_result_from_dict(entry["result"])
                key = str(entry["key"])
            except (ValueError, KeyError, TypeError):
                self.torn_lines += 1
                stats.bump("journal_torn_lines")
                continue
            done[key] = result
        return done

    # ------------------------------------------------------------------
    # writing
    # ------------------------------------------------------------------
    def record(self, result: JobResult) -> None:
        """Append one finished job; durable before returning."""
        if self._fh is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = open(self.path, "a", encoding="utf-8")
        line = json.dumps({"key": result.key,
                           "result": job_result_to_dict(result)},
                          separators=(",", ":"))
        self._fh.write(line + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())
        self.records += 1
        stats.bump("journal_records")

    def rotate(self) -> Optional[Path]:
        """Atomically move a leftover journal aside; returns the backup
        path if one was rotated.

        Called when a batch starts *fresh*: stale records must not leak
        into the new run, but are kept (one generation) for forensics.
        """
        if self._fh is not None:
            raise RuntimeError("cannot rotate an open journal")
        backup = self.path.with_suffix(".jsonl.bak")
        try:
            os.replace(self.path, backup)
        except FileNotFoundError:
            return None
        except OSError:
            return None
        stats.bump("journal_rotations")
        return backup

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "BatchJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


__all__ = ["BatchJournal", "batch_id"]
