"""The batch job model: content-addressed jobs, structured results.

An :class:`AnalysisJob` is everything needed to reproduce one analysis:
the source text plus the analyzer options that influence its outcome.
Its :meth:`~AnalysisJob.key` is the SHA-256 of the source and the
*normalised* options, so two jobs with the same semantics share a key
regardless of option ordering or tuple-vs-list spelling -- the property
the persistent result cache relies on.

A :class:`JobResult` is deliberately dumb data: strings, floats, bools,
lists and dicts only.  It crosses process boundaries by pickling (the
scheduler's workers ship it back over a pipe) and round-trips through
JSON (:func:`repro.core.serialize.job_result_to_dict`), which is the
single schema shared by cache entries and ``--json`` output.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

OUTCOME_OK = "ok"
#: The analysis completed, but only after descending the precision
#: ladder (or synthesizing top states) because a resource budget ran
#: out.  The verdicts are sound; some checks are unknown instead of
#: verified.
OUTCOME_DEGRADED = "degraded"
OUTCOME_TIMEOUT = "timeout"
OUTCOME_ERROR = "error"

OUTCOMES = (OUTCOME_OK, OUTCOME_DEGRADED, OUTCOME_TIMEOUT, OUTCOME_ERROR)

#: Outcomes that carry a sound analysis answer (vs. no answer at all).
COMPLETED_OUTCOMES = (OUTCOME_OK, OUTCOME_DEGRADED)


@dataclass(frozen=True)
class AnalysisJob:
    """One unit of batch work: a source program plus analyzer options."""

    source: str
    label: str = ""
    domain: str = "octagon"
    widening_delay: int = 2
    narrowing_steps: int = 3
    widening_thresholds: Tuple[float, ...] = ()
    integer_mode: bool = True
    compile_transfer: bool = True
    #: Per-procedure-attempt resource budgets (None = unbounded); see
    #: :class:`repro.core.budget.Budget` and the analyzer's degradation
    #: ladder.
    time_budget: Optional[float] = None
    iteration_budget: Optional[int] = None
    cell_budget: Optional[int] = None
    #: Sparsity threshold for the ``sparse-octagon`` domain's graph vs
    #: dense representation switch (``None`` = the domain default).
    #: Included in the cache key: it changes which representation (and
    #: therefore which code path) produced the result.
    sparse_threshold: Optional[float] = None
    #: Kernel backend request (``auto``/``numpy``/``numba``; None = the
    #: process default, i.e. ``REPRO_KERNEL_BACKEND`` or ``auto``).  The
    #: *resolved* name is what enters the cache key.
    kernel_backend: Optional[str] = None
    #: Ship per-procedure exit DBMs back with the result (the payload
    #: the zero-copy transport exists for).  Included in the cache key:
    #: it changes what the result contains.
    keep_invariants: bool = False
    #: Telemetry requested for this job's execution: any of ``"trace"``
    #: (record spans and ship them back with the result) and
    #: ``"metrics"`` (collect histogram distributions).  Observation
    #: only -- it cannot change the analysis result.
    telemetry: Tuple[str, ...] = ()

    def resolved_backend(self) -> str:
        """The concrete kernel backend this job will run under."""
        from ..core import kernels

        return kernels.resolve(self.kernel_backend)

    @classmethod
    def for_procedure(cls, proc, **options) -> "AnalysisJob":
        """A single-procedure job keyed by *canonical* source.

        The source is the pretty-printer's rendering of the procedure
        AST (:func:`repro.frontend.fingerprint.procedure_source`), so
        the job's :meth:`key` is a per-procedure content address:
        stable under formatting changes and edits to *other* procedures
        in the same file.  This is the cache granularity the analysis
        server works at -- the analyzer treats procedures
        independently, so the result of this job is bit-identical to
        the procedure's slice of a whole-file analysis.
        """
        from ..frontend.fingerprint import procedure_source

        options.setdefault("label", proc.name)
        return cls(source=procedure_source(proc), **options)

    def options(self) -> Dict[str, object]:
        """The analyzer options in normalised (JSON-stable) form.

        ``label`` is presentation only and deliberately excluded: the
        same program under the same options is the same job whatever a
        caller chooses to call it.  ``telemetry`` is excluded for the
        same reason -- watching an analysis must not change its cache
        key.  ``compile_transfer`` *is* included
        even though compiled and interpreted runs produce identical
        results: the cache key stays an honest description of how the
        result was computed.  The budgets are included too -- a tightly
        budgeted run can legitimately produce different (degraded)
        verdicts than an unbounded one, so they must not share a key.

        ``kernel_backend`` enters in *resolved* form (``auto`` is a
        request, not a computation): backends are differentially tested
        bit-identical, but like ``compile_transfer`` the key records
        how the result was actually produced.  ``keep_invariants``
        changes the result's *content* (it adds the exit DBMs), so it
        is a key component in the ordinary sense.
        """
        return {
            "domain": self.domain,
            "kernel_backend": self.resolved_backend(),
            "keep_invariants": bool(self.keep_invariants),
            "widening_delay": int(self.widening_delay),
            "narrowing_steps": int(self.narrowing_steps),
            "widening_thresholds": [float(t) for t in self.widening_thresholds],
            "integer_mode": bool(self.integer_mode),
            "compile_transfer": bool(self.compile_transfer),
            "time_budget": (None if self.time_budget is None
                            else float(self.time_budget)),
            "iteration_budget": (None if self.iteration_budget is None
                                 else int(self.iteration_budget)),
            "cell_budget": (None if self.cell_budget is None
                            else int(self.cell_budget)),
            "sparse_threshold": (None if self.sparse_threshold is None
                                 else float(self.sparse_threshold)),
        }

    def key(self) -> str:
        """Content-addressed identity: SHA-256 of source + options."""
        payload = json.dumps({"source": self.source, "options": self.options()},
                             sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclass
class CheckVerdict:
    """Outcome of one assertion, in plain-data form."""

    procedure: str
    cond_text: str
    verified: bool


@dataclass
class ProcedureSummary:
    """Exit invariant of one procedure: variable bounds as a box.

    Bounds use ``None`` for an infinite endpoint so the summary is
    JSON-clean; ``box`` entries are two-element ``[lo, hi]`` lists.
    """

    name: str
    variables: List[str]
    reachable: bool
    box: List[List[Optional[float]]]


@dataclass
class JobResult:
    """Structured outcome of one job: verdicts, bounds, timings, counters.

    ``outcome`` is the failure taxonomy: ``ok`` (analysis completed --
    which says nothing about whether its assertions were *proved*),
    ``timeout`` (the scheduler killed the worker at the deadline) or
    ``error`` (the analysis raised, or the worker died, beyond the
    retry budget).  ``cached`` marks results served from the persistent
    cache and is excluded from equality so a cache hit compares equal
    to the fresh result it stored.
    """

    key: str
    label: str
    domain: str
    outcome: str
    seconds: float = 0.0
    octagon_seconds: float = 0.0
    attempts: int = 1
    compile_transfer: bool = True
    error: Optional[str] = None
    checks: List[CheckVerdict] = field(default_factory=list)
    procedures: List[ProcedureSummary] = field(default_factory=list)
    counters: Dict[str, int] = field(default_factory=dict)
    #: Per-operator wall seconds (inclusive), self seconds (exclusive
    #: of nested operators -- these sum without overlap) and call
    #: counts, from the job's stats collector.
    op_seconds: Dict[str, float] = field(default_factory=dict)
    op_self_seconds: Dict[str, float] = field(default_factory=dict)
    op_calls: Dict[str, int] = field(default_factory=dict)
    #: Histogram snapshots (``repro.obs.metrics.HistogramData.to_dict``
    #: keyed by series), present when the job ran with metrics on.
    histograms: Dict[str, Dict] = field(default_factory=dict)
    #: Per-procedure domain that actually produced the invariants; a
    #: value below ``domain`` marks a ladder descent, ``"<top>"`` a
    #: full fall-through to synthesized top states.
    rungs: Dict[str, str] = field(default_factory=dict)
    #: The concrete kernel backend the worker computed with.
    kernel_backend: str = "numpy"
    #: Per-procedure exit DBMs (coherent ``float64`` matrices), present
    #: when the job ran with ``keep_invariants``.  Excluded from
    #: equality and from the JSON schema: array payloads ride the
    #: worker pipe (ideally zero-copy) but are not part of the portable
    #: result document.
    dbms: Dict[str, object] = field(default_factory=dict, compare=False)
    cached: bool = field(default=False, compare=False)
    #: Served from a batch journal during ``--resume`` (like ``cached``,
    #: excluded from equality).
    resumed: bool = field(default=False, compare=False)
    #: Chrome trace events recorded in the executing process.  Ships
    #: over the worker pipe (pickle) so the scheduler can re-parent the
    #: spans onto the job's lane; deliberately *not* part of the JSON
    #: schema or equality -- telemetry is not part of the result.
    trace_events: List[dict] = field(default_factory=list, compare=False)
    #: Shared-memory arena backing ``dbms`` (and any other out-of-band
    #: buffer) when this result arrived over the zero-copy transport.
    #: Parent-side bookkeeping only; the cache and journal go through
    #: the JSON schema, which excludes it (and ``dbms``).
    shm_arena: object = field(default=None, compare=False, repr=False)

    @property
    def ok(self) -> bool:
        return self.outcome == OUTCOME_OK

    @property
    def completed(self) -> bool:
        """The job produced a sound answer (``ok`` or ``degraded``)."""
        return self.outcome in COMPLETED_OUTCOMES

    @property
    def checks_total(self) -> int:
        return len(self.checks)

    @property
    def checks_verified(self) -> int:
        return sum(1 for c in self.checks if c.verified)

    @property
    def all_verified(self) -> bool:
        """True iff the analysis completed and proved every assertion."""
        return self.completed and all(c.verified for c in self.checks)

    def verdicts(self) -> List[Tuple[str, str, bool]]:
        """The assertion verdicts as comparable plain tuples."""
        return [(c.procedure, c.cond_text, c.verified) for c in self.checks]


def _bound(value: float) -> Optional[float]:
    from ..core.bounds import INF

    if value == INF or value == -INF:
        return None
    return float(value)


def execute_job(job: AnalysisJob) -> JobResult:
    """Run one job to completion in the current process.

    This is the scheduler's default worker; exceptions propagate so the
    scheduler can apply its retry/error policy.  A fresh stats
    collector scopes the hot-path memory counters to this job.
    """
    from contextlib import nullcontext

    from ..analysis.analyzer import Analyzer
    from ..core import kernels, stats
    from ..obs import trace
    from ..testing import faults

    if faults.fire("worker_kill", job.label):
        faults.kill_process()

    backend = kernels.use(job.kernel_backend)
    analyzer = Analyzer(
        domain=job.domain,
        widening_delay=job.widening_delay,
        narrowing_steps=job.narrowing_steps,
        widening_thresholds=job.widening_thresholds,
        integer_mode=job.integer_mode,
        compile_transfer=job.compile_transfer,
        time_budget=job.time_budget,
        iteration_budget=job.iteration_budget,
        cell_budget=job.cell_budget,
        sparse_threshold=job.sparse_threshold,
    )
    # Spans are recorded into a fresh session buffer: a forked worker
    # inherits the parent's buffer, so without the swap a job would ship
    # every event the parent had recorded before the fork.  The same
    # path runs inline (workers=1), where the session keeps the job's
    # events out of the global buffer for the scheduler to re-parent.
    session = (trace.session()
               if trace.enabled() or "trace" in job.telemetry
               else None)
    with session if session is not None else nullcontext():
        with stats.collecting() as collector:
            if "metrics" in job.telemetry:
                collector.histograms_enabled = True
            result = analyzer.analyze(job.source)

    checks = [CheckVerdict(c.procedure, c.cond_text, c.verified)
              for c in result.checks]
    procedures: List[ProcedureSummary] = []
    dbms: Dict[str, object] = {}
    for proc in result.procedures:
        state = proc.invariant_at_exit()
        reachable = not state.is_bottom()
        box: List[List[Optional[float]]] = []
        if reachable:
            box = [[_bound(lo), _bound(hi)] for lo, hi in state.to_box()]
            if job.keep_invariants:
                mat = getattr(state, "mat", None)
                if mat is not None:
                    # A private contiguous copy: the state's matrix may be
                    # a COW-shared page the analyzer still owns.
                    dbms[proc.name] = mat.copy()
        procedures.append(ProcedureSummary(
            name=proc.name,
            variables=list(proc.cfg.variables),
            reachable=reachable,
            box=box,
        ))
    counters = dict(collector.counter_summary())
    counters["closures"] = int(collector.closure_stats()["closures"])
    rungs = {proc.name: ("<top>" if proc.exhausted else proc.domain_used)
             for proc in result.procedures if proc.degraded}
    return JobResult(
        key=job.key(),
        label=job.label,
        domain=job.domain,
        outcome=OUTCOME_DEGRADED if result.degraded else OUTCOME_OK,
        seconds=result.seconds,
        octagon_seconds=collector.total_seconds + collector.closure_seconds,
        compile_transfer=job.compile_transfer,
        checks=checks,
        procedures=procedures,
        counters=counters,
        op_seconds=dict(collector.op_seconds),
        op_self_seconds=dict(collector.op_self_seconds),
        op_calls=dict(collector.op_calls),
        histograms=collector.histograms_export(),
        rungs=rungs,
        kernel_backend=backend,
        dbms=dbms,
        trace_events=session.events if session is not None else [],
    )


def jobs_from_files(paths: Sequence[str], **options) -> List[AnalysisJob]:
    """Build one job per source file, labelled with the file path."""
    jobs = []
    for path in paths:
        with open(path) as fh:
            jobs.append(AnalysisJob(source=fh.read(), label=str(path), **options))
    return jobs
