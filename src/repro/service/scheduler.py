"""Work queue + process workers with timeouts, retries and a cache.

:func:`run_batch` is the service's execution engine.  Design points:

* **One process per job, bounded concurrency.**  Jobs are short
  analyses; recycling long-lived pool workers would save fork cost but
  make per-job wall-clock timeouts messy (killing a pool worker kills
  its queue).  A dedicated process per job means a timeout is just
  ``terminate()`` -- sibling jobs never notice, which is the graceful
  degradation the paper-style batch needs when one benchmark is
  pathological.  At most ``workers`` processes run at once.
* **Failure taxonomy.**  A job that exceeds ``timeout`` seconds is
  killed and reported ``outcome="timeout"`` (not retried: the same
  input would time out again).  A worker that raises, or dies without
  reporting (segfault, OOM-kill), is retried up to ``retries`` times
  and then reported ``outcome="error"`` with the traceback or exit
  code.  The batch itself always completes with one result per job, in
  input order.
* **Inline mode.**  ``workers=1`` runs every job in the calling
  process -- no fork, deterministic output ordering, breakpoints work.
  Timeouts are not enforced inline (there is no one to do the
  killing); retries still apply.  Tests assert that inline and
  parallel runs produce identical verdicts and bounds.
* **Cache short-circuit.**  With a :class:`ResultCache`, each job's
  key is looked up before any process is spawned; hits come back
  ``cached=True`` and only misses are scheduled.  Completed ``ok``
  results are stored as they arrive, so even an interrupted batch
  warms the cache.

The start method prefers ``fork`` (cheap, no pickling of the worker
callable) and falls back to the platform default where fork is
unavailable; custom ``worker`` callables must be module-level (or
otherwise picklable) to support the fallback.
"""

from __future__ import annotations

import multiprocessing
import os
import time
import traceback
from dataclasses import dataclass, field
from multiprocessing import connection as mp_connection
from typing import Callable, Dict, List, Optional, Sequence

from ..errors import WorkerDied
from ..obs import events, trace
from . import transport
from .cache import ResultCache
from .job import (
    OUTCOME_ERROR,
    OUTCOME_OK,
    OUTCOME_TIMEOUT,
    AnalysisJob,
    JobResult,
    execute_job,
)
from .journal import BatchJournal

#: Grace period for ``join()`` after ``terminate()`` before escalating.
_KILL_GRACE_S = 5.0


@dataclass
class BatchResult:
    """One completed batch: per-job results (input order) + totals."""

    results: List[JobResult]
    wall_seconds: float
    workers: int
    cache_hits: int = 0
    cache_misses: int = 0
    #: Jobs served from the batch journal during ``--resume``.
    resumed: int = 0
    #: Parent-side transport counter deltas for this batch
    #: (``bytes_shipped``, ``bytes_zero_copy``, ``shm_blocks_*``) --
    #: measured where the pipes terminate, so they exist even for jobs
    #: whose workers died mid-ship.
    transport: Dict[str, int] = field(default_factory=dict)

    @property
    def all_ok(self) -> bool:
        return all(r.ok for r in self.results)

    @property
    def all_completed(self) -> bool:
        """Every job produced a sound answer (``ok`` or ``degraded``)."""
        return all(r.completed for r in self.results)

    @property
    def checks_total(self) -> int:
        return sum(r.checks_total for r in self.results)

    @property
    def checks_verified(self) -> int:
        return sum(r.checks_verified for r in self.results)

    def outcome_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for r in self.results:
            counts[r.outcome] = counts.get(r.outcome, 0) + 1
        return counts

    def counters(self) -> Dict[str, int]:
        """Hot-path counters summed over all non-cached job results,
        plus the batch's parent-side transport counters."""
        total: Dict[str, int] = {}
        for r in self.results:
            if r.cached:
                continue
            for name, value in r.counters.items():
                total[name] = total.get(name, 0) + value
        for name, value in self.transport.items():
            total[name] = total.get(name, 0) + value
        return total

    def op_timings(self) -> Dict[str, Dict]:
        """Per-operator timing decomposition summed over the jobs that
        actually executed this run (cached results are prior work)."""
        seconds: Dict[str, float] = {}
        self_seconds: Dict[str, float] = {}
        calls: Dict[str, int] = {}
        for r in self.results:
            if r.cached:
                continue
            for name, value in r.op_seconds.items():
                seconds[name] = seconds.get(name, 0.0) + value
            for name, value in r.op_self_seconds.items():
                self_seconds[name] = self_seconds.get(name, 0.0) + value
            for name, value in r.op_calls.items():
                calls[name] = calls.get(name, 0) + value
        return {"op_seconds": seconds, "op_self_seconds": self_seconds,
                "op_calls": calls}

    def merged_histograms(self) -> Dict[str, Dict]:
        """Histogram snapshots merged across non-cached job results."""
        from ..obs import metrics
        merged = metrics.merge_histogram_dicts(
            [r.histograms for r in self.results
             if not r.cached and r.histograms])
        return {key: data.to_dict() for key, data in merged.items()}


def default_workers() -> int:
    return os.cpu_count() or 1


def _context():
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


def _worker_main(job_conn, conn,
                 worker: Callable[[AnalysisJob], JobResult]) -> None:
    """Child-process entry: receive the job, run it, ship the outcome.

    The job arrives over its own pipe through the transport envelope
    (large source text rides the zero-copy lanes) instead of being
    pickled into the ``Process`` args -- submission and results share
    one wire format whatever the start method.
    """
    try:
        try:
            job = transport.recv_job(job_conn)
        finally:
            job_conn.close()
        result = worker(job)
        transport.send_payload(conn, ("ok", result))
    except BaseException:
        try:
            transport.send_payload(conn, ("raised", traceback.format_exc()))
        except (OSError, ValueError):
            pass
    finally:
        conn.close()


def _timeout_result(job: AnalysisJob, timeout: float, attempt: int) -> JobResult:
    return JobResult(key=job.key(), label=job.label, domain=job.domain,
                     outcome=OUTCOME_TIMEOUT, seconds=float(timeout),
                     attempts=attempt,
                     error=f"exceeded {timeout:g}s wall-clock timeout")


def _error_result(job: AnalysisJob, message: str, attempt: int) -> JobResult:
    return JobResult(key=job.key(), label=job.label, domain=job.domain,
                     outcome=OUTCOME_ERROR, attempts=attempt, error=message)


@dataclass
class _Running:
    proc: object
    idx: int
    attempt: int
    deadline: Optional[float]
    started: float = field(default_factory=time.monotonic)
    #: ``perf_counter`` at launch, for the job's trace span.  On Linux
    #: ``perf_counter`` is CLOCK_MONOTONIC, one epoch per boot, so this
    #: is directly comparable with timestamps the forked worker records.
    perf_started: float = field(default_factory=time.perf_counter)


def _trace_job(job: AnalysisJob, result: JobResult,
               started: float, ended: float) -> None:
    """Give a finished job its own lane in the parent's trace.

    The job span is emitted from parent-side measurements (it exists
    even when the worker died or timed out), and any spans the worker
    shipped back in ``result.trace_events`` are re-parented onto the
    same lane, where they nest under the job span by time containment.
    """
    if not trace.enabled():
        return
    lane = trace.new_lane(f"job {job.label or job.key()[:8]}")
    trace.emit("job", started, ended, tid=lane,
               args={"label": job.label, "outcome": result.outcome,
                     "attempts": result.attempts})
    if result.trace_events:
        trace.adopt(result.trace_events, lane)


def run_batch(
    jobs: Sequence[AnalysisJob],
    *,
    workers: Optional[int] = None,
    timeout: Optional[float] = None,
    retries: int = 1,
    cache: Optional[ResultCache] = None,
    journal: Optional[BatchJournal] = None,
    resume: bool = False,
    worker: Callable[[AnalysisJob], JobResult] = execute_job,
) -> BatchResult:
    """Run ``jobs`` through the service; one result per job, in order.

    ``workers=None`` uses :func:`default_workers` (``os.cpu_count()``),
    capped at the number of jobs.  ``retries`` is the number of *extra*
    attempts granted after a worker raises or dies; timeouts are final.

    With a ``journal``, every finished job is appended durably as it
    completes.  ``resume=True`` first serves jobs already journalled by
    a previous (killed) run of the same batch; ``resume=False`` rotates
    any stale journal aside and starts fresh.
    """
    jobs = list(jobs)
    if workers is None:
        workers = default_workers()
    workers = max(1, min(int(workers), max(len(jobs), 1)))
    start = time.perf_counter()

    results: List[Optional[JobResult]] = [None] * len(jobs)
    cache_hits = cache_misses = resumed = 0
    done = {}
    if journal is not None:
        if resume:
            done = journal.load()
        else:
            journal.rotate()
    pending: List[int] = []
    for idx, job in enumerate(jobs):
        key = job.key()
        prior = done.get(key)
        if prior is not None:
            prior.resumed = True
            results[idx] = prior
            resumed += 1
            continue
        if cache is not None:
            hit = cache.get(key)
            if hit is not None:
                results[idx] = hit
                cache_hits += 1
                # Journal cache hits too: resume must not depend on the
                # cache still being present (or enabled) later.
                if journal is not None:
                    journal.record(hit)
                continue
            cache_misses += 1
        pending.append(idx)

    events.info("batch_start", jobs=len(jobs), scheduled=len(pending),
                workers=workers, cache_hits=cache_hits, resumed=resumed)
    transport.sweep_orphans()
    transport_before = transport.transport_counters()
    with trace.span("batch", jobs=len(jobs), workers=workers):
        try:
            if workers == 1:
                _run_inline(jobs, pending, results, retries=retries,
                            cache=cache, journal=journal, worker=worker)
            else:
                _run_pool(jobs, pending, results, workers=workers,
                          timeout=timeout, retries=retries, cache=cache,
                          journal=journal, worker=worker)
        finally:
            if journal is not None:
                journal.close()

    assert all(r is not None for r in results)
    transport_after = transport.transport_counters()
    batch = BatchResult(results=list(results),
                        wall_seconds=time.perf_counter() - start,
                        workers=workers,
                        cache_hits=cache_hits, cache_misses=cache_misses,
                        resumed=resumed,
                        transport={name: transport_after[name] - before
                                   for name, before in transport_before.items()})
    events.info("batch_done", wall_seconds=round(batch.wall_seconds, 6),
                **batch.outcome_counts())
    return batch


def _store(cache: Optional[ResultCache], journal: Optional[BatchJournal],
           job: AnalysisJob, result: JobResult) -> None:
    """Persist one finished job: cache (``ok`` only) + journal (all)."""
    if cache is not None and result.outcome == OUTCOME_OK:
        cache.put(job.key(), result)
    if journal is not None:
        journal.record(result)


def _run_inline(jobs, pending, results, *, retries, cache, journal,
                worker) -> None:
    """``workers=1``: execute in the calling process, no fork."""
    for idx in pending:
        job = jobs[idx]
        attempt = 1
        events.debug("job_start", label=job.label, attempt=attempt)
        started = time.perf_counter()
        while True:
            try:
                result = worker(job)
                result.attempts = attempt
                break
            except Exception:
                if attempt <= retries:
                    attempt += 1
                    events.warning("job_retry", label=job.label,
                                   attempt=attempt)
                    continue
                result = _error_result(job, traceback.format_exc(), attempt)
                break
        _trace_job(job, result, started, time.perf_counter())
        events.info("job_done", label=job.label, outcome=result.outcome,
                    attempts=result.attempts,
                    seconds=round(result.seconds, 6))
        results[idx] = result
        _store(cache, journal, job, result)


def _run_pool(jobs, pending, results, *, workers, timeout, retries, cache,
              journal, worker) -> None:
    """Bounded process fan-out with per-job deadlines."""
    ctx = _context()
    queue = [(idx, 1) for idx in pending]  # (job index, attempt number)
    queue.reverse()  # pop() from the end keeps input order
    running: Dict[object, _Running] = {}  # recv conn -> bookkeeping

    def launch(idx: int, attempt: int) -> None:
        recv_conn, send_conn = ctx.Pipe(duplex=False)
        job_recv, job_send = ctx.Pipe(duplex=False)
        proc = ctx.Process(target=_worker_main,
                           args=(job_recv, send_conn, worker), daemon=True)
        events.debug("job_start", label=jobs[idx].label, attempt=attempt)
        proc.start()
        send_conn.close()
        job_recv.close()
        deadline = None if timeout is None else time.monotonic() + timeout
        running[recv_conn] = _Running(proc, idx, attempt, deadline)
        try:
            transport.send_job(job_send, jobs[idx], worker_pid=proc.pid)
        except (BrokenPipeError, OSError):
            # The worker died before reading its job; the sentinel path
            # reaps it and applies the normal retry policy.
            pass
        finally:
            job_send.close()

    def reap(conn, entry: _Running, result: JobResult) -> None:
        entry.proc.join()
        conn.close()
        del running[conn]
        _trace_job(jobs[entry.idx], result, entry.perf_started,
                   time.perf_counter())
        if result.outcome == OUTCOME_TIMEOUT:
            events.warning("job_timeout", label=jobs[entry.idx].label,
                           timeout=timeout, attempts=result.attempts)
        events.info("job_done", label=jobs[entry.idx].label,
                    outcome=result.outcome, attempts=result.attempts,
                    seconds=round(result.seconds, 6))
        results[entry.idx] = result
        _store(cache, journal, jobs[entry.idx], result)

    def retry_or_fail(conn, entry: _Running, message: str) -> None:
        entry.proc.join()
        conn.close()
        del running[conn]
        # A worker that died inside the send window may have created its
        # shared-memory segment without the parent ever attaching it.
        transport.sweep_worker(entry.proc.pid)
        if entry.attempt <= retries:
            events.warning("job_retry", label=jobs[entry.idx].label,
                           attempt=entry.attempt + 1,
                           error=message.strip().splitlines()[-1]
                           if message.strip() else message)
            queue.append((entry.idx, entry.attempt + 1))
        else:
            result = _error_result(jobs[entry.idx], message, entry.attempt)
            _trace_job(jobs[entry.idx], result, entry.perf_started,
                       time.perf_counter())
            events.error("job_failed", label=jobs[entry.idx].label,
                         attempts=entry.attempt,
                         error=message.strip().splitlines()[-1]
                         if message.strip() else message)
            results[entry.idx] = result
            _store(cache, journal, jobs[entry.idx], result)

    while queue or running:
        while queue and len(running) < workers:
            idx, attempt = queue.pop()
            launch(idx, attempt)

        deadlines = [r.deadline for r in running.values()
                     if r.deadline is not None]
        wait_for = None
        if deadlines:
            wait_for = max(0.0, min(deadlines) - time.monotonic())
        watch = []
        for conn, entry in running.items():
            watch.append(conn)
            watch.append(entry.proc.sentinel)
        ready = set(mp_connection.wait(watch, timeout=wait_for))

        now = time.monotonic()
        for conn, entry in list(running.items()):
            expired = entry.deadline is not None and now >= entry.deadline
            signalled = conn in ready or entry.proc.sentinel in ready
            if not (signalled or expired):
                continue
            if conn.poll():
                # The worker reported before exiting (possibly right at
                # the deadline -- a delivered result beats a timeout).
                try:
                    message, arena = transport.recv_payload(conn)
                    status, payload = message
                except EOFError:
                    entry.proc.join()
                    retry_or_fail(conn, entry,
                                  str(WorkerDied(entry.proc.exitcode)))
                    continue
                if status == "ok":
                    payload.attempts = entry.attempt
                    payload.shm_arena = arena
                    reap(conn, entry, payload)
                else:  # the worker raised; retry, then report the traceback
                    retry_or_fail(conn, entry, payload)
            elif not entry.proc.is_alive():
                retry_or_fail(
                    conn, entry,
                    str(WorkerDied(entry.proc.exitcode, stage="mid-job")))
            elif expired:
                entry.proc.terminate()
                entry.proc.join(_KILL_GRACE_S)
                if entry.proc.is_alive():
                    entry.proc.kill()
                    entry.proc.join()
                transport.sweep_worker(entry.proc.pid)
                reap(conn, entry,
                     _timeout_result(jobs[entry.idx], timeout, entry.attempt))
