"""Cross-backend differential validation: sparse vs dense octagons.

The graph-backed :class:`~repro.domains.sparse_octagon.SparseOctagon`
is differentially tested against the dense :class:`~repro.core.Octagon`
at the operator level (bitwise DBM equality under randomised traces),
but the property users actually rely on is end-to-end: *the same
program analyses to the same verdicts and the same bounds whichever
backend ran it*.  This module makes that property a first-class,
runnable mode (``python -m repro batch --cross-validate``): every job
is executed twice -- once per backend -- and the results are compared
field by field.

Comparison is exact, not approximate: verdict lists must be equal,
per-procedure reachability must agree and every interval endpoint must
be *identical* (the backends share the closure kernels and apply
operations in the same order, so agreement to the last bit is the
expectation; any drift is a bug, not noise).

Caches are deliberately bypassed: a differential run must measure what
the code computes today, and both executions happen in-process so the
per-job counters (closure cell traffic, peak DBM bytes) are collected
under identical conditions and can be reported side by side.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core import stats
from .job import AnalysisJob, JobResult, execute_job

DENSE_DOMAIN = "octagon"
SPARSE_DOMAIN = "sparse-octagon"


@dataclass
class ProgramValidation:
    """Outcome of one program's dense-vs-sparse comparison."""

    label: str
    dense: JobResult
    sparse: JobResult
    #: Human-readable descriptions of every disagreement (empty = match).
    mismatches: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.mismatches

    @property
    def sparsity(self) -> Optional[float]:
        """Peak sparsity ratio observed by the sparse run."""
        return stats.sparsity_ratio(self.sparse.counters)

    def cell_ratio(self) -> Optional[float]:
        """Dense / sparse closure cell traffic (>1 = sparse cheaper)."""
        dense = self.dense.counters.get("closure_cells", 0)
        sparse = self.sparse.counters.get("closure_cells", 0)
        return dense / sparse if sparse else None

    def peak_bytes_ratio(self) -> Optional[float]:
        """Dense / sparse peak DBM bytes (>1 = sparse smaller)."""
        dense = self.dense.counters.get("dbm_peak_bytes", 0)
        sparse = self.sparse.counters.get("dbm_peak_bytes", 0)
        return dense / sparse if sparse else None

    def to_dict(self) -> Dict:
        return {
            "label": self.label,
            "ok": self.ok,
            "mismatches": list(self.mismatches),
            "sparsity": self.sparsity,
            "cell_ratio": self.cell_ratio(),
            "peak_bytes_ratio": self.peak_bytes_ratio(),
            "dense_seconds": self.dense.seconds,
            "sparse_seconds": self.sparse.seconds,
            "dense_closure_cells": self.dense.counters.get("closure_cells", 0),
            "sparse_closure_cells": self.sparse.counters.get("closure_cells", 0),
            "dense_peak_bytes": self.dense.counters.get("dbm_peak_bytes", 0),
            "sparse_peak_bytes": self.sparse.counters.get("dbm_peak_bytes", 0),
        }


@dataclass
class CrossValidationReport:
    """All programs' comparisons plus rollups."""

    programs: List[ProgramValidation]

    @property
    def ok(self) -> bool:
        return all(p.ok for p in self.programs)

    @property
    def failures(self) -> List[ProgramValidation]:
        return [p for p in self.programs if not p.ok]

    def to_dict(self) -> Dict:
        return {
            "ok": self.ok,
            "programs": [p.to_dict() for p in self.programs],
        }


def compare_results(dense: JobResult, sparse: JobResult) -> List[str]:
    """Field-by-field comparison; returns disagreement descriptions."""
    mismatches: List[str] = []
    if dense.outcome != sparse.outcome:
        mismatches.append(
            f"outcome: dense={dense.outcome} sparse={sparse.outcome}")
        return mismatches  # downstream fields are incomparable
    if dense.verdicts() != sparse.verdicts():
        dv, sv = dense.verdicts(), sparse.verdicts()
        for d, s in zip(dv, sv):
            if d != s:
                mismatches.append(f"verdict: dense={d} sparse={s}")
        if len(dv) != len(sv):
            mismatches.append(
                f"verdict count: dense={len(dv)} sparse={len(sv)}")
    dprocs = {p.name: p for p in dense.procedures}
    sprocs = {p.name: p for p in sparse.procedures}
    if sorted(dprocs) != sorted(sprocs):
        mismatches.append(
            f"procedures: dense={sorted(dprocs)} sparse={sorted(sprocs)}")
        return mismatches
    for name, dp in dprocs.items():
        sp = sprocs[name]
        if dp.reachable != sp.reachable:
            mismatches.append(
                f"{name}: reachable dense={dp.reachable} "
                f"sparse={sp.reachable}")
            continue
        if dp.box != sp.box:
            for i, (db, sb) in enumerate(zip(dp.box, sp.box)):
                if db != sb:
                    var = (dp.variables[i]
                           if i < len(dp.variables) else f"v{i}")
                    mismatches.append(
                        f"{name}.{var}: bounds dense={db} sparse={sb}")
    return mismatches


def validate_job(job: AnalysisJob, *,
                 sparse_threshold: Optional[float] = None) -> ProgramValidation:
    """Run one program under both backends and compare.

    The job's own ``domain`` is ignored -- the comparison is always
    dense octagon vs sparse octagon, with every other option (widening,
    budgets, kernel backend) taken from the job unchanged so both runs
    see the identical configuration.
    """
    dense_job = dataclasses.replace(job, domain=DENSE_DOMAIN,
                                    sparse_threshold=None)
    sparse_job = dataclasses.replace(job, domain=SPARSE_DOMAIN,
                                     sparse_threshold=sparse_threshold)
    dense = execute_job(dense_job)
    sparse = execute_job(sparse_job)
    return ProgramValidation(
        label=job.label or job.key()[:12],
        dense=dense,
        sparse=sparse,
        mismatches=compare_results(dense, sparse),
    )


def cross_validate(jobs: List[AnalysisJob], *,
                   sparse_threshold: Optional[float] = None,
                   ) -> CrossValidationReport:
    """Differentially validate every job; see :func:`validate_job`."""
    return CrossValidationReport(
        [validate_job(job, sparse_threshold=sparse_threshold)
         for job in jobs])


__all__ = [
    "CrossValidationReport",
    "DENSE_DOMAIN",
    "ProgramValidation",
    "SPARSE_DOMAIN",
    "compare_results",
    "cross_validate",
    "validate_job",
]
