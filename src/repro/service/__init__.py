"""Batch analysis service: jobs, scheduler, persistent result cache.

The one-shot :class:`~repro.analysis.analyzer.Analyzer` answers a single
``analyze(source)`` call; production traffic looks like the paper's own
evaluation instead -- *many* independent programs (Table 3 runs 17
benchmarks end to end) whose mutual independence makes them
embarrassingly parallel and whose results are worth reusing across
runs.  This subsystem is that batch layer:

* :mod:`repro.service.job` -- the job model: an :class:`AnalysisJob`
  (source + domain + options) with a content-addressed key, and a
  structured, picklable :class:`JobResult` carrying verdicts, exit
  boxes, timings and the hot-path memory counters.
* :mod:`repro.service.scheduler` -- :func:`run_batch`: a work queue
  feeding one-process-per-job workers with bounded concurrency,
  per-job wall-clock timeouts, bounded retries for transient worker
  death, and an inline (no-fork) mode at ``workers=1``.
* :mod:`repro.service.cache` -- :class:`ResultCache`: a
  content-addressed JSON-on-disk store, version-stamped so stale
  entries self-invalidate.
* :mod:`repro.service.journal` -- :class:`BatchJournal`: an
  append-only, fsync'd JSONL record of finished jobs, making batches
  resumable after a mid-run kill (``python -m repro batch --resume``).
* :mod:`repro.service.suite` -- :func:`run_suite`: the whole
  17-benchmark suite through the service, the execution path shared by
  the CLI (``python -m repro batch``) and the benchmark harness.
"""

from .cache import ResultCache
from .job import AnalysisJob, CheckVerdict, JobResult, ProcedureSummary, execute_job
from .journal import BatchJournal, batch_id
from .scheduler import BatchResult, run_batch
from .suite import run_suite, suite_jobs
from .validate import CrossValidationReport, ProgramValidation, cross_validate

__all__ = [
    "AnalysisJob",
    "BatchJournal",
    "BatchResult",
    "CheckVerdict",
    "CrossValidationReport",
    "JobResult",
    "ProgramValidation",
    "ProcedureSummary",
    "ResultCache",
    "batch_id",
    "cross_validate",
    "execute_job",
    "run_batch",
    "run_suite",
    "suite_jobs",
]
