"""Thin client for the analysis server.

:class:`ServeClient` wraps one socket connection in the request/
response protocol; it is what ``python -m repro client`` and the tests
use.  The client is deliberately dumb -- no retries, no pooling -- so
its behaviour under failure is the protocol's behaviour, not a policy
layered on top.

:func:`wait_ready` polls until a freshly spawned daemon accepts
connections; CI and the tests use it instead of sleeping.
"""

from __future__ import annotations

import socket
import time
from typing import Optional

from .protocol import ProtocolError, recv_message, send_message
from .server import default_socket_path


class ServeError(RuntimeError):
    """The server answered with ``ok: false``."""


class ServeClient:
    """One connection to a running analysis server."""

    def __init__(self, socket_path: Optional[str] = None, *,
                 host: str = "127.0.0.1", port: Optional[int] = None,
                 timeout: Optional[float] = 60.0) -> None:
        if port is not None:
            self.address = (host, int(port))
            self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        else:
            self.address = (socket_path if socket_path is not None
                            else default_socket_path())
            self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self._sock.settimeout(timeout)
        self._sock.connect(self.address)

    # -- plumbing ------------------------------------------------------
    def request(self, message: dict) -> dict:
        """One round trip; raises :class:`ServeError` on ``ok: false``."""
        send_message(self._sock, message)
        response = recv_message(self._sock)
        if response is None:
            raise ProtocolError("server closed the connection")
        if not response.get("ok"):
            raise ServeError(response.get("error", "unknown server error"))
        return response

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- commands ------------------------------------------------------
    def ping(self) -> dict:
        return self.request({"cmd": "ping"})

    def analyze(self, source: str, *, label: str = "",
                options: Optional[dict] = None) -> dict:
        message = {"cmd": "analyze", "source": source, "label": label}
        if options:
            message["options"] = dict(options)
        return self.request(message)

    def status(self) -> dict:
        return self.request({"cmd": "status"})

    def stats(self) -> dict:
        return self.request({"cmd": "stats"})

    def metrics(self) -> str:
        return self.request({"cmd": "metrics"})["prometheus"]

    def shutdown(self) -> dict:
        return self.request({"cmd": "shutdown"})


def wait_ready(socket_path: Optional[str] = None, *,
               host: str = "127.0.0.1", port: Optional[int] = None,
               timeout: float = 10.0) -> None:
    """Block until the server answers a ping (or raise ``TimeoutError``)."""
    deadline = time.monotonic() + timeout
    last: Optional[Exception] = None
    while time.monotonic() < deadline:
        try:
            with ServeClient(socket_path, host=host, port=port,
                             timeout=2.0) as client:
                client.ping()
            return
        except (OSError, ProtocolError, ServeError) as exc:
            last = exc
            time.sleep(0.05)
    raise TimeoutError(f"server not ready after {timeout}s: {last}")


__all__ = ["ServeClient", "ServeError", "wait_ready"]
