"""Thin client for the analysis server.

:class:`ServeClient` wraps one socket connection in the request/
response protocol; it is what ``python -m repro client`` and the tests
use.  The client is deliberately thin -- the one policy it carries is
retry: transport faults (connection reset, server closed mid-reply)
reconnect and retry with jittered exponential backoff, and a
structured ``overloaded`` response is retried after the server's own
``retry_after_ms`` hint.  Every other ``ok: false`` raises
:class:`ServeError` immediately -- a parse error will not get better
by asking again.  ``retries=0`` restores the dumb client.

:func:`wait_ready` polls until a freshly spawned daemon accepts
connections; CI and the tests use it instead of sleeping.
"""

from __future__ import annotations

import random
import socket
import time
from typing import Optional

from .protocol import ProtocolError, recv_message, send_message
from .server import default_socket_path


class ServeError(RuntimeError):
    """The server answered with ``ok: false``.

    Carries the structured cause ``code``; for ``overloaded``
    responses, the server's ``retry_after_ms`` backoff hint; and the
    request's ``trace_id`` when the server assigned one -- the handle
    that finds the failing request in the daemon's slow-request log,
    ``/requestz`` ring and exported trace.
    """

    def __init__(self, message: str, *, code: str = "internal",
                 retry_after_ms: Optional[int] = None,
                 trace_id: Optional[str] = None) -> None:
        super().__init__(message)
        self.code = code
        self.retry_after_ms = retry_after_ms
        self.trace_id = trace_id


class ServeClient:
    """One connection to a running analysis server."""

    def __init__(self, socket_path: Optional[str] = None, *,
                 host: str = "127.0.0.1", port: Optional[int] = None,
                 timeout: Optional[float] = 60.0, retries: int = 2,
                 retry_base: float = 0.05, retry_cap: float = 2.0) -> None:
        self._tcp = port is not None
        if self._tcp:
            self.address = (host, int(port))
        else:
            self.address = (socket_path if socket_path is not None
                            else default_socket_path())
        self.timeout = timeout
        self.retries = max(0, int(retries))
        self.retry_base = retry_base
        self.retry_cap = retry_cap
        self._sock: Optional[socket.socket] = None
        self._connect()

    def _connect(self) -> None:
        self.close()
        family = socket.AF_INET if self._tcp else socket.AF_UNIX
        sock = socket.socket(family, socket.SOCK_STREAM)
        sock.settimeout(self.timeout)
        sock.connect(self.address)
        self._sock = sock

    # -- plumbing ------------------------------------------------------
    def _roundtrip(self, message: dict) -> dict:
        if self._sock is None:  # a prior reconnect attempt failed
            self._connect()
        send_message(self._sock, message)
        response = recv_message(self._sock)
        if response is None:
            raise ProtocolError("server closed the connection")
        if not response.get("ok"):
            raise ServeError(
                response.get("error", "unknown server error"),
                code=response.get("code", "internal"),
                retry_after_ms=response.get("retry_after_ms"),
                trace_id=response.get("trace_id"))
        return response

    def request(self, message: dict) -> dict:
        """One logical request; raises :class:`ServeError` on ``ok: false``.

        Transport faults and ``overloaded`` sheds are retried up to
        ``retries`` times; the last failure propagates unchanged.
        """
        attempt = 0
        while True:
            try:
                return self._roundtrip(message)
            except ServeError as exc:
                # Only flow control is retryable: the server told us
                # when to come back.  Real errors propagate at once.
                if exc.code != "overloaded" or attempt >= self.retries:
                    raise
                delay = (exc.retry_after_ms or 100) / 1000.0
            except (OSError, ProtocolError):
                if attempt >= self.retries:
                    raise
                delay = min(self.retry_cap, self.retry_base * 2 ** attempt)
            attempt += 1
            time.sleep(delay * random.uniform(0.5, 1.5))
            try:
                self._connect()
            except OSError:
                if attempt >= self.retries:
                    raise
                # Server may be mid-restart; the next loop iteration
                # fails fast on the dead socket and backs off again.

    def close(self) -> None:
        sock, self._sock = self._sock, None
        if sock is not None:
            try:
                sock.close()
            except OSError:
                pass

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- commands ------------------------------------------------------
    def ping(self) -> dict:
        return self.request({"cmd": "ping"})

    def analyze(self, source: str, *, label: str = "",
                options: Optional[dict] = None,
                deadline_ms: Optional[float] = None) -> dict:
        message = {"cmd": "analyze", "source": source, "label": label}
        if options:
            message["options"] = dict(options)
        if deadline_ms:
            message["deadline_ms"] = deadline_ms
        return self.request(message)

    def status(self) -> dict:
        return self.request({"cmd": "status"})

    def stats(self) -> dict:
        return self.request({"cmd": "stats"})

    def metrics(self) -> str:
        return self.request({"cmd": "metrics"})["prometheus"]

    def shutdown(self) -> dict:
        return self.request({"cmd": "shutdown"})


def wait_ready(socket_path: Optional[str] = None, *,
               host: str = "127.0.0.1", port: Optional[int] = None,
               timeout: float = 10.0) -> None:
    """Block until the server answers a ping (or raise ``TimeoutError``)."""
    deadline = time.monotonic() + timeout
    last: Optional[Exception] = None
    while time.monotonic() < deadline:
        try:
            # retries=0: this loop IS the retry policy.
            with ServeClient(socket_path, host=host, port=port,
                             timeout=2.0, retries=0) as client:
                client.ping()
            return
        except (OSError, ProtocolError, ServeError) as exc:
            last = exc
            time.sleep(0.05)
    raise TimeoutError(f"server not ready after {timeout}s: {last}")


__all__ = ["ServeClient", "ServeError", "wait_ready"]
