"""Per-procedure incremental analysis with tiered result caching.

This is the server's engine: the per-run pipeline (parse, CFG build,
plan compile, fixpoint) becomes a per-*changed-procedure* pipeline.
The unit of caching drops from the whole file (the batch service's
granularity) to one procedure, addressed by the SHA-256 of its
canonical pretty-printed source (:mod:`repro.frontend.fingerprint`)
combined with the analyzer options through the ordinary
:meth:`AnalysisJob.key` machinery.

Soundness of the decomposition: the analyzer treats procedures
independently (no interprocedural state -- ``Analyzer.analyze`` runs
each procedure's CFG to fixpoint in isolation), and the pretty printer
round-trips through the parser, so analyzing the canonical
single-procedure source is bit-identical to that procedure's slice of
a whole-file analysis.  Resubmitting a file where one procedure
changed therefore re-parses the file (cheap) and re-analyzes exactly
the changed procedure; everything else is assembled from caches.

Cache tiers, checked in order per procedure:

1. **memory** -- an in-process LRU of :class:`JobResult`\\ s keyed by
   the per-procedure job key.  Hits cost a dict lookup: no parse of
   the procedure, no CFG, no plan compile, no fixpoint.
2. **disk** -- the PR 2 persistent :class:`ResultCache` (same keys:
   a per-procedure job is just a job).  Hits are promoted to memory.
3. **computed** -- :func:`execute_job` in-process; ``ok`` results are
   written through to both tiers.

Invalidation is purely content-addressed: an edited procedure renders
to different canonical source, gets a different key, and simply never
matches the old entries (which age out of the LRU).  Option changes
(domain, widening, budgets, kernel backend) enter the key the same
way.  Only ``ok`` results are cached -- degraded/timeout outcomes are
re-attempted on every request, like the disk cache already does.

Parsed ASTs are kept hot in a second small LRU keyed by the raw source
digest, so a repeated identical submission skips the parser too.
"""

from __future__ import annotations

import dataclasses
import hashlib
import threading
from collections import OrderedDict
from typing import Callable, Dict, List, Optional, Tuple

from ..core import stats
from ..core.budget import clamp_to_deadline
from ..frontend.ast_nodes import Program
from ..frontend.parser import parse_program
from ..obs import metrics, trace
from ..service.cache import ResultCache
from ..service.job import OUTCOME_DEGRADED, OUTCOME_OK, AnalysisJob, JobResult, execute_job

metrics.REGISTRY.counter("serve_procs_memory",
                         "Server procedures served from the in-memory LRU")
metrics.REGISTRY.counter("serve_procs_disk",
                         "Server procedures served from the disk cache")
metrics.REGISTRY.counter("serve_procs_computed",
                         "Server procedures analyzed from scratch")
metrics.REGISTRY.counter("serve_ast_hits",
                         "Server submissions parsed from the AST LRU")

#: Analyzer options a client may set per request.  ``label`` and
#: ``telemetry`` are handled separately; ``keep_invariants`` is
#: excluded because DBM payloads do not fit the JSON response schema.
REQUEST_OPTIONS = (
    "domain", "widening_delay", "narrowing_steps", "widening_thresholds",
    "integer_mode", "compile_transfer", "time_budget", "iteration_budget",
    "cell_budget", "kernel_backend", "sparse_threshold",
)

TIERS = ("memory", "disk", "computed")


def _result_weight(result) -> int:
    """Byte weight of a cached result: the size of its JSON document
    (the same schema cache entries use), a faithful proxy for what the
    entry would cost at rest."""
    import json

    from ..core.serialize import job_result_to_dict

    return len(json.dumps(job_result_to_dict(result),
                          separators=(",", ":")))


class _LRU:
    """A tiny LRU dict; capacity in entries, occupancy also in bytes.

    ``weigh`` (optional) maps a value to its byte weight; entries then
    contribute to :attr:`bytes`, the occupancy the server's ``status``
    command reports.  Eviction stays entry-count based -- the weights
    are bookkeeping, not pressure.
    """

    def __init__(self, capacity: int, weigh=None) -> None:
        self.capacity = max(1, int(capacity))
        self._weigh = weigh
        self._data: "OrderedDict[str, object]" = OrderedDict()
        self._weights: Dict[str, int] = {}
        self.bytes = 0

    def get(self, key: str):
        try:
            self._data.move_to_end(key)
            return self._data[key]
        except KeyError:
            return None

    def put(self, key: str, value) -> None:
        if self._weigh is not None:
            self.bytes += int(self._weigh(value)) - self._weights.get(key, 0)
            self._weights[key] = int(self._weigh(value))
        self._data[key] = value
        self._data.move_to_end(key)
        while len(self._data) > self.capacity:
            evicted, _ = self._data.popitem(last=False)
            self.bytes -= self._weights.pop(evicted, 0)

    def __len__(self) -> int:
        return len(self._data)


def normalize_options(options: Optional[dict]) -> dict:
    """Validate and coerce a request's analyzer options.

    Unknown keys are rejected (a typo must not silently analyze with
    defaults and cache under the wrong key); ``widening_thresholds``
    arrives as a JSON list and becomes the tuple the job expects.
    """
    out = dict(options or {})
    unknown = sorted(set(out) - set(REQUEST_OPTIONS))
    if unknown:
        raise ValueError(f"unknown analyzer option(s): {', '.join(unknown)}")
    if "widening_thresholds" in out:
        out["widening_thresholds"] = tuple(
            float(t) for t in out["widening_thresholds"])
    return out


class IncrementalAnalyzer:
    """Tiered per-procedure analysis shared by all server connections.

    Thread safety: LRU and counter access is serialized by one lock;
    the analysis itself runs outside it, so concurrent requests only
    contend for microseconds.  Two threads computing the same key race
    benignly -- results are deterministic and writes idempotent.
    """

    def __init__(self, cache: Optional[ResultCache] = None, *,
                 lru_procedures: int = 1024, lru_programs: int = 64,
                 executor: Optional[Callable[
                     [AnalysisJob, Optional[float]],
                     Tuple[JobResult, bool]]] = None) -> None:
        #: Compute-tier strategy: ``executor(job, deadline)`` returns
        #: ``(result, external)`` where ``external`` marks a result
        #: computed out-of-process (its counters are not in this
        #: thread's stats collector).  ``None`` runs
        #: :func:`execute_job` inline -- PR 7 behavior; the serve
        #: supervisor's :meth:`~repro.serve.supervisor.WorkerSupervisor
        #: .execute` is the pooled strategy.
        self.executor = executor
        self.cache = cache
        self._results = _LRU(lru_procedures, weigh=_result_weight)
        self._programs = _LRU(lru_programs)
        self._lock = threading.Lock()
        self.tier_counts: Dict[str, int] = {tier: 0 for tier in TIERS}
        self.ast_hits = 0
        self.ast_misses = 0

    # ------------------------------------------------------------------
    def _parse(self, source: str) -> Program:
        digest = hashlib.sha256(source.encode("utf-8")).hexdigest()
        with self._lock:
            program = self._programs.get(digest)
        if program is not None:
            with self._lock:
                self.ast_hits += 1
            stats.bump("serve_ast_hits")
            return program
        with trace.span("parse"):
            program = parse_program(source)
        with self._lock:
            self.ast_misses += 1
            self._programs.put(digest, program)
        return program

    def _lookup(self, key: str) -> Tuple[Optional[JobResult], Optional[str]]:
        """Memory then disk; returns (result, tier) or (None, None)."""
        with self._lock:
            result = self._results.get(key)
        if result is not None:
            return result, "memory"
        if self.cache is not None:
            result = self.cache.get(key)
            if result is not None:
                with self._lock:
                    self._results.put(key, result)
                return result, "disk"
        return None, None

    def _analyze_procedure(self, job: AnalysisJob,
                           deadline: Optional[float] = None,
                           ) -> Tuple[JobResult, str, bool]:
        """Tier walk for one procedure; ``(result, tier, external)``.

        Cache lookups and stores always use the job's *original* key:
        a deadline only tightens the time budget of this attempt, and
        an ``ok`` result under a tighter budget is bit-identical to the
        unbudgeted one (budget pressure surfaces as ``degraded``, which
        is never cached) -- so the clamp must not fork the cache key.
        """
        key = job.key()
        result, tier = self._lookup(key)
        if result is not None:
            return result, tier, False
        if self.executor is not None:
            result, external = self.executor(job, deadline)
        else:
            if deadline is not None:
                job = dataclasses.replace(
                    job, time_budget=clamp_to_deadline(job.time_budget,
                                                       deadline))
            with trace.span("compute", procedure=job.label):
                result = execute_job(job)
            external = False
        # Fresh computations carry their span batch on the result --
        # collected by execute_job's trace session, in a pool worker or
        # right here -- and it is adopted exactly once, at the moment
        # the result is fresh: cache hits return the same object later,
        # and re-adopting would duplicate the (stale) spans.
        if trace.enabled() and result.trace_events:
            ctx = trace.current_context()
            trace.adopt_into_current(
                result.trace_events,
                trace_id=ctx.trace_id if ctx is not None else None)
        if result.outcome == OUTCOME_OK:
            result.key = key
            with self._lock:
                self._results.put(key, result)
            if self.cache is not None:
                self.cache.put(key, result)
        return result, "computed", external

    # ------------------------------------------------------------------
    def analyze(self, source: str, *, label: str = "",
                options: Optional[dict] = None,
                deadline: Optional[float] = None) -> Tuple[JobResult, dict]:
        """Analyze ``source``, reusing every unchanged procedure.

        Returns ``(result, info)``: a whole-file :class:`JobResult`
        assembled from the per-procedure results (verdicts and bounds
        identical to a one-shot analysis of the same source), and an
        ``info`` dict with the cache-tier breakdown -- ``tiers`` totals
        plus a ``procedures`` list of ``[name, tier]`` in program
        order.  ``result.counters`` holds this *request's* work only
        (registry-enumerated deltas: a fully warm request shows zero
        ``plans_compiled`` and zero ``fixpoint_runs``); the collector
        stack is thread-local, so per-event counters stay exact under
        concurrent requests, while global-source counters (module-wide
        tallies like the COW clone counts) can still include concurrent
        threads' work.  ``result.seconds``
        sums the freshly computed procedures' analysis time -- cached
        procedures contribute zero, which is the point.

        ``deadline`` is an absolute :func:`time.monotonic` instant:
        every computed procedure's time budget is clamped to the time
        remaining (inline or through the pool executor), so the request
        answers by the deadline with the degradation taxonomy instead
        of overrunning.
        """
        options = normalize_options(options)
        with stats.collecting() as collector:
            program = self._parse(source)
            per_proc: List[Tuple[JobResult, str, bool]] = []
            for proc in program.procedures:
                job = AnalysisJob.for_procedure(proc, **options)
                per_proc.append(self._analyze_procedure(job, deadline))
        tiers = {tier: 0 for tier in TIERS}
        proc_tiers = []
        for (result, tier, _), proc in zip(per_proc, program.procedures):
            tiers[tier] += 1
            proc_tiers.append([proc.name, tier])
        with self._lock:
            for tier, count in tiers.items():
                self.tier_counts[tier] += count
        for tier, count in tiers.items():
            if count:
                stats.bump(f"serve_procs_{tier}", count)
        whole = AnalysisJob(source=source, label=label, **options)
        merged = self._merge(whole, per_proc, collector)
        info = {"tiers": tiers, "procedures": proc_tiers}
        return merged, info

    def _merge(self, whole: AnalysisJob,
               per_proc: List[Tuple[JobResult, str, bool]],
               collector) -> JobResult:
        results = [r for r, _, _ in per_proc]
        fresh = [r for r, tier, _ in per_proc if tier == "computed"]
        degraded = any(r.outcome == OUTCOME_DEGRADED for r in results)
        rungs: Dict[str, str] = {}
        for r in results:
            rungs.update(r.rungs)
        backend = (results[0].kernel_backend if results
                   else whole.resolved_backend())
        # Work done by pool workers happened outside this thread's
        # collector; fold those results' own counters in so a cold
        # pooled request still reports its fixpoints and compiles
        # (and a warm request still reports all zeros).
        counters = collector.counter_summary()
        for r, tier, external in per_proc:
            if tier == "computed" and external:
                for name, value in r.counters.items():
                    counters[name] = counters.get(name, 0) + value
        return JobResult(
            key=whole.key(),
            label=whole.label,
            domain=whole.domain,
            outcome=OUTCOME_DEGRADED if degraded else OUTCOME_OK,
            seconds=sum(r.seconds for r in fresh),
            octagon_seconds=sum(r.octagon_seconds for r in fresh),
            compile_transfer=whole.compile_transfer,
            checks=[c for r in results for c in r.checks],
            procedures=[p for r in results for p in r.procedures],
            counters=counters,
            rungs=rungs,
            kernel_backend=backend,
            cached=bool(results) and not fresh,
        )

    # ------------------------------------------------------------------
    def lru_occupancy(self) -> Tuple[int, int]:
        """(entries, bytes) of the in-memory result LRU."""
        with self._lock:
            return len(self._results), self._results.bytes

    def counter_summary(self) -> Dict[str, int]:
        with self._lock:
            out = {f"serve_procs_{tier}": count
                   for tier, count in self.tier_counts.items()}
            out["serve_ast_hits"] = self.ast_hits
            out["serve_ast_misses"] = self.ast_misses
            out["serve_lru_entries"] = len(self._results)
            out["serve_lru_bytes"] = self._results.bytes
            out["serve_ast_entries"] = len(self._programs)
        if self.cache is not None:
            out.update(self.cache.counter_summary())
        return out


__all__ = [
    "IncrementalAnalyzer",
    "REQUEST_OPTIONS",
    "TIERS",
    "normalize_options",
]
