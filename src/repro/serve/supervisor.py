"""Supervised worker pool for the analysis daemon.

PR 7's server ran every fixpoint on a handler thread of the daemon
process, so one crashing or wedged fixpoint took the warm server -- and
its memory LRU -- down with it.  :class:`WorkerSupervisor` moves the
*compute* tier into long-lived child processes while the memory and
disk tiers stay in the parent:

* **Process isolation.**  Jobs travel to workers over the PR 6
  two-lane transport (:func:`repro.service.transport.send_payload`
  with :func:`~repro.service.transport.wrap_job` envelopes); results
  come back the same way, shared-memory lane included.  A worker that
  segfaults, gets OOM-killed, or wedges costs one respawn, never the
  daemon.
* **Supervision.**  One loop thread multiplexes every worker's result
  pipe and process sentinel through ``multiprocessing.connection.wait``
  (the PR 2 scheduler's pattern).  Workers heartbeat from a side
  thread; a busy worker that stops heartbeating is presumed wedged,
  killed, and its job retried.  Dead workers are reaped, their
  shared-memory segments swept (:func:`~repro.service.transport.
  sweep_worker`), and respawned under capped exponential backoff.
* **Deadlines.**  A job dispatched with a deadline gets its
  ``time_budget`` clamped to the time remaining
  (:func:`repro.core.budget.clamp_to_deadline`), so the worker's own
  degradation ladder -- PR 4 machinery -- returns a sound ``degraded``
  result before the deadline.  A worker that ignores its budget (a
  genuine wedge) is killed at ``deadline + grace`` and the submitting
  thread synthesizes the degraded answer inline under a sliver budget.
* **Circuit breaker.**  Sustained failures (``breaker_threshold``
  consecutive crashes/hangs) open a breaker: for ``breaker_cooldown``
  seconds every submission executes inline in the parent (PR 7
  behavior) with a visible ``serve_breaker_open`` event, instead of
  flapping through respawn storms.

The public entry point is :meth:`WorkerSupervisor.execute`, shaped as
the :class:`~repro.serve.incremental.IncrementalAnalyzer` executor
contract: ``(job, deadline) -> (JobResult, external)`` where
``external`` says the result was computed out-of-process (its counters
are not in the calling thread's collector).
"""

from __future__ import annotations

import dataclasses
import os
import threading
import time
import traceback
from collections import deque
from multiprocessing import connection as mp_connection
from typing import Deque, Dict, List, Optional, Tuple

from ..core.budget import clamp_to_deadline
from ..errors import WorkerDied
from ..obs import events, metrics, trace
from ..service import transport
from ..service.job import AnalysisJob, JobResult, execute_job
from ..service.scheduler import _context
from ..testing import faults

metrics.REGISTRY.counter("worker_restarts",
                         "Serve pool workers respawned after a failure")
metrics.REGISTRY.counter("worker_crashes",
                         "Serve pool workers that died mid-supervision")
metrics.REGISTRY.counter("worker_hangs",
                         "Serve pool workers killed as wedged "
                         "(deadline or heartbeat expiry)")
metrics.REGISTRY.counter("serve_breaker_opens",
                         "Circuit-breaker openings (pool fell back to "
                         "inline execution)")
metrics.REGISTRY.counter("serve_pool_jobs",
                         "Jobs completed by supervised pool workers")
metrics.REGISTRY.counter("serve_pool_inline",
                         "Jobs the supervisor executed inline "
                         "(breaker open, expired deadline, shutdown)")

#: Wait after ``terminate()`` before escalating to ``kill()``.
_KILL_GRACE_S = 2.0

_IDLE, _BUSY, _DEAD = "idle", "busy", "dead"


def _worker_main(job_recv, res_send, hb_interval: float,
                 parent_pid: int) -> None:
    """Child-process entry: serve jobs until told (or unable) to exit.

    The result pipe is shared by job results and heartbeats, so sends
    are serialized by a lock; the heartbeat thread keeps beating while
    a fixpoint runs (the GIL is released often enough), which is
    exactly the liveness signal the parent wants -- a worker that stops
    beating while busy is wedged below Python, not merely slow.
    """
    pid = os.getpid()
    segment = transport.segment_name(parent_pid, pid)
    send_lock = threading.Lock()

    def send(payload: tuple) -> None:
        with send_lock:
            transport.send_payload(res_send, payload, segment=segment)

    stop_hb = threading.Event()

    def heartbeats() -> None:
        while not stop_hb.wait(hb_interval):
            if os.getppid() != parent_pid:
                # Orphaned: the supervisor died without retiring us.
                # Exit so we release every inherited fd (socket lock
                # included) instead of lingering forever.
                os._exit(0)
            try:
                send(("hb", pid))
            except (OSError, ValueError):
                return

    try:
        send(("ready", pid))
    except (OSError, ValueError):
        return
    threading.Thread(target=heartbeats, daemon=True).start()

    while True:
        try:
            payload, arena = transport.recv_payload(job_recv, count=False)
        except (EOFError, OSError):
            break
        try:
            if payload[0] == "exit":
                break
            _, seq, wrapped, directives = payload
            job, ctx = transport.unwrap_job_ctx(wrapped)
        finally:
            if arena is not None:
                arena.release()
        if ctx is not None and "trace" not in job.telemetry:
            # The dispatching daemon is tracing this request: arm the
            # job so execute_job opens a span session and returns the
            # events with the result.  The telemetry tuple is excluded
            # from the cache key, so this changes nothing downstream.
            job = dataclasses.replace(job,
                                      telemetry=job.telemetry + ("trace",))
        if directives.get("kill"):
            # Injected chaos: die the way a segfault does, mid-job.
            os._exit(13)
        if directives.get("hang"):
            # Injected chaos: wedge below the budget machinery -- stop
            # heartbeating and never return.  The parent must kill us.
            stop_hb.set()
            time.sleep(3600)
        try:
            result = execute_job(job)
        except BaseException:
            try:
                send(("err", seq, traceback.format_exc()))
            except (OSError, ValueError):
                break
            continue
        try:
            send(("done", seq, result))
        except (OSError, ValueError):
            break


class _PoolJob:
    """One submitted job's rendezvous between handler and loop thread."""

    __slots__ = ("job", "deadline", "seq", "attempts", "done", "result",
                 "arena", "error", "fallback", "ctx")

    def __init__(self, job: AnalysisJob, deadline: Optional[float],
                 seq: int,
                 ctx: Optional[trace.TraceContext] = None) -> None:
        self.job = job
        self.deadline = deadline
        self.seq = seq
        self.ctx = ctx
        self.attempts = 0
        self.done = threading.Event()
        self.result: Optional[JobResult] = None
        self.arena = None
        self.error: Optional[BaseException] = None
        #: Set instead of a result when the submitter should execute
        #: inline: ``"expired"`` (deadline passed; synthesize degraded)
        #: or ``"breaker"``/``"shutdown"`` (pool unavailable).
        self.fallback: Optional[str] = None

    def resolve(self) -> None:
        self.done.set()


class _Worker:
    """Parent-side bookkeeping for one pool slot."""

    __slots__ = ("idx", "proc", "pid", "job_conn", "res_conn", "state",
                 "current", "busy_since", "last_hb", "fails", "respawn_at")

    def __init__(self, idx: int) -> None:
        self.idx = idx
        self.proc = None
        self.pid: Optional[int] = None
        self.job_conn = None
        self.res_conn = None
        self.state = _DEAD
        self.current: Optional[_PoolJob] = None
        self.busy_since = 0.0
        self.last_hb = 0.0
        self.fails = 0
        self.respawn_at: Optional[float] = None


class WorkerSupervisor:
    """A supervised pool of analysis worker processes.

    Thread safety: handler threads only touch the pending queue, the
    wake pipe, and counters (all under one lock); every worker's state
    belongs to the loop thread alone.
    """

    def __init__(self, pool_size: int, *, retries: int = 2,
                 heartbeat_interval: float = 0.5,
                 heartbeat_timeout: float = 10.0,
                 deadline_grace: float = 0.5,
                 breaker_threshold: int = 5,
                 breaker_cooldown: float = 30.0,
                 backoff_base: float = 0.05,
                 backoff_cap: float = 2.0) -> None:
        self.pool_size = max(1, int(pool_size))
        self.retries = max(0, int(retries))
        self.heartbeat_interval = heartbeat_interval
        self.heartbeat_timeout = heartbeat_timeout
        self.deadline_grace = deadline_grace
        self.breaker_threshold = max(1, int(breaker_threshold))
        self.breaker_cooldown = breaker_cooldown
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap

        self._lock = threading.Lock()
        self._pending: Deque[_PoolJob] = deque()
        self._workers: List[_Worker] = []
        self._seq = 0
        self._started = False
        self._stopping = threading.Event()
        self._loop_thread: Optional[threading.Thread] = None
        self._wake_r, self._wake_w = os.pipe()
        self._ctx = _context()

        self._consecutive_failures = 0
        self._breaker_open_until = 0.0
        self._breaker_was_open = False
        self.counters: Dict[str, int] = {
            "worker_restarts": 0,
            "worker_crashes": 0,
            "worker_hangs": 0,
            "serve_breaker_opens": 0,
            "serve_pool_jobs": 0,
            "serve_pool_inline": 0,
        }

    # -- lifecycle -----------------------------------------------------
    def start(self) -> None:
        """Spawn the pool and the supervision loop (idempotent).

        Call *before* binding listening sockets: forked workers must
        not inherit the daemon's listener or client connections.
        """
        if self._started:
            return
        self._started = True
        for idx in range(self.pool_size):
            worker = _Worker(idx)
            self._spawn(worker)
            self._workers.append(worker)
        self._loop_thread = threading.Thread(
            target=self._loop, name="serve-supervisor", daemon=True)
        self._loop_thread.start()
        events.info("serve_pool_started", workers=self.pool_size)

    def _spawn(self, worker: _Worker) -> None:
        job_recv, job_send = self._ctx.Pipe(duplex=False)
        res_recv, res_send = self._ctx.Pipe(duplex=False)
        proc = self._ctx.Process(
            target=_worker_main,
            args=(job_recv, res_send, self.heartbeat_interval, os.getpid()),
            daemon=True)
        proc.start()
        job_recv.close()
        res_send.close()
        worker.proc = proc
        worker.pid = proc.pid
        worker.job_conn = job_send
        worker.res_conn = res_recv
        worker.state = _IDLE
        worker.current = None
        worker.last_hb = time.monotonic()
        worker.respawn_at = None

    def shutdown(self, timeout: float = 10.0) -> None:
        """Stop the loop, retire every worker, sweep their segments."""
        if not self._started:
            return
        self._stopping.set()
        self._wake()
        if self._loop_thread is not None:
            self._loop_thread.join(timeout)
        for worker in self._workers:
            self._retire(worker)
        events.info("serve_pool_stopped",
                    restarts=self.counters["worker_restarts"],
                    crashes=self.counters["worker_crashes"])

    def _retire(self, worker: _Worker) -> None:
        """Ask one worker to exit; escalate to terminate/kill; sweep."""
        proc, pid = worker.proc, worker.pid
        if proc is None:
            return
        try:
            transport.send_payload(worker.job_conn, ("exit",))
        except (OSError, ValueError):
            pass
        self._close_conns(worker)
        proc.join(_KILL_GRACE_S)
        if proc.is_alive():
            proc.terminate()
            proc.join(_KILL_GRACE_S)
        if proc.is_alive():
            proc.kill()
            proc.join()
        transport.sweep_worker(pid)
        worker.proc = None
        worker.state = _DEAD

    @staticmethod
    def _close_conns(worker: _Worker) -> None:
        for conn in (worker.job_conn, worker.res_conn):
            if conn is not None:
                try:
                    conn.close()
                except OSError:
                    pass
        worker.job_conn = worker.res_conn = None

    # -- submission (handler threads) ----------------------------------
    def execute(self, job: AnalysisJob,
                deadline: Optional[float] = None) -> Tuple[JobResult, bool]:
        """Run ``job`` on the pool; ``(result, computed_out_of_process)``.

        Falls back to inline in-parent execution when the breaker is
        open, the pool is not running, or the job's deadline expired
        while queued (the inline run then has a sliver budget and
        degrades immediately -- a sound answer, on time).  Raises
        :class:`~repro.errors.WorkerDied` when workers died under the
        job beyond the retry budget.
        """
        if (not self._started or self._stopping.is_set()
                or self._breaker_is_open()):
            return self._inline(job, deadline), False
        # Capture the request's trace identity on the handler thread --
        # it rides the submission envelope so the worker's spans carry
        # the same trace id, and retries re-parent under it.
        ctx = trace.current_context() if trace.enabled() else None
        pool_job = _PoolJob(job, deadline, self._next_seq(), ctx)
        with self._lock:
            self._pending.append(pool_job)
        self._wake()
        while not pool_job.done.wait(0.5):
            if (self._loop_thread is None
                    or not self._loop_thread.is_alive()):
                # The supervision loop itself died: never strand the
                # request -- compute it here.
                return self._inline(job, deadline), False
        if pool_job.fallback is not None:
            return self._inline(job, deadline), False
        if pool_job.error is not None:
            raise pool_job.error
        result = pool_job.result
        result.shm_arena = pool_job.arena
        return result, True

    def _inline(self, job: AnalysisJob,
                deadline: Optional[float]) -> JobResult:
        with self._lock:
            self.counters["serve_pool_inline"] += 1
        if deadline is not None:
            job = dataclasses.replace(
                job, time_budget=clamp_to_deadline(job.time_budget, deadline))
        return execute_job(job)

    def _next_seq(self) -> int:
        with self._lock:
            self._seq += 1
            return self._seq

    def _wake(self) -> None:
        try:
            os.write(self._wake_w, b"x")
        except OSError:
            pass

    # -- breaker -------------------------------------------------------
    def _breaker_is_open(self) -> bool:
        with self._lock:
            open_now = time.monotonic() < self._breaker_open_until
            closed = self._breaker_was_open and not open_now
            if closed:
                self._breaker_was_open = False
        if closed:
            # The cooldown lapsed: the first check after expiry logs the
            # close so log artifacts show the full open/close history.
            events.info("serve_breaker_closed",
                        cooldown_seconds=self.breaker_cooldown)
        return open_now

    def breaker_open(self) -> bool:
        """Public read of the breaker state (status surface)."""
        return self._breaker_is_open()

    def _record_failure(self, kind: str) -> None:
        """One crash/hang: count it, maybe open the breaker (loop thread)."""
        with self._lock:
            self.counters[kind] += 1
            self._consecutive_failures += 1
            tripped = (self._consecutive_failures >= self.breaker_threshold
                       and time.monotonic() >= self._breaker_open_until)
            if tripped:
                self._breaker_open_until = (time.monotonic()
                                            + self.breaker_cooldown)
                self._consecutive_failures = 0
                self._breaker_was_open = True
                self.counters["serve_breaker_opens"] += 1
        if tripped:
            events.warning("serve_breaker_open",
                           cooldown_seconds=self.breaker_cooldown,
                           threshold=self.breaker_threshold)
            # Everything queued goes inline: the submitters must not
            # wait out a respawn storm.
            with self._lock:
                stranded = list(self._pending)
                self._pending.clear()
            for pool_job in stranded:
                pool_job.fallback = "breaker"
                pool_job.resolve()

    def _record_success(self) -> None:
        with self._lock:
            self._consecutive_failures = 0
            self.counters["serve_pool_jobs"] += 1

    # -- supervision loop ----------------------------------------------
    def _loop(self) -> None:
        try:
            while True:
                if self._stopping.is_set():
                    self._fail_pending("shutdown")
                    return
                self._respawn_due()
                self._expire_pending()
                self._assign_pending()
                ready = mp_connection.wait(self._watch_list(),
                                           timeout=self._wait_timeout())
                self._drain_wake(ready)
                self._collect(ready)
                self._kill_expired()
        except Exception:
            # A supervision bug must not strand submitters: they poll
            # loop-thread liveness and fall back to inline execution.
            events.error("serve_pool_loop_crashed",
                         error=traceback.format_exc().strip().splitlines()[-1])
            self._fail_pending("loop-crash")
            raise

    def _watch_list(self) -> list:
        watch: list = [self._wake_r]
        for worker in self._workers:
            if worker.state == _DEAD:
                continue
            watch.append(worker.res_conn)
            watch.append(worker.proc.sentinel)
        return watch

    def _wait_timeout(self) -> float:
        now = time.monotonic()
        horizon = now + 0.5
        for worker in self._workers:
            if worker.state == _BUSY:
                job = worker.current
                if job is not None and job.deadline is not None:
                    horizon = min(horizon,
                                  job.deadline + self.deadline_grace)
                horizon = min(horizon,
                              worker.last_hb + self.heartbeat_timeout)
            elif worker.state == _DEAD and worker.respawn_at is not None:
                horizon = min(horizon, worker.respawn_at)
        return max(0.0, horizon - now)

    def _drain_wake(self, ready) -> None:
        if self._wake_r in ready:
            try:
                os.read(self._wake_r, 4096)
            except OSError:
                pass

    def _expire_pending(self) -> None:
        """Resolve queued jobs whose deadline passed before dispatch:
        the submitter synthesizes a degraded answer inline instead of
        waiting for a worker that cannot deliver on time anyway."""
        now = time.monotonic()
        expired: List[_PoolJob] = []
        with self._lock:
            keep: Deque[_PoolJob] = deque()
            for pool_job in self._pending:
                if (pool_job.deadline is not None
                        and now >= pool_job.deadline):
                    expired.append(pool_job)
                else:
                    keep.append(pool_job)
            self._pending = keep
        for pool_job in expired:
            pool_job.fallback = "expired"
            pool_job.resolve()

    def _assign_pending(self) -> None:
        for worker in self._workers:
            if worker.state != _IDLE:
                continue
            with self._lock:
                if not self._pending:
                    return
                pool_job = self._pending.popleft()
            self._dispatch(worker, pool_job)

    def _dispatch(self, worker: _Worker, pool_job: _PoolJob) -> None:
        pool_job.attempts += 1
        directives: Dict[str, bool] = {}
        if faults.fire_once("serve_worker_kill", pool_job.job.label):
            directives["kill"] = True
        if faults.fire_once("serve_worker_hang", pool_job.job.label):
            directives["hang"] = True
        job = pool_job.job
        if pool_job.deadline is not None:
            job = dataclasses.replace(
                job,
                time_budget=clamp_to_deadline(job.time_budget,
                                              pool_job.deadline))
        try:
            transport.send_payload(
                worker.job_conn,
                ("job", pool_job.seq,
                 transport.wrap_job(job, pool_job.ctx), directives),
                segment=transport.job_segment_name(os.getpid(), worker.pid),
                count_prefix="job_")
        except (OSError, ValueError):
            # Worker died before reading: the sentinel path reaps it
            # and requeues this job.
            pass
        now = time.monotonic()
        worker.state = _BUSY
        worker.current = pool_job
        worker.busy_since = now
        worker.last_hb = now

    def _collect(self, ready) -> None:
        for worker in list(self._workers):
            if worker.state == _DEAD:
                continue
            signalled = (worker.res_conn in ready
                         or worker.proc.sentinel in ready)
            if not signalled:
                continue
            while worker.state != _DEAD and worker.res_conn.poll():
                try:
                    payload, arena = transport.recv_payload(worker.res_conn)
                except (EOFError, OSError):
                    self._reap_crashed(worker)
                    break
                self._handle_message(worker, payload, arena)
            if worker.state != _DEAD and not worker.proc.is_alive():
                self._reap_crashed(worker)

    def _handle_message(self, worker: _Worker, payload: tuple,
                        arena) -> None:
        kind = payload[0]
        worker.last_hb = time.monotonic()
        if kind in ("hb", "ready"):
            return
        pool_job = worker.current
        if pool_job is None or payload[1] != pool_job.seq:
            return  # stale answer from a dispatch we already gave up on
        worker.current = None
        worker.state = _IDLE
        worker.fails = 0
        if kind == "done":
            pool_job.result = payload[2]
            pool_job.arena = arena
            self._record_success()
            pool_job.resolve()
        else:  # "err": the job raised in the worker; worker is healthy
            if pool_job.attempts <= self.retries:
                self._note_retry(pool_job, "job-error", worker)
                with self._lock:
                    self._pending.append(pool_job)
            else:
                pool_job.error = WorkerDied(
                    0, stage=f"job raised:\n{payload[2]}")
                pool_job.resolve()

    def _reap_crashed(self, worker: _Worker) -> None:
        """A worker died under supervision: reap, sweep, respawn, retry."""
        proc, pid = worker.proc, worker.pid
        exitcode = proc.exitcode
        proc.join()
        self._close_conns(worker)
        transport.sweep_worker(pid)
        pool_job, worker.current = worker.current, None
        worker.proc = None
        worker.state = _DEAD
        worker.fails += 1
        delay = min(self.backoff_cap,
                    self.backoff_base * (2 ** (worker.fails - 1)))
        worker.respawn_at = time.monotonic() + delay
        events.warning("serve_worker_died", pid=pid, slot=worker.idx,
                       exitcode=exitcode, respawn_in=round(delay, 3),
                       label=pool_job.job.label if pool_job else None)
        self._record_failure("worker_crashes")
        if pool_job is not None:
            self._requeue_or_fail(pool_job,
                                  WorkerDied(exitcode, stage="serve pool"),
                                  worker=worker)

    def _requeue_or_fail(self, pool_job: _PoolJob,
                         error: BaseException,
                         worker: Optional[_Worker] = None) -> None:
        now = time.monotonic()
        expired = (pool_job.deadline is not None
                   and now >= pool_job.deadline)
        if expired:
            pool_job.fallback = "expired"
            pool_job.resolve()
        elif self._breaker_is_open():
            pool_job.fallback = "breaker"
            pool_job.resolve()
        elif pool_job.attempts <= self.retries:
            self._note_retry(pool_job, "worker-died", worker)
            with self._lock:
                self._pending.append(pool_job)
        else:
            pool_job.error = error
            pool_job.resolve()

    def _note_retry(self, pool_job: _PoolJob, cause: str,
                    worker: Optional[_Worker] = None) -> None:
        """One retry decision: structured event plus a trace marker.

        The marker is a zero-duration span on the originating request's
        lane (``ctx.parent``), so the respawned attempt's spans and the
        retry itself both sit under the same ``serve_request`` -- the
        trace shows the kill/retry/redo sequence end to end.
        """
        trace_id = pool_job.ctx.trace_id if pool_job.ctx else None
        events.warning("serve_job_retry", label=pool_job.job.label,
                       attempt=pool_job.attempts + 1, cause=cause,
                       worker_slot=worker.idx if worker else None,
                       worker_pid=worker.pid if worker else None,
                       trace_id=trace_id)
        if pool_job.ctx is not None and trace.enabled():
            now = time.perf_counter()
            trace.emit("serve_job_retry", now, now,
                       tid=pool_job.ctx.parent or None,
                       args={"trace_id": trace_id,
                             "label": pool_job.job.label,
                             "attempt": pool_job.attempts + 1,
                             "cause": cause})

    def _kill_expired(self) -> None:
        """Kill busy workers past their job deadline or heartbeat window."""
        now = time.monotonic()
        for worker in self._workers:
            if worker.state != _BUSY:
                continue
            pool_job = worker.current
            over_deadline = (
                pool_job is not None and pool_job.deadline is not None
                and now >= pool_job.deadline + self.deadline_grace)
            hb_stale = now - worker.last_hb >= self.heartbeat_timeout
            if not (over_deadline or hb_stale):
                continue
            self._kill_worker(worker,
                              "deadline" if over_deadline else "heartbeat")

    def _kill_worker(self, worker: _Worker, why: str) -> None:
        proc, pid = worker.proc, worker.pid
        proc.terminate()
        proc.join(_KILL_GRACE_S)
        if proc.is_alive():
            proc.kill()
            proc.join()
        self._close_conns(worker)
        transport.sweep_worker(pid)
        pool_job, worker.current = worker.current, None
        worker.proc = None
        worker.state = _DEAD
        worker.fails += 1
        delay = min(self.backoff_cap,
                    self.backoff_base * (2 ** (worker.fails - 1)))
        worker.respawn_at = time.monotonic() + delay
        events.warning("serve_worker_killed", pid=pid, slot=worker.idx,
                       reason=why,
                       label=pool_job.job.label if pool_job else None,
                       respawn_in=round(delay, 3))
        self._record_failure("worker_hangs")
        if pool_job is not None:
            self._requeue_or_fail(
                pool_job,
                WorkerDied(-9, stage=f"killed as wedged ({why})"),
                worker=worker)

    def _respawn_due(self) -> None:
        now = time.monotonic()
        for worker in self._workers:
            if (worker.state == _DEAD and worker.respawn_at is not None
                    and now >= worker.respawn_at):
                self._spawn(worker)
                with self._lock:
                    self.counters["worker_restarts"] += 1
                events.info("serve_worker_respawned", pid=worker.pid,
                            slot=worker.idx)

    def _fail_pending(self, why: str) -> None:
        with self._lock:
            stranded = list(self._pending)
            self._pending.clear()
        for worker in self._workers:
            pool_job, worker.current = worker.current, None
            if pool_job is not None:
                stranded.append(pool_job)
        for pool_job in stranded:
            pool_job.fallback = "shutdown" if why == "shutdown" else "breaker"
            pool_job.resolve()

    # -- observability -------------------------------------------------
    def counter_summary(self) -> Dict[str, int]:
        with self._lock:
            out = dict(self.counters)
        out["serve_pool_size"] = self.pool_size
        out["serve_pool_alive"] = sum(1 for w in self._workers
                                      if w.state != _DEAD)
        return out

    def worker_table(self) -> List[Dict[str, object]]:
        """Best-effort snapshot of every pool slot (status surface).

        Worker state belongs to the loop thread; this reads it without
        coordination, so a row can be a step stale -- fine for an ops
        view, never used for control decisions.
        """
        now = time.monotonic()
        rows: List[Dict[str, object]] = []
        for worker in self._workers:
            current = worker.current
            rows.append({
                "slot": worker.idx,
                "pid": worker.pid,
                "state": worker.state,
                "label": current.job.label if current is not None else None,
                "busy_seconds": (round(now - worker.busy_since, 3)
                                 if worker.state == _BUSY else 0.0),
                "fails": worker.fails,
                "respawn_in": (round(max(0.0, worker.respawn_at - now), 3)
                               if (worker.state == _DEAD
                                   and worker.respawn_at is not None)
                               else None),
            })
        return rows


__all__ = ["WorkerSupervisor"]
