"""Analysis server: a long-lived daemon with incremental re-analysis.

The batch service (:mod:`repro.service`) answers "analyze these N
files once"; this subsystem answers "keep analyzing these files as
they change".  A persistent daemon (``python -m repro serve``) keeps
parsed ASTs and per-procedure analysis results hot across requests,
so the per-run costs the earlier PRs optimised -- process spawn,
parse, CFG build, transfer-plan compilation, fixpoint -- are paid only
for procedures that actually changed.

* :mod:`repro.serve.protocol` -- length-prefixed JSON frames over a
  Unix or TCP socket.
* :mod:`repro.serve.incremental` -- per-procedure content addressing
  (canonical pretty-printed source) over a memory-LRU -> disk-cache ->
  compute tier stack.
* :mod:`repro.serve.server` -- :class:`AnalysisServer`: accept loop,
  request handlers, budgets/degradation pass-through, SLO counters and
  Prometheus export.
* :mod:`repro.serve.supervisor` -- :class:`WorkerSupervisor`: the
  supervised pool of worker processes behind ``--pool``, with
  heartbeats, deadline kills, respawn backoff and a circuit breaker.
* :mod:`repro.serve.client` -- :class:`ServeClient`, the thin client
  behind ``python -m repro client`` and the tests.
"""

from .client import ServeClient, ServeError, wait_ready
from .incremental import IncrementalAnalyzer
from .protocol import MAX_MESSAGE, ProtocolError, recv_message, send_message
from .server import AnalysisServer, default_socket_path, run_server
from .supervisor import WorkerSupervisor

__all__ = [
    "AnalysisServer",
    "IncrementalAnalyzer",
    "MAX_MESSAGE",
    "ProtocolError",
    "ServeClient",
    "ServeError",
    "WorkerSupervisor",
    "default_socket_path",
    "recv_message",
    "run_server",
    "send_message",
    "wait_ready",
]
