"""HTTP observability facade for the analysis daemon.

The daemon's native protocol is length-prefixed JSON over its own
socket -- fine for :class:`~repro.serve.client.ServeClient`, opaque to
everything an operator already runs.  This module puts a **read-only**
stdlib ``http.server`` endpoint beside the daemon (``serve
--http-port``) so standard tooling can see in without speaking the
analysis protocol:

* ``GET /metrics``  -- Prometheus text exposition 0.0.4 (the same
  snapshot the ``metrics`` protocol command renders): serve counters,
  per-command latency histograms, pool/breaker/cache counters.
* ``GET /healthz``  -- liveness/readiness: ``200`` when serving,
  ``503`` while stopping, while the circuit breaker is open, or when a
  configured worker pool has zero live workers.  The body is a small
  JSON document naming the failing condition.
* ``GET /statusz`` -- the full ``status`` JSON (uptime, in-flight,
  LRU occupancy, RED rollups) plus the supervisor's worker table.
* ``GET /requestz`` -- the recent-request ring buffer: per-request
  command, label, wall seconds, outcome, cache tiers and trace id.

The facade is deliberately passive: every route renders state the
daemon already maintains, no route mutates anything, and the listener
binds ``127.0.0.1`` by default.  Handler threads come from
``ThreadingHTTPServer`` and never touch the analysis request gate, so
the endpoint stays responsive while the daemon is saturated -- the
same reason ``status`` bypasses admission control.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional

from ..obs import events

#: Routes the facade serves, for 404 bodies and the docs.
ROUTES = ("/metrics", "/healthz", "/statusz", "/requestz")


class _FacadeHandler(BaseHTTPRequestHandler):
    """One request; ``self.server.analysis`` is the AnalysisServer."""

    server_version = "repro-obs/1"
    protocol_version = "HTTP/1.1"

    # The default handler logs every request to stderr; the daemon's
    # structured event stream is the log of record, so stay quiet.
    def log_message(self, format, *args):  # noqa: A002 -- stdlib signature
        pass

    def do_GET(self) -> None:
        daemon = self.server.analysis
        path = self.path.split("?", 1)[0]
        if path == "/metrics":
            self._reply(200, daemon.prometheus(),
                        content_type="text/plain; version=0.0.4; "
                                     "charset=utf-8")
        elif path == "/healthz":
            healthy, doc = daemon.health()
            self._json(200 if healthy else 503, doc)
        elif path == "/statusz":
            self._json(200, daemon.status_document())
        elif path == "/requestz":
            self._json(200, {"recent": daemon.recent_requests()})
        else:
            self._json(404, {"error": f"unknown route {path!r}",
                             "routes": list(ROUTES)})

    def do_HEAD(self) -> None:  # health probes often use HEAD
        self.do_GET()

    def _json(self, code: int, doc: dict) -> None:
        self._reply(code, json.dumps(doc, indent=2, sort_keys=True) + "\n",
                    content_type="application/json")

    def _reply(self, code: int, body: str, *, content_type: str) -> None:
        payload = body.encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        if self.command != "HEAD":
            self.wfile.write(payload)


class ObservabilityHTTPD:
    """The facade's listener lifecycle, owned by one AnalysisServer."""

    def __init__(self, analysis_server, *, host: str = "127.0.0.1",
                 port: int = 0) -> None:
        self.analysis = analysis_server
        self.host = host
        self.port = port
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    def start(self) -> int:
        """Bind and serve on a daemon thread; returns the bound port
        (useful with ``port=0``, which lets the kernel pick)."""
        httpd = ThreadingHTTPServer((self.host, self.port), _FacadeHandler)
        httpd.daemon_threads = True
        httpd.analysis = self.analysis
        self.port = httpd.server_address[1]
        self._httpd = httpd
        self._thread = threading.Thread(target=httpd.serve_forever,
                                        name="serve-httpd", daemon=True)
        self._thread.start()
        events.info("serve_http_listening", host=self.host, port=self.port)
        return self.port

    def stop(self) -> None:
        httpd, self._httpd = self._httpd, None
        if httpd is None:
            return
        httpd.shutdown()
        httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None


__all__ = ["ObservabilityHTTPD", "ROUTES"]
