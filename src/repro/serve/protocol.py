"""Wire protocol of the analysis server: length-prefixed JSON frames.

One frame is a 4-byte big-endian unsigned length followed by that many
bytes of UTF-8 JSON.  The prefix makes message boundaries explicit (no
sentinel scanning, binary-safe) and lets the receiver reject oversized
frames before allocating; JSON keeps the protocol inspectable with
``socat`` and trivially implementable from any language.

Requests are objects with a ``cmd`` field (``ping``, ``analyze``,
``status``, ``stats``, ``metrics``, ``shutdown``); responses are
objects with an ``ok`` boolean (plus ``error`` text when false) and a
``trace_id`` naming the request server-side -- the same id appears in
the daemon's slow-request log, ``GET /requestz`` ring and exported
span tree, so a client can hand an operator the exact handle to its
request.  The connection is strictly request/response: the client
writes one frame, reads one frame, and may repeat -- connections are
cheap but reusable.
"""

from __future__ import annotations

import json
import socket
import struct
from typing import Optional

#: Frame header: unsigned 32-bit big-endian body length.
_HEADER = struct.Struct("!I")

#: Hard ceiling on one frame's body.  Large enough for any suite
#: program plus its full result document, small enough that a corrupt
#: or malicious length prefix cannot ask the peer to allocate gigabytes.
MAX_MESSAGE = 64 * 1024 * 1024

PROTOCOL_VERSION = 1


class ProtocolError(ValueError):
    """A malformed, truncated or oversized frame."""


def _recv_exact(sock: socket.socket, n: int) -> Optional[bytes]:
    """Read exactly ``n`` bytes; None on clean EOF at a frame boundary.

    EOF *inside* a frame is a :class:`ProtocolError` -- the peer died
    mid-message, which the caller must not mistake for a clean close.
    """
    chunks = []
    remaining = n
    while remaining:
        chunk = sock.recv(min(remaining, 65536))
        if not chunk:
            if remaining == n:
                return None
            raise ProtocolError(
                f"connection closed mid-frame ({n - remaining}/{n} bytes)")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def send_message(sock: socket.socket, message: dict) -> int:
    """Frame and send one JSON message; returns bytes written."""
    body = json.dumps(message, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_MESSAGE:
        raise ProtocolError(f"message of {len(body)} bytes exceeds "
                            f"MAX_MESSAGE ({MAX_MESSAGE})")
    sock.sendall(_HEADER.pack(len(body)) + body)
    return _HEADER.size + len(body)


def recv_message(sock: socket.socket) -> Optional[dict]:
    """Receive one framed JSON message; None on clean EOF."""
    header = _recv_exact(sock, _HEADER.size)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    if length > MAX_MESSAGE:
        raise ProtocolError(f"frame of {length} bytes exceeds "
                            f"MAX_MESSAGE ({MAX_MESSAGE})")
    body = _recv_exact(sock, length)
    if body is None:
        raise ProtocolError("connection closed between header and body")
    try:
        message = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"bad frame body: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError(f"frame body is {type(message).__name__}, "
                            f"expected object")
    return message


#: Error-cause vocabulary: every ``ok: false`` response carries one of
#: these in its ``code`` field, and the server counts errors per cause
#: (``serve_errors_<cause>``) so the Prometheus export can tell client
#: mistakes (``parse``, ``protocol``) from server faults
#: (``worker_died``, ``internal``) and flow control (``overloaded``).
ERROR_CAUSES = ("protocol", "parse", "interrupted", "worker_died",
                "overloaded", "internal")


def error_response(message: str, *, code: str = "internal",
                   **extra) -> dict:
    """A structured error: ``ok: false`` + cause ``code`` + extras
    (e.g. ``retry_after_ms`` on an ``overloaded`` response)."""
    response = {"ok": False, "error": str(message), "code": code}
    response.update(extra)
    return response


__all__ = [
    "ERROR_CAUSES",
    "MAX_MESSAGE",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "error_response",
    "recv_message",
    "send_message",
]
