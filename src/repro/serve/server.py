"""The analysis daemon: accept loop, request handlers, SLO surface.

One :class:`AnalysisServer` owns a listening socket (Unix-domain by
default, TCP with ``port=``), an :class:`IncrementalAnalyzer` shared by
every connection, and the observability state that makes the daemon
operable: request/latency/cache-tier counters, cause-labeled error
counters, per-request spans, and a Prometheus rendering of the lot.

Concurrency model: thread-per-connection (connections are long-lived
and mostly idle between frames) with a :class:`threading.Semaphore`
bounding how many *analyze* requests execute simultaneously and a
bounded admission count on top: once ``workers + queue_depth`` analyze
requests are in flight, further ones are shed immediately with a
structured ``overloaded`` response carrying ``retry_after_ms`` --
backpressure, not deadlock.  Control commands (``ping``/``status``/
``stats``/``metrics``) bypass the gate so the daemon stays observable
under load.  Each connection has a per-frame idle read timeout, so a
client that sends half a frame and stalls is disconnected instead of
pinning a handler slot forever.

With ``pool > 0`` the compute tier runs on a supervised pool of worker
processes (:mod:`repro.serve.supervisor`): crashes and wedges cost a
respawn, not the daemon; requests carry a client-supplied or
server-default deadline that clamps each procedure's time budget.

Shutdown is a graceful drain: SIGTERM stops the accept loop, in-flight
requests finish (bounded by ``drain_timeout``), the worker pool is
retired, and the socket file and any shared-memory segments are swept
-- a SIGTERM mid-request leaves nothing behind (pinned by the chaos
tests).
"""

from __future__ import annotations

import os
import signal
import socket
import threading
import time
from collections import deque
from typing import Dict, List, Optional, Tuple

try:
    import fcntl
except ImportError:  # pragma: no cover -- non-POSIX platform
    fcntl = None

from .. import __version__
from ..core import kernels
from ..core.serialize import job_result_to_dict
from ..errors import AnalysisInterrupted, WorkerDied
from ..frontend.parser import ParseError
from ..obs import events, metrics, trace
from ..service import transport
from ..service.cache import ResultCache, default_cache_root
from ..testing import faults
from .httpd import ObservabilityHTTPD
from .incremental import IncrementalAnalyzer
from .protocol import (
    ERROR_CAUSES, PROTOCOL_VERSION, ProtocolError, error_response,
    recv_message, send_message,
)
from .supervisor import WorkerSupervisor

metrics.REGISTRY.counter("serve_requests", "Requests the server handled")
metrics.REGISTRY.counter("serve_errors",
                         "Requests that produced an error response")
for _cause in ERROR_CAUSES:
    metrics.REGISTRY.counter(
        f"serve_errors_{_cause}",
        f"Requests that produced an error response (cause: {_cause})")
metrics.REGISTRY.counter("serve_idle_closed",
                         "Connections closed by the per-frame idle "
                         "read timeout")
metrics.REGISTRY.histogram("serve_request_seconds",
                           "Wall seconds per server request",
                           buckets=metrics.LATENCY_BUCKETS, label="cmd")

#: Lock fds to close in forked children (pool workers): ``flock`` is
#: per open-file-description and survives fork, so a child that keeps
#: the fd would hold the daemon's startup lock even after the daemon is
#: SIGKILLed -- blocking the restart the lock exists to arbitrate.
_FORK_CLOSE_FDS = set()


def _close_lock_fds_in_child() -> None:
    for fd in list(_FORK_CLOSE_FDS):
        try:
            os.close(fd)
        except OSError:
            pass
    _FORK_CLOSE_FDS.clear()


if hasattr(os, "register_at_fork"):  # POSIX
    os.register_at_fork(after_in_child=_close_lock_fds_in_child)

#: Default socket filename under the cache root.
SOCKET_NAME = "serve.sock"

COMMANDS = ("ping", "analyze", "status", "stats", "metrics", "shutdown")

#: Default per-frame idle read timeout (seconds): a stalled client is
#: disconnected after this long mid-frame or between frames.
DEFAULT_IDLE_TIMEOUT = 300.0

#: Default graceful-drain bound (seconds) for in-flight requests on
#: shutdown.
DEFAULT_DRAIN_TIMEOUT = 30.0


def default_socket_path() -> str:
    return os.path.join(default_cache_root(), SOCKET_NAME)


class AnalysisServer:
    """A long-lived analysis daemon over one listening socket."""

    def __init__(self, socket_path: Optional[str] = None, *,
                 host: str = "127.0.0.1", port: Optional[int] = None,
                 workers: int = 4, pool: int = 0,
                 deadline_ms: Optional[float] = None,
                 queue_depth: int = 16,
                 idle_timeout: Optional[float] = DEFAULT_IDLE_TIMEOUT,
                 drain_timeout: float = DEFAULT_DRAIN_TIMEOUT,
                 worker_restarts: int = 5,
                 cache: Optional[ResultCache] = None,
                 cache_dir: Optional[str] = None, use_cache: bool = True,
                 lru_procedures: int = 1024, lru_programs: int = 64,
                 http_port: Optional[int] = None, http_host: str = "127.0.0.1",
                 slow_request_ms: Optional[float] = None,
                 requestz_size: int = 64) -> None:
        self.tcp = port is not None
        self.host = host
        self.port = port
        self.socket_path = (socket_path if socket_path is not None
                            else default_socket_path()) if not self.tcp else None
        if cache is None and use_cache:
            cache = ResultCache(cache_dir)
        self.cache = cache
        #: Supervised compute pool; ``pool=0`` keeps PR 7 inline
        #: execution (every fixpoint on the handler thread).
        self.pool = max(0, int(pool))
        self.supervisor = (WorkerSupervisor(
            self.pool, breaker_threshold=worker_restarts)
            if self.pool else None)
        self.analyzer = IncrementalAnalyzer(
            cache, lru_procedures=lru_procedures, lru_programs=lru_programs,
            executor=(self.supervisor.execute if self.supervisor else None))
        self.workers = max(1, int(workers))
        #: Server-default request deadline in milliseconds (None/0 =
        #: unbounded unless the client supplies ``deadline_ms``).
        self.deadline_ms = deadline_ms or None
        self.queue_depth = max(0, int(queue_depth))
        self.idle_timeout = idle_timeout or None
        self.drain_timeout = drain_timeout
        self._request_gate = threading.Semaphore(self.workers)
        self._admission = threading.Condition()
        self._inflight = 0
        self._listener: Optional[socket.socket] = None
        self._lock_fd: Optional[int] = None
        self._stopping = threading.Event()
        self._lock = threading.Lock()
        self.started_at: Optional[float] = None
        self.requests = 0
        self.errors = 0
        self.errors_by_cause: Dict[str, int] = {c: 0 for c in ERROR_CAUSES}
        self.idle_closed = 0
        self.connections = 0
        self.by_cmd: Dict[str, int] = {}
        self._latency: Dict[str, metrics.HistogramData] = {}
        self._analyze_ewma: Optional[float] = None
        #: HTTP observability facade (``None`` keeps it off).
        self.http_port = http_port
        self.http_host = http_host
        self._httpd: Optional[ObservabilityHTTPD] = None
        #: Slow-request log threshold in milliseconds (None = off).
        self.slow_request_ms = slow_request_ms or None
        #: Recent-request ring buffer behind ``GET /requestz``.
        self._recent: "deque" = deque(maxlen=max(1, int(requestz_size)))

    # -- lifecycle -----------------------------------------------------
    def start(self) -> str:
        """Bind and listen; returns a printable address.

        Unix mode takes an exclusive ``flock`` on ``<socket>.lock``
        first: two daemons racing onto the same path resolve to exactly
        one winner *before* anyone probes or unlinks the socket file
        (the probe alone is check-then-act and loses races).  The pool
        workers fork before the listener exists so they never inherit
        it.
        """
        if self.tcp:
            if self.supervisor is not None:
                self.supervisor.start()
            listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            listener.bind((self.host, self.port))
            self.port = listener.getsockname()[1]
            address = f"tcp://{self.host}:{self.port}"
        else:
            os.makedirs(os.path.dirname(self.socket_path) or ".",
                        exist_ok=True)
            self._acquire_lock()
            self._clear_stale_socket()
            if self.supervisor is not None:
                self.supervisor.start()
            listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            listener.bind(self.socket_path)
            address = f"unix://{self.socket_path}"
        listener.listen(64)
        # A finite accept timeout so the loop re-checks the stopping
        # flag: close() alone does not wake a thread blocked in accept().
        listener.settimeout(0.2)
        self._listener = listener
        self.started_at = time.monotonic()
        if self.http_port is not None:
            self._httpd = ObservabilityHTTPD(self, host=self.http_host,
                                             port=self.http_port)
            self.http_port = self._httpd.start()
        events.info("serve_listening", address=address,
                    workers=self.workers, pool=self.pool,
                    http_port=self.http_port)
        return address

    def _acquire_lock(self) -> None:
        """Exclusive flock on ``<socket>.lock`` for the daemon lifetime.

        The kernel releases the lock on any exit (SIGKILL included), so
        a crashed server never blocks the next one; the lock file
        itself is left in place -- unlinking it would reopen the race
        the lock exists to close.
        """
        if fcntl is None:
            return
        lock_path = self.socket_path + ".lock"
        fd = os.open(lock_path, os.O_CREAT | os.O_RDWR, 0o644)
        try:
            fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
        except OSError:
            os.close(fd)
            raise RuntimeError(
                f"another server is live on {self.socket_path}")
        self._lock_fd = fd
        _FORK_CLOSE_FDS.add(fd)

    def _release_lock(self) -> None:
        fd, self._lock_fd = self._lock_fd, None
        if fd is not None:
            _FORK_CLOSE_FDS.discard(fd)
            try:
                os.close(fd)  # closing drops the flock
            except OSError:
                pass

    def _clear_stale_socket(self) -> None:
        """Unlink a leftover socket file iff nothing is serving on it."""
        if not os.path.exists(self.socket_path):
            return
        probe = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        try:
            probe.settimeout(0.5)
            probe.connect(self.socket_path)
        except OSError:
            os.unlink(self.socket_path)  # stale: a dead server left it
        else:
            raise RuntimeError(
                f"another server is live on {self.socket_path}")
        finally:
            probe.close()

    def stop(self, reason: str = "requested") -> None:
        """Stop the accept loop (idempotent, callable from any thread)."""
        if self._stopping.is_set():
            return
        self._stopping.set()
        events.info("serve_stopping", reason=reason)
        listener = self._listener
        if listener is not None:
            try:
                listener.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                listener.close()
            except OSError:
                pass

    def install_signal_handlers(self) -> None:
        """SIGTERM/SIGINT trigger the same clean drain-and-stop path."""
        for signum in (signal.SIGTERM, signal.SIGINT):
            signal.signal(signum,
                          lambda sig, frame: self.stop(f"signal {sig}"))

    def serve_forever(self) -> None:
        """Accept until :meth:`stop`; always leaves no socket/shm litter.

        The exit path is a graceful drain: in-flight requests finish
        (bounded by ``drain_timeout``; connections merely idle in a
        read do not count as in-flight), then the worker pool is
        retired and every name this daemon could have left -- socket
        file, shm segments -- is swept.
        """
        if self._listener is None:
            self.start()
        try:
            while not self._stopping.is_set():
                try:
                    conn, _ = self._listener.accept()
                except socket.timeout:
                    continue  # periodic stopping-flag check
                except OSError:
                    break  # listener closed by stop()
                with self._lock:
                    self.connections += 1
                thread = threading.Thread(
                    target=self._serve_connection, args=(conn,), daemon=True)
                thread.start()
        finally:
            self.stop("serve_forever exit")
            self._drain()
            if self._httpd is not None:
                self._httpd.stop()
            if self.supervisor is not None:
                self.supervisor.shutdown()
            if self.socket_path is not None:
                try:
                    os.unlink(self.socket_path)
                except OSError:
                    pass
            self._release_lock()
            transport.sweep_orphans()
            events.info("serve_stopped", requests=self.requests)

    def _drain(self) -> None:
        """Block until in-flight requests complete (or the bound hits)."""
        deadline = time.monotonic() + self.drain_timeout
        with self._admission:
            while self._inflight > 0:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    events.warning("serve_drain_timeout",
                                   inflight=self._inflight,
                                   timeout=self.drain_timeout)
                    return
                self._admission.wait(min(remaining, 0.5))
        events.info("serve_drained")

    # -- admission -----------------------------------------------------
    def _admit(self) -> bool:
        """Claim one in-flight analyze slot; False = shed the request."""
        with self._admission:
            if self._inflight >= self.workers + self.queue_depth:
                return False
            self._inflight += 1
            return True

    def _release(self) -> None:
        with self._admission:
            self._inflight -= 1
            self._admission.notify_all()

    def _retry_after_ms(self) -> int:
        """Shed hint: roughly one smoothed analyze duration, clamped."""
        with self._lock:
            ewma = self._analyze_ewma
        return int(max(50, min(5000, (ewma or 0.1) * 1000.0)))

    # -- connections ---------------------------------------------------
    def _serve_connection(self, conn: socket.socket) -> None:
        conn.settimeout(self.idle_timeout)
        try:
            while not self._stopping.is_set():
                try:
                    request = recv_message(conn)
                except socket.timeout:
                    # The slow-client guard: half a frame then silence
                    # must not pin this handler forever.
                    events.warning("serve_idle_timeout",
                                   seconds=self.idle_timeout)
                    with self._lock:
                        self.idle_closed += 1
                    return
                except ProtocolError as exc:
                    self._account("unknown", 0.0, ok=False, cause="protocol")
                    send_message(conn, error_response(str(exc),
                                                      code="protocol"))
                    return
                if request is None:
                    return  # clean EOF
                cmd = request.get("cmd")
                admitted = cmd == "analyze" and self._admit()
                try:
                    if cmd == "analyze" and not admitted:
                        self._account("analyze", 0.0, ok=False,
                                      cause="overloaded")
                        response = error_response(
                            "server overloaded: "
                            f"{self.workers + self.queue_depth} analyze "
                            "requests already in flight",
                            code="overloaded",
                            retry_after_ms=self._retry_after_ms())
                        events.warning("serve_overloaded",
                                       retry_after_ms=response["retry_after_ms"])
                    elif admitted:
                        with self._request_gate:
                            response = self._dispatch(request)
                    else:
                        response = self._dispatch(request)
                    if faults.fire_once("serve_conn_reset"):
                        # Injected chaos: drop the connection after the
                        # work, before the reply -- the client retries
                        # and the tiers make the retry cheap.
                        events.warning("serve_conn_reset_injected", cmd=cmd)
                        return
                    send_message(conn, response)
                    if response.get("stopping"):
                        self.stop("shutdown command")
                        return
                finally:
                    if admitted:
                        self._release()
        except OSError:
            pass  # peer vanished; nothing to clean up
        finally:
            try:
                conn.close()
            except OSError:
                pass

    def _dispatch(self, request: dict) -> dict:
        cmd = request.get("cmd")
        start = time.perf_counter()
        trace_id: Optional[str] = None
        if cmd not in COMMANDS:
            response = error_response(
                f"unknown command {cmd!r} (have: {', '.join(COMMANDS)})",
                code="protocol")
        else:
            deadline = None
            if cmd == "analyze":
                try:
                    deadline = self._request_deadline(request)
                except (TypeError, ValueError):
                    deadline = None  # _cmd_analyze reports the error
            # The request's trace identity: the id names it in the
            # slow-request log and ring buffer whether or not spans are
            # being recorded; when they are, the ambient context rides
            # every job to the pool workers and their span batches come
            # home re-parented under this serve_request span.
            ctx = trace.TraceContext(trace.new_trace_id(),
                                     parent=trace.current_lane(),
                                     deadline=deadline)
            trace_id = ctx.trace_id
            with trace.context(ctx), \
                    trace.span("serve_request", cmd=cmd, trace_id=trace_id):
                try:
                    response = getattr(self, f"_cmd_{cmd}")(request)
                except Exception as exc:  # noqa: BLE001 -- daemon must survive
                    response = error_response(
                        f"{type(exc).__name__}: {exc}", code="internal")
        if trace_id is not None:
            # Every response names its request: the client-side exemplar
            # matching the slow-request log, /requestz and the exported
            # span tree.
            response.setdefault("trace_id", trace_id)
        elapsed = time.perf_counter() - start
        ok = bool(response.get("ok"))
        self._account(cmd if cmd in COMMANDS else "unknown",
                      elapsed, ok=ok,
                      cause=None if ok else response.get("code"))
        self._note_request(cmd, request, response, elapsed, ok, trace_id)
        return response

    def _account(self, cmd: str, elapsed: float, *, ok: bool,
                 cause: Optional[str] = None) -> None:
        key = metrics.histogram_key("serve_request_seconds", cmd)
        with self._lock:
            self.requests += 1
            self.by_cmd[cmd] = self.by_cmd.get(cmd, 0) + 1
            if not ok:
                self.errors += 1
                cause = cause if cause in ERROR_CAUSES else "internal"
                self.errors_by_cause[cause] += 1
            data = self._latency.get(key)
            if data is None:
                data = metrics.HistogramData(
                    "serve_request_seconds", metrics.LATENCY_BUCKETS, cmd)
                self._latency[key] = data
            data.observe(elapsed)

    def _note_request(self, cmd: str, request: dict, response: dict,
                      elapsed: float, ok: bool,
                      trace_id: Optional[str]) -> None:
        """Per-request accounting: ring buffer plus the slow-request log.

        The record carries the request's *own* counter deltas (the
        analyzer's per-request collector output, pool workers folded
        in) and its trace id as exemplar -- enough to go from one slow
        line straight to the matching spans in an exported trace.
        """
        record: Dict[str, object] = {
            "ts": round(time.time(), 3),
            "cmd": cmd if cmd in COMMANDS else "unknown",
            "label": str(request.get("label", "")) or None,
            "seconds": round(elapsed, 6),
            "ok": ok,
            "trace_id": trace_id,
        }
        if not ok:
            record["code"] = response.get("code")
        if cmd == "analyze" and ok:
            record["tiers"] = response.get("tiers")
            counters = (response.get("result") or {}).get("counters") or {}
            record["counters"] = {name: value for name, value
                                  in sorted(counters.items()) if value}
        with self._lock:
            self._recent.append(record)
        threshold = self.slow_request_ms
        if threshold is not None and elapsed * 1000.0 >= threshold:
            events.warning("serve_slow_request",
                           cmd=record["cmd"], label=record["label"],
                           seconds=record["seconds"],
                           threshold_ms=threshold, trace_id=trace_id,
                           tiers=record.get("tiers"),
                           counters=record.get("counters"))

    # -- command handlers ----------------------------------------------
    def _cmd_ping(self, request: dict) -> dict:
        return {"ok": True, "pong": True, "pid": os.getpid()}

    def _request_deadline(self, request: dict) -> Optional[float]:
        """Resolve the request's drop-dead instant (monotonic) or None."""
        deadline_ms = request.get("deadline_ms", self.deadline_ms)
        if not deadline_ms:
            return None
        return time.monotonic() + float(deadline_ms) / 1000.0

    def _cmd_analyze(self, request: dict) -> dict:
        source = request.get("source")
        if not isinstance(source, str):
            return error_response("analyze needs a string 'source' field",
                                  code="parse")
        label = str(request.get("label", ""))
        try:
            deadline = self._request_deadline(request)
        except (TypeError, ValueError):
            return error_response("deadline_ms must be a number",
                                  code="parse")
        start = time.perf_counter()
        try:
            result, info = self.analyzer.analyze(
                source, label=label, options=request.get("options"),
                deadline=deadline)
        except (ParseError, ValueError) as exc:
            return error_response(str(exc), code="parse")
        except AnalysisInterrupted as exc:
            return error_response(f"analysis interrupted: {exc}",
                                  code="interrupted")
        except WorkerDied as exc:
            return error_response(f"analysis worker died: {exc}",
                                  code="worker_died")
        wall = time.perf_counter() - start
        with self._lock:
            self._analyze_ewma = (wall if self._analyze_ewma is None
                                  else 0.8 * self._analyze_ewma + 0.2 * wall)
        return {
            "ok": True,
            "result": job_result_to_dict(result),
            "tiers": info["tiers"],
            "procedures": info["procedures"],
            "request_seconds": wall,
        }

    def _config(self) -> dict:
        """The resolved configuration ``status`` and the CLI both print."""
        return {
            "kernel_backend": kernels.resolve(None),
            "cache_dir": (str(self.cache.root)
                          if self.cache is not None else None),
        }

    def _cmd_status(self, request: dict) -> dict:
        uptime = (time.monotonic() - self.started_at
                  if self.started_at is not None else 0.0)
        address = (f"tcp://{self.host}:{self.port}" if self.tcp
                   else f"unix://{self.socket_path}")
        with self._lock:
            requests, connections = self.requests, self.connections
        with self._admission:
            inflight = self._inflight
        response = {
            "ok": True,
            "pid": os.getpid(),
            "version": __version__,
            "protocol": PROTOCOL_VERSION,
            "address": address,
            "workers": self.workers,
            "pool": self.pool,
            "queue_depth": self.queue_depth,
            "deadline_ms": self.deadline_ms,
            "idle_timeout": self.idle_timeout,
            "inflight": inflight,
            "uptime_seconds": uptime,
            "requests": requests,
            "connections": connections,
        }
        if self.supervisor is not None:
            response["breaker_open"] = self.supervisor.breaker_open()
            response["pool_alive"] = (
                self.supervisor.counter_summary()["serve_pool_alive"])
            response["worker_table"] = self.supervisor.worker_table()
        lru_entries, lru_bytes = self.analyzer.lru_occupancy()
        response["lru_entries"] = lru_entries
        response["lru_bytes"] = lru_bytes
        response["http_port"] = self.http_port
        response["slow_request_ms"] = self.slow_request_ms
        response["red"] = self.red_summary()
        response.update(self._config())
        return response

    def red_summary(self) -> dict:
        """RED rollups: request rate, errors by cause, and per-command
        duration percentiles from the live latency histograms."""
        uptime = (time.monotonic() - self.started_at
                  if self.started_at is not None else 0.0)
        commands: Dict[str, dict] = {}
        with self._lock:
            requests, errors = self.requests, self.errors
            by_cause = {cause: count for cause, count
                        in sorted(self.errors_by_cause.items()) if count}
            for data in self._latency.values():
                p50, p95 = data.quantile(0.5), data.quantile(0.95)
                commands[data.label_value or ""] = {
                    "count": data.total,
                    "mean_ms": (round(data.sum / data.total * 1e3, 3)
                                if data.total else None),
                    "p50_ms": (round(p50 * 1e3, 3)
                               if p50 is not None else None),
                    "p95_ms": (round(p95 * 1e3, 3)
                               if p95 is not None else None),
                }
        return {
            "rate_per_s": (round(requests / uptime, 4)
                           if uptime > 0 else 0.0),
            "requests": requests,
            "errors": errors,
            "errors_by_cause": by_cause,
            "commands": dict(sorted(commands.items())),
        }

    # -- HTTP facade surface (read-only; see serve/httpd.py) -----------
    def prometheus(self) -> str:
        """The Prometheus exposition behind ``GET /metrics``."""
        return self._cmd_metrics({})["prometheus"]

    def health(self) -> Tuple[bool, dict]:
        """``(healthy, document)`` behind ``GET /healthz``.

        Unhealthy while stopping, while the pool circuit breaker is
        open, or when a configured pool has zero live workers -- the
        states in which an analyze request would be degraded to inline
        execution or refused outright.
        """
        stopping = self._stopping.is_set()
        doc: Dict[str, object] = {"stopping": stopping, "pool": self.pool}
        healthy = not stopping and self.started_at is not None
        if self.supervisor is not None:
            breaker = self.supervisor.breaker_open()
            alive = self.supervisor.counter_summary()["serve_pool_alive"]
            doc["breaker_open"] = breaker
            doc["pool_alive"] = alive
            if breaker or alive == 0:
                healthy = False
        doc["ok"] = healthy
        return healthy, doc

    def status_document(self) -> dict:
        """The JSON document behind ``GET /statusz``: the ``status``
        response plus the full counter snapshot (the live console
        derives tier hit rates from it)."""
        doc = self._cmd_status({})
        doc["counters"] = self._counter_snapshot()
        return doc

    def recent_requests(self) -> List[dict]:
        """Snapshot of the ring buffer behind ``GET /requestz``
        (oldest first)."""
        with self._lock:
            return list(self._recent)

    def _counter_snapshot(self) -> Dict[str, int]:
        with self._lock:
            counters = {"serve_requests": self.requests,
                        "serve_errors": self.errors,
                        "serve_connections": self.connections,
                        "serve_idle_closed": self.idle_closed}
            counters.update({f"serve_errors_{cause}": count
                             for cause, count
                             in sorted(self.errors_by_cause.items())})
            counters.update({f"serve_requests_{cmd}": count
                             for cmd, count in sorted(self.by_cmd.items())})
        counters.update(self.analyzer.counter_summary())
        if self.supervisor is not None:
            counters.update(self.supervisor.counter_summary())
        return counters

    def _cmd_stats(self, request: dict) -> dict:
        with self._lock:
            latency = {key: data.to_dict()
                       for key, data in self._latency.items()}
        return {
            "ok": True,
            "counters": self._counter_snapshot(),
            "latency": latency,
            "uptime_seconds": (time.monotonic() - self.started_at
                               if self.started_at is not None else 0.0),
        }

    def _cmd_metrics(self, request: dict) -> dict:
        counters = self._counter_snapshot()
        with self._lock:
            histograms = dict(self._latency)
        return {"ok": True,
                "prometheus": metrics.prometheus_text(counters, histograms)}

    def _cmd_shutdown(self, request: dict) -> dict:
        return {"ok": True, "stopping": True, "pid": os.getpid()}


def run_server(args_socket: Optional[str] = None, **kwargs) -> None:
    """Convenience wrapper: build, arm signals, announce, serve."""
    server = AnalysisServer(args_socket, **kwargs)
    server.install_signal_handlers()
    address = server.start()
    print(f"repro serve: listening on {address} "
          f"(workers={server.workers}, pool={server.pool}, "
          f"pid={os.getpid()})", flush=True)
    server.serve_forever()


__all__ = ["AnalysisServer", "COMMANDS", "default_socket_path", "run_server"]
