"""The analysis daemon: accept loop, request handlers, SLO surface.

One :class:`AnalysisServer` owns a listening socket (Unix-domain by
default, TCP with ``port=``), an :class:`IncrementalAnalyzer` shared by
every connection, and the observability state that makes the daemon
operable: request/latency/cache-tier counters, per-request spans, and
a Prometheus rendering of the lot.

Concurrency model: thread-per-connection (connections are long-lived
and mostly idle between frames) with a :class:`threading.Semaphore`
bounding how many *requests* execute simultaneously -- the accept loop
never blocks on analysis, and a slow client cannot starve the daemon.
Handler threads are daemons, so a signal that stops the accept loop
stops the process without waiting on stuck peers; the shutdown path
unlinks the socket file and sweeps orphaned shared-memory segments, so
a SIGTERM mid-request leaves nothing behind (pinned by the chaos
tests).
"""

from __future__ import annotations

import os
import signal
import socket
import threading
import time
from typing import Dict, Optional

from .. import __version__
from ..core import kernels
from ..core.serialize import job_result_to_dict
from ..errors import AnalysisInterrupted
from ..frontend.parser import ParseError
from ..obs import events, metrics, trace
from ..service import transport
from ..service.cache import ResultCache, default_cache_root
from .incremental import IncrementalAnalyzer
from .protocol import (
    PROTOCOL_VERSION, ProtocolError, error_response, recv_message,
    send_message,
)

metrics.REGISTRY.counter("serve_requests", "Requests the server handled")
metrics.REGISTRY.counter("serve_errors",
                         "Requests that produced an error response")
metrics.REGISTRY.histogram("serve_request_seconds",
                           "Wall seconds per server request",
                           buckets=metrics.LATENCY_BUCKETS, label="cmd")

#: Default socket filename under the cache root.
SOCKET_NAME = "serve.sock"

COMMANDS = ("ping", "analyze", "status", "stats", "metrics", "shutdown")


def default_socket_path() -> str:
    return os.path.join(default_cache_root(), SOCKET_NAME)


class AnalysisServer:
    """A long-lived analysis daemon over one listening socket."""

    def __init__(self, socket_path: Optional[str] = None, *,
                 host: str = "127.0.0.1", port: Optional[int] = None,
                 workers: int = 4, cache: Optional[ResultCache] = None,
                 cache_dir: Optional[str] = None, use_cache: bool = True,
                 lru_procedures: int = 1024, lru_programs: int = 64) -> None:
        self.tcp = port is not None
        self.host = host
        self.port = port
        self.socket_path = (socket_path if socket_path is not None
                            else default_socket_path()) if not self.tcp else None
        if cache is None and use_cache:
            cache = ResultCache(cache_dir)
        self.cache = cache
        self.analyzer = IncrementalAnalyzer(
            cache, lru_procedures=lru_procedures, lru_programs=lru_programs)
        self.workers = max(1, int(workers))
        self._request_gate = threading.Semaphore(self.workers)
        self._listener: Optional[socket.socket] = None
        self._stopping = threading.Event()
        self._lock = threading.Lock()
        self.started_at: Optional[float] = None
        self.requests = 0
        self.errors = 0
        self.connections = 0
        self.by_cmd: Dict[str, int] = {}
        self._latency: Dict[str, metrics.HistogramData] = {}

    # -- lifecycle -----------------------------------------------------
    def start(self) -> str:
        """Bind and listen; returns a printable address."""
        if self.tcp:
            listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            listener.bind((self.host, self.port))
            self.port = listener.getsockname()[1]
            address = f"tcp://{self.host}:{self.port}"
        else:
            os.makedirs(os.path.dirname(self.socket_path) or ".",
                        exist_ok=True)
            self._clear_stale_socket()
            listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            listener.bind(self.socket_path)
            address = f"unix://{self.socket_path}"
        listener.listen(64)
        # A finite accept timeout so the loop re-checks the stopping
        # flag: close() alone does not wake a thread blocked in accept().
        listener.settimeout(0.2)
        self._listener = listener
        self.started_at = time.monotonic()
        events.info("serve_listening", address=address,
                    workers=self.workers)
        return address

    def _clear_stale_socket(self) -> None:
        """Unlink a leftover socket file iff nothing is serving on it."""
        if not os.path.exists(self.socket_path):
            return
        probe = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        try:
            probe.settimeout(0.5)
            probe.connect(self.socket_path)
        except OSError:
            os.unlink(self.socket_path)  # stale: a dead server left it
        else:
            raise RuntimeError(
                f"another server is live on {self.socket_path}")
        finally:
            probe.close()

    def stop(self, reason: str = "requested") -> None:
        """Stop the accept loop (idempotent, callable from any thread)."""
        if self._stopping.is_set():
            return
        self._stopping.set()
        events.info("serve_stopping", reason=reason)
        listener = self._listener
        if listener is not None:
            try:
                listener.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                listener.close()
            except OSError:
                pass

    def install_signal_handlers(self) -> None:
        """SIGTERM/SIGINT trigger the same clean shutdown path."""
        for signum in (signal.SIGTERM, signal.SIGINT):
            signal.signal(signum,
                          lambda sig, frame: self.stop(f"signal {sig}"))

    def serve_forever(self) -> None:
        """Accept until :meth:`stop`; always leaves no socket/shm litter."""
        if self._listener is None:
            self.start()
        try:
            while not self._stopping.is_set():
                try:
                    conn, _ = self._listener.accept()
                except socket.timeout:
                    continue  # periodic stopping-flag check
                except OSError:
                    break  # listener closed by stop()
                with self._lock:
                    self.connections += 1
                thread = threading.Thread(
                    target=self._serve_connection, args=(conn,), daemon=True)
                thread.start()
        finally:
            self.stop("serve_forever exit")
            if self.socket_path is not None:
                try:
                    os.unlink(self.socket_path)
                except OSError:
                    pass
            transport.sweep_orphans()
            events.info("serve_stopped", requests=self.requests)

    # -- connections ---------------------------------------------------
    def _serve_connection(self, conn: socket.socket) -> None:
        conn.settimeout(None)  # idle clients may hold connections open
        try:
            while not self._stopping.is_set():
                try:
                    request = recv_message(conn)
                except ProtocolError as exc:
                    send_message(conn, error_response(str(exc)))
                    return
                if request is None:
                    return  # clean EOF
                with self._request_gate:
                    response = self._dispatch(request)
                send_message(conn, response)
                if response.get("stopping"):
                    self.stop("shutdown command")
                    return
        except OSError:
            pass  # peer vanished; nothing to clean up
        finally:
            try:
                conn.close()
            except OSError:
                pass

    def _dispatch(self, request: dict) -> dict:
        cmd = request.get("cmd")
        start = time.perf_counter()
        if cmd not in COMMANDS:
            response = error_response(
                f"unknown command {cmd!r} (have: {', '.join(COMMANDS)})")
        else:
            with trace.span("serve_request", cmd=cmd):
                try:
                    response = getattr(self, f"_cmd_{cmd}")(request)
                except Exception as exc:  # noqa: BLE001 -- daemon must survive
                    response = error_response(
                        f"{type(exc).__name__}: {exc}")
        elapsed = time.perf_counter() - start
        self._account(cmd if cmd in COMMANDS else "unknown",
                      elapsed, ok=bool(response.get("ok")))
        return response

    def _account(self, cmd: str, elapsed: float, *, ok: bool) -> None:
        key = metrics.histogram_key("serve_request_seconds", cmd)
        with self._lock:
            self.requests += 1
            self.by_cmd[cmd] = self.by_cmd.get(cmd, 0) + 1
            if not ok:
                self.errors += 1
            data = self._latency.get(key)
            if data is None:
                data = metrics.HistogramData(
                    "serve_request_seconds", metrics.LATENCY_BUCKETS, cmd)
                self._latency[key] = data
            data.observe(elapsed)

    # -- command handlers ----------------------------------------------
    def _cmd_ping(self, request: dict) -> dict:
        return {"ok": True, "pong": True, "pid": os.getpid()}

    def _cmd_analyze(self, request: dict) -> dict:
        source = request.get("source")
        if not isinstance(source, str):
            return error_response("analyze needs a string 'source' field")
        label = str(request.get("label", ""))
        start = time.perf_counter()
        try:
            result, info = self.analyzer.analyze(
                source, label=label, options=request.get("options"))
        except (ParseError, ValueError) as exc:
            return error_response(str(exc))
        except AnalysisInterrupted as exc:
            return error_response(f"analysis interrupted: {exc}")
        wall = time.perf_counter() - start
        return {
            "ok": True,
            "result": job_result_to_dict(result),
            "tiers": info["tiers"],
            "procedures": info["procedures"],
            "request_seconds": wall,
        }

    def _config(self) -> dict:
        """The resolved configuration ``status`` and the CLI both print."""
        return {
            "kernel_backend": kernels.resolve(None),
            "cache_dir": (str(self.cache.root)
                          if self.cache is not None else None),
        }

    def _cmd_status(self, request: dict) -> dict:
        uptime = (time.monotonic() - self.started_at
                  if self.started_at is not None else 0.0)
        address = (f"tcp://{self.host}:{self.port}" if self.tcp
                   else f"unix://{self.socket_path}")
        with self._lock:
            requests, connections = self.requests, self.connections
        response = {
            "ok": True,
            "pid": os.getpid(),
            "version": __version__,
            "protocol": PROTOCOL_VERSION,
            "address": address,
            "workers": self.workers,
            "uptime_seconds": uptime,
            "requests": requests,
            "connections": connections,
        }
        lru_entries, lru_bytes = self.analyzer.lru_occupancy()
        response["lru_entries"] = lru_entries
        response["lru_bytes"] = lru_bytes
        response.update(self._config())
        return response

    def _counter_snapshot(self) -> Dict[str, int]:
        with self._lock:
            counters = {"serve_requests": self.requests,
                        "serve_errors": self.errors,
                        "serve_connections": self.connections}
            counters.update({f"serve_requests_{cmd}": count
                             for cmd, count in sorted(self.by_cmd.items())})
        counters.update(self.analyzer.counter_summary())
        return counters

    def _cmd_stats(self, request: dict) -> dict:
        with self._lock:
            latency = {key: data.to_dict()
                       for key, data in self._latency.items()}
        return {
            "ok": True,
            "counters": self._counter_snapshot(),
            "latency": latency,
            "uptime_seconds": (time.monotonic() - self.started_at
                               if self.started_at is not None else 0.0),
        }

    def _cmd_metrics(self, request: dict) -> dict:
        counters = self._counter_snapshot()
        with self._lock:
            histograms = dict(self._latency)
        return {"ok": True,
                "prometheus": metrics.prometheus_text(counters, histograms)}

    def _cmd_shutdown(self, request: dict) -> dict:
        return {"ok": True, "stopping": True, "pid": os.getpid()}


def run_server(args_socket: Optional[str] = None, **kwargs) -> None:
    """Convenience wrapper: build, arm signals, announce, serve."""
    server = AnalysisServer(args_socket, **kwargs)
    server.install_signal_handlers()
    address = server.start()
    print(f"repro serve: listening on {address} "
          f"(workers={server.workers}, pid={os.getpid()})", flush=True)
    server.serve_forever()


__all__ = ["AnalysisServer", "COMMANDS", "default_socket_path", "run_server"]
