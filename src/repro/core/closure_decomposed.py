"""Decomposed octagon closure (paper section 5.4).

When the maintained partition splits the variables into independent
components, closure runs per component:

* **Shortest-path step.** A transitive minimisation can only create a
  new inequality between two variables if a third variable already
  relates to both -- so variables in *different* components can never
  become related during this step, and it is sound to close each
  component's submatrix independently.  Per submatrix we first measure
  sparsity: sparse submatrices use the index-driven sparse closure in
  place; dense submatrices are copied out to a contiguous temporary
  (the paper's workaround for non-contiguous submatrices), closed with
  the vectorised dense closure, and copied back.
* **Strengthening.** This step *can* merge components: a finite unary
  bound ``O[i, i^1]`` on a variable in one component combines with a
  finite unary bound on a variable in another, producing a binary
  inequality across the two.  We fuse every component owning a finite
  unary diagonal entry (plus any unpartitioned variable with one) into
  a single component and run the sparse strengthening, which touches
  exactly the affected rows/columns.

Closure is also the point where the structural information is refreshed
exactly (paper section 3.5): the caller receives the *exact* partition
re-extracted from the closed matrix together with the exact ``nni``.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from . import kernels
from .indexing import expand_vars, half_size
from .partition import Partition
from .stats import OpCounter
from .strengthen import is_bottom_numpy, reset_diagonal_numpy
from .workspace import get_workspace


def submatrix_sparsity(sub: np.ndarray) -> float:
    """Sparsity measure of a component submatrix (half-representation)."""
    b = sub.shape[0] // 2
    if b == 0:
        return 0.0
    return 1.0 - kernels.count_nni(sub) / half_size(b)


def close_component(
    m: np.ndarray,
    variables,
    *,
    sparse_threshold: float = 0.75,
    counter: Optional[OpCounter] = None,
) -> None:
    """Shortest-path-close one component's submatrix in place in ``m``."""
    idx = np.asarray(expand_vars(sorted(variables)), dtype=np.intp)
    gather = np.ix_(idx, idx)
    sub = np.ascontiguousarray(m[gather])
    if submatrix_sparsity(sub) >= sparse_threshold:
        kernels.sparse_shortest_path(sub, counter)
    else:
        # Copy-close-copy-back with the vectorised dense kernel; run only
        # the shortest-path part here (strengthening happens globally so
        # that component merging is handled in one place).
        kernels.dense_shortest_path(sub, counter)
    m[gather] = sub


def strengthen_and_merge(
    m: np.ndarray, partition: Partition, counter: Optional[OpCounter] = None
) -> Partition:
    """Global strengthening; returns the partition with merged blocks."""
    dim = m.shape[0]
    ws = get_workspace(dim)
    d = m[ws.arange, ws.xor]
    finite_vars = np.nonzero(np.isfinite(d).reshape(-1, 2).any(axis=1))[0]
    performed = kernels.strengthen_sparse(m)
    if counter is not None:
        counter.tick(3 * performed)
    if finite_vars.size > 1:
        partition = partition.merge_blocks_containing(finite_vars.tolist())
    return partition


def closure_decomposed(
    m: np.ndarray,
    partition: Partition,
    *,
    sparse_threshold: float = 0.75,
    counter: Optional[OpCounter] = None,
) -> Tuple[bool, Partition]:
    """Close a decomposed DBM in place.

    Returns ``(is_bottom, exact_partition)``.  The returned partition is
    the exact one re-extracted from the closed matrix -- the paper's
    piggybacked recomputation that keeps the maintained structure from
    degrading towards the dense case.
    """
    n = m.shape[0] // 2
    if partition.is_empty():
        return False, partition
    # Degenerate single full block: defer to the plain dense/sparse path.
    if len(partition.blocks) == 1 and len(partition.blocks[0]) == n:
        empty = kernels.dense_closure(m, counter)
        if empty:
            return True, partition
        return False, Partition.from_matrix(m)
    for block in partition.blocks:
        close_component(m, block, sparse_threshold=sparse_threshold, counter=counter)
    strengthen_and_merge(m, partition, counter)
    if is_bottom_numpy(m):
        return True, partition
    reset_diagonal_numpy(m)
    return False, Partition.from_matrix(m)
