"""Cooperative resource budgets for analysis runs.

A :class:`Budget` bounds one analysis attempt along three axes:

* **wall-clock deadline** (``time_limit`` seconds from construction),
* **iteration cap** (fixpoint recomputations across all loops),
* **DBM-cell cap** (cumulative cells pushed through closure kernels --
  a proxy for the memory traffic that explodes when a decomposed
  octagon densifies).

The fixpoint engines call :meth:`Budget.checkpoint` once per node
recomputation; the octagon closure kernels charge their matrix area
through the *ambient* budget (:func:`charge_cells`) so deep call
chains need no explicit threading.  Checkpoints are cheap -- an
attribute bump plus one ``time.monotonic()`` call -- and when no
budget is active the ambient hooks reduce to a single global ``None``
test, so the un-governed hot path pays nothing measurable
(``benchmarks/bench_degradation.py`` records the overhead; the gate
is <2% on the 17-benchmark suite).

Exhaustion raises :class:`repro.errors.BudgetExceeded`; the engines
convert that into :class:`repro.errors.AnalysisInterrupted` carrying
the partial invariant map, and the analyzer's degradation ladder
reacts by retrying the procedure in a cheaper domain.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterator, Optional

from ..errors import BudgetExceeded
from ..obs import metrics
from . import stats

# Checkpoints fire once per fixpoint iteration and once per closure --
# frequent enough that per-event collector dispatch would be
# measurable, so they are counted in a module global and reported as a
# delta (see ``stats.register_counter_source``).
_CHECKPOINTS = 0

stats.register_counter_source(lambda: {"budget_checkpoints": _CHECKPOINTS})

metrics.REGISTRY.counter("budget_checkpoints",
                         "Cooperative budget checks performed")
metrics.REGISTRY.counter("budget_interrupts",
                         "Analyses interrupted by an exhausted budget")


class Budget:
    """One attempt's resource envelope.  Not thread-safe (one per run)."""

    __slots__ = ("time_limit", "max_iterations", "max_cells",
                 "deadline", "iterations", "cells")

    def __init__(self, *, time_limit: Optional[float] = None,
                 max_iterations: Optional[int] = None,
                 max_cells: Optional[int] = None):
        self.time_limit = time_limit
        self.max_iterations = max_iterations
        self.max_cells = max_cells
        self.deadline = (None if time_limit is None
                         else time.monotonic() + float(time_limit))
        self.iterations = 0
        self.cells = 0

    @property
    def bounded(self) -> bool:
        return (self.deadline is not None or self.max_iterations is not None
                or self.max_cells is not None)

    def checkpoint(self) -> None:
        """One unit of fixpoint work; raises on an exhausted budget."""
        global _CHECKPOINTS
        _CHECKPOINTS += 1
        self.iterations += 1
        if (self.max_iterations is not None
                and self.iterations > self.max_iterations):
            raise BudgetExceeded(
                "iterations",
                f"iteration budget exhausted ({self.max_iterations})",
                spent=self.iterations, limit=self.max_iterations)
        self._check_deadline()

    def charge_cells(self, amount: int) -> None:
        """Account ``amount`` DBM cells of closure-kernel traffic."""
        global _CHECKPOINTS
        _CHECKPOINTS += 1
        self.cells += int(amount)
        if self.max_cells is not None and self.cells > self.max_cells:
            raise BudgetExceeded(
                "cells",
                f"DBM-cell budget exhausted ({self.cells} > {self.max_cells})",
                spent=self.cells, limit=self.max_cells)
        self._check_deadline()

    def _check_deadline(self) -> None:
        if self.deadline is not None and time.monotonic() > self.deadline:
            raise BudgetExceeded(
                "deadline",
                f"wall-clock budget exhausted ({self.time_limit:g}s)",
                spent=self.time_limit or 0.0, limit=self.time_limit or 0.0)

    def __repr__(self) -> str:
        return (f"Budget(time_limit={self.time_limit}, "
                f"max_iterations={self.max_iterations}, "
                f"max_cells={self.max_cells}, iterations={self.iterations}, "
                f"cells={self.cells})")


#: Floor for deadline-derived time budgets: a request that arrives with
#: (almost) no time left still gets a sliver of budget, so the analyzer
#: runs its degradation ladder and returns a sound ``degraded`` answer
#: instead of dividing by a zero-second budget.
MIN_TIME_BUDGET = 1e-3


def clamp_to_deadline(time_budget: Optional[float],
                      deadline: Optional[float]) -> Optional[float]:
    """Tighten ``time_budget`` to a monotonic ``deadline``.

    ``deadline`` is an absolute :func:`time.monotonic` instant (the
    serve request's drop-dead time); the result is the smaller of the
    job's own time budget and the seconds remaining until the deadline,
    floored at :data:`MIN_TIME_BUDGET`.  ``None`` deadline leaves the
    budget untouched; both ``None`` stays unbounded.
    """
    if deadline is None:
        return time_budget
    remaining = max(MIN_TIME_BUDGET, deadline - time.monotonic())
    if time_budget is None:
        return remaining
    return min(float(time_budget), remaining)


# ----------------------------------------------------------------------
# ambient budget: lets closure kernels checkpoint without threading a
# Budget object through every domain operation
# ----------------------------------------------------------------------
_ACTIVE: Optional[Budget] = None


def active_budget() -> Optional[Budget]:
    return _ACTIVE


@contextmanager
def governed(budget: Optional[Budget]) -> Iterator[Optional[Budget]]:
    """Install ``budget`` as the ambient budget for the block.

    ``governed(None)`` is a no-op scope, so engines can wrap their
    solve loop unconditionally.
    """
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = budget
    try:
        yield budget
    finally:
        _ACTIVE = previous


def charge_cells(amount: int) -> None:
    """Charge closure-kernel traffic to the ambient budget, if any."""
    if _ACTIVE is not None:
        _ACTIVE.charge_cells(amount)


__all__ = ["Budget", "MIN_TIME_BUDGET", "active_budget", "charge_cells",
           "clamp_to_deadline", "governed"]
