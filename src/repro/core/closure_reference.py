"""Reference octagon closure on the full DBM (paper Algorithm 1).

Two variants of the textbook algorithm -- Floyd-Warshall shortest-path
closure over all ``2n`` extended variables followed by strengthening:

* :func:`closure_full_scalar` is a line-by-line transcription of
  Algorithm 1 in pure Python.  It is the ground truth that every other
  closure implementation is tested against.
* :func:`closure_full_numpy` is the AVX-style vectorised version of the
  same algorithm, *without* the paper's operation-count reduction.  It
  plays the role of the paper's "FW" comparator in Figure 6: what you
  get from processor-level optimisation alone.

Both operate in place on a full coherent ``2n x 2n`` matrix and return
True when the octagon is empty (negative diagonal after closure).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .stats import OpCounter
from .strengthen import (
    is_bottom_numpy,
    reset_diagonal_numpy,
    strengthen_numpy,
)


def closure_full_scalar(m: np.ndarray, counter: Optional[OpCounter] = None) -> bool:
    """Algorithm 1, scalar, on a full DBM.  Returns True iff bottom."""
    dim = m.shape[0]
    ticks = 0
    # Shortest-path closure (Floyd-Warshall over all 2n pivots).
    for k in range(dim):
        for i in range(dim):
            oik = m[i, k]
            for j in range(dim):
                ticks += 1
                cand = oik + m[k, j]
                if cand < m[i, j]:
                    m[i, j] = cand
    if counter is not None:
        counter.tick(2 * ticks)  # add + compare per candidate
    # Strengthening.
    sticks = 0
    for i in range(dim):
        dii = m[i, i ^ 1]
        for j in range(dim):
            sticks += 1
            cand = (dii + m[j ^ 1, j]) / 2.0
            if cand < m[i, j]:
                m[i, j] = cand
    if counter is not None:
        counter.tick(3 * sticks)  # add + halve + compare
    if is_bottom_numpy(m):
        return True
    reset_diagonal_numpy(m)
    return False


def closure_full_numpy(m: np.ndarray, counter: Optional[OpCounter] = None) -> bool:
    """Algorithm 1, vectorised (the Fig. 6 "FW" comparator).

    One full-matrix min-plus rank-1 update per pivot -- exactly the
    Floyd-Warshall structure of Algorithm 1, each ``k`` iteration
    vectorised, followed by vectorised strengthening.  Pivots are
    processed in their natural order ``0, 1, 2, ...``; since each pair
    ``2k, 2k+1`` is applied back to back, coherence of the input matrix
    is preserved at pair boundaries.
    """
    dim = m.shape[0]
    for k in range(dim):
        np.minimum(m, m[:, k, None] + m[None, k, :], out=m)
    strengthen_numpy(m)
    if counter is not None:
        # Full-matrix FW performs dim^3 candidate mins plus dim^2
        # strengthening entries (2 and 3 ops each respectively).
        counter.tick(2 * dim ** 3 + 3 * dim ** 2)
    if is_bottom_numpy(m):
        return True
    reset_diagonal_numpy(m)
    return False
