"""Reusable per-dimension kernel workspaces (hot-path memory layer).

Every closure call used to rebuild the same auxiliary arrays from
scratch: ``np.arange(dim)`` index vectors, the ``i ^ 1`` coherence
permutation, a ``dim x dim`` scratch matrix for the min-plus updates,
boolean masks for the sparsity counts, and the packed-index tables of
the half representation.  In a fixpoint loop the analyzer closes
matrices of the *same* dimension thousands of times (Table 2), so all
of that allocation is pure constant-factor waste.

:class:`Workspace` bundles those buffers for one dimension; the
module-level registry hands out one workspace per ``dim`` and the
kernels in ``closure_dense``/``closure_sparse``/``closure_decomposed``/
``closure_incremental`` (plus ``strengthen`` and ``densemat``) draw
their scratch from it, so repeated closures at one dimension perform
zero buffer allocations.

Scratch buffers hold *unspecified* data between calls; a kernel must
fully overwrite a buffer before reading it (all users follow the
write-then-consume discipline).  The registry is **thread-local**: the
analysis server (``repro/serve``) runs fixpoints on concurrent
threads, and a shared scratch matrix raced between two closures of the
same dimension corrupts both.  Each thread pays its own one-time
allocation per dimension and then reuses its buffers freely.  Constant
tables (``arange``, ``xor``, ``lower_mask``, packed indices) are
read-only by convention.

:func:`set_enabled`/:func:`disabled` switch the registry off (a fresh
workspace per request), which restores the pre-PR allocation behaviour
for baseline measurements.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Dict, Iterator, Optional

import numpy as np

from ..obs import metrics
from . import stats
from .indexing import cap, half_size, matpos2

_ENABLED = True

# Hit/miss counts live in module globals for the same reason as the
# COW clone counters: per-event collector dispatch is too expensive at
# this call frequency (see ``stats.register_counter_source``).
_HITS = 0
_MISSES = 0

stats.register_counter_source(
    lambda: {"workspace_hits": _HITS, "workspace_misses": _MISSES})

metrics.REGISTRY.counter("workspace_hits",
                         "Kernel scratch buffers reused from the registry")
metrics.REGISTRY.counter("workspace_misses",
                         "Kernel scratch buffers freshly allocated")


def set_enabled(flag: bool) -> bool:
    """Enable/disable workspace reuse; returns the previous value."""
    global _ENABLED
    previous = _ENABLED
    _ENABLED = bool(flag)
    return previous


def is_enabled() -> bool:
    return _ENABLED


@contextmanager
def disabled() -> Iterator[None]:
    """Run a block with per-call buffer allocation (pre-workspace)."""
    previous = set_enabled(False)
    try:
        yield
    finally:
        set_enabled(previous)


class PackedIndex:
    """Precomputed gather/scatter indices of the packed half DBM.

    * ``idx[i, j]`` -- packed offset of ``O[i, j]`` for any coordinate
      (``matpos2`` as a 2n x 2n table), used to materialise "virtual"
      full rows, the paper's contiguous scratch buffers.
    * ``rows``/``cols`` -- for every packed slot, its (lower-triangle)
      row and column coordinate; drive the bulk update gathers.
    * ``cols_bar`` -- ``cols ^ 1``, for strengthening.
    * ``diag``/``unary`` -- packed offsets of ``O[i, i]`` and
      ``O[i, i^1]``.
    """

    __slots__ = ("n", "idx", "rows", "cols", "cols_bar", "diag", "unary")

    def __init__(self, n: int):
        self.n = n
        dim = 2 * n
        idx = np.empty((dim, dim), dtype=np.int64)
        for i in range(dim):
            for j in range(dim):
                idx[i, j] = matpos2(i, j)
        self.idx = idx
        size = half_size(n)
        rows = np.empty(size, dtype=np.int64)
        cols = np.empty(size, dtype=np.int64)
        for i in range(dim):
            base = (i + 1) * (i + 1) // 2
            for j in range(cap(i) + 1):
                rows[base + j] = i
                cols[base + j] = j
        self.rows = rows
        self.cols = cols
        self.cols_bar = cols ^ 1
        ar = np.arange(dim)
        self.diag = idx[ar, ar].copy()
        self.unary = idx[ar, ar ^ 1].copy()


class Workspace:
    """Scratch buffers and constant index tables for one dimension."""

    __slots__ = ("dim", "arange", "xor", "_scratch", "_scratch2",
                 "_bool_scratch", "_lower_mask", "_vecs", "_packed")

    def __init__(self, dim: int):
        self.dim = dim
        self.arange = np.arange(dim)
        self.xor = self.arange ^ 1
        self._scratch: Optional[np.ndarray] = None
        self._scratch2: Optional[np.ndarray] = None
        self._bool_scratch: Optional[np.ndarray] = None
        self._lower_mask: Optional[np.ndarray] = None
        self._vecs: Dict[str, np.ndarray] = {}
        self._packed: Optional[PackedIndex] = None

    # -- scratch matrices (contents unspecified between calls) ----------
    @property
    def scratch(self) -> np.ndarray:
        """Primary ``dim x dim`` float64 scratch matrix."""
        if self._scratch is None:
            self._scratch = np.empty((self.dim, self.dim), dtype=np.float64)
        return self._scratch

    @property
    def scratch2(self) -> np.ndarray:
        """Secondary ``dim x dim`` float64 scratch matrix."""
        if self._scratch2 is None:
            self._scratch2 = np.empty((self.dim, self.dim), dtype=np.float64)
        return self._scratch2

    @property
    def bool_scratch(self) -> np.ndarray:
        """``dim x dim`` boolean scratch (masks, finiteness tests)."""
        if self._bool_scratch is None:
            self._bool_scratch = np.empty((self.dim, self.dim), dtype=bool)
        return self._bool_scratch

    def vec(self, name: str) -> np.ndarray:
        """A named ``(dim,)`` float64 scratch vector."""
        buf = self._vecs.get(name)
        if buf is None:
            buf = np.empty(self.dim, dtype=np.float64)
            self._vecs[name] = buf
        return buf

    # -- constant tables (read-only by convention) -----------------------
    @property
    def lower_mask(self) -> np.ndarray:
        """Boolean mask of the stored coherent half: ``j <= (i | 1)``."""
        if self._lower_mask is None:
            i = self.arange[:, None]
            j = self.arange[None, :]
            self._lower_mask = j <= (i | 1)
        return self._lower_mask

    @property
    def packed(self) -> PackedIndex:
        """Packed half-DBM index tables (octagon dims only: ``dim = 2n``)."""
        if self._packed is None:
            if self.dim % 2:
                raise ValueError("packed indices need an even dimension")
            self._packed = PackedIndex(self.dim // 2)
        return self._packed


_LOCAL = threading.local()


def _registry() -> Dict[int, Workspace]:
    reg = getattr(_LOCAL, "registry", None)
    if reg is None:
        reg = _LOCAL.registry = {}
    return reg


def get_workspace(dim: int) -> Workspace:
    """This thread's workspace for ``dim`` (fresh per call when disabled)."""
    global _HITS, _MISSES
    if not _ENABLED:
        return Workspace(dim)
    registry = _registry()
    ws = registry.get(dim)
    if ws is None:
        ws = Workspace(dim)
        registry[dim] = ws
        _MISSES += 1
    else:
        _HITS += 1
    return ws


def clear() -> None:
    """Drop this thread's cached workspaces (tests, memory pressure)."""
    _registry().clear()
