"""APRON's octagon closure on the half representation (paper Algorithm 2).

APRON stores only the lower-triangular half of the coherent DBM.  The
full DBM is *not* symmetric, so Floyd-Warshall cannot simply run on the
stored half: during the ``(2k+1)``-th pivot iteration the algorithm
needs entries of row ``2k+1`` whose coherent mirrors in the lower
triangle were already modified in the ``2k``-th iteration.  APRON's fix
(Algorithm 2) performs *two* min operations per entry per outer
iteration -- one against pivot ``k`` and one against pivot ``k^1`` --
which restores correctness at the price of roughly doubling the work of
full-matrix Floyd-Warshall: ``16n^3 + 22n^2 + 6n`` operations in total
(counting one add + one compare per shortest-path candidate and one
add + one halve + one compare per strengthening candidate).

This module is the *baseline* of the reproduction: a faithful
pure-Python transcription with the exact APRON data layout.  Tests
verify both its result (against the reference full-DBM closure) and its
operation count (against the paper's polynomial).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .halfmat import HalfMat
from .indexing import cap, matpos2
from .stats import OpCounter
from .strengthen import (
    is_bottom_half,
    reset_diagonal_half,
    strengthen_scalar,
)


def shortest_path_apron(m: HalfMat, counter: Optional[OpCounter] = None) -> None:
    """Algorithm 2: APRON's shortest-path closure on the half DBM."""
    dim = 2 * m.n
    data = m.data
    ticks = 0
    for k in range(dim):
        kb = k ^ 1
        for i in range(dim):
            oik = data[matpos2(i, k)]
            oikb = data[matpos2(i, kb)]
            base = (i + 1) * (i + 1) // 2
            for j in range(cap(i) + 1):
                ticks += 2
                p = base + j
                cand = oik + data[matpos2(k, j)]
                if cand < data[p]:
                    data[p] = cand
                cand = oikb + data[matpos2(kb, j)]
                if cand < data[p]:
                    data[p] = cand
    if counter is not None:
        counter.tick(2 * ticks)  # add + compare per candidate min


def closure_apron(m: HalfMat, counter: Optional[OpCounter] = None) -> bool:
    """Full APRON closure: Algorithm 2 + strengthening.

    Returns True iff the octagon is empty.
    """
    shortest_path_apron(m, counter)
    strengthen_scalar(m, counter)
    if is_bottom_half(m):
        return True
    reset_diagonal_half(m)
    return False


def apron_closure_op_count(n: int) -> int:
    """The paper's operation count for the standard closure.

    ``16n^3 + 22n^2 + 6n``: Algorithm 2 evaluates two candidate mins
    (2 ops each) for each of the ``2n^2 + 2n`` stored entries per outer
    iteration (``2n`` iterations), and strengthening costs 3 ops per
    stored entry.
    """
    return 16 * n ** 3 + 22 * n ** 2 + 6 * n


def closure_apron_fullmat(m: np.ndarray, counter: Optional[OpCounter] = None) -> bool:
    """Convenience wrapper: run the APRON closure on a full coherent DBM.

    Used by benchmarks that hold octagons as NumPy matrices but want to
    time the scalar baseline: converts to the half layout, closes, and
    writes the result back.
    """
    half = HalfMat.from_full(m)
    empty = closure_apron(half, counter)
    if not empty:
        m[...] = half.to_full()
    return empty
