"""Core of the reproduction: the optimised Octagon abstract domain.

Public surface:

* :class:`Octagon` -- the optimised domain element (online
  decomposition, sparse/dense/decomposed/top DBM kinds, vectorised
  closure).
* :class:`ApronOctagon` -- the APRON-faithful scalar baseline.
* :class:`OctConstraint` / :class:`LinExpr` -- the constraint language.
* :class:`SwitchPolicy` / :class:`DbmKind` -- the type-switching knobs.
* :class:`Budget` -- cooperative resource budgets (wall clock,
  iterations, DBM cells) for governed analysis runs.
* :mod:`repro.core.sentinel` -- the opt-in paranoid DBM integrity
  sentinel (``REPRO_PARANOID=1``).
* :mod:`repro.core.stats` -- instrumentation used by the benchmarks.
"""

from .apron_octagon import ApronOctagon
from .bounds import INF, NEG_INF
from .budget import Budget
from .constraints import LinExpr, OctConstraint
from .kinds import DEFAULT_POLICY, DbmKind, SwitchPolicy
from .octagon import Octagon
from .partition import Partition
from .sentinel import paranoid_enabled, set_paranoid

__all__ = [
    "ApronOctagon",
    "Budget",
    "DbmKind",
    "DEFAULT_POLICY",
    "INF",
    "LinExpr",
    "NEG_INF",
    "OctConstraint",
    "Octagon",
    "Partition",
    "SwitchPolicy",
    "paranoid_enabled",
    "set_paranoid",
]
