"""Core of the reproduction: the optimised Octagon abstract domain.

Public surface:

* :class:`Octagon` -- the optimised domain element (online
  decomposition, sparse/dense/decomposed/top DBM kinds, vectorised
  closure).
* :class:`ApronOctagon` -- the APRON-faithful scalar baseline.
* :class:`OctConstraint` / :class:`LinExpr` -- the constraint language.
* :class:`SwitchPolicy` / :class:`DbmKind` -- the type-switching knobs.
* :mod:`repro.core.stats` -- instrumentation used by the benchmarks.
"""

from .apron_octagon import ApronOctagon
from .bounds import INF, NEG_INF
from .constraints import LinExpr, OctConstraint
from .kinds import DEFAULT_POLICY, DbmKind, SwitchPolicy
from .octagon import Octagon
from .partition import Partition

__all__ = [
    "ApronOctagon",
    "DbmKind",
    "DEFAULT_POLICY",
    "INF",
    "LinExpr",
    "NEG_INF",
    "OctConstraint",
    "Octagon",
    "Partition",
    "SwitchPolicy",
]
