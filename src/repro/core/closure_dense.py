"""The new dense closure (paper Algorithm 3 + section 5.2 optimisations).

APRON's half-matrix closure (Algorithm 2) performs two candidate mins
per stored entry for *each of the 2n* outer iterations because of the
asymmetry of the coherent DBM.  The paper's key observation: run the
``2k`` and ``2k+1`` pivot iterations *together*.  First bring the
``2k``/``2k+1`` rows and columns up to date (possible with one min per
entry, using only lower-triangle operands), then every remaining entry
can be updated with its two candidate mins in any order -- enabling
vectorisation -- for a total of ``8n^3 + O(n^2)`` operations, half of
Algorithm 2.

Three implementations:

* :func:`closure_dense_scalar` -- pure-Python transcription of
  Algorithm 3 on the half representation, instrumented so tests can
  verify the operation-count halving against
  :func:`dense_closure_op_count`.
* :func:`closure_dense_packed` -- Algorithm 3 vectorised on a *packed*
  flat copy of the half DBM (2n^2 + 2n doubles): the paper's buffered
  pivot rows/columns become NumPy gathers (``flat[IDX[p]]``) and the
  bulk update touches half the elements of a full-matrix sweep.  It
  demonstrates the halved candidate count on vectorised kernels, but
  NumPy's element-wise kernels are memory-bound and the gather/scatter
  cost eats the arithmetic savings wall-clock-wise.
* :func:`closure_dense_numpy` -- the production closure: the fastest
  vectorised formulation in NumPy (paired-pivot full-coherent sweep
  with a preallocated scratch buffer); see its docstring and
  EXPERIMENTS.md for the measured trade-off.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from . import workspace as _workspace
from .halfmat import HalfMat
from .indexing import cap, matpos2
from .stats import OpCounter
from .workspace import PackedIndex as _PackedIndex, get_workspace
from .strengthen import (
    is_bottom_half,
    is_bottom_numpy,
    reset_diagonal_half,
    reset_diagonal_numpy,
    strengthen_scalar,
)


def dense_closure_op_count(n: int) -> int:
    """Operation count of our Algorithm 3 transcription.

    Per fused iteration ``k``: 4n pivot-line entries at one min each
    (2 ops) and ``2n^2 - 2n`` remaining entries at two mins each
    (4 ops), so ``8n^2`` ops; ``n`` iterations give ``8n^3``.
    Strengthening adds 3 ops per stored entry: ``6n^2 + 6n``.  Total
    ``8n^3 + 6n^2 + 6n`` -- the paper reports ``8n^3 + 10n^2 + 2n``
    (the small constant-order difference comes from how the pivot-line
    pass is accounted; the halving of the ``16n^3`` leading term is
    exact).
    """
    return 8 * n ** 3 + 6 * n ** 2 + 6 * n


# ----------------------------------------------------------------------
# scalar (instrumented) variant
# ----------------------------------------------------------------------
def shortest_path_dense_scalar(m: HalfMat, counter: Optional[OpCounter] = None) -> None:
    """Algorithm 3 shortest-path step on the half DBM, pure Python."""
    n = m.n
    dim = 2 * n
    data = m.data
    ticks = 0
    for k in range(n):
        p0, p1 = 2 * k, 2 * k + 1
        base0 = (p0 + 1) * (p0 + 1) // 2
        base1 = (p1 + 1) * (p1 + 1) // 2
        # --- pivot lines first: one min per entry -----------------------
        # Phase 1 = pivot p0 applied to the p1 lines.  The stored row p1
        # holds columns 0..p1; its coherent continuation (columns > p1)
        # is the stored column p0, so both loops together realise
        # "update row p1" of the virtual full matrix.
        w10 = data[base1 + p0]  # O[p1, p0]
        for j in range(p1 + 1):  # row p1: O[p1,j] ^= O[p1,p0] + O[p0,j]
            ticks += 1
            cand = w10 + data[matpos2(p0, j)]
            p = base1 + j
            if cand < data[p]:
                data[p] = cand
        for i in range(p1 + 1, dim):  # col p0: O[i,p0] ^= O[p1,p0] + O[i,p1]
            ticks += 1
            basei = (i + 1) * (i + 1) // 2
            cand = w10 + data[basei + p1]
            p = basei + p0
            if cand < data[p]:
                data[p] = cand
        # Phase 2 = pivot p1 applied to the p0 lines, using phase-1 results.
        w01 = data[base0 + p1]  # O[p0, p1]
        for j in range(p1 + 1):  # row p0: O[p0,j] ^= O[p0,p1] + O[p1,j]
            ticks += 1
            cand = w01 + data[matpos2(p1, j)]
            p = base0 + j
            if cand < data[p]:
                data[p] = cand
        for i in range(p1 + 1, dim):  # col p1: O[i,p1] ^= O[p0,p1] + O[i,p0]
            ticks += 1
            basei = (i + 1) * (i + 1) // 2
            cand = w01 + data[basei + p0]
            p = basei + p1
            if cand < data[p]:
                data[p] = cand
        # --- bulk: two mins per remaining entry, any order --------------
        for i in range(dim):
            if i == p0 or i == p1:
                continue
            basei = (i + 1) * (i + 1) // 2
            oip0 = data[matpos2(i, p0)]
            oip1 = data[matpos2(i, p1)]
            for j in range(cap(i) + 1):
                if j == p0 or j == p1:
                    continue
                ticks += 2
                p = basei + j
                cand = oip0 + data[matpos2(p0, j)]
                if cand < data[p]:
                    data[p] = cand
                cand = oip1 + data[matpos2(p1, j)]
                if cand < data[p]:
                    data[p] = cand
    if counter is not None:
        counter.tick(2 * ticks)


def closure_dense_scalar(m: HalfMat, counter: Optional[OpCounter] = None) -> bool:
    """Algorithm 3 + strengthening, scalar.  Returns True iff bottom."""
    shortest_path_dense_scalar(m, counter)
    strengthen_scalar(m, counter)
    if is_bottom_half(m):
        return True
    reset_diagonal_half(m)
    return False


# ----------------------------------------------------------------------
# packed-half index tables (shared per-dimension workspaces)
# ----------------------------------------------------------------------
# The table class itself lives in :mod:`repro.core.workspace`
# (:class:`PackedIndex`); ``_PackedIndex`` stays as a module alias for
# API familiarity.  A legacy module-local cache backs the tables when
# the workspace registry is switched off, because the pre-workspace
# code cached them too -- baseline measurements with
# ``workspace.disabled()`` must not be slower than the code they model.
_INDEX_CACHE: Dict[int, _PackedIndex] = {}


def packed_index(n: int) -> _PackedIndex:
    if _workspace.is_enabled():
        return get_workspace(2 * n).packed
    cache = _INDEX_CACHE.get(n)
    if cache is None:
        cache = _PackedIndex(n)
        _INDEX_CACHE[n] = cache
    return cache


def pack(full: np.ndarray) -> Tuple[np.ndarray, _PackedIndex]:
    """Extract the packed half representation from a full coherent DBM."""
    n = full.shape[0] // 2
    px = packed_index(n)
    flat = full[px.rows, px.cols].astype(np.float64, copy=True)
    return flat, px


def unpack(flat: np.ndarray, px: _PackedIndex, out: Optional[np.ndarray] = None) -> np.ndarray:
    """Expand a packed half DBM back to the full coherent matrix."""
    full = flat[px.idx]
    if out is not None:
        out[...] = full
        return out
    return full


# ----------------------------------------------------------------------
# vectorised variant (the production dense closure)
# ----------------------------------------------------------------------
def shortest_path_dense_packed(
    flat: np.ndarray, px: _PackedIndex, counter: Optional[OpCounter] = None
) -> None:
    """Algorithm 3's shortest-path step on the packed half DBM."""
    n = px.n
    dim = 2 * n
    xor = get_workspace(dim).xor
    ticks = 0
    for k in range(n):
        p0, p1 = 2 * k, 2 * k + 1
        # Buffer the two virtual pivot rows (contiguous scratch arrays;
        # their mirrors are the pivot columns, so this covers all four
        # pivot lines of the paper's first phase).
        row1 = flat[px.idx[p1]]
        row0 = flat[px.idx[p0]]
        # pivot p0 on row p1, then pivot p1 on row p0 (uses updated row1)
        np.minimum(row1, row1[p0] + row0, out=row1)
        np.minimum(row0, row0[p1] + row1, out=row0)
        flat[px.idx[p1]] = row1
        flat[px.idx[p0]] = row0
        # Bulk: O[i,j] = min(O[i,j], O[i,p0]+O[p0,j], O[i,p1]+O[p1,j]).
        # Columns p0/p1 are coherent mirrors of rows p1/p0:
        #   O[i,p0] == O[p1, i^1],   O[i,p1] == O[p0, i^1].
        col0 = row1[xor]
        col1 = row0[xor]
        cand = col0[px.rows] + row0[px.cols]
        np.minimum(cand, col1[px.rows] + row1[px.cols], out=cand)
        np.minimum(flat, cand, out=flat)
        ticks += 2 * flat.size + row0.size + row1.size
    if counter is not None:
        counter.tick(ticks)


def closure_dense_packed(
    flat: np.ndarray, px: _PackedIndex, counter: Optional[OpCounter] = None
) -> bool:
    """Algorithm 3 on the packed half DBM, vectorised. True iff bottom."""
    shortest_path_dense_packed(flat, px, counter)
    # Strengthening on the packed half with the buffered unary diagonal.
    d = flat[px.unary]
    cand = (d[px.rows] + d[px.cols_bar]) * 0.5
    np.minimum(flat, cand, out=flat)
    if counter is not None:
        counter.tick(flat.size)
    if bool((flat[px.diag] < 0.0).any()):
        return True
    flat[px.diag] = 0.0
    return False


def closure_dense_packed_roundtrip(m: np.ndarray,
                                   counter: Optional[OpCounter] = None) -> bool:
    """Algorithm 3 on the packed half representation of a full DBM.

    Performs exactly half the candidate evaluations of a full-matrix
    Floyd-Warshall sweep (demonstrable through ``counter``); in NumPy
    the gather/scatter cost of the packed layout eats that advantage
    wall-clock-wise, so :func:`closure_dense_numpy` below is the
    production kernel and this one backs the op-count experiments.
    """
    flat, px = pack(m)
    empty = closure_dense_packed(flat, px, counter)
    if empty:
        return True
    unpack(flat, px, out=m)
    return False


# Legacy scratch cache, used only when the workspace registry is off
# (see the note above ``packed_index``).
_SCRATCH: Dict[int, np.ndarray] = {}


def _scratch(dim: int) -> np.ndarray:
    if _workspace.is_enabled():
        return get_workspace(dim).scratch
    buf = _SCRATCH.get(dim)
    if buf is None:
        buf = np.empty((dim, dim), dtype=np.float64)
        _SCRATCH[dim] = buf
    return buf


def closure_dense_numpy(m: np.ndarray, counter: Optional[OpCounter] = None) -> bool:
    """Production dense closure on a full coherent DBM (in place).

    One vectorised min-plus rank-1 update per pivot, pivots processed
    in paired order (``2k`` then ``2k+1``, preserving coherence),
    followed by vectorised strengthening with the buffered unary
    diagonal.  Returns True iff the octagon is empty.

    A note on the paper's operation-count halving: Algorithm 3 performs
    half the candidate evaluations of this sweep (see
    :func:`closure_dense_scalar` / :func:`closure_dense_packed`, whose
    instrumented counts verify the claim exactly).  The paper's AVX
    kernels are compute-bound, so halving operations halves time; NumPy
    element-wise kernels are *memory-bound* and the packed half-matrix
    layout pays more in gather/scatter than it saves in arithmetic, so
    the full coherent sweep is the fastest vectorised formulation here
    (measured in EXPERIMENTS.md).
    """
    dim = m.shape[0]
    if dim == 0:
        return False
    t = _scratch(dim)
    for p in range(dim):
        np.add(m[:, p, None], m[None, p, :], out=t)
        np.minimum(m, t, out=m)
    # Strengthening with the buffered unary diagonal.
    ws = get_workspace(dim)
    xor = ws.xor
    d = m[ws.arange, xor]
    np.add(d[:, None], d[xor][None, :], out=t)
    t *= 0.5
    np.minimum(m, t, out=m)
    if counter is not None:
        counter.tick(2 * 2 * dim ** 3 + 3 * dim ** 2)
    if is_bottom_numpy(m):
        return True
    reset_diagonal_numpy(m)
    return False


def shortest_path_dense_numpy(m: np.ndarray, counter: Optional[OpCounter] = None) -> None:
    """Shortest-path step only, on a full coherent DBM (in place).

    Used by the decomposed closure on dense component submatrices
    (strengthening runs globally there, to handle component merging).
    """
    dim = m.shape[0]
    if dim == 0:
        return
    t = _scratch(dim)
    for p in range(dim):
        np.add(m[:, p, None], m[None, p, :], out=t)
        np.minimum(m, t, out=m)
    if counter is not None:
        counter.tick(2 * 2 * dim ** 3)
