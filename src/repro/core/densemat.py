"""NumPy full coherent-DBM helpers for the optimised octagon.

The optimised library keeps each octagon's DBM as a *full* coherent
``2n x 2n`` ``float64`` array.  Conceptually only the lower half is the
octagon (as in APRON and the paper); the mirrored upper half is
maintained under the coherence invariant ``O[i, j] == O[j^1, i^1]`` so
that row/column operations vectorise without index gymnastics.  This is
the standard trick for vectorising half-matrix algorithms and mirrors
the paper's buffering of rows/columns for locality: the redundant half
plays the role of the paper's contiguous scratch arrays.

``nni`` (number of non-infinite entries) is always reported in *half
representation* units so that the sparsity measure matches the paper:

    D = 1 - nni / (2 n^2 + 2 n)
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .bounds import INF
from .indexing import half_size
from .workspace import get_workspace


def new_top(n: int) -> np.ndarray:
    """Full coherent DBM of the top octagon (trivial bounds, 0 diagonal)."""
    dim = 2 * n
    m = np.full((dim, dim), INF, dtype=np.float64)
    np.fill_diagonal(m, 0.0)
    return m


def new_uninitialised(n: int) -> np.ndarray:
    """Pre-allocated DBM with unspecified contents (paper's Top type).

    The paper allocates the matrix but leaves it uninitialised; entries
    are filled on demand when the type changes.  We allocate with
    ``np.empty`` for the same effect.
    """
    dim = 2 * n
    return np.empty((dim, dim), dtype=np.float64)


def coherent_lower_mask(n: int) -> np.ndarray:
    """Boolean mask selecting the stored half: ``j <= (i | 1)``."""
    dim = 2 * n
    i = np.arange(dim)[:, None]
    j = np.arange(dim)[None, :]
    return j <= (i | 1)


def is_coherent(m: np.ndarray) -> bool:
    """Check the coherence invariant ``O[i, j] == O[j^1, i^1]``."""
    dim = m.shape[0]
    idx = np.arange(dim) ^ 1
    mirror = m[np.ix_(idx, idx)].T
    return bool(np.array_equal(m, mirror))


def enforce_coherence(m: np.ndarray) -> np.ndarray:
    """Overwrite the upper half with the mirror of the lower half."""
    dim = m.shape[0]
    n = dim // 2
    mask = coherent_lower_mask(n)
    idx = np.arange(dim) ^ 1
    mirror = m[np.ix_(idx, idx)].T
    np.copyto(m, mirror, where=~mask)
    return m


def count_nni(m: np.ndarray) -> int:
    """Finite entries of the half representation (paper's ``nni``)."""
    dim = m.shape[0]
    ws = get_workspace(dim)
    fin = np.isfinite(m, out=ws.bool_scratch)
    fin &= ws.lower_mask
    return int(np.count_nonzero(fin))


def sparsity(m: np.ndarray, nni: Optional[int] = None) -> float:
    """The paper's sparsity measure ``D = 1 - nni/(2n^2 + 2n)``."""
    n = m.shape[0] // 2
    if nni is None:
        nni = count_nni(m)
    return 1.0 - nni / half_size(n)


def matrices_equal(a: np.ndarray, b: np.ndarray, *, tol: float = 0.0) -> bool:
    """Entrywise bound equality of two DBMs (inf-aware, optional slack)."""
    if a.shape != b.shape:
        return False
    if tol == 0.0:
        return bool(np.array_equal(a, b))
    fa, fb = np.isfinite(a), np.isfinite(b)
    if not np.array_equal(fa, fb):
        return False
    return bool(np.allclose(a[fa], b[fb], atol=tol, rtol=0.0))


def has_negative_cycle(m: np.ndarray) -> bool:
    """True if some diagonal entry is negative (the octagon is empty)."""
    return bool((np.diagonal(m) < 0.0).any())
