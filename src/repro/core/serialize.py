"""Serialisation of octagons and analysis results.

Two formats:

* **JSON** (:func:`octagon_to_json` / :func:`octagon_from_json`) -- the
  octagon as its constraint system plus metadata. Human-readable,
  diff-friendly, portable across implementations (an ``ApronOctagon``
  can load a JSON produced from an ``Octagon`` and vice versa);
  infinite bounds never appear (trivial constraints are simply absent).
* **NPZ** (:func:`octagon_save_npz` / :func:`octagon_load_npz`) -- the
  raw DBM for bit-exact round trips of large octagons.

Plus :func:`analysis_report` for exporting an
:class:`~repro.analysis.analyzer.AnalysisResult` as a JSON document
(per-procedure exit boxes and check outcomes), which the CLI and
benchmark tooling can archive, and the batch-service result schema
(:func:`job_result_to_dict` / :func:`job_result_from_dict`) shared by
persistent cache entries and ``python -m repro batch --json`` output.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Type

import numpy as np

from .apron_octagon import ApronOctagon
from .bounds import INF
from .constraints import OctConstraint
from .octagon import Octagon

FORMAT_VERSION = 1


# ----------------------------------------------------------------------
# JSON: constraint-system form
# ----------------------------------------------------------------------
def octagon_to_dict(oct_) -> Dict:
    """Serialise any octagon implementation to a plain dictionary."""
    if oct_.is_bottom():
        return {"version": FORMAT_VERSION, "n": oct_.n, "bottom": True,
                "constraints": []}
    constraints = [[c.i, c.coeff_i, c.j, c.coeff_j, c.bound]
                   for c in oct_.to_constraints()]
    return {"version": FORMAT_VERSION, "n": oct_.n, "bottom": False,
            "constraints": constraints}


def octagon_from_dict(raw: Dict, cls: Type = Octagon):
    """Rebuild an octagon (of class ``cls``) from its dictionary form."""
    if raw.get("version") != FORMAT_VERSION:
        raise ValueError(f"unsupported format version {raw.get('version')!r}")
    n = int(raw["n"])
    if raw.get("bottom"):
        return cls.bottom(n)
    constraints = [OctConstraint(int(i), int(ci), int(j), int(cj), float(b))
                   for i, ci, j, cj, b in raw["constraints"]]
    return cls.from_constraints(n, constraints)


def octagon_to_json(oct_) -> str:
    return json.dumps(octagon_to_dict(oct_))


def octagon_from_json(text: str, cls: Type = Octagon):
    return octagon_from_dict(json.loads(text), cls)


# ----------------------------------------------------------------------
# NPZ: raw-DBM form (bit-exact)
# ----------------------------------------------------------------------
def octagon_save_npz(oct_: Octagon, path: str) -> None:
    """Save the raw coherent DBM (``Octagon`` only)."""
    np.savez_compressed(path, mat=oct_.mat,
                        bottom=np.array([oct_.is_bottom()]),
                        closed=np.array([oct_.closed]))


def octagon_load_npz(path: str) -> Octagon:
    with np.load(path) as data:
        if bool(data["bottom"][0]):
            return Octagon.bottom(data["mat"].shape[0] // 2)
        oct_ = Octagon.from_matrix(data["mat"])
        if bool(data["closed"][0]):
            oct_.closed = True
        return oct_


# ----------------------------------------------------------------------
# analysis reports
# ----------------------------------------------------------------------
def _bound(value: float) -> Optional[float]:
    if value == INF or value == -INF:
        return None
    return float(value)


def analysis_report(result) -> Dict:
    """Export an AnalysisResult as a JSON-able report document."""
    procedures: List[Dict] = []
    for proc in result.procedures:
        state = proc.invariant_at_exit()
        if state.is_bottom():
            exit_box = None
        else:
            exit_box = {
                name: [_bound(lo), _bound(hi)]
                for name, (lo, hi) in zip(proc.cfg.variables, state.to_box())
            }
        procedures.append({
            "name": proc.name,
            "variables": list(proc.cfg.variables),
            "exit_reachable": exit_box is not None,
            "exit_box": exit_box,
            "checks": [{"condition": c.cond_text, "verified": c.verified}
                       for c in proc.checks],
        })
    total = len(result.checks)
    verified = sum(1 for c in result.checks if c.verified)
    return {
        "version": FORMAT_VERSION,
        "seconds": result.seconds,
        "checks_verified": verified,
        "checks_total": total,
        "procedures": procedures,
    }


# ----------------------------------------------------------------------
# batch-service job results
# ----------------------------------------------------------------------
#: Version of the JobResult wire schema (cache entries, ``--json``).
#: v2 added ``compile_transfer`` (whether the analysis ran compiled
#: transfer plans or the interpreted ablation path).  v3 added the
#: ``degraded`` outcome with its per-procedure ``rungs`` map and the
#: ``resumed`` journal flag.  v4 added the per-operator timing
#: decomposition (``op_seconds``/``op_self_seconds``/``op_calls``) and
#: histogram snapshots, so ``--json`` documents carry the Fig 8 time
#: split for every execution mode (``trace_events`` is deliberately
#: *not* serialised: spans ship over the worker pipe only).  v5 added
#: ``kernel_backend`` (the concrete kernel backend the worker computed
#: with -- a cache-key component, so the document must record it);
#: ``dbms`` and ``shm_arena`` stay wire-only, like ``trace_events``.
#: v6: job options (and therefore cache keys) gained
#: ``sparse_threshold`` -- the graph-vs-dense switching knob of the
#: ``sparse-octagon`` domain.  The result document's shape is
#: unchanged, but v5 documents were keyed without the option, so they
#: must not be served against v6 keys.
JOB_RESULT_SCHEMA = 6


def job_result_to_dict(result) -> Dict:
    """Serialise a :class:`~repro.service.job.JobResult` to plain data.

    The inverse of :func:`job_result_from_dict`; the round trip is
    exact (``from_dict(to_dict(r)) == r``), which is what lets cache
    entries, ``--json`` reports and in-memory results share one schema.
    """
    return {
        "schema": JOB_RESULT_SCHEMA,
        "key": result.key,
        "label": result.label,
        "domain": result.domain,
        "outcome": result.outcome,
        "seconds": result.seconds,
        "octagon_seconds": result.octagon_seconds,
        "attempts": result.attempts,
        "compile_transfer": bool(result.compile_transfer),
        "error": result.error,
        "cached": result.cached,
        "checks": [[c.procedure, c.cond_text, bool(c.verified)]
                   for c in result.checks],
        "procedures": [{
            "name": p.name,
            "variables": list(p.variables),
            "reachable": bool(p.reachable),
            "box": [[lo, hi] for lo, hi in p.box],
        } for p in result.procedures],
        "counters": {str(k): int(v) for k, v in result.counters.items()},
        "op_seconds": {str(k): float(v)
                       for k, v in result.op_seconds.items()},
        "op_self_seconds": {str(k): float(v)
                            for k, v in result.op_self_seconds.items()},
        "op_calls": {str(k): int(v) for k, v in result.op_calls.items()},
        "histograms": {str(k): dict(v)
                       for k, v in result.histograms.items()},
        "rungs": {str(k): str(v) for k, v in result.rungs.items()},
        "kernel_backend": str(result.kernel_backend),
        "resumed": result.resumed,
    }


def job_result_from_dict(raw: Dict):
    """Rebuild a :class:`~repro.service.job.JobResult` from its dict form."""
    from ..service.job import CheckVerdict, JobResult, ProcedureSummary

    if raw.get("schema") != JOB_RESULT_SCHEMA:
        raise ValueError(f"unsupported job-result schema {raw.get('schema')!r}")
    checks = [CheckVerdict(str(proc), str(cond), bool(ok))
              for proc, cond, ok in raw["checks"]]
    procedures = [ProcedureSummary(
        name=str(p["name"]),
        variables=[str(v) for v in p["variables"]],
        reachable=bool(p["reachable"]),
        box=[[None if lo is None else float(lo),
              None if hi is None else float(hi)] for lo, hi in p["box"]],
    ) for p in raw["procedures"]]
    return JobResult(
        key=str(raw["key"]),
        label=str(raw["label"]),
        domain=str(raw["domain"]),
        outcome=str(raw["outcome"]),
        seconds=float(raw["seconds"]),
        octagon_seconds=float(raw["octagon_seconds"]),
        attempts=int(raw["attempts"]),
        compile_transfer=bool(raw["compile_transfer"]),
        error=raw["error"],
        checks=checks,
        procedures=procedures,
        counters={str(k): int(v) for k, v in raw["counters"].items()},
        op_seconds={str(k): float(v)
                    for k, v in raw.get("op_seconds", {}).items()},
        op_self_seconds={str(k): float(v)
                         for k, v in raw.get("op_self_seconds", {}).items()},
        op_calls={str(k): int(v) for k, v in raw.get("op_calls", {}).items()},
        histograms={str(k): dict(v)
                    for k, v in raw.get("histograms", {}).items()},
        rungs={str(k): str(v) for k, v in raw.get("rungs", {}).items()},
        kernel_backend=str(raw.get("kernel_backend", "numpy")),
        cached=bool(raw.get("cached", False)),
        resumed=bool(raw.get("resumed", False)),
    )


__all__ = [
    "FORMAT_VERSION",
    "JOB_RESULT_SCHEMA",
    "analysis_report",
    "job_result_from_dict",
    "job_result_to_dict",
    "octagon_from_dict",
    "octagon_from_json",
    "octagon_load_npz",
    "octagon_save_npz",
    "octagon_to_dict",
    "octagon_to_json",
]
