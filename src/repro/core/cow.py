"""Copy-on-write DBM storage (the analyzer hot-path memory layer).

The analyzer copies abstract states constantly: the fixpoint engine
seeds every CFG node with ``bottom.copy()``, every transfer function
copies before it tightens, and every lattice operator returns a fresh
octagon.  Most of those copies are never written again -- they are
snapshots held for comparison (``is_leq``), cache entries, or
by-convention defensive copies.  Paying a full ``2n x 2n`` float64 copy
for each of them is pure representation overhead of the kind the paper
(and Jourdan's "Sparsity Preserving Algorithms for Octagons") blames
for real-world analyzer cost.

:class:`CowMat` makes ``copy()`` O(1): a clone aliases the same NumPy
matrix and both sides share an owner count.  The *first write* through
either side calls :meth:`materialize`, which copies the matrix only if
it is still shared.  A per-handle ``version`` stamp counts writes, so
callers (e.g. :meth:`Octagon.closure`) can keep derived caches valid
across aliases and detect staleness without comparing matrices.

The module-level switch :func:`set_enabled` (and the :func:`disabled`
context manager) turns cloning back into eager copying; the hot-path
benchmark uses it to measure the pre-COW baseline in-process.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, List

import numpy as np

from ..obs import metrics
from . import stats

_ENABLED = True

# Clone/materialisation events are counted in plain module globals --
# they fire tens of thousands of times per analysis, so per-event
# collector dispatch would be measurable overhead on the very hot path
# this module exists to speed up.  Collectors snapshot the globals on
# entry and read the delta (see ``stats.register_counter_source``).
_CLONES = 0
_MATERIALIZATIONS = 0

stats.register_counter_source(
    lambda: {"cow_clones": _CLONES,
             "cow_materializations": _MATERIALIZATIONS})

metrics.REGISTRY.counter(
    "copies_avoided", "Matrix copies the COW layer never performed",
    derive=lambda m: (m.get("cow_clones", 0)
                      - m.get("cow_materializations", 0)))
metrics.REGISTRY.counter("cow_clones", "O(1) copy-on-write clone events")
metrics.REGISTRY.counter("cow_materializations",
                         "COW clones that later paid a real copy")


def set_enabled(flag: bool) -> bool:
    """Globally enable/disable lazy cloning; returns the previous value."""
    global _ENABLED
    previous = _ENABLED
    _ENABLED = bool(flag)
    return previous


def is_enabled() -> bool:
    return _ENABLED


@contextmanager
def disabled() -> Iterator[None]:
    """Run a block with eager (pre-COW) copy semantics."""
    previous = set_enabled(False)
    try:
        yield
    finally:
        set_enabled(previous)


class CowMat:
    """A DBM matrix handle with copy-on-write sharing.

    ``arr`` is the NumPy matrix.  ``_owners`` is a one-element list
    shared by every handle aliasing the same array -- the mutable cell
    holds the live-owner count, decremented both when a handle breaks
    the sharing (copy-on-write) and when it is garbage collected, so a
    surviving sole owner can write in place without copying.

    ``version`` counts the writes observed *through this handle*; it
    only ever changes via :meth:`written` and survives cloning, which
    lets a cache entry stamped with the version at fill time be
    validated later with one integer compare.
    """

    __slots__ = ("arr", "version", "_owners")

    def __init__(self, arr: np.ndarray):
        self.arr = arr
        self.version = 0
        self._owners: List[int] = [1]

    def clone(self) -> "CowMat":
        """O(1) aliasing copy (or an eager copy when COW is disabled)."""
        if not _ENABLED:
            return CowMat(self.arr.copy())
        global _CLONES
        out = CowMat.__new__(CowMat)
        out.arr = self.arr
        out.version = self.version
        out._owners = self._owners
        self._owners[0] += 1
        _CLONES += 1
        return out

    def materialize(self) -> np.ndarray:
        """Return the array with exclusive ownership, copying if shared."""
        owners = self._owners
        if owners[0] > 1:
            global _MATERIALIZATIONS
            owners[0] -= 1
            self.arr = self.arr.copy()
            self._owners = [1]
            _MATERIALIZATIONS += 1
        return self.arr

    def written(self) -> np.ndarray:
        """Materialize for an in-place write and bump the version stamp."""
        arr = self.materialize()
        self.version += 1
        return arr

    @property
    def shared(self) -> bool:
        return self._owners[0] > 1

    def __del__(self):
        try:
            self._owners[0] -= 1
        except (AttributeError, TypeError):  # partially-initialised handle
            pass
