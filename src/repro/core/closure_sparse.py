"""Sparse octagon closure (paper section 5.3).

Shortest-path closure is a transitive minimisation: the candidate
``O[i,k] + O[k,j]`` can only tighten ``O[i,j]`` when *both* operands are
finite.  When the DBM is sparse (mostly trivial), almost all candidates
are dead.  The paper's sparse closure builds, for each outer iteration,
an index of the finite entries in the pivot rows and columns -- linear
time and space per iteration -- and performs min operations only for
index pairs.  Total cost ``O(n^2 + sum_i k_i * l_i)`` where ``k_i`` and
``l_i`` count finite entries in the pivot rows/columns: quadratic for
very sparse DBMs versus cubic for dense ones.

Our implementation works on the full coherent matrix: per pivot it
extracts the finite positions of the pivot row and column with
``np.nonzero`` (the index build) and updates only the ``l x k``
rectangle of live candidates with one fancy-indexed vectorised min (the
index-driven update).  Pivots are applied strictly in the paired order
``2k, 2k+1``, which preserves coherence (see closure_dense).

The function returns the number of candidate updates actually
performed, which benchmarks use to demonstrate the Table 1 complexity
``O(n^2 + sum k_i l_i)``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .stats import OpCounter
from .strengthen import (
    is_bottom_numpy,
    reset_diagonal_numpy,
    strengthen_sparse_numpy,
)
from .workspace import get_workspace


def shortest_path_sparse(m: np.ndarray, counter: Optional[OpCounter] = None) -> int:
    """Index-driven shortest-path closure on a full coherent DBM."""
    dim = m.shape[0]
    if dim == 0:
        return 0
    ws = get_workspace(dim)
    fin_row = ws.bool_scratch[0]
    fin_col = ws.bool_scratch[1]
    candidates = 0
    for p in range(dim):
        row = m[p]
        col = m[:, p]
        # Build the per-iteration index of finite operands (linear scan).
        finite_j = np.nonzero(np.isfinite(row, out=fin_row))[0]
        finite_i = np.nonzero(np.isfinite(col, out=fin_col))[0]
        if finite_j.size == 0 or finite_i.size == 0:
            continue
        sub = m[np.ix_(finite_i, finite_j)]
        cand = col[finite_i][:, None] + row[finite_j][None, :]
        np.minimum(sub, cand, out=sub)
        m[np.ix_(finite_i, finite_j)] = sub
        candidates += int(finite_i.size) * int(finite_j.size)
    if counter is not None:
        counter.tick(2 * candidates)
    return candidates


def closure_sparse(m: np.ndarray, counter: Optional[OpCounter] = None) -> bool:
    """Sparse closure: index-driven shortest path + sparse strengthening.

    Returns True iff the octagon is empty.
    """
    shortest_path_sparse(m, counter)
    performed = strengthen_sparse_numpy(m)
    if counter is not None:
        counter.tick(3 * performed)
    if is_bottom_numpy(m):
        return True
    reset_diagonal_numpy(m)
    return False
