"""The optimised Octagon domain element (the paper's OptOctagon).

An :class:`Octagon` owns a full coherent ``2n x 2n`` DBM plus the
structural information of paper section 3: the maintained partition of
independent components, the finite-entry count ``nni`` and a derived
:class:`~repro.core.kinds.DbmKind`.  Every operator follows the paper's
recipe for its kind:

* **Top** octagons short-circuit (empty partition, nothing to do).
* **Decomposed** octagons run operators per component submatrix; the
  partitions combine with set union under meet and set intersection
  under join/widening (section 4.3).
* **Sparse** octagons use the index-driven sparse closure.
* **Dense** octagons use the vectorised half-matrix closure of
  Algorithm 3 (section 4.1).

Closure is the synchronisation point: afterwards the partition and
``nni`` are recomputed *exactly* from the matrix (section 3.5), so the
maintained over-approximation cannot degrade towards the dense case.

Like APRON's ``oct_t`` (which keeps a ``m``/``closed`` matrix pair),
an octagon never loses its *original* matrix: :meth:`closure` returns a
cached closed copy.  This matters for termination -- the widening
operator must see the unclosed left argument, so closure must not
overwrite the loop-head states stored by the fixpoint engine.

Storage is copy-on-write (:mod:`repro.core.cow`): :meth:`copy` is O(1)
aliasing, every in-place mutation path materialises an exclusive
matrix first (via :meth:`_write_mat`), and the cached closed copy is
stamped with the matrix's mutation version so it survives aliasing --
``copy().closure()`` reuses the already-computed closed form instead
of re-running a cubic kernel.  The partition is shared on copy too:
:class:`~repro.core.partition.Partition` objects are immutable after
construction by convention.

The matrix convention matches the paper's Figure 1: ``mat[i, j] = c``
encodes ``vhat_j - vhat_i <= c`` with ``vhat_{2v} = +v`` and
``vhat_{2v+1} = -v``; see :mod:`repro.core.constraints` for the
constraint-to-cell mapping.
"""

from __future__ import annotations

import time
from typing import Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..obs import metrics, trace
from . import budget as _budget
from . import kernels
from . import sentinel as _sentinel
from . import stats
from .bounds import INF, is_finite
from .cow import CowMat, is_enabled as _cow_enabled
from .closure_decomposed import closure_decomposed
from .constraints import LinExpr, OctConstraint, constraints_from_dbm, dbm_cells
from .densemat import matrices_equal, new_top
from .kernels import count_nni
from .indexing import expand_vars, half_size
from .kinds import DEFAULT_POLICY, DbmKind, SwitchPolicy
from .partition import Partition
from .workspace import get_workspace
from ..testing import faults as _faults

# Shared with the Zone domain, whose closure cache bumps the same name.
metrics.REGISTRY.counter("closure_cache_hits",
                         "Closed forms served from the versioned cache")
# Closure traffic and DBM footprint, comparable across backends: the
# graph-sparse octagon (domains/sparse_octagon.py) bumps the same names
# at its own closure boundaries, so a differential run reads one table.
metrics.REGISTRY.counter("closure_cells",
                         "DBM cells traversed by closure kernels")
metrics.REGISTRY.counter("dbm_finite_cells",
                         "Finite half-matrix cells, high-water mark")
metrics.REGISTRY.counter("dbm_half_size",
                         "Half-matrix capacity 2n^2+2n, high-water mark")
metrics.REGISTRY.counter("dbm_peak_bytes",
                         "Peak materialised DBM bytes (8 per cell)")


class Octagon:
    """A (possibly decomposed) octagon over ``n`` program variables."""

    __slots__ = ("n", "_cow", "partition", "nni", "closed", "_bottom",
                 "policy", "_ccache", "_ccache_version")

    def __init__(
        self,
        n: int,
        mat: Union[np.ndarray, CowMat],
        partition: Partition,
        nni: int,
        *,
        closed: bool = False,
        bottom: bool = False,
        policy: SwitchPolicy = DEFAULT_POLICY,
    ):
        self.n = n
        self._cow = mat if isinstance(mat, CowMat) else CowMat(mat)
        self.partition = partition
        self.nni = nni
        self.closed = closed
        self._bottom = bottom
        self.policy = policy
        self._ccache: Optional["Octagon"] = None
        self._ccache_version = -1

    # ------------------------------------------------------------------
    # copy-on-write storage
    # ------------------------------------------------------------------
    @property
    def mat(self) -> np.ndarray:
        """The full coherent DBM (may be shared with aliases; use
        :meth:`_write_mat` before any in-place mutation)."""
        return self._cow.arr

    @mat.setter
    def mat(self, arr: np.ndarray) -> None:
        self._cow = arr if isinstance(arr, CowMat) else CowMat(arr)

    def _write_mat(self) -> np.ndarray:
        """Exclusive, writable DBM: materialises a copy if the matrix is
        shared, bumps the mutation version and drops the closed cache."""
        self._ccache = None
        return self._cow.written()

    def _cached_closure(self) -> Optional["Octagon"]:
        """The cached closed copy, if still valid for this matrix."""
        cc = self._ccache
        if cc is not None and self._ccache_version == self._cow.version:
            return cc
        return None

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def top(cls, n: int, *, policy: SwitchPolicy = DEFAULT_POLICY) -> "Octagon":
        """The top element: no constraints, empty component set."""
        return cls(n, new_top(n), Partition.empty(n), 2 * n, closed=True, policy=policy)

    @classmethod
    def bottom(cls, n: int, *, policy: SwitchPolicy = DEFAULT_POLICY) -> "Octagon":
        """The bottom element (empty octagon)."""
        return cls(n, new_top(n), Partition.empty(n), 2 * n,
                   closed=True, bottom=True, policy=policy)

    @classmethod
    def from_constraints(
        cls,
        n: int,
        constraints: Iterable[OctConstraint],
        *,
        policy: SwitchPolicy = DEFAULT_POLICY,
    ) -> "Octagon":
        """Octagon of a conjunction of octagonal constraints (unclosed)."""
        oct_ = cls.top(n, policy=policy)
        for cons in constraints:
            oct_._meet_constraint_cells(cons)
        return oct_

    @classmethod
    def from_box(
        cls,
        bounds: Sequence[Tuple[float, float]],
        *,
        policy: SwitchPolicy = DEFAULT_POLICY,
    ) -> "Octagon":
        """Octagon of per-variable interval bounds ``[(lo, hi), ...]``."""
        n = len(bounds)
        oct_ = cls.top(n, policy=policy)
        for v, (lo, hi) in enumerate(bounds):
            if lo > hi:
                return cls.bottom(n, policy=policy)
            if hi != INF:
                oct_._meet_constraint_cells(OctConstraint.upper(v, hi))
            if lo != -INF:
                oct_._meet_constraint_cells(OctConstraint.lower(v, lo))
        return oct_

    @classmethod
    def from_matrix(
        cls, mat: np.ndarray, *, copy: bool = True, policy: SwitchPolicy = DEFAULT_POLICY
    ) -> "Octagon":
        """Wrap a full coherent DBM (caller guarantees coherence)."""
        if mat.ndim != 2 or mat.shape[0] != mat.shape[1] or mat.shape[0] % 2:
            raise ValueError(f"expected a 2n x 2n matrix, got {mat.shape}")
        n = mat.shape[0] // 2
        m = np.array(mat, dtype=np.float64, copy=copy)
        nni = count_nni(m)
        part = Partition.from_matrix(m) if policy.decompose else (
            Partition.single_block(n) if nni > 2 * n else Partition.empty(n))
        return cls(n, m, part, nni, closed=False, policy=policy)

    def copy(self) -> "Octagon":
        """O(1) aliasing copy (copy-on-write).

        The matrix is shared until either side writes; the partition is
        shared outright (immutable after construction); and a valid
        cached closed form is carried over, so ``copy().closure()``
        reuses it instead of re-running a closure kernel.
        """
        part = self.partition if _cow_enabled() else self.partition.copy()
        out = Octagon(self.n, self._cow.clone(), part, self.nni,
                      closed=self.closed, bottom=self._bottom, policy=self.policy)
        if _cow_enabled():  # baseline mode also measures pre-PR cache behaviour
            out._ccache = self._ccache
            out._ccache_version = self._ccache_version
        return out

    # ------------------------------------------------------------------
    # structural bookkeeping
    # ------------------------------------------------------------------
    @property
    def kind(self) -> DbmKind:
        """The paper's DBM type, derived from the maintained structure."""
        if self.partition.is_empty():
            return DbmKind.TOP
        if not self.policy.decompose:
            return DbmKind.DENSE
        if len(self.partition.blocks) > 1 or len(self.partition.support) < self.n:
            return DbmKind.DECOMPOSED
        if self.policy.is_sparse(self.nni, self.n):
            return DbmKind.SPARSE
        return DbmKind.DENSE

    @property
    def sparsity(self) -> float:
        """``D = 1 - nni/(2n^2 + 2n)`` (section 3.5)."""
        if self.n == 0:
            return 0.0
        return 1.0 - self.nni / half_size(self.n)

    def _refresh_structure_exact(self) -> None:
        """Recompute nni and the partition exactly (piggybacked on closure)."""
        self.nni = count_nni(self.mat)
        if self.policy.decompose:
            self.partition = Partition.from_matrix(self.mat)
        else:
            self.partition = (Partition.single_block(self.n)
                              if self.nni > 2 * self.n else Partition.empty(self.n))

    def _become_bottom(self) -> None:
        self._bottom = True
        self.closed = True
        self.mat = new_top(self.n)
        self.partition = Partition.empty(self.n)
        self.nni = 2 * self.n
        self._ccache = None

    # ------------------------------------------------------------------
    # closure (section 5)
    # ------------------------------------------------------------------
    def closure(self) -> "Octagon":
        """The closed (canonical) form of this octagon.

        Returns ``self`` when already closed, otherwise a cached closed
        copy; the original matrix is never overwritten (the widening
        operator depends on seeing it).  If closure discovers
        emptiness, ``self`` is also marked bottom (a semantic fact).
        """
        if self._bottom or self.closed:
            return self
        cc = self._cached_closure()
        if cc is not None:
            stats.bump("closure_cache_hits")
            return cc
        out = self.copy()
        out._close_in_place()
        if out._bottom:
            self._become_bottom()
            return self
        self._ccache = out
        self._ccache_version = self._cow.version
        return out

    # Kept for API familiarity: ``close()`` is ``closure()``.
    def close(self) -> "Octagon":
        return self.closure()

    def _close_in_place(self) -> None:
        """Dispatch on the DBM kind and close ``self.mat`` in place."""
        kind = self.kind
        if kind == DbmKind.TOP:
            # Nothing to close; do not materialise a shared matrix.
            stats.record_closure(self.n, str(kind), 0.0,
                                 len(self.partition.blocks))
            self.closed = True
            return
        if stats.capturing_closure_inputs():
            stats.record_closure_input(
                self.mat.copy(), [list(b) for b in self.partition.blocks])
        components = len(self.partition.blocks)
        # Budget checkpoint: charge the matrix area this kernel is about
        # to traverse (per-component for decomposed closures, so a
        # densifying octagon burns its cell budget much faster).
        if kind == DbmKind.DECOMPOSED:
            area = sum((2 * len(b)) ** 2 for b in self.partition.blocks)
        else:
            area = (2 * self.n) ** 2
        _budget.charge_cells(area)
        stats.bump("closure_cells", area)
        m = self._write_mat()
        start = time.perf_counter()
        if kind == DbmKind.DECOMPOSED:
            empty, exact = closure_decomposed(
                m, self.partition, sparse_threshold=self.policy.threshold)
            if not empty:
                self.partition = exact
                self.nni = count_nni(m)
        elif kind == DbmKind.SPARSE:
            empty = kernels.sparse_closure(m)
            if not empty:
                self._refresh_structure_exact()
        else:
            empty = kernels.dense_closure(m)
            if not empty:
                self._refresh_structure_exact()
        elapsed = time.perf_counter() - start
        stats.record_closure(self.n, str(kind), elapsed, components)
        if trace.enabled():  # skip the args dict on the disabled path
            trace.emit("closure", start, start + elapsed,
                       args={"n": self.n, "kind": str(kind),
                             "components": components,
                             "backend": kernels.active_backend()})
        if empty:
            self._become_bottom()
        else:
            self.closed = True
            self._record_footprint()
        if _faults.fire("dbm_corrupt"):
            _faults.corrupt_octagon(self)
        _sentinel.check(self)

    def _record_footprint(self) -> None:
        """High-water gauges at a closure boundary, comparable with the
        graph backend's: the dense representation always holds the full
        ``(2n)^2`` matrix at 8 bytes a cell (container overhead excluded
        on both sides), and ``nni`` counts its finite half cells."""
        stats.bump_max("dbm_finite_cells", self.nni)
        stats.bump_max("dbm_half_size", half_size(self.n))
        stats.bump_max("dbm_peak_bytes", 8 * (2 * self.n) ** 2)

    def _incremental_close(self, v: int) -> None:
        """Quadratic re-closure after changes confined to variable ``v``."""
        _budget.charge_cells(8 * self.n)  # two row/column pairs touched
        stats.bump("closure_cells", 8 * self.n)
        m = self._write_mat()
        start = time.perf_counter()
        empty = kernels.incremental_closure(m, v)
        elapsed = time.perf_counter() - start
        stats.record_closure(self.n, "incremental", elapsed, len(self.partition.blocks))
        if trace.enabled():  # skip the args dict on the disabled path
            trace.emit("closure_inc", start, start + elapsed,
                       args={"n": self.n, "v": v,
                             "backend": kernels.active_backend()})
        if empty:
            self._become_bottom()
            return
        # Maintain the structure *incrementally* (exact recomputation is
        # reserved for full closures, per paper section 3.5): the
        # incremental strengthening can only relate variables that own
        # finite unary bounds, so merging their blocks keeps the
        # partition a sound over-approximation at O(n) cost.
        self.nni = count_nni(m)
        if self.policy.decompose:
            ws = get_workspace(2 * self.n)
            d = m[ws.arange, ws.xor]
            unary_vars = np.nonzero(np.isfinite(d).reshape(-1, 2).any(axis=1))[0]
            if unary_vars.size > 1:
                self.partition = self.partition.merge_blocks_containing(
                    unary_vars.tolist())
        self.closed = True
        self._record_footprint()
        _sentinel.check(self)

    # ------------------------------------------------------------------
    # predicates
    # ------------------------------------------------------------------
    def is_bottom(self) -> bool:
        """Emptiness test (computes the closure if necessary)."""
        if self._bottom:
            return True
        self.closure()
        return self._bottom

    def is_top(self) -> bool:
        if self.is_bottom():
            return False
        if self.partition.is_empty():
            return True
        return count_nni(self.closure().mat) == 2 * self.n

    def is_leq(self, other: "Octagon") -> bool:
        """Inclusion: ``gamma(self) subseteq gamma(other)``."""
        self._check_compat(other)
        if self.is_bottom():
            return True
        if other._bottom:
            return False
        if _cow_enabled() and self._cow.arr is other._cow.arr:
            return True  # COW aliases denote the same abstract value
        closed = self.closure()
        if self._bottom:
            return True
        with stats.timed_op("is_leq"):
            if other.partition.is_empty():
                return True
            if other.kind == DbmKind.DECOMPOSED:
                for block in other.partition.blocks:
                    idx = expand_vars(block)
                    gather = np.ix_(idx, idx)
                    if not bool(np.all(closed.mat[gather] <= other.mat[gather])):
                        return False
                return True
            return bool(np.all(closed.mat <= other.mat))

    def is_eq(self, other: "Octagon") -> bool:
        self._check_compat(other)
        if _cow_enabled() and self._cow.arr is other._cow.arr:
            return True
        if self.is_bottom() or other.is_bottom():
            return self.is_bottom() and other.is_bottom()
        a, b = self.closure(), other.closure()
        if self._bottom or other._bottom:
            return self._bottom and other._bottom
        return matrices_equal(a.mat, b.mat)

    def _check_compat(self, other: "Octagon") -> None:
        if self.n != other.n:
            raise ValueError(f"dimension mismatch: {self.n} vs {other.n}")

    # ------------------------------------------------------------------
    # lattice operators (section 4)
    # ------------------------------------------------------------------
    def meet(self, other: "Octagon") -> "Octagon":
        """Greatest lower bound; induces union on the component sets."""
        self._check_compat(other)
        if self._bottom or other._bottom:
            return Octagon.bottom(self.n, policy=self.policy)
        with stats.timed_op("meet"):
            part = self.partition.union(other.partition)
            if self._use_blockwise(part):
                out = new_top(self.n)
                for block in part.blocks:
                    idx = expand_vars(block)
                    gather = np.ix_(idx, idx)
                    out[gather] = np.minimum(self.mat[gather], other.mat[gather])
            else:
                out = np.minimum(self.mat, other.mat)
            nni = count_nni(out)
            result = Octagon(self.n, out, part, nni, closed=False, policy=self.policy)
        _sentinel.check(result)
        return result

    def join(self, other: "Octagon") -> "Octagon":
        """Least upper bound; computed on the closures for precision and
        inducing intersection on the component sets."""
        self._check_compat(other)
        if _cow_enabled() and self._cow.arr is other._cow.arr:
            return self.copy()  # join is idempotent on aliases
        if self.is_bottom():
            return other.copy()
        if other.is_bottom():
            return self.copy()
        a, b = self.closure(), other.closure()
        if self._bottom:
            return other.copy()
        if other._bottom:
            return self.copy()
        with stats.timed_op("join"):
            part = a.partition.intersection(b.partition)
            if self._use_blockwise(part):
                out = new_top(self.n)
                for block in part.blocks:
                    idx = expand_vars(block)
                    gather = np.ix_(idx, idx)
                    out[gather] = np.maximum(a.mat[gather], b.mat[gather])
            else:
                # Entries outside the component intersection are trivial
                # in one operand, so the whole-matrix max is identical.
                out = np.maximum(a.mat, b.mat)
            nni = count_nni(out)
            # The pointwise max of two closed DBMs is closed.
            result = Octagon(self.n, out, part, nni, closed=True, policy=self.policy)
        _sentinel.check(result)
        return result

    def widening(self, other: "Octagon") -> "Octagon":
        """Standard octagon widening, component-set intersection.

        ``self`` is the previous iterate and is used **unclosed**
        (widening a closed left argument can regenerate widened-away
        bounds through closure and lose termination); ``other`` is the
        new iterate and may be closed for precision.
        """
        self._check_compat(other)
        if self._bottom:
            return other.copy()
        if other.is_bottom():
            return self.copy()
        b = other.closure()
        if other._bottom:
            return self.copy()
        with stats.timed_op("widening"):
            part = self.partition.intersection(b.partition)
            if self._use_blockwise(part):
                out = new_top(self.n)
                for block in part.blocks:
                    idx = expand_vars(block)
                    gather = np.ix_(idx, idx)
                    sa, sb = self.mat[gather], b.mat[gather]
                    out[gather] = np.where(sb <= sa, sa, INF)
            else:
                keep = b.mat <= self.mat
                out = np.where(keep, self.mat, INF)
            np.fill_diagonal(out, 0.0)
            nni = count_nni(out)
            result = Octagon(self.n, out, part, nni, closed=False, policy=self.policy)
        _sentinel.check(result)
        return result

    def widening_thresholds(self, other: "Octagon", thresholds: Sequence[float]) -> "Octagon":
        """Widening with thresholds: unstable bounds jump to the next
        threshold above the new value instead of directly to infinity."""
        self._check_compat(other)
        if self._bottom:
            return other.copy()
        if other.is_bottom():
            return self.copy()
        b = other.closure()
        if other._bottom:
            return self.copy()
        with stats.timed_op("widening"):
            ts = np.array(sorted(float(t) for t in thresholds), dtype=np.float64)
            part = self.partition.intersection(b.partition)
            stable = b.mat <= self.mat
            pos = np.searchsorted(ts, b.mat, side="left")
            bumped = np.full(b.mat.shape, INF)
            valid = pos < ts.size
            bumped[valid] = ts[pos[valid]]
            widened = np.where(stable, self.mat, bumped)
            if self._use_blockwise(part):
                out = new_top(self.n)
                for block in part.blocks:
                    idx = expand_vars(block)
                    gather = np.ix_(idx, idx)
                    out[gather] = widened[gather]
            else:
                out = widened
                # A bound bumped to a threshold stays finite even where
                # the operands' partitions do not intersect, so the
                # intersection can under-cover the result's constraint
                # graph; recompute the exact partition from the matrix.
                if self.policy.decompose:
                    np.fill_diagonal(out, 0.0)
                    part = Partition.from_matrix(out)
            np.fill_diagonal(out, 0.0)
            nni = count_nni(out)
            result = Octagon(self.n, out, part, nni, closed=False, policy=self.policy)
        _sentinel.check(result)
        return result

    def narrowing(self, other: "Octagon") -> "Octagon":
        """Standard narrowing: refine only the trivial (infinite) bounds."""
        self._check_compat(other)
        if self._bottom or other._bottom:
            return Octagon.bottom(self.n, policy=self.policy)
        with stats.timed_op("narrowing"):
            part = self.partition.union(other.partition)
            out = np.where(np.isinf(self.mat), other.mat, self.mat)
            nni = count_nni(out)
            result = Octagon(self.n, out, part, nni, closed=False, policy=self.policy)
        _sentinel.check(result)
        return result

    def _use_blockwise(self, part: Partition) -> bool:
        """Work per component submatrix instead of the whole matrix?

        The entrywise formulas for meet/join/widening are correct on
        the whole matrix regardless of the partition (entries outside
        the components are trivial in the operands), so blockwise
        iteration is purely a work reduction.  Each block costs two
        fancy-indexed gathers and a scatter, so it only pays when the
        components cover a small fraction of the matrix and the matrix
        is big enough for a full pass to matter.
        """
        if not self.policy.decompose or not part.blocks:
            return False
        if len(part.blocks) == 1 and len(part.blocks[0]) == self.n:
            return False
        area = sum((2 * len(b)) ** 2 for b in part.blocks)
        return 4 * area <= (2 * self.n) ** 2 and self.n >= 16

    # ------------------------------------------------------------------
    # constraint meets and tests
    # ------------------------------------------------------------------
    def _meet_constraint_cells(self, cons: OctConstraint) -> None:
        """Tighten the DBM cells of one constraint (no re-closure)."""
        m = self.mat
        wrote = False
        for r, s, c in dbm_cells(cons):
            if c < m[r, s]:
                if not wrote:
                    m = self._write_mat()
                    wrote = True
                # nni counts the half representation (j <= i|1), where a
                # coherent mirror pair contributes one entry, not two.
                if not is_finite(m[r, s]) and s <= (r | 1):
                    self.nni += 1
                m[r, s] = c
        vars_ = list(cons.variables())
        self.partition = self.partition.merge_blocks_containing(vars_)
        self.closed = False

    def meet_constraint(self, cons: OctConstraint) -> "Octagon":
        """Return ``self /\\ cons``; re-closes incrementally when
        ``self`` was closed (the paper's assignment/test fast path)."""
        if self._bottom:
            return self.copy()
        with stats.timed_op("meet_constraint"):
            base = (self.closure()
                    if self.closed or self._cached_closure() is not None else self)
            out = base.copy()
            was_closed = out.closed
            out._meet_constraint_cells(cons)
            if was_closed:
                out._incremental_close(cons.i)
            else:
                _sentinel.check(out)
        return out

    def meet_constraints(self, constraints: Iterable[OctConstraint]) -> "Octagon":
        """Meet with a conjunction of octagonal constraints."""
        if self._bottom:
            return self.copy()
        with stats.timed_op("meet_constraint"):
            base = (self.closure()
                    if self.closed or self._cached_closure() is not None else self)
            out = base.copy()
            was_closed = out.closed
            cons_list = list(constraints)
            for cons in cons_list:
                out._meet_constraint_cells(cons)
            if was_closed and cons_list:
                # Incremental closure is only valid when every new edge
                # is incident to one common variable's pair.
                common = set(cons_list[0].variables())
                for cons in cons_list[1:]:
                    common &= set(cons.variables())
                if common:
                    out._incremental_close(min(common))
                else:
                    out.closed = False
                    _sentinel.check(out)
        return out

    def assume_linear(self, expr: LinExpr, *, strict: bool = False) -> "Octagon":
        """Meet with ``expr <= 0`` (or ``< 0``), interval-linearised.

        Octagonal-unit expressions are handled exactly; general linear
        tests contribute the unary and binary octagonal consequences
        derivable by bounding the residual in interval arithmetic.
        """
        if self.is_bottom():
            return self.copy()
        closed = self.closure()
        if self._bottom:
            return self.copy()
        coeffs = {v: c for v, c in expr.coeffs.items() if c != 0.0}
        if not coeffs:
            return (self.copy() if expr.const <= 0
                    else Octagon.bottom(self.n, policy=self.policy))
        items = sorted(coeffs.items())
        constraints: List[OctConstraint] = []

        # For the unit-coefficient part P of the test P + rest <= 0, the
        # octagonal consequence is P <= sup(-rest) = -inf(rest).
        def residual_neg_sup(excluded: Tuple[int, ...]) -> float:
            rest = LinExpr({v: c for v, c in coeffs.items() if v not in excluded},
                           expr.const)
            lo, _ = rest.interval(closed.bounds)
            return INF if lo == -INF else -lo

        for v, c in items:
            if c in (1.0, -1.0):
                bound = residual_neg_sup((v,))
                if is_finite(bound):
                    constraints.append(OctConstraint(v, int(c), v, 0, bound))
        for a_idx in range(len(items)):
            va, ca = items[a_idx]
            if ca not in (1.0, -1.0):
                continue
            for b_idx in range(a_idx + 1, len(items)):
                vb, cb = items[b_idx]
                if cb not in (1.0, -1.0):
                    continue
                bound = residual_neg_sup((va, vb))
                if is_finite(bound):
                    constraints.append(OctConstraint(va, int(ca), vb, int(cb), bound))
        if not constraints:
            return self.copy()
        return closed.meet_constraints(constraints)

    def sat_constraint(self, cons: OctConstraint) -> bool:
        """Does every point of the octagon satisfy the constraint?"""
        if self.is_bottom():
            return True
        closed = self.closure()
        if self._bottom:
            return True
        (r, s, c) = dbm_cells(cons)[0]
        return bool(closed.mat[r, s] <= c)

    # ------------------------------------------------------------------
    # projections, assignments (transfer functions)
    # ------------------------------------------------------------------
    def forget(self, v: int) -> "Octagon":
        """Existentially quantify variable ``v`` (havoc)."""
        if self.is_bottom():
            return self.copy()
        closed = self.closure()
        if self._bottom:
            return self.copy()
        with stats.timed_op("forget"):
            out = closed.copy()
            m = out._write_mat()
            p0, p1 = 2 * v, 2 * v + 1
            m[[p0, p1], :] = INF
            m[:, [p0, p1]] = INF
            m[p0, p0] = 0.0
            m[p1, p1] = 0.0
            out.partition = out.partition.remove_var(v)
            out.nni = count_nni(m)
            out.closed = True  # removing edges from a closed DBM keeps it closed
        _sentinel.check(out)
        return out

    def assign_const(self, v: int, c: float) -> "Octagon":
        """``v := c``"""
        out = self.forget(v)
        if out._bottom:
            return out
        with stats.timed_op("assign"):
            out._meet_constraint_cells(OctConstraint.upper(v, c))
            out._meet_constraint_cells(OctConstraint.lower(v, c))
            out._incremental_close(v)
        return out

    def assign_interval(self, v: int, lo: float, hi: float) -> "Octagon":
        """``v := [lo, hi]`` (non-deterministic choice)."""
        if lo > hi:
            return Octagon.bottom(self.n, policy=self.policy)
        out = self.forget(v)
        if out._bottom:
            return out
        with stats.timed_op("assign"):
            changed = False
            if hi != INF:
                out._meet_constraint_cells(OctConstraint.upper(v, hi))
                changed = True
            if lo != -INF:
                out._meet_constraint_cells(OctConstraint.lower(v, lo))
                changed = True
            if changed:
                out._incremental_close(v)
        return out

    def assign_translate(self, v: int, c: float) -> "Octagon":
        """``v := v + c`` -- exact, linear time, closure-preserving."""
        if self._bottom:
            return self.copy()
        with stats.timed_op("assign"):
            out = self.copy()
            p0, p1 = 2 * v, 2 * v + 1
            m = out._write_mat()
            m[p0, :] -= c
            m[p1, :] += c
            m[:, p0] += c
            m[:, p1] -= c
            m[p0, p0] = 0.0
            m[p1, p1] = 0.0
        _sentinel.check(out)
        return out

    def assign_negate(self, v: int, c: float = 0.0) -> "Octagon":
        """``v := -v + c`` -- exact: swap the signs of ``v`` then shift."""
        if self._bottom:
            return self.copy()
        with stats.timed_op("assign"):
            out = self.copy()
            p0, p1 = 2 * v, 2 * v + 1
            m = out._write_mat()
            m[[p0, p1], :] = m[[p1, p0], :]
            m[:, [p0, p1]] = m[:, [p1, p0]]
        if c != 0.0:
            return out.assign_translate(v, c)
        _sentinel.check(out)
        return out

    def assign_var(self, v: int, w: int, *, coeff: int = 1, offset: float = 0.0) -> "Octagon":
        """``v := coeff * w + offset`` with ``coeff`` in ``{-1, +1}``."""
        if coeff not in (-1, 1):
            raise ValueError("octagonal assignment needs coeff +-1")
        if w == v:
            if coeff == 1:
                return self.assign_translate(v, offset)
            return self.assign_negate(v, offset)
        out = self.forget(v)
        if out._bottom:
            return out
        with stats.timed_op("assign"):
            # v - coeff*w <= offset and coeff*w - v <= -offset.
            out._meet_constraint_cells(OctConstraint(v, 1, w, -coeff, offset))
            out._meet_constraint_cells(OctConstraint(v, -1, w, coeff, -offset))
            out._incremental_close(v)
        return out

    def assign_linexpr(self, v: int, expr: LinExpr) -> "Octagon":
        """``v := expr`` for an arbitrary linear expression.

        Octagonal shapes (``+-w + c``) are exact; other expressions are
        interval-linearised: the expression's value interval bounds the
        new ``v``, and unit-coefficient terms additionally contribute
        relational octagonal constraints (APRON-style linearisation).
        """
        coeffs = {w: c for w, c in expr.coeffs.items() if c != 0.0}
        if not coeffs:
            return self.assign_const(v, expr.const)
        if len(coeffs) == 1:
            ((w, c),) = coeffs.items()
            if c in (1.0, -1.0):
                return self.assign_var(v, w, coeff=int(c), offset=expr.const)
        if self.is_bottom():
            return self.copy()
        closed = self.closure()
        if self._bottom:
            return self.copy()
        lo, hi = expr.interval(closed.bounds)
        relational: List[Tuple[int, int, float, float]] = []
        for w, c in coeffs.items():
            if w == v or c not in (1.0, -1.0):
                continue
            rest = LinExpr({u: cu for u, cu in coeffs.items() if u != w}, expr.const)
            rlo, rhi = rest.interval(closed.bounds)
            relational.append((w, int(c), rlo, rhi))
        out = closed.forget(v)
        if out._bottom:
            return out
        with stats.timed_op("assign"):
            changed = False
            if hi != INF:
                out._meet_constraint_cells(OctConstraint.upper(v, hi))
                changed = True
            if lo != -INF:
                out._meet_constraint_cells(OctConstraint.lower(v, lo))
                changed = True
            for w, c, rlo, rhi in relational:
                # v = c*w + rest  =>  v - c*w in [rlo, rhi].
                if rhi != INF:
                    out._meet_constraint_cells(OctConstraint(v, 1, w, -c, rhi))
                    changed = True
                if rlo != -INF:
                    out._meet_constraint_cells(OctConstraint(v, -1, w, c, -rlo))
                    changed = True
            if changed:
                out._incremental_close(v)
        return out

    def substitute_linexpr(self, v: int, expr: LinExpr) -> "Octagon":
        """Backward assignment (APRON's *substitution*): the states
        from which executing ``v := expr`` lands inside ``self``.

        Computed with the temporary-dimension construction::

            pre = exists t . (self[v -> t] AND t = expr)

        -- add a fresh dimension ``t``, swap it with ``v`` so the
        post-condition's constraints on ``v`` move to ``t`` and ``v``
        becomes the (unconstrained) pre-state variable, meet with
        ``t = expr`` (exact for octagonal shapes, interval-linearised
        otherwise), and project ``t`` away.  Sound for every linear
        ``expr``, including self-referential ones like ``v := v + 1``.
        """
        if self._bottom:
            return self.copy()
        with stats.timed_op("substitute"):
            t = self.n  # index of the fresh dimension
            ext = self.add_dimensions(1)
            perm = list(range(ext.n))
            perm[v], perm[t] = perm[t], perm[v]
            ext = ext.permute(perm)
            # t = expr: emit octagonal consequences of the equality.
            coeffs = {w: c for w, c in expr.coeffs.items() if c != 0.0}
            constraints: List[OctConstraint] = []
            if not coeffs:
                constraints.append(OctConstraint.upper(t, expr.const))
                constraints.append(OctConstraint.lower(t, expr.const))
            elif len(coeffs) == 1 and next(iter(coeffs.values())) in (1.0, -1.0):
                ((w, c),) = coeffs.items()
                constraints.append(OctConstraint(t, 1, w, -int(c), expr.const))
                constraints.append(OctConstraint(t, -1, w, int(c), -expr.const))
            else:
                closed = ext.closure()
                if ext._bottom:
                    return Octagon.bottom(self.n, policy=self.policy)
                lo, hi = expr.interval(closed.bounds)
                if hi != INF:
                    constraints.append(OctConstraint(t, 1, t, 0, hi))
                if lo != -INF:
                    constraints.append(OctConstraint(t, -1, t, 0, -lo))
                for w, c in coeffs.items():
                    if c not in (1.0, -1.0):
                        continue
                    rest = LinExpr({u: cu for u, cu in coeffs.items() if u != w},
                                   expr.const)
                    rlo, rhi = rest.interval(closed.bounds)
                    if rhi != INF:
                        constraints.append(OctConstraint(t, 1, w, -int(c), rhi))
                    if rlo != -INF:
                        constraints.append(OctConstraint(t, -1, w, int(c), -rlo))
            if constraints:
                ext = ext.meet_constraints(constraints)
        return ext.remove_dimensions([t])

    def substitute_var(self, v: int, w: int, *, coeff: int = 1,
                       offset: float = 0.0) -> "Octagon":
        """Backward form of ``v := coeff * w + offset``."""
        return self.substitute_linexpr(v, LinExpr({w: float(coeff)}, offset))

    def substitute_const(self, v: int, c: float) -> "Octagon":
        """Backward form of ``v := c``."""
        return self.substitute_linexpr(v, LinExpr({}, c))

    def tighten_integers(self) -> "Octagon":
        """Integer tightening (Mine 2006): sound when every variable is
        integer-valued.

        Floors every finite bound, rounds the unary diagonal bounds down
        to even integers (``O[i, i^1] <- 2 * floor(O[i, i^1] / 2)``,
        i.e. ``v <= floor(c)``) and re-strengthens.  Returns a new
        octagon (bottom if the tightening exposes emptiness, e.g.
        ``1 <= 2x <= 1`` over the integers).

        The result is *sound* but not necessarily in canonical closed
        form -- computing the exact integer closure needs the more
        involved algorithm of Bagnara, Hill & Zaffanella (FMSD 2009,
        the paper's [3]); we leave the result unclosed and let the next
        closure canonicalise, which is the standard practical choice.
        """
        if self.is_bottom():
            return self.copy()
        closed = self.closure()
        if self._bottom:
            return self.copy()
        out = closed.copy()
        with stats.timed_op("tighten"):
            from .strengthen import (
                is_bottom_numpy,
                reset_diagonal_numpy,
                tighten_integer_numpy,
            )
            # Integral non-unary bounds: floor every finite entry (all
            # our constraints have unit coefficients, so each entry is a
            # bound on an integer-valued expression).
            m = out._write_mat()
            finite = np.isfinite(m)
            m[finite] = np.floor(m[finite])
            tighten_integer_numpy(m)
            kernels.strengthen(m)
            if is_bottom_numpy(m):
                out._become_bottom()
                return out
            reset_diagonal_numpy(m)
            out._refresh_structure_exact()
            out.closed = False
        _sentinel.check(out)
        return out

    # ------------------------------------------------------------------
    # bounds and export
    # ------------------------------------------------------------------
    def bounds(self, v: int) -> Tuple[float, float]:
        """Interval ``[lo, hi]`` of variable ``v``."""
        if self.is_bottom():
            return (INF, -INF)
        closed = self.closure()
        if self._bottom:
            return (INF, -INF)
        ub2 = closed.mat[2 * v + 1, 2 * v]  # 2v <= ub2
        lb2 = closed.mat[2 * v, 2 * v + 1]  # -2v <= lb2
        hi = INF if not is_finite(ub2) else ub2 / 2.0
        lo = -INF if not is_finite(lb2) else -lb2 / 2.0
        return (lo, hi)

    def bound_linexpr(self, expr: LinExpr) -> Tuple[float, float]:
        """Sound interval of a linear expression's value.

        Two-variable unit expressions read the relational DBM entries
        directly; everything else uses interval arithmetic on the
        variable bounds.
        """
        if self.is_bottom():
            return (INF, -INF)
        closed = self.closure()
        if self._bottom:
            return (INF, -INF)
        coeffs = {v: c for v, c in expr.coeffs.items() if c != 0.0}
        if len(coeffs) == 2 and all(c in (1.0, -1.0) for c in coeffs.values()):
            (va, ca), (vb, cb) = sorted(coeffs.items())
            hi_cells = dbm_cells(OctConstraint(va, int(ca), vb, int(cb), 0.0))
            lo_cells = dbm_cells(OctConstraint(va, -int(ca), vb, -int(cb), 0.0))
            hi_raw = closed.mat[hi_cells[0][0], hi_cells[0][1]]
            lo_raw = closed.mat[lo_cells[0][0], lo_cells[0][1]]
            hi = INF if not is_finite(hi_raw) else hi_raw + expr.const
            lo = -INF if not is_finite(lo_raw) else -lo_raw + expr.const
            ilo, ihi = expr.interval(closed.bounds)
            return (max(lo, ilo), min(hi, ihi))
        return expr.interval(closed.bounds)

    def to_box(self) -> List[Tuple[float, float]]:
        """The interval hull, one ``(lo, hi)`` pair per variable."""
        return [self.bounds(v) for v in range(self.n)]

    def to_constraints(self) -> List[OctConstraint]:
        """All non-trivial constraints of the closed DBM."""
        if self.is_bottom():
            return []
        return constraints_from_dbm(self.closure().mat)

    def contains_point(self, values: Sequence[float], *, tol: float = 1e-9) -> bool:
        """Membership test for a concrete point (used by soundness tests)."""
        if self._bottom:
            return False
        if len(values) != self.n:
            raise ValueError("point dimension mismatch")
        vals = np.asarray(values, dtype=np.float64)
        vhat = np.empty(2 * self.n)
        vhat[0::2] = vals
        vhat[1::2] = -vals
        diff = vhat[None, :] - vhat[:, None]
        finite = np.isfinite(self.mat)
        return bool(np.all(diff[finite] <= self.mat[finite] + tol))

    # ------------------------------------------------------------------
    # dimension management
    # ------------------------------------------------------------------
    def add_dimensions(self, k: int) -> "Octagon":
        """Append ``k`` fresh unconstrained variables."""
        if k < 0:
            raise ValueError("cannot add a negative number of dimensions")
        n2 = self.n + k
        out_mat = new_top(n2)
        out_mat[: 2 * self.n, : 2 * self.n] = self.mat
        part = Partition(n2, self.partition.blocks)
        return Octagon(n2, out_mat, part, self.nni + 2 * k,
                       closed=self.closed, bottom=self._bottom, policy=self.policy)

    def remove_dimensions(self, variables: Sequence[int]) -> "Octagon":
        """Project away and delete the given variables."""
        drop = sorted(set(variables))
        if any(not 0 <= v < self.n for v in drop):
            raise ValueError("variable out of range")
        cur = self
        for v in drop:
            cur = cur.forget(v)
        keep = [v for v in range(self.n) if v not in set(drop)]
        idx = expand_vars(keep)
        mat = cur.mat[np.ix_(idx, idx)].copy()
        remap = {v: i for i, v in enumerate(keep)}
        blocks = []
        for block in cur.partition.blocks:
            nb = [remap[v] for v in block if v in remap]
            if nb:
                blocks.append(nb)
        part = Partition(len(keep), blocks)
        return Octagon(len(keep), mat, part, count_nni(mat),
                       closed=cur.closed, bottom=cur._bottom, policy=self.policy)

    def expand(self, v: int, k: int) -> "Octagon":
        """APRON's *expand*: append ``k`` fresh copies of variable ``v``.

        Each copy independently satisfies every constraint ``v``
        satisfies against the other variables (and ``v``'s unary
        bounds); the copies are unrelated to each other and to ``v``
        beyond what closure later derives.  Used to materialise
        summarised dimensions (e.g. array cells).
        """
        if k <= 0:
            raise ValueError("expand needs at least one copy")
        if self._bottom:
            out = Octagon.bottom(self.n + k, policy=self.policy)
            return out
        closed = self.closure()
        if self._bottom:
            return Octagon.bottom(self.n + k, policy=self.policy)
        out = closed.add_dimensions(k)
        m = out.mat
        src = [2 * v, 2 * v + 1]
        old = 2 * self.n
        for copy in range(k):
            dst = [old + 2 * copy, old + 2 * copy + 1]
            # Constraints against the original variables only.
            m[np.ix_(dst, range(old))] = closed.mat[np.ix_(src, range(old))]
            m[np.ix_(range(old), dst)] = closed.mat[np.ix_(range(old), src)]
            # Unary bounds of the copy.
            m[dst[0], dst[1]] = closed.mat[src[0], src[1]]
            m[dst[1], dst[0]] = closed.mat[src[1], src[0]]
            # The copy's relation to v itself must be dropped (the
            # gather above copied v's column into the copy's rows).
            m[np.ix_(dst, src)] = INF
            m[np.ix_(src, dst)] = INF
        out.closed = False
        out._refresh_structure_exact()
        return out

    def fold(self, variables: Sequence[int]) -> "Octagon":
        """APRON's *fold*: collapse ``variables`` into the first one.

        The surviving variable's constraints are the join (pointwise
        max) of the folded variables' constraints -- sound for a
        summary that may stand for any of them -- and the rest are
        removed.
        """
        folded = list(dict.fromkeys(variables))
        if len(folded) < 2:
            raise ValueError("fold needs at least two variables")
        if any(not 0 <= v < self.n for v in folded):
            raise ValueError("variable out of range")
        if self._bottom:
            keep_n = self.n - (len(folded) - 1)
            return Octagon.bottom(keep_n, policy=self.policy)
        closed = self.closure()
        if self._bottom:
            keep_n = self.n - (len(folded) - 1)
            return Octagon.bottom(keep_n, policy=self.policy)
        target = folded[0]
        others = folded[1:]
        # The summary may stand for any folded variable, so fold is the
        # join over "rename w to target" copies, with the leftover
        # folded dimensions projected away.
        acc = closed
        for w in others:
            perm = list(range(self.n))
            perm[target], perm[w] = perm[w], perm[target]
            acc = acc.join(closed.permute(perm))
        return acc.remove_dimensions(others)

    def permute(self, perm: Sequence[int]) -> "Octagon":
        """Rename variables: new variable ``i`` is old ``perm[i]``."""
        if sorted(perm) != list(range(self.n)):
            raise ValueError("not a permutation")
        idx = expand_vars(list(perm))
        mat = self.mat[np.ix_(idx, idx)].copy()
        inv = {old: new for new, old in enumerate(perm)}
        blocks = [[inv[v] for v in block] for block in self.partition.blocks]
        part = Partition(self.n, blocks)
        return Octagon(self.n, mat, part, self.nni,
                       closed=self.closed, bottom=self._bottom, policy=self.policy)

    def pretty(self, names: Optional[Sequence[str]] = None) -> str:
        """Human-readable constraint system, one inequality per line.

        ``names`` supplies variable names (defaults to ``v0, v1, ...``).
        """
        if self.is_bottom():
            return "false"
        cons = self.to_constraints()
        if not cons:
            return "true"
        if names is None:
            names = [f"v{i}" for i in range(self.n)]

        def term(coeff: int, v: int) -> str:
            return f"{'-' if coeff < 0 else '+'}{names[v]}"

        lines = []
        for c in sorted(cons, key=lambda c: (c.i, c.j, c.coeff_i, c.coeff_j)):
            if c.coeff_j == 0:
                lines.append(f"{term(c.coeff_i, c.i)} <= {c.bound:g}")
            else:
                lines.append(f"{term(c.coeff_i, c.i)} {term(c.coeff_j, c.j)}"
                             f" <= {c.bound:g}")
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # dunder
    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        if self._bottom:
            return f"Octagon(n={self.n}, bottom)"
        return (f"Octagon(n={self.n}, kind={self.kind}, nni={self.nni}, "
                f"components={len(self.partition.blocks)}, closed={self.closed})")
