"""Octagonal and linear constraints, and their DBM encodings.

The Octagon domain supports inequalities ``a*vi + b*vj <= c`` with
``a, b`` in ``{-1, 0, +1}``.  :class:`OctConstraint` is the normal form
used at the library boundary; :func:`dbm_cells` maps a constraint to
the DBM entries it tightens, and :func:`constraints_from_dbm` extracts
a minimal constraint system back out of a (closed) matrix.

General linear expressions (:class:`LinExpr`) are supported the way
APRON supports them: by *interval linearisation* -- evaluating the
non-octagonal part in interval arithmetic and falling back to interval
constraints on the target variable.  That keeps the public API closed
under arbitrary linear assignments/tests while staying sound.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Sequence, Tuple

import numpy as np

from .bounds import INF, is_finite


@dataclass(frozen=True)
class OctConstraint:
    """``coeff_i * v_i + coeff_j * v_j <= bound`` with unit coefficients.

    Unary constraints set ``j = i`` and ``coeff_j = 0`` (``+-v_i <= c``).
    """

    i: int
    coeff_i: int
    j: int
    coeff_j: int
    bound: float

    def __post_init__(self):
        if self.coeff_i not in (-1, 1):
            raise ValueError("coeff_i must be -1 or +1")
        if self.coeff_j not in (-1, 0, 1):
            raise ValueError("coeff_j must be -1, 0 or +1")
        if self.coeff_j == 0 and self.i != self.j:
            raise ValueError("unary constraint must have j == i")
        if self.coeff_j != 0 and self.i == self.j:
            raise ValueError("binary constraint needs distinct variables")

    # -- convenient constructors ---------------------------------------
    @staticmethod
    def upper(v: int, c: float) -> "OctConstraint":
        """``v <= c``"""
        return OctConstraint(v, 1, v, 0, c)

    @staticmethod
    def lower(v: int, c: float) -> "OctConstraint":
        """``v >= c`` encoded as ``-v <= -c``"""
        return OctConstraint(v, -1, v, 0, -c)

    @staticmethod
    def diff(vi: int, vj: int, c: float) -> "OctConstraint":
        """``vi - vj <= c``"""
        return OctConstraint(vi, 1, vj, -1, c)

    @staticmethod
    def sum(vi: int, vj: int, c: float) -> "OctConstraint":
        """``vi + vj <= c``"""
        return OctConstraint(vi, 1, vj, 1, c)

    @staticmethod
    def neg_sum(vi: int, vj: int, c: float) -> "OctConstraint":
        """``-vi - vj <= c``"""
        return OctConstraint(vi, -1, vj, -1, c)

    def variables(self) -> Tuple[int, ...]:
        return (self.i,) if self.coeff_j == 0 else (self.i, self.j)

    def evaluate(self, values: Sequence[float]) -> bool:
        """Does a concrete point satisfy the constraint?"""
        total = self.coeff_i * values[self.i]
        if self.coeff_j != 0:
            total += self.coeff_j * values[self.j]
        return total <= self.bound

    def __str__(self) -> str:
        def term(coeff: int, v: int) -> str:
            return f"{'-' if coeff < 0 else '+'}v{v}"

        if self.coeff_j == 0:
            return f"{term(self.coeff_i, self.i)} <= {self.bound}"
        return f"{term(self.coeff_i, self.i)} {term(self.coeff_j, self.j)} <= {self.bound}"


def dbm_cells(cons: OctConstraint) -> List[Tuple[int, int, float]]:
    """DBM entries ``(row, col, bound)`` tightened by a constraint.

    Encoding (paper Figure 1): ``O[r, c] = b`` states
    ``vhat_c - vhat_r <= b`` with ``vhat_{2v} = +v``, ``vhat_{2v+1} = -v``.
    Unary ``a*v <= c`` becomes ``2*a*v <= 2c`` on the ``+v``/``-v`` pair.
    Both coherent mirror entries are returned so full-matrix callers
    stay coherent without extra work.
    """
    a, b = cons.coeff_i, cons.coeff_j
    vi, vj, c = cons.i, cons.j, cons.bound
    if b == 0:
        if a == 1:  # v <= c  ->  vhat_{2v} - vhat_{2v+1} <= 2c
            r, s = 2 * vi + 1, 2 * vi
        else:  # -v <= c  ->  vhat_{2v+1} - vhat_{2v} <= 2c
            r, s = 2 * vi, 2 * vi + 1
        return [(r, s, 2.0 * c)]
    if a == 1 and b == -1:  # vi - vj <= c: vhat_{2vi} - vhat_{2vj} <= c
        r, s = 2 * vj, 2 * vi
    elif a == -1 and b == 1:  # vj - vi <= c
        r, s = 2 * vi, 2 * vj
    elif a == 1 and b == 1:  # vi + vj <= c: vhat_{2vi} - vhat_{2vj+1} <= c
        r, s = 2 * vj + 1, 2 * vi
    else:  # -vi - vj <= c: vhat_{2vj+1} - vhat_{2vi} <= c
        r, s = 2 * vi, 2 * vj + 1
    return [(r, s, c), (s ^ 1, r ^ 1, c)]


def constraint_of_cell(r: int, s: int, bound: float) -> OctConstraint:
    """Inverse of :func:`dbm_cells` for a single finite DBM entry."""
    vi, vj = r // 2, s // 2
    if vi == vj:
        if r == s:
            raise ValueError("diagonal entries carry no constraint")
        # vhat_s - vhat_r <= bound with s == r^1: a unary constraint.
        if s % 2 == 0:  # +v - (-v) = 2v <= bound
            return OctConstraint.upper(vi, bound / 2.0)
        return OctConstraint.lower(vi, -bound / 2.0)
    sign_s = 1 if s % 2 == 0 else -1
    sign_r = -1 if r % 2 == 0 else 1  # minus vhat_r
    # constraint: sign_s * v_{vj'} + sign_r * v_{vi'} <= bound where
    # vj' owns column s and vi' owns row r.
    return OctConstraint(vj, sign_s, vi, sign_r, bound)


def constraints_from_dbm(m: np.ndarray) -> List[OctConstraint]:
    """Extract all non-trivial constraints from a full coherent DBM.

    Each inequality is reported once (coherent duplicates skipped) and
    diagonal entries are ignored.
    """
    dim = m.shape[0]
    out: List[OctConstraint] = []
    for r in range(dim):
        for s in range(min(dim, (r | 1) + 1)):
            if r == s:
                continue
            c = m[r, s]
            if is_finite(c):
                out.append(constraint_of_cell(r, s, float(c)))
    return out


# ----------------------------------------------------------------------
# general linear expressions (interval linearisation support)
# ----------------------------------------------------------------------
@dataclass
class LinExpr:
    """``sum coeffs[v] * v + const`` over program variables."""

    coeffs: Dict[int, float] = field(default_factory=dict)
    const: float = 0.0

    @staticmethod
    def of_var(v: int) -> "LinExpr":
        return LinExpr({v: 1.0}, 0.0)

    @staticmethod
    def of_const(c: float) -> "LinExpr":
        return LinExpr({}, float(c))

    def scaled(self, k: float) -> "LinExpr":
        return LinExpr({v: k * c for v, c in self.coeffs.items()}, k * self.const)

    def plus(self, other: "LinExpr") -> "LinExpr":
        coeffs = dict(self.coeffs)
        for v, c in other.coeffs.items():
            coeffs[v] = coeffs.get(v, 0.0) + c
        coeffs = {v: c for v, c in coeffs.items() if c != 0.0}
        return LinExpr(coeffs, self.const + other.const)

    def minus(self, other: "LinExpr") -> "LinExpr":
        return self.plus(other.scaled(-1.0))

    def variables(self) -> Iterator[int]:
        return iter(self.coeffs)

    def is_octagonal_unit(self) -> bool:
        """All coefficients in {-1, +1} and at most two variables."""
        return len(self.coeffs) <= 2 and all(c in (-1.0, 1.0) for c in self.coeffs.values())

    def interval(self, var_bounds: Callable[[int], Tuple[float, float]]) -> Tuple[float, float]:
        """Evaluate in interval arithmetic given per-variable bounds."""
        lo = hi = self.const
        for v, c in self.coeffs.items():
            vlo, vhi = var_bounds(v)
            if c >= 0:
                tlo = -INF if vlo == -INF else c * vlo
                thi = INF if vhi == INF else c * vhi
            else:
                tlo = -INF if vhi == INF else c * vhi
                thi = INF if vlo == -INF else c * vlo
            lo = -INF if (lo == -INF or tlo == -INF) else lo + tlo
            hi = INF if (hi == INF or thi == INF) else hi + thi
        return lo, hi

    def evaluate(self, values: Sequence[float]) -> float:
        return self.const + sum(c * values[v] for v, c in self.coeffs.items())

    def __str__(self) -> str:
        parts = [f"{c:+g}*v{v}" for v, c in sorted(self.coeffs.items())]
        parts.append(f"{self.const:+g}")
        return " ".join(parts)
