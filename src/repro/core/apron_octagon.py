"""The baseline: an APRON-faithful scalar octagon implementation.

This class reproduces the *original* APRON octagon domain that the
paper measures against: the half-matrix flat-array layout, Algorithm 2
closure (two mins per entry per outer iteration), scalar element-wise
lattice operators, no decomposition, no sparsity exploitation and no
vectorisation.  In this reproduction it plays the role APRON's C code
plays in the paper -- the unoptimised reference whose operation
structure is identical to the optimised library's but whose inner loops
are interpreted scalar code.

It exposes the same public interface as
:class:`repro.core.octagon.Octagon` (duck-typed; the analyzer substrate
is generic over either), so benchmarks can run identical workloads
through both implementations.
"""

from __future__ import annotations

import time
from typing import Iterable, List, Sequence, Tuple

from . import kernels
from . import stats
from .bounds import INF, is_finite
from .constraints import LinExpr, OctConstraint, constraint_of_cell, dbm_cells
from .halfmat import HalfMat
from .indexing import cap
from .strengthen import is_bottom_half, reset_diagonal_half, strengthen_scalar


def _incremental_closure_half(m: HalfMat, v: int) -> bool:
    """Scalar quadratic incremental closure on the half layout.

    Mirrors APRON's ``hmat_close_incremental``: refresh the lines of
    ``v`` against the closed remainder, fix the +v/-v interplay, one
    pivot-pair sweep, then strengthening.  Returns True iff bottom.
    """
    n = m.n
    dim = 2 * n
    p0, p1 = 2 * v, 2 * v + 1
    get = m.get
    # Phase 1: exact distances out of +v / -v.
    d0 = [INF] * dim
    d1 = [INF] * dim
    for j in range(dim):
        best0 = get(p0, j)
        best1 = get(p1, j)
        for x in range(dim):
            xj = get(x, j)
            if xj == INF:
                continue
            c = get(p0, x)
            if c != INF and c + xj < best0:
                best0 = c + xj
            c = get(p1, x)
            if c != INF and c + xj < best1:
                best1 = c + xj
        d0[j] = best0
        d1[j] = best1
    # Phase 2: routes through the opposite sign.  Pair-to-pair distances
    # need one extra min-plus composition (edge, old path, edge).
    dd01 = min(d0[b] + m.get(b, p1) if d0[b] != INF and m.get(b, p1) != INF else INF
               for b in range(dim))
    dd10 = min(d1[b] + m.get(b, p0) if d1[b] != INF and m.get(b, p0) != INF else INF
               for b in range(dim))
    dd00 = min(d0[b] + m.get(b, p0) if d0[b] != INF and m.get(b, p0) != INF else INF
               for b in range(dim))
    dd11 = min(d1[b] + m.get(b, p1) if d1[b] != INF and m.get(b, p1) != INF else INF
               for b in range(dim))
    r0 = [min(d0[j], dd01 + d1[j]) if dd01 != INF and d1[j] != INF else d0[j]
          for j in range(dim)]
    r1 = [min(d1[j], dd10 + d0[j]) if dd10 != INF and d0[j] != INF else d1[j]
          for j in range(dim)]
    r0[p1] = min(r0[p1], dd01)
    r1[p0] = min(r1[p0], dd10)
    r0[p0] = min(r0[p0], dd00)
    r1[p1] = min(r1[p1], dd11)
    for j in range(dim):
        m.min_set(p0, j, r0[j])
        m.min_set(p1, j, r1[j])
    # Phase 3: pivot-pair sweep over the stored half.
    data = m.data
    for i in range(dim):
        oip0 = get(i, p0)
        oip1 = get(i, p1)
        base = (i + 1) * (i + 1) // 2
        for j in range(cap(i) + 1):
            p = base + j
            if oip0 != INF:
                c = get(p0, j)
                if c != INF and oip0 + c < data[p]:
                    data[p] = oip0 + c
            if oip1 != INF:
                c = get(p1, j)
                if c != INF and oip1 + c < data[p]:
                    data[p] = oip1 + c
    # Phase 4: strengthening.
    strengthen_scalar(m)
    if is_bottom_half(m):
        return True
    reset_diagonal_half(m)
    return False


class ApronOctagon:
    """Baseline octagon: dense half-matrix storage, scalar algorithms."""

    __slots__ = ("n", "half", "closed", "_bottom", "_ccache")

    def __init__(self, n: int, half: HalfMat, *, closed: bool = False,
                 bottom: bool = False):
        self.n = n
        self.half = half
        self.closed = closed
        self._bottom = bottom
        self._ccache = None

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def top(cls, n: int) -> "ApronOctagon":
        return cls(n, HalfMat(n), closed=True)

    @classmethod
    def bottom(cls, n: int) -> "ApronOctagon":
        return cls(n, HalfMat(n), closed=True, bottom=True)

    @classmethod
    def from_constraints(cls, n: int, constraints: Iterable[OctConstraint]) -> "ApronOctagon":
        out = cls.top(n)
        for cons in constraints:
            out._meet_constraint_cells(cons)
        return out

    @classmethod
    def from_box(cls, bounds: Sequence[Tuple[float, float]]) -> "ApronOctagon":
        n = len(bounds)
        out = cls.top(n)
        for v, (lo, hi) in enumerate(bounds):
            if lo > hi:
                return cls.bottom(n)
            if hi != INF:
                out._meet_constraint_cells(OctConstraint.upper(v, hi))
            if lo != -INF:
                out._meet_constraint_cells(OctConstraint.lower(v, lo))
        return out

    def copy(self) -> "ApronOctagon":
        return ApronOctagon(self.n, self.half.copy(), closed=self.closed,
                            bottom=self._bottom)

    # ------------------------------------------------------------------
    # predicates
    # ------------------------------------------------------------------
    def is_bottom(self) -> bool:
        if self._bottom:
            return True
        self.closure()
        return self._bottom

    def is_top(self) -> bool:
        if self.is_bottom():
            return False
        return self.closure().half.count_finite() == 2 * self.n

    def is_leq(self, other: "ApronOctagon") -> bool:
        self._check_compat(other)
        if self.is_bottom():
            return True
        if other._bottom:
            return False
        closed = self.closure()
        if self._bottom:
            return True
        with stats.timed_op("is_leq"):
            a, b = closed.half.data, other.half.data
            return all(x <= y for x, y in zip(a, b))

    def is_eq(self, other: "ApronOctagon") -> bool:
        self._check_compat(other)
        if self.is_bottom() or other.is_bottom():
            return self.is_bottom() and other.is_bottom()
        a, b = self.closure(), other.closure()
        if self._bottom or other._bottom:
            return self._bottom and other._bottom
        return a.half.data == b.half.data

    def _check_compat(self, other: "ApronOctagon") -> None:
        if self.n != other.n:
            raise ValueError(f"dimension mismatch: {self.n} vs {other.n}")

    # ------------------------------------------------------------------
    # closure
    # ------------------------------------------------------------------
    def closure(self) -> "ApronOctagon":
        """The closed form; a cached copy, the original is preserved
        (mirrors APRON's m/closed matrix pair -- the widening operator
        must see the unclosed left argument)."""
        if self._bottom or self.closed:
            return self
        if self._ccache is not None:
            return self._ccache
        out = self.copy()
        start = time.perf_counter()
        empty = kernels.apron_closure(out.half)
        stats.record_closure(self.n, "apron", time.perf_counter() - start)
        if empty:
            self._become_bottom()
            return self
        out.closed = True
        self._ccache = out
        return out

    def close(self) -> "ApronOctagon":
        return self.closure()

    def _incremental_close(self, v: int) -> None:
        start = time.perf_counter()
        empty = _incremental_closure_half(self.half, v)
        stats.record_closure(self.n, "apron-incremental",
                             time.perf_counter() - start)
        if empty:
            self._become_bottom()
        else:
            self.closed = True

    def _become_bottom(self) -> None:
        self._bottom = True
        self.closed = True
        self.half = HalfMat(self.n)

    # ------------------------------------------------------------------
    # lattice operators (scalar element-wise loops, as in APRON)
    # ------------------------------------------------------------------
    def meet(self, other: "ApronOctagon") -> "ApronOctagon":
        self._check_compat(other)
        if self._bottom or other._bottom:
            return ApronOctagon.bottom(self.n)
        with stats.timed_op("meet"):
            out = HalfMat.__new__(HalfMat)
            out.n = self.n
            out.data = [a if a <= b else b
                        for a, b in zip(self.half.data, other.half.data)]
            return ApronOctagon(self.n, out, closed=False)

    def join(self, other: "ApronOctagon") -> "ApronOctagon":
        self._check_compat(other)
        if self.is_bottom():
            return other.copy()
        if other.is_bottom():
            return self.copy()
        ca, cb = self.closure(), other.closure()
        if self._bottom:
            return other.copy()
        if other._bottom:
            return self.copy()
        with stats.timed_op("join"):
            out = HalfMat.__new__(HalfMat)
            out.n = self.n
            out.data = [a if a >= b else b
                        for a, b in zip(ca.half.data, cb.half.data)]
            return ApronOctagon(self.n, out, closed=True)

    def widening(self, other: "ApronOctagon") -> "ApronOctagon":
        self._check_compat(other)
        if self._bottom:
            return other.copy()
        if other.is_bottom():
            return self.copy()
        cb = other.closure()
        if other._bottom:
            return self.copy()
        with stats.timed_op("widening"):
            out = HalfMat.__new__(HalfMat)
            out.n = self.n
            out.data = [a if b <= a else INF
                        for a, b in zip(self.half.data, cb.half.data)]
            res = ApronOctagon(self.n, out, closed=False)
            reset_diagonal_half(res.half)
            return res

    def narrowing(self, other: "ApronOctagon") -> "ApronOctagon":
        self._check_compat(other)
        if self._bottom or other._bottom:
            return ApronOctagon.bottom(self.n)
        with stats.timed_op("narrowing"):
            out = HalfMat.__new__(HalfMat)
            out.n = self.n
            out.data = [b if a == INF else a
                        for a, b in zip(self.half.data, other.half.data)]
            return ApronOctagon(self.n, out, closed=False)

    # ------------------------------------------------------------------
    # constraints and transfer functions
    # ------------------------------------------------------------------
    def _meet_constraint_cells(self, cons: OctConstraint) -> None:
        for r, s, c in dbm_cells(cons):
            self.half.min_set(r, s, c)
        self.closed = False
        self._ccache = None

    def meet_constraint(self, cons: OctConstraint) -> "ApronOctagon":
        if self._bottom:
            return self.copy()
        with stats.timed_op("meet_constraint"):
            base = self.closure() if self.closed or self._ccache else self
            out = base.copy()
            was_closed = out.closed
            out._meet_constraint_cells(cons)
            if was_closed:
                out._incremental_close(cons.i)
        return out

    def meet_constraints(self, constraints: Iterable[OctConstraint]) -> "ApronOctagon":
        if self._bottom:
            return self.copy()
        base = self.closure() if self.closed or self._ccache else self
        out = base.copy()
        was_closed = out.closed
        with stats.timed_op("meet_constraint"):
            cons_list = list(constraints)
            for cons in cons_list:
                out._meet_constraint_cells(cons)
            if was_closed and cons_list:
                common = set(cons_list[0].variables())
                for cons in cons_list[1:]:
                    common &= set(cons.variables())
                if common:
                    out._incremental_close(min(common))
                else:
                    out.closed = False
        return out

    def assume_linear(self, expr: LinExpr, *, strict: bool = False) -> "ApronOctagon":
        if self.is_bottom():
            return self.copy()
        closed = self.closure()
        if self._bottom:
            return self.copy()
        coeffs = {v: c for v, c in expr.coeffs.items() if c != 0.0}
        if not coeffs:
            return (self.copy() if expr.const <= 0 else ApronOctagon.bottom(self.n))
        items = sorted(coeffs.items())
        constraints: List[OctConstraint] = []

        def residual_neg_sup(excluded: Tuple[int, ...]) -> float:
            rest = LinExpr({v: c for v, c in coeffs.items() if v not in excluded},
                           expr.const)
            lo, _ = rest.interval(closed.bounds)
            return INF if lo == -INF else -lo

        for v, c in items:
            if c in (1.0, -1.0):
                bound = residual_neg_sup((v,))
                if is_finite(bound):
                    constraints.append(OctConstraint(v, int(c), v, 0, bound))
        for ai in range(len(items)):
            va, ca = items[ai]
            if ca not in (1.0, -1.0):
                continue
            for bi in range(ai + 1, len(items)):
                vb, cb = items[bi]
                if cb not in (1.0, -1.0):
                    continue
                bound = residual_neg_sup((va, vb))
                if is_finite(bound):
                    constraints.append(OctConstraint(va, int(ca), vb, int(cb), bound))
        if not constraints:
            return self.copy()
        return closed.meet_constraints(constraints)

    def forget(self, v: int) -> "ApronOctagon":
        if self.is_bottom():
            return self.copy()
        closed = self.closure()
        if self._bottom:
            return self.copy()
        with stats.timed_op("forget"):
            out = closed.copy()
            dim = 2 * self.n
            p0, p1 = 2 * v, 2 * v + 1
            for j in range(dim):
                if j not in (p0, p1):
                    out.half.set(p0, j, INF)
                    out.half.set(p1, j, INF)
                    out.half.set(j, p0, INF)
                    out.half.set(j, p1, INF)
            out.half.set(p0, p1, INF)
            out.half.set(p1, p0, INF)
            out.half.set(p0, p0, 0.0)
            out.half.set(p1, p1, 0.0)
            out.closed = True
        return out

    def assign_const(self, v: int, c: float) -> "ApronOctagon":
        out = self.forget(v)
        if out._bottom:
            return out
        with stats.timed_op("assign"):
            out._meet_constraint_cells(OctConstraint.upper(v, c))
            out._meet_constraint_cells(OctConstraint.lower(v, c))
            out._incremental_close(v)
        return out

    def assign_interval(self, v: int, lo: float, hi: float) -> "ApronOctagon":
        if lo > hi:
            return ApronOctagon.bottom(self.n)
        out = self.forget(v)
        if out._bottom:
            return out
        with stats.timed_op("assign"):
            changed = False
            if hi != INF:
                out._meet_constraint_cells(OctConstraint.upper(v, hi))
                changed = True
            if lo != -INF:
                out._meet_constraint_cells(OctConstraint.lower(v, lo))
                changed = True
            if changed:
                out._incremental_close(v)
        return out

    def assign_translate(self, v: int, c: float) -> "ApronOctagon":
        if self._bottom:
            return self.copy()
        with stats.timed_op("assign"):
            out = self.copy()
            dim = 2 * self.n
            p0, p1 = 2 * v, 2 * v + 1

            def shift(i: int, j: int, delta: float) -> None:
                a = out.half.get(i, j)
                if a != INF:
                    out.half.set(i, j, a + delta)

            # Adjust each *stored* slot exactly once (its coherent mirror
            # is the same slot, so iterating the virtual full matrix
            # would double-shift).
            for j in range(p0):
                shift(p0, j, -c)
                shift(p1, j, +c)
            for i in range(p1 + 1, dim):
                shift(i, p0, +c)
                shift(i, p1, -c)
            shift(p0, p1, -2 * c)
            shift(p1, p0, +2 * c)
        return out

    def assign_negate(self, v: int, c: float = 0.0) -> "ApronOctagon":
        if self._bottom:
            return self.copy()
        with stats.timed_op("assign"):
            out = self.copy()
            dim = 2 * self.n
            p0, p1 = 2 * v, 2 * v + 1
            # Read every new value first: on the half representation a
            # row slot and a column slot may alias through coherence, so
            # interleaved swapping would undo itself.
            updates = {}
            for j in range(dim):
                if j in (p0, p1):
                    continue
                updates[(p0, j)] = out.half.get(p1, j)
                updates[(p1, j)] = out.half.get(p0, j)
                updates[(j, p0)] = out.half.get(j, p1)
                updates[(j, p1)] = out.half.get(j, p0)
            updates[(p0, p1)] = out.half.get(p1, p0)
            updates[(p1, p0)] = out.half.get(p0, p1)
            for (i, j), val in updates.items():
                out.half.set(i, j, val)
        if c != 0.0:
            return out.assign_translate(v, c)
        return out

    def assign_var(self, v: int, w: int, *, coeff: int = 1, offset: float = 0.0) -> "ApronOctagon":
        if coeff not in (-1, 1):
            raise ValueError("octagonal assignment needs coeff +-1")
        if w == v:
            if coeff == 1:
                return self.assign_translate(v, offset)
            return self.assign_negate(v, offset)
        out = self.forget(v)
        if out._bottom:
            return out
        with stats.timed_op("assign"):
            out._meet_constraint_cells(OctConstraint(v, 1, w, -coeff, offset))
            out._meet_constraint_cells(OctConstraint(v, -1, w, coeff, -offset))
            out._incremental_close(v)
        return out

    def assign_linexpr(self, v: int, expr: LinExpr) -> "ApronOctagon":
        coeffs = {w: c for w, c in expr.coeffs.items() if c != 0.0}
        if not coeffs:
            return self.assign_const(v, expr.const)
        if len(coeffs) == 1:
            ((w, c),) = coeffs.items()
            if c in (1.0, -1.0):
                return self.assign_var(v, w, coeff=int(c), offset=expr.const)
        if self.is_bottom():
            return self.copy()
        closed = self.closure()
        if self._bottom:
            return self.copy()
        lo, hi = expr.interval(closed.bounds)
        relational: List[Tuple[int, int, float, float]] = []
        for w, c in coeffs.items():
            if w == v or c not in (1.0, -1.0):
                continue
            rest = LinExpr({u: cu for u, cu in coeffs.items() if u != w}, expr.const)
            rlo, rhi = rest.interval(closed.bounds)
            relational.append((w, int(c), rlo, rhi))
        out = closed.forget(v)
        if out._bottom:
            return out
        with stats.timed_op("assign"):
            changed = False
            if hi != INF:
                out._meet_constraint_cells(OctConstraint.upper(v, hi))
                changed = True
            if lo != -INF:
                out._meet_constraint_cells(OctConstraint.lower(v, lo))
                changed = True
            for w, c, rlo, rhi in relational:
                if rhi != INF:
                    out._meet_constraint_cells(OctConstraint(v, 1, w, -c, rhi))
                    changed = True
                if rlo != -INF:
                    out._meet_constraint_cells(OctConstraint(v, -1, w, c, -rlo))
                    changed = True
            if changed:
                out._incremental_close(v)
        return out

    # ------------------------------------------------------------------
    # dimension management (API parity with the optimised octagon)
    # ------------------------------------------------------------------
    def add_dimensions(self, k: int) -> "ApronOctagon":
        """Append ``k`` fresh unconstrained variables."""
        if k < 0:
            raise ValueError("cannot add a negative number of dimensions")
        out = ApronOctagon.top(self.n + k)
        for i, j, c in self.half.iter_entries():
            out.half.set(i, j, c)
        out.closed = self.closed
        out._bottom = self._bottom
        return out

    def remove_dimensions(self, variables: Sequence[int]) -> "ApronOctagon":
        """Project away and delete the given variables."""
        drop = sorted(set(variables))
        if any(not 0 <= v < self.n for v in drop):
            raise ValueError("variable out of range")
        cur = self
        for v in drop:
            cur = cur.forget(v)
        keep = [v for v in range(self.n) if v not in set(drop)]
        out = ApronOctagon.top(len(keep))
        for new_v, old_v in enumerate(keep):
            for new_w, old_w in enumerate(keep):
                for sv in (0, 1):
                    for sw in (0, 1):
                        out.half.set(2 * new_v + sv, 2 * new_w + sw,
                                     cur.half.get(2 * old_v + sv,
                                                  2 * old_w + sw))
        out.closed = cur.closed
        out._bottom = cur._bottom
        return out

    def permute(self, perm: Sequence[int]) -> "ApronOctagon":
        """Rename variables: new variable ``i`` is old ``perm[i]``."""
        if sorted(perm) != list(range(self.n)):
            raise ValueError("not a permutation")
        out = ApronOctagon.top(self.n)
        for new_v, old_v in enumerate(perm):
            for new_w, old_w in enumerate(perm):
                for sv in (0, 1):
                    for sw in (0, 1):
                        out.half.set(2 * new_v + sv, 2 * new_w + sw,
                                     self.half.get(2 * old_v + sv,
                                                   2 * old_w + sw))
        out.closed = self.closed
        out._bottom = self._bottom
        return out

    def widening_thresholds(self, other: "ApronOctagon",
                            thresholds: Sequence[float]) -> "ApronOctagon":
        """Widening with thresholds (scalar element-wise loop)."""
        self._check_compat(other)
        if self._bottom:
            return other.copy()
        if other.is_bottom():
            return self.copy()
        cb = other.closure()
        if other._bottom:
            return self.copy()
        with stats.timed_op("widening"):
            ts = sorted(float(t) for t in thresholds)
            out = HalfMat.__new__(HalfMat)
            out.n = self.n

            def bump(value: float) -> float:
                for t in ts:
                    if value <= t:
                        return t
                return INF

            out.data = [a if b <= a else bump(b)
                        for a, b in zip(self.half.data, cb.half.data)]
            res = ApronOctagon(self.n, out, closed=False)
            reset_diagonal_half(res.half)
            return res

    def substitute_linexpr(self, v: int, expr: LinExpr) -> "ApronOctagon":
        """Backward assignment via the temporary-dimension construction
        (see :meth:`repro.core.Octagon.substitute_linexpr`)."""
        if self._bottom:
            return self.copy()
        with stats.timed_op("substitute"):
            t = self.n
            ext = self.add_dimensions(1)
            perm = list(range(ext.n))
            perm[v], perm[t] = perm[t], perm[v]
            ext = ext.permute(perm)
            coeffs = {w: c for w, c in expr.coeffs.items() if c != 0.0}
            constraints: List[OctConstraint] = []
            if not coeffs:
                constraints.append(OctConstraint.upper(t, expr.const))
                constraints.append(OctConstraint.lower(t, expr.const))
            elif len(coeffs) == 1 and next(iter(coeffs.values())) in (1.0, -1.0):
                ((w, c),) = coeffs.items()
                constraints.append(OctConstraint(t, 1, w, -int(c), expr.const))
                constraints.append(OctConstraint(t, -1, w, int(c), -expr.const))
            else:
                closed = ext.closure()
                if ext._bottom:
                    return ApronOctagon.bottom(self.n)
                lo, hi = expr.interval(closed.bounds)
                if hi != INF:
                    constraints.append(OctConstraint(t, 1, t, 0, hi))
                if lo != -INF:
                    constraints.append(OctConstraint(t, -1, t, 0, -lo))
                for w, c in coeffs.items():
                    if c not in (1.0, -1.0):
                        continue
                    rest = LinExpr({u: cu for u, cu in coeffs.items()
                                    if u != w}, expr.const)
                    rlo, rhi = rest.interval(closed.bounds)
                    if rhi != INF:
                        constraints.append(OctConstraint(t, 1, w, -int(c), rhi))
                    if rlo != -INF:
                        constraints.append(OctConstraint(t, -1, w, int(c), -rlo))
            if constraints:
                ext = ext.meet_constraints(constraints)
        return ext.remove_dimensions([t])

    def substitute_var(self, v: int, w: int, *, coeff: int = 1,
                       offset: float = 0.0) -> "ApronOctagon":
        return self.substitute_linexpr(v, LinExpr({w: float(coeff)}, offset))

    def substitute_const(self, v: int, c: float) -> "ApronOctagon":
        return self.substitute_linexpr(v, LinExpr({}, c))

    # ------------------------------------------------------------------
    # bounds and export
    # ------------------------------------------------------------------
    def bounds(self, v: int) -> Tuple[float, float]:
        if self.is_bottom():
            return (INF, -INF)
        closed = self.closure()
        if self._bottom:
            return (INF, -INF)
        ub2 = closed.half.get(2 * v + 1, 2 * v)
        lb2 = closed.half.get(2 * v, 2 * v + 1)
        hi = INF if not is_finite(ub2) else ub2 / 2.0
        lo = -INF if not is_finite(lb2) else -lb2 / 2.0
        return (lo, hi)

    def bound_linexpr(self, expr: LinExpr) -> Tuple[float, float]:
        if self.is_bottom():
            return (INF, -INF)
        closed = self.closure()
        if self._bottom:
            return (INF, -INF)
        coeffs = {v: c for v, c in expr.coeffs.items() if c != 0.0}
        if len(coeffs) == 2 and all(c in (1.0, -1.0) for c in coeffs.values()):
            (va, ca), (vb, cb) = sorted(coeffs.items())
            hi_cell = dbm_cells(OctConstraint(va, int(ca), vb, int(cb), 0.0))[0]
            lo_cell = dbm_cells(OctConstraint(va, -int(ca), vb, -int(cb), 0.0))[0]
            hi_raw = closed.half.get(hi_cell[0], hi_cell[1])
            lo_raw = closed.half.get(lo_cell[0], lo_cell[1])
            hi = INF if not is_finite(hi_raw) else hi_raw + expr.const
            lo = -INF if not is_finite(lo_raw) else -lo_raw + expr.const
            ilo, ihi = expr.interval(closed.bounds)
            return (max(lo, ilo), min(hi, ihi))
        return expr.interval(closed.bounds)

    def to_box(self) -> List[Tuple[float, float]]:
        return [self.bounds(v) for v in range(self.n)]

    def to_constraints(self) -> List[OctConstraint]:
        if self.is_bottom():
            return []
        out: List[OctConstraint] = []
        for i, j, c in self.closure().half.iter_entries():
            if i != j and is_finite(c):
                out.append(constraint_of_cell(i, j, c))
        return out

    def contains_point(self, values: Sequence[float], *, tol: float = 1e-9) -> bool:
        if self._bottom:
            return False
        if len(values) != self.n:
            raise ValueError("point dimension mismatch")
        vhat = []
        for x in values:
            vhat.append(float(x))
            vhat.append(-float(x))
        for i, j, c in self.half.iter_entries():
            if is_finite(c) and vhat[j] - vhat[i] > c + tol:
                return False
        return True

    def __repr__(self) -> str:
        if self._bottom:
            return f"ApronOctagon(n={self.n}, bottom)"
        return (f"ApronOctagon(n={self.n}, finite={self.half.count_finite()}, "
                f"closed={self.closed})")
