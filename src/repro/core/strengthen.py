"""The strengthening step of octagon closure (paper Algorithm 1, lines 9-11).

Shortest-path closure alone does not produce the canonical octagon
form: unary constraints must additionally be combined pairwise,

    O[i, j] = min(O[i, j], (O[i, i^1] + O[j^1, j]) / 2)

because ``vhat_{i^1} = -vhat_i`` turns the two "diagonal" entries into
a bound on ``vhat_j - vhat_i``.  The diagonal operands do not change
during the step, so the paper buffers them in a contiguous array --
which both fixes the strided access pattern and enables vectorisation.
The NumPy variants below follow the same structure: gather the diagonal
into a vector ``d`` with ``d[i] = O[i, i^1]``, then perform one
vectorised rank-1-style update.

This module provides scalar (instrumented) and vectorised variants for
both matrix layouts, plus emptiness detection and the optional integer
tightening used when all variables are integral.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .halfmat import HalfMat
from .indexing import cap, matpos
from .stats import OpCounter
from .workspace import get_workspace


def strengthen_scalar(m: HalfMat, counter: Optional[OpCounter] = None) -> None:
    """Strengthening on the half representation, pure Python.

    Faithful to APRON: one pass over the stored half, three operations
    (add, halve, compare) per entry.  The diagonal operands are
    buffered first, as in the paper.
    """
    dim = 2 * m.n
    data = m.data
    diag = [data[matpos(i, i ^ 1)] for i in range(dim)]
    ticks = 0
    for i in range(dim):
        di = diag[i]
        base = (i + 1) * (i + 1) // 2
        for j in range(cap(i) + 1):
            ticks += 1
            cand = (di + diag[j ^ 1]) / 2.0
            if cand < data[base + j]:
                data[base + j] = cand
    if counter is not None:
        counter.tick(3 * ticks)  # add + halve + compare per entry


def strengthen_numpy(m: np.ndarray) -> None:
    """Vectorised strengthening on a full coherent DBM (in place)."""
    dim = m.shape[0]
    if dim == 0:
        return
    ws = get_workspace(dim)
    d = m[ws.arange, ws.xor]  # d[i] = O[i, i^1]
    # O[i, j] <- min(O[i, j], (d[i] + d[j^1]) / 2); inf operands stay inf.
    t = ws.scratch
    np.add(d[:, None], d[ws.xor][None, :], out=t)
    t *= 0.5
    np.minimum(m, t, out=m)


def strengthen_sparse_numpy(m: np.ndarray) -> int:
    """Strengthening restricted to finite diagonal operands.

    Mirrors the paper's sparse strengthening: build the index of finite
    diagonal entries and only touch rows/columns in that index.
    Returns the number of candidate updates performed (for op-count
    reporting).
    """
    dim = m.shape[0]
    ws = get_workspace(dim)
    d = m[ws.arange, ws.xor]
    finite = np.nonzero(np.isfinite(d))[0]
    if finite.size == 0:
        return 0
    rows = finite  # need d[i] finite
    cols = finite ^ 1  # need d[j^1] finite, i.e. j in finite^1
    sub = m[np.ix_(rows, cols)]
    cand = (d[rows][:, None] + d[rows][None, :]) * 0.5
    np.minimum(sub, cand, out=sub)
    m[np.ix_(rows, cols)] = sub
    return int(rows.size) * int(cols.size)


def tighten_integer_numpy(m: np.ndarray) -> None:
    """Integer tightening: ``O[i, i^1] <- 2 * floor(O[i, i^1] / 2)``.

    Sound only when every variable is integer-valued; an optional
    extension (Mine 2006) applied before strengthening.
    """
    dim = m.shape[0]
    ws = get_workspace(dim)
    d = m[ws.arange, ws.xor]
    finite = np.isfinite(d)
    d[finite] = 2.0 * np.floor(d[finite] / 2.0)
    m[ws.arange, ws.xor] = d


def is_bottom_numpy(m: np.ndarray) -> bool:
    """Emptiness: the closed DBM has a negative diagonal entry."""
    return bool((np.diagonal(m) < 0.0).any())


def is_bottom_half(m: HalfMat) -> bool:
    """Emptiness test for the half representation."""
    data = m.data
    return any(data[matpos(i, i)] < 0.0 for i in range(2 * m.n))


def reset_diagonal_numpy(m: np.ndarray) -> None:
    """Restore the zero diagonal after a non-bottom closure."""
    np.fill_diagonal(m, 0.0)


def reset_diagonal_half(m: HalfMat) -> None:
    data = m.data
    for i in range(2 * m.n):
        data[matpos(i, i)] = 0.0
