"""Incremental closure (paper section 5.6).

After an assignment or a constraint meet, only the inequalities
involving one variable ``v`` are out of date; the rest of the DBM is
still closed.  Closure can then be restored in quadratic time.  The
paper describes it as one iteration of the outermost shortest-path loop
(the pivot pair ``2v``/``2v+1``) plus a strengthening step; making that
exact requires first bringing ``v``'s own lines up to date:

1. **Line refresh** -- two min-plus vector products compute the true
   shortest paths from ``+v`` and ``-v`` to everything, using the fact
   that every new edge is incident to one of them and the remainder of
   the matrix is closed.
2. **Sign interplay** -- a path into ``+v`` may route through ``-v``
   and vice versa; two vector mins fix this.
3. **Pivot-pair sweep** -- one fused bulk update of the whole matrix
   against ``v``'s (now exact) lines.
4. **Strengthening**, as in the full closure.

All candidates in each phase are computed from a consistent snapshot
and written symmetrically, so coherence is preserved by construction.
Total cost is ``O(n^2)``; equivalence with the full cubic closure on
almost-closed inputs is property-tested.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .stats import OpCounter
from .strengthen import (
    is_bottom_numpy,
    reset_diagonal_numpy,
    strengthen_numpy,
)
from .workspace import get_workspace


def incremental_closure(
    m: np.ndarray, v: int, counter: Optional[OpCounter] = None
) -> bool:
    """Restore closure after changes confined to variable ``v``.

    ``m`` must be coherent, and closed except for entries in the rows
    and columns of ``2v``/``2v+1``.  In-place; returns True iff bottom.
    """
    dim = m.shape[0]
    p0, p1 = 2 * v, 2 * v + 1
    if not 0 <= p1 < dim:
        raise IndexError(f"variable {v} out of range for dim {dim}")
    ws = get_workspace(dim)
    xor = ws.xor
    t = ws.scratch
    tmp = ws.vec("inc_tmp")
    # Phase 1: one-hop-new-edge distances out of +v / -v against the
    # closed rest:  d(p, j) = min_x O[p, x] + O[x, j] (snapshot).
    d0 = ws.vec("inc_d0")
    d1 = ws.vec("inc_d1")
    np.add(m[p0, :, None], m, out=t)
    np.min(t, axis=0, out=d0)
    np.add(m[p1, :, None], m, out=t)
    np.min(t, axis=0, out=d1)
    # Phase 2: routes through the opposite sign of v.  A path between
    # the two signs may use new edges on *both* ends with an old-closed
    # segment in between (edge, old path, edge), so the pair-to-pair
    # distances take one more min-plus composition.
    np.add(d0, m[:, p1], out=tmp)
    dd01 = float(tmp.min())  # exact d(+v -> -v)
    np.add(d1, m[:, p0], out=tmp)
    dd10 = float(tmp.min())  # exact d(-v -> +v)
    np.add(d0, m[:, p0], out=tmp)
    dd00 = float(tmp.min())  # cycle through +v (bottom check)
    np.add(d1, m[:, p1], out=tmp)
    dd11 = float(tmp.min())  # cycle through -v
    r0 = ws.vec("inc_r0")
    r1 = ws.vec("inc_r1")
    np.add(d1, dd01, out=r0)
    np.minimum(d0, r0, out=r0)
    np.add(d0, dd10, out=r1)
    np.minimum(d1, r1, out=r1)
    r0[p1] = min(r0[p1], dd01)
    r1[p0] = min(r1[p0], dd10)
    r0[p0] = min(r0[p0], dd00)
    r1[p1] = min(r1[p1], dd11)
    # Install the refreshed lines coherently: columns are the mirrors of
    # the opposite-sign rows (O[i, p0] == O[p1, i^1]).
    np.minimum(m[p0, :], r0, out=m[p0, :])
    np.minimum(m[p1, :], r1, out=m[p1, :])
    col0 = ws.vec("inc_col0")
    col1 = ws.vec("inc_col1")
    np.take(r1, xor, out=col0)
    np.take(r0, xor, out=col1)
    np.minimum(m[:, p0], col0, out=m[:, p0])
    np.minimum(m[:, p1], col1, out=m[:, p1])
    # Phase 3: one fused pivot-pair sweep, all candidates from the
    # refreshed lines (kept in r0/r1 to stay snapshot-consistent).
    t2 = ws.scratch2
    np.add(col0[:, None], r0[None, :], out=t)
    np.add(col1[:, None], r1[None, :], out=t2)
    np.minimum(t, t2, out=t)
    np.minimum(m, t, out=m)
    # Phase 4: strengthening.
    strengthen_numpy(m)
    if counter is not None:
        # Two min-plus line refreshes, the bulk sweep and strengthening:
        # the paper's quadratic bound.
        counter.tick(2 * dim * dim + 2 * dim * dim + dim * dim)
    if is_bottom_numpy(m):
        return True
    reset_diagonal_numpy(m)
    return False
