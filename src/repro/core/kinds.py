"""DBM kinds and the online type-switching policy (paper section 3).

The optimised octagon stores every DBM in one of four kinds:

* ``TOP`` -- the maximal element; the matrix is allocated but may be
  uninitialised and the component partition is empty.
* ``DECOMPOSED`` -- a (partial) partition of the variables into
  independent components is maintained; operators run per submatrix.
* ``SPARSE`` -- no partition, but a large fraction of entries is
  trivial, so the sparse closure pays off.
* ``DENSE`` -- no useful structure; vectorised dense operators run on
  the whole matrix and ``nni`` is pinned to its maximum ``2n^2 + 2n``
  (the paper's over-approximation that avoids per-entry checks).

Switching is driven by the sparsity measure ``D = 1 - nni/(2n^2+2n)``
compared against a threshold ``t`` (paper default ``t = 3/4``): sparse
kinds are kept while ``D >= t``.  Exact recomputation of sparsity and
components piggybacks on closure, which is also where switches happen.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from .indexing import half_size


class DbmKind(Enum):
    TOP = "top"
    DECOMPOSED = "decomposed"
    SPARSE = "sparse"
    DENSE = "dense"
    #: Constraint-graph representation (``domains/sparse_octagon.py``):
    #: finite cells live in a dict keyed by canonical half positions, no
    #: (2n)^2 matrix is materialised at all.
    GRAPH = "graph"

    def __str__(self) -> str:  # nicer benchmark output
        return self.value


@dataclass(frozen=True)
class SwitchPolicy:
    """When to treat a DBM as dense vs sparse/decomposed.

    ``threshold`` is the paper's ``t``: the DBM is considered dense when
    its sparsity ``D`` falls below ``t``.  ``decompose`` switches the
    whole online-decomposition machinery off (an ablation knob: with
    ``decompose=False`` and ``threshold=1.0`` the library degenerates to
    a plain vectorised dense implementation).
    """

    threshold: float = 0.75
    decompose: bool = True

    def is_sparse(self, nni: int, n: int) -> bool:
        if n == 0:
            return False
        sparsity = 1.0 - nni / half_size(n)
        return sparsity >= self.threshold

    def kind_for(self, nni: int, n: int, components: int) -> DbmKind:
        """Pick a kind from up-to-date sparsity and component info."""
        if components == 0:
            return DbmKind.TOP
        if not self.decompose:
            return DbmKind.DENSE
        if components > 1:
            return DbmKind.DECOMPOSED
        if self.is_sparse(nni, n):
            return DbmKind.SPARSE
        return DbmKind.DENSE


#: The default policy used throughout the library (paper's t = 3/4).
DEFAULT_POLICY = SwitchPolicy()


@dataclass(frozen=True)
class GraphPolicy:
    """Representation switching for the graph-sparse octagon backend.

    The graph representation (:class:`~repro.domains.sparse_octagon.
    SparseOctagon`) measures its *stored* sparsity ``D = 1 - (2n + cells)
    / (2n^2 + 2n)`` -- the fraction of canonical half positions that are
    not explicitly materialised.  Closures run on the constraint graph
    while ``D >= threshold``; below it, the representation has densified
    enough that per-component graph closure stops paying for its
    bookkeeping, and closure falls back to one dense kernel sweep over a
    materialised matrix (the result is *reduced* back to cells either
    way, so the switch is invisible to clients).

    ``hysteresis`` keeps the choice sticky: once a DBM has gone dense it
    returns to graph closures only when sparsity recovers to
    ``threshold + hysteresis``, so a DBM oscillating around the
    threshold does not thrash between strategies.
    """

    threshold: float = 0.5
    hysteresis: float = 0.1

    def sparsity(self, cells: int, n: int) -> float:
        """Stored sparsity: fraction of half positions not materialised.

        ``cells`` counts explicit finite binary cells; the ``2n`` unary
        positions are always considered materialised (they are stored in
        the unary snapshot), mirroring how the dense ``nni`` counts its
        diagonal.
        """
        if n == 0:
            return 0.0
        return 1.0 - (2 * n + cells) / half_size(n)

    def use_graph(self, cells: int, n: int, dense_mode: bool) -> bool:
        """Should the next closure run on the graph? (with hysteresis)"""
        if n == 0:
            return True
        sparsity = self.sparsity(cells, n)
        if dense_mode:
            return sparsity >= self.threshold + self.hysteresis
        return sparsity >= self.threshold


#: Default graph-backend policy (t = 1/2 with a 0.1 re-entry band).
DEFAULT_GRAPH_POLICY = GraphPolicy()
