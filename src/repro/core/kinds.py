"""DBM kinds and the online type-switching policy (paper section 3).

The optimised octagon stores every DBM in one of four kinds:

* ``TOP`` -- the maximal element; the matrix is allocated but may be
  uninitialised and the component partition is empty.
* ``DECOMPOSED`` -- a (partial) partition of the variables into
  independent components is maintained; operators run per submatrix.
* ``SPARSE`` -- no partition, but a large fraction of entries is
  trivial, so the sparse closure pays off.
* ``DENSE`` -- no useful structure; vectorised dense operators run on
  the whole matrix and ``nni`` is pinned to its maximum ``2n^2 + 2n``
  (the paper's over-approximation that avoids per-entry checks).

Switching is driven by the sparsity measure ``D = 1 - nni/(2n^2+2n)``
compared against a threshold ``t`` (paper default ``t = 3/4``): sparse
kinds are kept while ``D >= t``.  Exact recomputation of sparsity and
components piggybacks on closure, which is also where switches happen.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from .indexing import half_size


class DbmKind(Enum):
    TOP = "top"
    DECOMPOSED = "decomposed"
    SPARSE = "sparse"
    DENSE = "dense"

    def __str__(self) -> str:  # nicer benchmark output
        return self.value


@dataclass(frozen=True)
class SwitchPolicy:
    """When to treat a DBM as dense vs sparse/decomposed.

    ``threshold`` is the paper's ``t``: the DBM is considered dense when
    its sparsity ``D`` falls below ``t``.  ``decompose`` switches the
    whole online-decomposition machinery off (an ablation knob: with
    ``decompose=False`` and ``threshold=1.0`` the library degenerates to
    a plain vectorised dense implementation).
    """

    threshold: float = 0.75
    decompose: bool = True

    def is_sparse(self, nni: int, n: int) -> bool:
        if n == 0:
            return False
        sparsity = 1.0 - nni / half_size(n)
        return sparsity >= self.threshold

    def kind_for(self, nni: int, n: int, components: int) -> DbmKind:
        """Pick a kind from up-to-date sparsity and component info."""
        if components == 0:
            return DbmKind.TOP
        if not self.decompose:
            return DbmKind.DENSE
        if components > 1:
            return DbmKind.DECOMPOSED
        if self.is_sparse(nni, n):
            return DbmKind.SPARSE
        return DbmKind.DENSE


#: The default policy used throughout the library (paper's t = 3/4).
DEFAULT_POLICY = SwitchPolicy()
