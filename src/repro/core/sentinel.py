"""DBM integrity sentinel: opt-in paranoid validation of octagons.

The optimised octagon maintains several redundant structures whose
silent corruption would not crash anything -- it would just make the
analysis *wrong*: the coherence mirror (``m[i, j] == m[j^1, i^1]``),
the finite-entry count ``nni``, the independent-component partition,
the ``closed`` flag and the versioned closed-form cache riding on the
COW layer.  A single flipped cell (cosmic ray, buffer bug, a kernel
writing through a shared COW matrix) yields plausible-looking but
unsound invariants.

Paranoid mode re-validates those invariants after every mutating
octagon operation.  It is enabled by ``REPRO_PARANOID=1`` in the
environment (read at import, so forked and spawned workers inherit
it) or ``--paranoid`` on the CLI, and costs a full structural audit
per operation -- O(n^3) when a ``closed`` claim must be certified --
so it is strictly a debugging/CI mode, never the default.

Violations raise :class:`repro.errors.IntegrityError` naming the
broken invariant; every completed audit bumps the
``paranoid_checks`` stats counter.
"""

from __future__ import annotations

import os

import numpy as np

from ..errors import IntegrityError
from ..obs import metrics
from . import stats

#: Slack for the closed-claim certification: the decomposed/sparse/
#: dense kernels and the strengthening step may order float additions
#: differently, so "no triple tightens" is checked up to this epsilon.
_CLOSURE_TOL = 1e-6

_CHECKS = 0

stats.register_counter_source(lambda: {"paranoid_checks": _CHECKS})

metrics.REGISTRY.counter("paranoid_checks",
                         "DBM integrity audits run by the sentinel")
metrics.REGISTRY.counter("integrity_failures",
                         "Structural invariant breaches detected")

_ENABLED = os.environ.get("REPRO_PARANOID", "") not in ("", "0")


def set_paranoid(flag: bool) -> bool:
    """Enable/disable paranoid mode; returns the previous setting.

    Also mirrors the flag into ``REPRO_PARANOID`` so worker processes
    spawned after the call inherit it.
    """
    global _ENABLED
    previous = _ENABLED
    _ENABLED = bool(flag)
    if flag:
        os.environ["REPRO_PARANOID"] = "1"
    else:
        os.environ.pop("REPRO_PARANOID", None)
    return previous


def paranoid_enabled() -> bool:
    return _ENABLED


def _fail(check: str, detail: str) -> None:
    stats.bump("integrity_failures")
    raise IntegrityError(check, detail)


def validate_octagon(oct_) -> None:
    """Audit every structural invariant of one octagon; raise on breach."""
    global _CHECKS
    _CHECKS += 1

    m = oct_.mat
    n = oct_.n
    if m.ndim != 2 or m.shape != (2 * n, 2 * n):
        _fail("shape", f"matrix shape {m.shape} for n={n}")

    diag = np.diagonal(m)
    if not np.all(diag == 0.0):
        bad = int(np.nonzero(diag != 0.0)[0][0])
        _fail("diagonal", f"diagonal entry [{bad},{bad}] = {diag[bad]!r}")

    # Coherence: m[i, j] == m[j^1, i^1].  With idx = arange ^ 1 the
    # permuted matrix P = m[idx][:, idx] satisfies P.T[i, j] = m[j^1, i^1].
    idx = np.arange(2 * n) ^ 1
    mirror = m[np.ix_(idx, idx)].T
    if not np.array_equal(m, mirror):
        i, j = map(int, np.argwhere(m != mirror)[0])
        _fail("coherence",
              f"m[{i},{j}]={m[i, j]!r} but m[{j ^ 1},{i ^ 1}]={m[j ^ 1, i ^ 1]!r}")

    from .densemat import count_nni

    nni = count_nni(m)
    if oct_.nni != nni:
        _fail("nni", f"maintained nni={oct_.nni}, matrix has {nni}")

    # The maintained partition must over-approximate the exact one.
    if oct_.policy.decompose and not oct_.partition.is_empty():
        from .partition import Partition

        exact = Partition.from_matrix(m)
        if not oct_.partition.overapproximates(exact):
            _fail("partition",
                  f"maintained {oct_.partition!r} does not cover exact "
                  f"{exact!r}")

    if oct_.closed and not oct_._bottom:
        _certify_closed(m, n)

    _validate_closure_cache(oct_)


def _certify_closed(m: np.ndarray, n: int) -> None:
    """A matrix claiming closure must be a min-plus + strengthen fixpoint."""
    dim = 2 * n
    for k in range(dim):
        relaxed = m[:, k, None] + m[None, k, :]
        if not np.all(m <= relaxed + _CLOSURE_TOL):
            i, j = map(int, np.argwhere(m > relaxed + _CLOSURE_TOL)[0])
            _fail("closed",
                  f"triple ({i},{k},{j}) tightens a 'closed' DBM: "
                  f"{m[i, j]!r} > {m[i, k]!r} + {m[k, j]!r}")
    # Strengthening: m[i, j] <= (m[i, i^1] + m[j^1, j]) / 2.
    idx = np.arange(dim) ^ 1
    unary = m[np.arange(dim), idx]
    bound = (unary[:, None] + unary[None, idx]) / 2.0
    with np.errstate(invalid="ignore"):
        violation = m > bound + _CLOSURE_TOL
    violation &= np.isfinite(bound)
    if np.any(violation):
        i, j = map(int, np.argwhere(violation)[0])
        _fail("strengthen",
              f"'closed' DBM not strengthened at ({i},{j}): "
              f"{m[i, j]!r} > {bound[i, j]!r}")


def _validate_closure_cache(oct_) -> None:
    """The versioned closed-form cache must describe *this* matrix."""
    cc = oct_._ccache
    if cc is None:
        return
    if oct_._ccache_version != oct_._cow.version:
        return  # stale stamp: the cache is dead, never served
    if cc.n != oct_.n:
        _fail("closure-cache", f"cached closure has n={cc.n}, octagon n={oct_.n}")
    if not (cc.closed or cc._bottom):
        _fail("closure-cache", "cached closure is neither closed nor bottom")
    # Closure only tightens: every cached entry is <= the source entry.
    if not cc._bottom and not np.all(cc.mat <= oct_.mat + _CLOSURE_TOL):
        i, j = map(int, np.argwhere(cc.mat > oct_.mat + _CLOSURE_TOL)[0])
        _fail("closure-cache",
              f"cached closure looser than source at ({i},{j}): "
              f"{cc.mat[i, j]!r} > {oct_.mat[i, j]!r}")


def validate_sparse_octagon(oct_) -> None:
    """Audit the structural invariants of a graph-form octagon.

    The graph representation has no coherence mirror or ``nni`` to
    check (keys are canonical by construction and counts are derived),
    so the audit validates what *can* silently rot: key canonicality
    and range, the snapshot's shape, sentinel placement, the closed
    form's no-sentinel/no-unary-cell normal form, and -- the expensive
    part -- certification of a ``closed`` claim on the materialised
    matrix with the exact same fixpoint check the dense backend gets.

    Deliberately *not* checked: that finite cells stay below their
    snapshot-implied values.  Threshold widening legitimately bumps a
    stored cell above the (stale) implied bound; ``val()`` stays
    correct because an explicit cell always wins.
    """
    global _CHECKS
    _CHECKS += 1

    n = oct_.n
    size = 2 * n
    for (r, s) in oct_.cells:
        if not (0 <= r < size and 0 <= s < size):
            _fail("key-range", f"cell key ({r},{s}) outside 2n={size}")
        if s > (r | 1) or r == s:
            _fail("key-canonical", f"cell key ({r},{s}) not canonical")
    if oct_.snap is not None and len(oct_.snap) != size:
        _fail("snapshot", f"snapshot length {len(oct_.snap)} for n={n}")
    if oct_.snap is None:
        for key, value in oct_.cells.items():
            if not np.isfinite(value):
                _fail("sentinel", f"INF sentinel at {key} without a snapshot")
    if oct_._bottom:
        if oct_.cells or oct_.snap is not None:
            _fail("bottom", "bottom octagon still stores cells/snapshot")
        return
    if oct_.closed:
        for key, value in oct_.cells.items():
            if not np.isfinite(value):
                _fail("closed-form", f"closed form keeps sentinel at {key}")
            if key[0] ^ 1 == key[1]:
                _fail("closed-form",
                      f"closed form stores unary cell {key} outside the "
                      f"snapshot")
        _certify_closed(oct_.to_matrix(), n)


def check(oct_) -> None:
    """Hook called by mutating octagon operations; no-op unless paranoid.

    Dispatches on representation: dense/COW octagons get the matrix
    audit, graph-form octagons (dict of cells + unary snapshot) the
    sparse audit.
    """
    if _ENABLED:
        if hasattr(oct_, "_cow"):
            validate_octagon(oct_)
        else:
            validate_sparse_octagon(oct_)


__all__ = ["check", "paranoid_enabled", "set_paranoid", "validate_octagon",
           "validate_sparse_octagon"]
