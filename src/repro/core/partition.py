"""Independent components of an octagon (paper section 3.3).

Two variables are *related* when some non-trivial (finite-bound)
octagonal inequality mentions both of them; a finite unary constraint
``+-2v <= c`` relates ``v`` to itself.  The reflexive-transitive closure
of this relation partitions a subset ``V'`` of the variables into
*independent components*; variables outside ``V'`` participate in no
non-trivial inequality at all.

The paper stores the components as a linked list of sorted linked lists
of variable indices.  We store a list of sorted Python lists plus a
variable->block map, which supports the same operations:

* ``union`` of two component sets -- induced by the octagon **meet**
  (a pair related in either input may be related in the result), this
  is the partition *join*: overlapping blocks merge.
* ``intersection`` of two component sets -- induced by octagon **join**
  and **widening** (a pair is related in the result only if related in
  both inputs), this is the partition *meet*: blockwise intersection
  on the common support.
* exact (re)extraction from a DBM, performed together with closure.
* merging of blocks, needed by the strengthening step of the
  decomposed closure.

Maintained partitions may *over-approximate* the exact one (coarser
blocks, larger support); that costs operations but never precision.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set

import numpy as np

from .cow import is_enabled as _sharing_enabled


class UnionFind:
    """Classic disjoint-set forest with path compression + union by size."""

    __slots__ = ("parent", "size")

    def __init__(self, n: int):
        self.parent = list(range(n))
        self.size = [1] * n

    def find(self, x: int) -> int:
        root = x
        parent = self.parent
        while parent[root] != root:
            root = parent[root]
        while parent[x] != root:
            parent[x], x = root, parent[x]
        return root

    def union(self, a: int, b: int) -> int:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return ra
        if self.size[ra] < self.size[rb]:
            ra, rb = rb, ra
        self.parent[rb] = ra
        self.size[ra] += self.size[rb]
        return ra


try:  # scipy's C implementation; a pure-Python fallback keeps numpy-only installs working
    from scipy.sparse import csr_matrix as _csr
    from scipy.sparse.csgraph import connected_components as _scipy_cc
except ImportError:  # pragma: no cover - exercised only without scipy
    _csr = None
    _scipy_cc = None


# Below this vertex count the union-find beats scipy: building the CSR
# wrapper costs several microseconds of Python/validation overhead per
# call, which dominates the tiny graphs the analyzer workloads produce
# (this runs on every closure's structural refresh).
_SMALL_CC = 32


def _connected_components(adj: np.ndarray) -> np.ndarray:
    """Component label per vertex of a boolean adjacency matrix."""
    n = adj.shape[0]
    if _scipy_cc is not None and n > _SMALL_CC:
        _, labels = _scipy_cc(_csr(adj), directed=False)
        return labels
    uf = UnionFind(n)
    rows, cols = np.nonzero(adj)
    for v, w in zip(rows.tolist(), cols.tolist()):
        if v < w:
            uf.union(v, w)
    return np.array([uf.find(v) for v in range(n)])


class Partition:
    """A partial partition of ``{0 .. n-1}`` into independent components."""

    __slots__ = ("n", "blocks", "_var2block")

    def __init__(self, n: int, blocks: Optional[Iterable[Sequence[int]]] = None):
        self.n = n
        self.blocks: List[List[int]] = []
        self._var2block: Dict[int, int] = {}
        if blocks is not None:
            for block in blocks:
                self.add_block(block)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def empty(cls, n: int) -> "Partition":
        """No variable participates in any non-trivial inequality (Top)."""
        return cls(n)

    @classmethod
    def single_block(cls, n: int) -> "Partition":
        """All variables in one component (the degenerate dense case)."""
        return cls(n, [list(range(n))]) if n else cls(n)

    @classmethod
    def from_matrix(cls, m: np.ndarray) -> "Partition":
        """Exact independent components of a full coherent DBM.

        A variable belongs to the support iff one of its four 2x2-block
        entries against some variable (possibly itself, for unary
        constraints) is finite; the diagonal ``0`` entries are trivial
        and ignored.  Connected components run in C via scipy when
        available (this is on the hot path: it is the exact structural
        refresh piggybacked on every closure).
        """
        dim = m.shape[0]
        n = dim // 2
        finite = np.isfinite(m)
        np.fill_diagonal(finite, False)
        # Collapse each 2x2 block: adj[v, w] == some finite entry relates v, w.
        adj = finite.reshape(n, 2, n, 2).any(axis=(1, 3))
        support = adj.any(axis=1)
        part = cls(n)
        if not support.any():
            return part
        labels = _connected_components(adj)
        groups: Dict[int, List[int]] = {}
        for v in np.nonzero(support)[0].tolist():
            groups.setdefault(int(labels[v]), []).append(v)
        for block in groups.values():
            part.add_block(block)
        return part

    def add_block(self, variables: Sequence[int]) -> None:
        block = sorted(set(variables))
        if not block:
            return
        for v in block:
            if v in self._var2block:
                raise ValueError(f"variable {v} already in a block")
            if not 0 <= v < self.n:
                raise ValueError(f"variable {v} out of range for n={self.n}")
        self.blocks.append(block)
        idx = len(self.blocks) - 1
        for v in block:
            self._var2block[v] = idx

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def support(self) -> Set[int]:
        """Variables that belong to some component."""
        return set(self._var2block)

    def block_of(self, v: int) -> Optional[List[int]]:
        idx = self._var2block.get(v)
        return None if idx is None else self.blocks[idx]

    def same_block(self, v: int, w: int) -> bool:
        iv = self._var2block.get(v)
        return iv is not None and iv == self._var2block.get(w)

    def is_empty(self) -> bool:
        return not self.blocks

    def copy(self) -> "Partition":
        return Partition(self.n, self.blocks)

    def canonical(self) -> List[List[int]]:
        """Blocks sorted for comparison and display."""
        return sorted(self.blocks)

    def overapproximates(self, exact: "Partition") -> bool:
        """True if ``self`` is a coarsening of ``exact`` on a superset
        of its support -- the safety condition for maintained partitions."""
        if self.n != exact.n:
            return False
        for block in exact.blocks:
            first = self._var2block.get(block[0])
            if first is None:
                return False
            if any(self._var2block.get(v) != first for v in block[1:]):
                return False
        return True

    # ------------------------------------------------------------------
    # the operators induced by meet / join / widening
    # ------------------------------------------------------------------
    def union(self, other: "Partition") -> "Partition":
        """Partition join: merge overlapping blocks (octagon *meet*)."""
        if self.n != other.n:
            raise ValueError("partition size mismatch")
        # Partitions are immutable after construction, so when the COW
        # layer is on (sharing mode) idempotent results alias the input.
        if other is self and _sharing_enabled():
            return self
        uf = UnionFind(self.n)
        members: Set[int] = set()
        for part in (self, other):
            for block in part.blocks:
                members.update(block)
                for v in block[1:]:
                    uf.union(block[0], v)
        groups: Dict[int, List[int]] = {}
        for v in members:
            groups.setdefault(uf.find(v), []).append(v)
        return Partition(self.n, groups.values())

    def intersection(self, other: "Partition") -> "Partition":
        """Partition meet: blockwise intersection on the common support
        (octagon *join* / *widening*)."""
        if self.n != other.n:
            raise ValueError("partition size mismatch")
        if other is self and _sharing_enabled():
            return self
        out = Partition(self.n)
        seen: Dict[tuple, List[int]] = {}
        for v in self.support & other.support:
            key = (self._var2block[v], other._var2block[v])
            seen.setdefault(key, []).append(v)
        for block in seen.values():
            out.add_block(block)
        return out

    def remove_var(self, v: int) -> "Partition":
        """Drop ``v`` from its block (after a forget/projection).

        Removing a variable may in truth split its block; we keep the
        remainder together, which is a sound over-approximation.  The
        exact partition is restored at the next closure.
        """
        idx = self._var2block.get(v)
        if idx is None:
            return self if _sharing_enabled() else self.copy()
        out = Partition(self.n)
        for i, block in enumerate(self.blocks):
            kept = [w for w in block if w != v] if i == idx else block
            if kept:
                out.add_block(kept)
        return out

    def merge_blocks_containing(self, variables: Iterable[int]) -> "Partition":
        """Coarsen: fuse every block that contains one of ``variables``.

        Variables not currently in any block join the fused block too
        (used when strengthening creates new unary constraints).
        """
        vars_list = [v for v in variables if 0 <= v < self.n]
        if not vars_list:
            return self if _sharing_enabled() else self.copy()
        if _sharing_enabled():
            first = self._var2block.get(vars_list[0])
            if first is not None and all(
                    self._var2block.get(v) == first for v in vars_list):
                return self  # already one block: fusing is a no-op
        fused: Set[int] = set()
        untouched: List[List[int]] = []
        hit_blocks = {self._var2block[v] for v in vars_list if v in self._var2block}
        for idx, block in enumerate(self.blocks):
            if idx in hit_blocks:
                fused.update(block)
            else:
                untouched.append(block)
        fused.update(vars_list)
        out = Partition(self.n)
        for block in untouched:
            out.add_block(block)
        out.add_block(sorted(fused))
        return out

    # ------------------------------------------------------------------
    # dunder
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Partition):
            return NotImplemented
        return self.n == other.n and self.canonical() == other.canonical()

    def __hash__(self):
        raise TypeError("Partition is unhashable")

    def __repr__(self) -> str:
        return f"Partition(n={self.n}, blocks={self.canonical()})"
