"""Pure-Python half-matrix DBM storage (the APRON baseline layout).

APRON's octagon domain stores the lower-triangular half of the coherent
``2n x 2n`` DBM in one flat array of ``2n^2 + 2n`` doubles.  The
baseline :class:`~repro.core.apron_octagon.ApronOctagon` uses this
storage together with the scalar closure of paper Algorithm 2, making
it a faithful stand-in for the original C library: same data structure,
same algorithms, same operation count -- just interpreted.

The class is deliberately simple: a list of floats plus the number of
variables.  All coordinate translation goes through
:mod:`repro.core.indexing`.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

import numpy as np

from .bounds import INF, is_finite
from .indexing import cap, half_size, matpos, matpos2


class HalfMat:
    """Flat lower-triangular storage of a coherent octagon DBM."""

    __slots__ = ("n", "data")

    def __init__(self, n: int, fill: float = INF):
        self.n = n
        self.data: List[float] = [fill] * half_size(n)
        if fill == INF:
            for i in range(2 * n):
                self.data[matpos(i, i)] = 0.0

    # ------------------------------------------------------------------
    # element access
    # ------------------------------------------------------------------
    def get(self, i: int, j: int) -> float:
        """Read ``O[i, j]`` (any coordinate; coherence applied)."""
        return self.data[matpos2(i, j)]

    def set(self, i: int, j: int, c: float) -> None:
        """Write ``O[i, j]`` (any coordinate; coherence applied)."""
        self.data[matpos2(i, j)] = c

    def min_set(self, i: int, j: int, c: float) -> None:
        """Tighten ``O[i, j]`` to ``min(O[i, j], c)``."""
        p = matpos2(i, j)
        if c < self.data[p]:
            self.data[p] = c

    # ------------------------------------------------------------------
    # whole-matrix helpers
    # ------------------------------------------------------------------
    def copy(self) -> "HalfMat":
        m = HalfMat.__new__(HalfMat)
        m.n = self.n
        m.data = list(self.data)
        return m

    def fill_top(self) -> None:
        """Reset to the top element (all trivial, zero diagonal)."""
        data = self.data
        for p in range(len(data)):
            data[p] = INF
        for i in range(2 * self.n):
            data[matpos(i, i)] = 0.0

    def count_finite(self) -> int:
        """Number of finite entries in the half representation."""
        return sum(1 for c in self.data if is_finite(c))

    def iter_entries(self) -> Iterator[Tuple[int, int, float]]:
        """Yield ``(i, j, c)`` for every stored coordinate."""
        data = self.data
        for i in range(2 * self.n):
            base = ((i + 1) * (i + 1)) // 2
            for j in range(cap(i) + 1):
                yield i, j, data[base + j]

    # ------------------------------------------------------------------
    # conversions
    # ------------------------------------------------------------------
    def to_full(self) -> np.ndarray:
        """Expand to a full coherent ``2n x 2n`` NumPy matrix."""
        dim = 2 * self.n
        full = np.full((dim, dim), INF, dtype=np.float64)
        for i, j, c in self.iter_entries():
            full[i, j] = c
            full[j ^ 1, i ^ 1] = c
        return full

    @classmethod
    def from_full(cls, full: np.ndarray) -> "HalfMat":
        """Build from a full coherent matrix (lower triangle is read).

        The caller is responsible for coherence; only the stored half is
        consulted, matching how APRON imports matrices.
        """
        dim = full.shape[0]
        if dim % 2 != 0 or full.shape[1] != dim:
            raise ValueError(f"full DBM must be 2n x 2n, got {full.shape}")
        m = cls(dim // 2)
        data = m.data
        for i in range(dim):
            base = ((i + 1) * (i + 1)) // 2
            row = full[i]
            for j in range(cap(i) + 1):
                data[base + j] = float(row[j])
        return m

    # ------------------------------------------------------------------
    # dunder conveniences
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, HalfMat):
            return NotImplemented
        return self.n == other.n and self.data == other.data

    def __hash__(self):  # mutable container
        raise TypeError("HalfMat is unhashable")

    def __repr__(self) -> str:
        return f"HalfMat(n={self.n}, finite={self.count_finite()})"
