"""Index arithmetic for octagon DBMs.

An octagon over ``n`` program variables ``v_0 .. v_{n-1}`` is encoded by
a ``2n x 2n`` difference bound matrix over the *extended* variables

    vhat_{2i}   = +v_i
    vhat_{2i+1} = -v_i

The entry ``O[i, j] = c`` encodes ``vhat_j - vhat_i <= c``.  Because
``vhat_{k^1} = -vhat_k`` (where ``^`` is xor), the matrix is *coherent*:
``O[i, j]`` and ``O[j^1, i^1]`` encode the same inequality.  APRON
exploits this by storing only the lower-triangular half, the entries
``O[i, j]`` with ``j <= (i | 1)``, in a flat array of ``2n^2 + 2n``
elements.  This module provides that index arithmetic.

Naming follows the APRON sources: ``matpos`` maps a lower-triangle
coordinate to its flat offset, ``matpos2`` additionally redirects
upper-triangle coordinates through coherence.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple


def bar(i: int) -> int:
    """Return ``i ^ 1``: the index of the negated extended variable."""
    return i ^ 1


def cap(i: int) -> int:
    """Return ``i | 1``: the largest column stored in row ``i``."""
    return i | 1


def half_size(n: int) -> int:
    """Number of entries in the half (lower-triangular) DBM: ``2n^2 + 2n``."""
    return 2 * n * n + 2 * n


def full_dim(n: int) -> int:
    """Dimension of the full DBM: ``2n``."""
    return 2 * n


def matpos(i: int, j: int) -> int:
    """Flat offset of ``O[i, j]`` for a lower-triangle coordinate.

    Precondition: ``j <= (i | 1)``.  The rows of the half DBM have
    lengths 2, 2, 4, 4, 6, 6, ... so row ``i`` starts at offset
    ``((i + 1) * (i + 1)) // 2`` rounded to the row grid; the APRON
    closed form is ``j + ((i + 1) * (i + 1)) // 2``.
    """
    return j + ((i + 1) * (i + 1)) // 2


def matpos2(i: int, j: int) -> int:
    """Flat offset of ``O[i, j]`` for *any* coordinate.

    Upper-triangle coordinates (``j > i | 1``) are redirected to the
    coherent mirror entry ``O[j^1, i^1]``.
    """
    if j > (i | 1):
        return matpos(j ^ 1, i ^ 1)
    return matpos(i, j)


def in_lower(i: int, j: int) -> bool:
    """Return True if ``(i, j)`` lies in the stored half of the DBM."""
    return j <= (i | 1)


def iter_half(n: int) -> Iterator[Tuple[int, int]]:
    """Iterate over all stored (lower-triangle) coordinates of the DBM."""
    for i in range(2 * n):
        for j in range(cap(i) + 1):
            yield i, j


def var_plus(v: int) -> int:
    """DBM index of the extended variable ``+v``."""
    return 2 * v


def var_minus(v: int) -> int:
    """DBM index of the extended variable ``-v``."""
    return 2 * v + 1


def var_of_index(i: int) -> int:
    """Program variable owning the extended index ``i``."""
    return i // 2


def expand_vars(variables: List[int]) -> List[int]:
    """Expand sorted variable indices to their DBM row/column indices.

    ``[1, 3] -> [2, 3, 6, 7]`` -- used to slice the submatrix of an
    independent component out of the full DBM.
    """
    out: List[int] = []
    for v in variables:
        out.append(2 * v)
        out.append(2 * v + 1)
    return out
