"""Instrumentation: operation counters, timers and closure traces.

Three consumers drive the design:

* **Op-count verification** (paper section 5): the scalar closure
  variants count their ``min``/add operations so tests can check the
  paper's polynomial formulas (``16n^3 + 22n^2 + 6n`` for APRON's
  closure, ``8n^3 + 10n^2 + 2n`` for the new dense closure) exactly.
* **Table 2 / Fig 7**: every closure performed during an analysis is
  recorded (variable count, DBM kind used, wall time) so the benchmark
  harness can regenerate the per-benchmark closure statistics and the
  per-closure runtime trace.
* **Fig 8 / Table 3**: aggregate time spent inside octagon operations,
  per operator, so end-to-end speedups can be decomposed.
* **Hot-path memory counters**: the copy-on-write layer
  (:mod:`repro.core.cow`), the kernel workspace registry
  (:mod:`repro.core.workspace`) and the versioned closure cache report
  how much memory traffic they avoided (``cow_clones``,
  ``cow_materializations``, ``workspace_hits`` and
  ``closure_cache_hits``) via :func:`bump`; the benchmark harness
  persists them so trajectories capture allocation behaviour, not just
  wall time.  The batch service's persistent result cache
  (:mod:`repro.service.cache`) reports ``result_cache_hits`` /
  ``result_cache_misses`` / ``result_cache_evictions`` the same way.

A single module-level :class:`StatsCollector` is active at a time; the
:func:`collecting` context manager installs a fresh one.  When no
collector is active all recording is a no-op with negligible overhead.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional

# Modules whose hot paths are too frequent for per-event ``bump`` calls
# (COW clones, workspace lookups) keep plain module-global counters and
# register a reader here; a collector snapshots the totals when it is
# installed and reports the delta.
_COUNTER_SOURCES: List[Callable[[], Dict[str, int]]] = []


def register_counter_source(reader: Callable[[], Dict[str, int]]) -> None:
    """Register a callable returning cumulative global counter values."""
    _COUNTER_SOURCES.append(reader)


def _global_counters() -> Dict[str, int]:
    out: Dict[str, int] = {}
    for reader in _COUNTER_SOURCES:
        out.update(reader())
    return out


@dataclass
class ClosureRecord:
    """One closure call observed during an analysis."""

    n: int  # number of variables in the DBM
    kind: str  # DBM kind the closure ran on: dense/sparse/decomposed/top
    seconds: float
    components: int = 1  # component count for decomposed closures


@dataclass
class StatsCollector:
    """Accumulates operator timings and closure records.

    With ``capture_closure_inputs`` set, every *full* closure performed
    by the optimised octagon also stores a copy of its input DBM and
    component partition, so the Fig. 7 benchmark can replay the exact
    same closure workload through every closure implementation.
    """

    op_seconds: Dict[str, float] = field(default_factory=dict)
    op_calls: Dict[str, int] = field(default_factory=dict)
    closures: List[ClosureRecord] = field(default_factory=list)
    capture_closure_inputs: bool = False
    closure_inputs: List[tuple] = field(default_factory=list)
    counters: Dict[str, int] = field(default_factory=dict)
    counter_base: Dict[str, int] = field(default_factory=_global_counters)

    def record_op(self, name: str, seconds: float) -> None:
        self.op_seconds[name] = self.op_seconds.get(name, 0.0) + seconds
        self.op_calls[name] = self.op_calls.get(name, 0) + 1

    def bump(self, name: str, amount: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + amount

    def record_closure(self, record: ClosureRecord) -> None:
        self.closures.append(record)

    def record_closure_input(self, matrix, blocks) -> None:
        if self.capture_closure_inputs:
            self.closure_inputs.append((matrix, blocks))

    # ------------------------------------------------------------------
    # summaries used by the benchmark harness
    # ------------------------------------------------------------------
    @property
    def total_seconds(self) -> float:
        return sum(self.op_seconds.values())

    @property
    def full_closures(self) -> List[ClosureRecord]:
        """Full (cubic) closures; incremental re-closures excluded."""
        return [rec for rec in self.closures if "incremental" not in rec.kind]

    @property
    def closure_seconds(self) -> float:
        """Time spent in *full* closures.

        Incremental closures run inside the ``assign``/``meet_constraint``
        operator timers and are already included in ``total_seconds``;
        full closures run outside any operator timer, so total octagon
        time is ``total_seconds + closure_seconds``.
        """
        return sum(rec.seconds for rec in self.full_closures)

    def closure_stats(self) -> Dict[str, float]:
        """The Table 2 statistics: nmin, nmax and #closures."""
        full = self.full_closures
        if not full:
            return {"nmin": 0, "nmax": 0, "closures": 0,
                    "incremental": len(self.closures)}
        sizes = [rec.n for rec in full]
        return {
            "nmin": min(sizes),
            "nmax": max(sizes),
            "closures": len(full),
            "incremental": len(self.closures) - len(full),
        }

    # ------------------------------------------------------------------
    # hot-path memory counters
    # ------------------------------------------------------------------
    def merged_counters(self) -> Dict[str, int]:
        """Per-event ``bump`` counters plus the global-source deltas
        accumulated since this collector was installed."""
        merged = dict(self.counters)
        for name, value in _global_counters().items():
            delta = value - self.counter_base.get(name, 0)
            if delta:
                merged[name] = merged.get(name, 0) + delta
        return merged

    @property
    def copies_avoided(self) -> int:
        """Matrix copies the COW layer never had to perform.

        Eager semantics pay one copy per ``copy()`` call; COW pays one
        copy per materialisation, so the difference is the saving.  At
        most one materialisation exists per clone (the last owner of a
        share group writes in place), so this is never negative.
        """
        merged = self.merged_counters()
        return (merged.get("cow_clones", 0)
                - merged.get("cow_materializations", 0))

    def counter_summary(self) -> Dict[str, int]:
        """The memory-layer counters persisted by the benchmark harness."""
        merged = self.merged_counters()
        return {
            "copies_avoided": (merged.get("cow_clones", 0)
                               - merged.get("cow_materializations", 0)),
            "cow_clones": merged.get("cow_clones", 0),
            "cow_materializations": merged.get("cow_materializations", 0),
            "workspace_hits": merged.get("workspace_hits", 0),
            "workspace_misses": merged.get("workspace_misses", 0),
            "closure_cache_hits": merged.get("closure_cache_hits", 0),
            # Batch-service persistent result cache (repro.service.cache).
            "result_cache_hits": merged.get("result_cache_hits", 0),
            "result_cache_misses": merged.get("result_cache_misses", 0),
            "result_cache_evictions": merged.get("result_cache_evictions", 0),
            "result_cache_write_errors": merged.get(
                "result_cache_write_errors", 0),
            # Compiled transfer plans (repro.analysis.plan).
            "plans_compiled": merged.get("plans_compiled", 0),
            "plan_exec": merged.get("plan_exec", 0),
            "constraints_batched": merged.get("constraints_batched", 0),
            "closures_avoided": merged.get("closures_avoided", 0),
            # Resource governance (repro.core.budget, analyzer ladder).
            "budget_checkpoints": merged.get("budget_checkpoints", 0),
            "budget_interrupts": merged.get("budget_interrupts", 0),
            "degradations": merged.get("degradations", 0),
            # Robustness instrumentation (sentinel, faults, journal).
            "paranoid_checks": merged.get("paranoid_checks", 0),
            "integrity_failures": merged.get("integrity_failures", 0),
            "faults_injected": merged.get("faults_injected", 0),
            "journal_records": merged.get("journal_records", 0),
            "journal_torn_lines": merged.get("journal_torn_lines", 0),
        }


_ACTIVE: Optional[StatsCollector] = None


def active_collector() -> Optional[StatsCollector]:
    """The collector currently receiving events, or None."""
    return _ACTIVE


@contextmanager
def collecting() -> Iterator[StatsCollector]:
    """Install a fresh collector for the duration of the block."""
    global _ACTIVE
    previous = _ACTIVE
    collector = StatsCollector()
    _ACTIVE = collector
    try:
        yield collector
    finally:
        _ACTIVE = previous


@contextmanager
def timed_op(name: str) -> Iterator[None]:
    """Attribute the wall time of the block to operator ``name``."""
    collector = _ACTIVE
    if collector is None:
        yield
        return
    start = time.perf_counter()
    try:
        yield
    finally:
        collector.record_op(name, time.perf_counter() - start)


def record_closure(n: int, kind: str, seconds: float, components: int = 1) -> None:
    if _ACTIVE is not None:
        _ACTIVE.record_closure(ClosureRecord(n, kind, seconds, components))


def record_closure_input(matrix, blocks) -> None:
    """Capture a full-closure input (matrix copy + partition blocks)."""
    if _ACTIVE is not None and _ACTIVE.capture_closure_inputs:
        _ACTIVE.record_closure_input(matrix, blocks)


def capturing_closure_inputs() -> bool:
    """True iff a collector wants full-closure inputs (callers can then
    skip the defensive matrix copy on the no-collector hot path)."""
    return _ACTIVE is not None and _ACTIVE.capture_closure_inputs


def bump(name: str, amount: int = 1) -> None:
    """Increment a named counter on the active collector (no-op otherwise)."""
    if _ACTIVE is not None:
        _ACTIVE.bump(name, amount)


class OpCounter:
    """Counts scalar DBM operations for complexity verification.

    One ``count`` unit is one *candidate tightening*: evaluating
    ``min(O_ij, O_ik + O_kj)`` (one add + one compare), the unit the
    paper uses when stating ``16n^3 + 22n^2 + 6n``.
    """

    __slots__ = ("mins",)

    def __init__(self) -> None:
        self.mins = 0

    def tick(self, amount: int = 1) -> None:
        self.mins += amount

    def reset(self) -> None:
        self.mins = 0
