"""Compatibility shim over :mod:`repro.obs` -- the telemetry subsystem.

This module used to hold all instrumentation (operator timers, closure
records, counters with a hand-maintained ``counter_summary()`` key
list).  That machinery now lives in :mod:`repro.obs.collect` (scoped
collection, with correct self-time attribution for nested operator
timers) and :mod:`repro.obs.metrics` (the registry subsystems declare
their counters in, plus the Prometheus/JSONL exporters); spans and
trace export live in :mod:`repro.obs.trace`.

Every public name is re-exported so existing imports keep working:

>>> from repro.core import stats
>>> with stats.collecting() as collector:
...     with stats.timed_op("assign"):
...         pass
>>> collector.counter_summary()  # enumerated from the registry
"""

from __future__ import annotations

from repro.obs.collect import (  # noqa: F401
    ClosureRecord,
    OpCounter,
    StatsCollector,
    active_collector,
    bump,
    capturing_closure_inputs,
    collecting,
    record_closure,
    record_closure_input,
    timed_op,
)
from repro.obs.metrics import (  # noqa: F401
    global_counters as _global_counters,
    register_counter_source,
)

__all__ = [
    "ClosureRecord",
    "OpCounter",
    "StatsCollector",
    "active_collector",
    "bump",
    "capturing_closure_inputs",
    "collecting",
    "record_closure",
    "record_closure_input",
    "register_counter_source",
    "timed_op",
]
