"""Compatibility shim over :mod:`repro.obs` -- the telemetry subsystem.

This module used to hold all instrumentation (operator timers, closure
records, counters with a hand-maintained ``counter_summary()`` key
list).  That machinery now lives in :mod:`repro.obs.collect` (scoped
collection, with correct self-time attribution for nested operator
timers) and :mod:`repro.obs.metrics` (the registry subsystems declare
their counters in, plus the Prometheus/JSONL exporters); spans and
trace export live in :mod:`repro.obs.trace`.

Every public name is re-exported so existing imports keep working:

>>> from repro.core import stats
>>> with stats.collecting() as collector:
...     with stats.timed_op("assign"):
...         pass
>>> collector.counter_summary()  # enumerated from the registry
"""

from __future__ import annotations

from repro.obs.collect import (  # noqa: F401
    ClosureRecord,
    OpCounter,
    StatsCollector,
    active_collector,
    bump,
    bump_max,
    capturing_closure_inputs,
    collecting,
    record_closure,
    record_closure_input,
    timed_op,
)
from repro.obs.metrics import (  # noqa: F401
    global_counters as _global_counters,
    register_counter_source,
)


def sparsity_ratio(counters) -> "float | None":
    """Peak sparsity ratio from a run's counter summary, or ``None``.

    Derived from the ``dbm_finite_cells`` / ``dbm_half_size`` high-water
    gauges both octagon backends record at closure boundaries: the
    fraction of the half-matrix that stayed trivial at the densest
    moment of the run.  ``None`` when the run recorded no closures
    (e.g. a non-DBM domain).
    """
    half = counters.get("dbm_half_size", 0)
    if not half:
        return None
    finite = counters.get("dbm_finite_cells", 0)
    return max(0.0, 1.0 - finite / half)


__all__ = [
    "ClosureRecord",
    "OpCounter",
    "StatsCollector",
    "active_collector",
    "bump",
    "bump_max",
    "capturing_closure_inputs",
    "collecting",
    "record_closure",
    "record_closure_input",
    "register_counter_source",
    "sparsity_ratio",
    "timed_op",
]
