"""The NumPy kernel table: the existing vectorised/scalar kernels.

This backend *is* the code the reproduction always had -- the
production NumPy closures of ``closure_dense``/``closure_sparse``/
``closure_incremental``, the vectorised strengthening, the NNI count
and the scalar APRON baseline.  Wrapping them in a table makes them the
reference implementation every other backend is differentially tested
against (bit-identical matrices, identical return values).
"""

from __future__ import annotations

from ..closure_apron import closure_apron
from ..closure_dense import closure_dense_numpy, shortest_path_dense_numpy
from ..closure_incremental import incremental_closure
from ..closure_sparse import closure_sparse, shortest_path_sparse
from ..densemat import count_nni
from ..strengthen import strengthen_numpy, strengthen_sparse_numpy


def _strengthen(m) -> None:
    strengthen_numpy(m)


def _count_nni(m) -> int:
    return count_nni(m)


TABLE = {
    "dense_closure": closure_dense_numpy,
    "dense_shortest_path": shortest_path_dense_numpy,
    "sparse_shortest_path": shortest_path_sparse,
    "sparse_closure": closure_sparse,
    "strengthen_sparse": strengthen_sparse_numpy,
    "incremental_closure": incremental_closure,
    "strengthen": _strengthen,
    "count_nni": _count_nni,
    "apron_closure": closure_apron,
}
