"""Graph-form helpers for the sparsity-preserving octagon backend.

The :class:`~repro.domains.sparse_octagon.SparseOctagon` stores a DBM
as a dict of canonical-half cells plus a unary snapshot instead of a
``(2n)^2`` matrix.  The closure strategy (after Jourdan, *Sparsity
Preserving Algorithms for Octagons*, and Chawdhary/Robbins/King,
*Incrementally Closing Octagons*) is:

* discover the *explicit* variable components induced by the stored
  binary cells (union-find below),
* gather each component into a tiny dense ``(2b)^2`` submatrix and run
  the ordinary registered closure kernels on it -- so the graph backend
  reuses the numpy/numba kernel tables instead of shipping scalar
  Python closures,
* scatter the result back, keeping only cells *tighter than what the
  unary bounds already imply* (lazy strengthening: the mixed cells
  ``(u_i + u_{j bar})/2`` that full strengthening would materialise
  everywhere stay implicit in the snapshot).

These helpers are deliberately outside the pluggable backend tables in
:mod:`repro.core.kernels` -- they are representation plumbing, not hot
numeric kernels; the numeric work still dispatches through the tables.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

Key = Tuple[int, int]


def canon(i: int, j: int) -> Key:
    """Canonical half key for matrix cell ``(i, j)``.

    A coherent DBM satisfies ``m[i, j] == m[j^1, i^1]``; the stored
    half keeps the representative with ``j <= (i | 1)`` (same canonical
    triangle the dense half-layout uses).
    """
    if j <= (i | 1):
        return (i, j)
    return (j ^ 1, i ^ 1)


def unary_key(i: int) -> Key:
    """The (always canonical) key of the unary cell ``m[i, i^1]``."""
    return (i, i ^ 1)


def is_unary(key: Key) -> bool:
    return key[0] ^ 1 == key[1]


class UnionFind:
    """Plain union-find over variable indices ``0..n-1``."""

    __slots__ = ("parent",)

    def __init__(self, n: int) -> None:
        self.parent = list(range(n))

    def find(self, x: int) -> int:
        parent = self.parent
        root = x
        while parent[root] != root:
            root = parent[root]
        while parent[x] != root:  # path compression
            parent[x], x = root, parent[x]
        return root

    def union(self, a: int, b: int) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self.parent[max(ra, rb)] = min(ra, rb)

    def groups(self) -> Dict[int, List[int]]:
        out: Dict[int, List[int]] = {}
        for x in range(len(self.parent)):
            out.setdefault(self.find(x), []).append(x)
        return out


def components(n: int, edges: Iterable[Key]) -> List[List[int]]:
    """Variable components induced by binary cell keys.

    Returns only the *relational* components (size >= 2, or size 1 with
    a self-edge is impossible here); singleton variables are the
    complement and are handled separately by the caller (their closure
    is just the unary consistency check).
    """
    uf = UnionFind(n)
    touched = set()
    for (r, s) in edges:
        vr, vs = r >> 1, s >> 1
        if vr != vs:
            uf.union(vr, vs)
            touched.add(vr)
            touched.add(vs)
    blocks = [sorted(g) for root, g in sorted(uf.groups().items())
              if len(g) > 1 or root in touched]
    return [b for b in blocks if len(b) > 1]


def block_indices(block: List[int]) -> List[int]:
    """Matrix row/col indices for a variable block, paired ``2v, 2v+1``.

    The order keeps local index pairing compatible with the global one:
    local ``a`` and ``a ^ 1`` map to global ``idx[a]`` and
    ``idx[a] ^ 1``.
    """
    out = []
    for v in block:
        out.append(2 * v)
        out.append(2 * v + 1)
    return out
