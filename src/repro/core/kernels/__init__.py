"""Pluggable native-speed kernel backends (ROADMAP item 3).

The closure kernels are where the cycles are -- the paper's own claim,
and the reason PRs 1/3 attacked their memory layer and call frequency.
What remained was the *scalar bound*: every kernel was NumPy, so every
dense sweep paid interpreted ufunc dispatch and every scalar baseline
paid the Python interpreter loop.  This package puts the hot kernels
behind one dispatch point with interchangeable backends:

* ``numpy`` -- the existing vectorised kernels, now the *reference
  implementation*.  Always available, always correct.
* ``numba`` -- ``@njit``-compiled transcriptions of the same loops,
  including a thread-tiled dense closure (``prange`` over matrix rows
  per pivot).  Every numba kernel mirrors the NumPy kernel's float
  operation order and NaN semantics exactly, so the two backends
  produce **bit-identical** DBM matrices (differentially tested in
  ``tests/test_kernel_backends.py``).
* ``auto`` -- ``numba`` if it imports *and* a warm-up compile succeeds,
  else ``numpy``.

Selection: ``REPRO_KERNEL_BACKEND`` (environment) or
``--kernel-backend`` (CLI), resolved lazily on first kernel call.  A
requested backend that cannot be used falls back to ``numpy`` with a
visible one-line event (``kernel_backend_fallback``) and a bump of the
``kernel_fallbacks`` counter -- the system never hard-fails because an
accelerator is missing.

The registered kernels (one dispatch table per backend):

====================  =====================================================
``dense_closure``      full coherent-DBM closure (shortest path +
                       strengthening), in place, returns ``True`` iff empty
``dense_shortest_path``  shortest-path step only (decomposed components)
``sparse_shortest_path`` index-driven shortest path, returns candidate count
``sparse_closure``     sparse shortest path + sparse strengthening
``strengthen_sparse``  finite-diagonal strengthening, returns update count
``incremental_closure``  quadratic re-closure around one variable
``strengthen``         full vectorised strengthening
``count_nni``          finite-entry count of the stored half (the NNI pass)
``apron_closure``      the scalar APRON baseline closure on the half layout
====================  =====================================================

Cache-key honesty: the *resolved* backend name participates in the
batch job key (:meth:`repro.service.job.AnalysisJob.options`), so a
result computed by ``numba`` is never served to a ``numpy`` request
even though the matrices are bit-identical -- the key stays an honest
description of how the result was computed.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional

from ...obs import events, metrics
from ..stats import OpCounter  # noqa: F401  (re-exported for backends)

BACKEND_NUMPY = "numpy"
BACKEND_NUMBA = "numba"
BACKEND_AUTO = "auto"

BACKENDS = (BACKEND_AUTO, BACKEND_NUMPY, BACKEND_NUMBA)

#: The kernels every backend table must provide.
KERNELS = (
    "dense_closure",
    "dense_shortest_path",
    "sparse_shortest_path",
    "sparse_closure",
    "strengthen_sparse",
    "incremental_closure",
    "strengthen",
    "count_nni",
    "apron_closure",
)

# Kernel invocations are counted in module globals, like the COW clone
# counters: kernels fire tens of thousands of times per analysis, so
# per-event collector dispatch would be measurable overhead on the very
# path this package exists to speed up (collectors snapshot the globals
# and report deltas via ``stats.register_counter_source``).
_CALLS: Dict[str, int] = {BACKEND_NUMPY: 0, BACKEND_NUMBA: 0}
_FALLBACKS = 0

metrics.register_counter_source(
    lambda: {"kernel_calls_numpy": _CALLS[BACKEND_NUMPY],
             "kernel_calls_numba": _CALLS[BACKEND_NUMBA],
             "kernel_fallbacks": _FALLBACKS})

metrics.REGISTRY.counter("kernel_calls_numpy",
                         "Kernel invocations served by the numpy backend")
metrics.REGISTRY.counter("kernel_calls_numba",
                         "Kernel invocations served by the numba backend")
metrics.REGISTRY.counter(
    "kernel_calls", "Total kernel invocations across backends",
    derive=lambda m: (m.get("kernel_calls_numpy", 0)
                      + m.get("kernel_calls_numba", 0)))
metrics.REGISTRY.counter(
    "kernel_fallbacks",
    "Kernel backend requests that fell back to the numpy reference")


# ----------------------------------------------------------------------
# backend resolution
# ----------------------------------------------------------------------
_TABLES: Dict[str, Dict[str, object]] = {}
_active_name: Optional[str] = None
_active_table: Optional[Dict[str, object]] = None
#: Why numba is unusable (None = usable, "" = not yet probed).
_numba_error: Optional[str] = ""
#: Requested names whose fallback was already announced (resolution is
#: deterministic per process, and ``resolve`` runs on every job-key
#: computation -- the event and counter fire once per name, not per call).
_announced: set = set()


def _numpy_table() -> Dict[str, object]:
    table = _TABLES.get(BACKEND_NUMPY)
    if table is None:
        from . import numpy_backend

        table = numpy_backend.TABLE
        _register(BACKEND_NUMPY, table)
    return table


def _probe_numba() -> Optional[str]:
    """Import + warm-up compile the numba backend.

    Returns None when usable (table registered), else a one-line reason.
    The result is memoized: probing compiles kernels, which is seconds
    of work we only ever want to pay once per process.
    """
    global _numba_error
    if _numba_error != "":
        return _numba_error
    try:
        from . import numba_backend

        numba_backend.warmup()
        _register(BACKEND_NUMBA, numba_backend.TABLE)
        _numba_error = None
    except Exception as exc:  # ImportError, compile errors, LLVM issues
        _numba_error = f"{type(exc).__name__}: {exc}"
    return _numba_error


def _register(name: str, table: Dict[str, object]) -> None:
    missing = [k for k in KERNELS if k not in table]
    if missing:
        raise ValueError(f"backend {name!r} is missing kernels: {missing}")
    _TABLES[name] = table


def default_backend() -> str:
    """The process default: ``REPRO_KERNEL_BACKEND`` or ``auto``."""
    return os.environ.get("REPRO_KERNEL_BACKEND", BACKEND_AUTO)


def resolve(name: Optional[str] = None) -> str:
    """Resolve a requested backend to the concrete one that will run.

    ``None``/``""`` means the process default.  ``auto`` resolves to
    ``numba`` when it is importable and warm-compiles, else ``numpy``.
    An explicit ``numba`` request that cannot be satisfied *also*
    resolves to ``numpy`` (graceful fallback), with a visible warning
    event and a ``kernel_fallbacks`` bump.  Resolution is deterministic
    within a process, which is what lets the resolved name serve as a
    cache-key component.
    """
    global _FALLBACKS
    name = name or default_backend()
    if name == BACKEND_NUMPY:
        return BACKEND_NUMPY
    if name not in BACKENDS:
        raise ValueError(f"unknown kernel backend {name!r} "
                         f"(choose from {', '.join(BACKENDS)})")
    reason = _probe_numba()
    if reason is None:
        return BACKEND_NUMBA
    if name not in _announced:
        _announced.add(name)
        if name == BACKEND_NUMBA:
            # Explicit request denied: visible, counted, but not fatal.
            _FALLBACKS += 1
            events.warning("kernel_backend_fallback", requested=name,
                           actual=BACKEND_NUMPY, reason=reason)
        else:  # auto: expected selection, but still say it once, quietly
            events.info("kernel_backend_fallback", requested=name,
                        actual=BACKEND_NUMPY, reason=reason)
    return BACKEND_NUMPY


def use(name: Optional[str] = None) -> str:
    """Activate a backend (resolving ``auto``); returns the active name."""
    global _active_name, _active_table
    resolved = resolve(name)
    _active_name = resolved
    _active_table = (_numpy_table() if resolved == BACKEND_NUMPY
                     else _TABLES[BACKEND_NUMBA])
    return resolved


def active_backend() -> str:
    """The backend serving kernel calls (resolves the default lazily)."""
    if _active_name is None:
        use(None)
    return _active_name  # type: ignore[return-value]


def available_backends() -> List[str]:
    """Concrete backends usable in this process (numpy always first)."""
    out = [BACKEND_NUMPY]
    if _probe_numba() is None:
        out.append(BACKEND_NUMBA)
    return out


def numba_unavailable_reason() -> Optional[str]:
    """Why numba cannot be used here (None when it can)."""
    return _probe_numba()


@contextmanager
def backend(name: str) -> Iterator[str]:
    """Run a block under one backend (tests, differential benches)."""
    previous = active_backend()
    resolved = use(name)
    try:
        yield resolved
    finally:
        use(previous)


def _table() -> Dict[str, object]:
    global _CALLS
    if _active_table is None:
        use(None)
    _CALLS[_active_name] += 1  # type: ignore[index]
    return _active_table  # type: ignore[return-value]


# ----------------------------------------------------------------------
# dispatch points (one per registered kernel)
# ----------------------------------------------------------------------
def dense_closure(m, counter: Optional[OpCounter] = None) -> bool:
    """Full dense closure on a coherent DBM, in place; True iff empty."""
    return _table()["dense_closure"](m, counter)


def dense_shortest_path(m, counter: Optional[OpCounter] = None) -> None:
    """Shortest-path step only (decomposed component submatrices)."""
    return _table()["dense_shortest_path"](m, counter)


def sparse_shortest_path(m, counter: Optional[OpCounter] = None) -> int:
    """Index-driven shortest path; returns the candidate-update count."""
    return _table()["sparse_shortest_path"](m, counter)


def sparse_closure(m, counter: Optional[OpCounter] = None) -> bool:
    """Sparse closure (index-driven + sparse strengthening)."""
    return _table()["sparse_closure"](m, counter)


def strengthen_sparse(m) -> int:
    """Finite-diagonal strengthening; returns the update count."""
    return _table()["strengthen_sparse"](m)


def incremental_closure(m, v: int, counter: Optional[OpCounter] = None) -> bool:
    """Quadratic re-closure after changes confined to variable ``v``."""
    return _table()["incremental_closure"](m, v, counter)


def strengthen(m) -> None:
    """Full vectorised strengthening on a coherent DBM, in place."""
    return _table()["strengthen"](m)


def count_nni(m) -> int:
    """Finite entries of the stored half (the paper's ``nni`` pass)."""
    return _table()["count_nni"](m)


def apron_closure(half, counter: Optional[OpCounter] = None) -> bool:
    """The APRON baseline closure on a :class:`HalfMat`; True iff empty."""
    return _table()["apron_closure"](half, counter)
