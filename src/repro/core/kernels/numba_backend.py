"""Numba-compiled kernel table (``pip install .[native]``).

Each kernel here is a loop-level transcription of the corresponding
NumPy reference kernel, compiled with ``@njit``.  Two rules make the
backends interchangeable:

* **Same float operations in the same order.**  Every candidate bound
  is computed from the same operands the NumPy kernel reads (pivot
  rows/columns are snapshotted *before* the sweep, exactly like the
  ``np.add(..., out=t)`` staging buffers), so IEEE-754 gives bitwise
  equal results.
* **Same NaN/tie semantics.**  ``np.minimum`` propagates NaN and keeps
  its *first* operand on ties; the scalar update
  ``if cand < cur or cand != cand: cur = cand`` reproduces both.  The
  APRON baseline kernel instead uses the scalar reference's plain
  ``<`` (NaN never written), again matching its reference exactly.

The dense closure additionally ships a thread-tiled variant: per pivot,
the bulk rank-1 min-plus update is parallelised over matrix rows with
``prange``.  Rows are written by exactly one thread from snapshot
buffers, so the tiled sweep is deterministic and bit-identical to the
serial one at any thread count.

Compilation is cached on disk (``cache=True``); the registry's ``auto``
probe triggers :func:`warmup`, which compiles the dense closure on a
tiny matrix -- if that fails (no LLVM, broken install), the registry
falls back to NumPy.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
from numba import njit, prange

from ..halfmat import HalfMat
from ..stats import OpCounter

#: Matrices at least this large use the thread-tiled dense sweep.  Below
#: it, thread launch overhead exceeds the per-pivot work.
TILE_MIN_DIM = 64

_FORCE_TILING: Optional[bool] = None  # None = size heuristic (benches override)


def set_tiling(flag: Optional[bool]) -> Optional[bool]:
    """Force the tiled (True) / serial (False) dense sweep; None = auto."""
    global _FORCE_TILING
    previous = _FORCE_TILING
    _FORCE_TILING = flag
    return previous


def _use_tiling(dim: int) -> bool:
    if _FORCE_TILING is not None:
        return _FORCE_TILING
    return dim >= TILE_MIN_DIM


# ----------------------------------------------------------------------
# dense closure
# ----------------------------------------------------------------------
@njit(cache=True)
def _dense_shortest_path(m):
    dim = m.shape[0]
    rowp = np.empty(dim, dtype=np.float64)
    colp = np.empty(dim, dtype=np.float64)
    for p in range(dim):
        for i in range(dim):
            colp[i] = m[i, p]
            rowp[i] = m[p, i]
        for i in range(dim):
            ci = colp[i]
            for j in range(dim):
                cand = ci + rowp[j]
                cur = m[i, j]
                if cand < cur or cand != cand:
                    m[i, j] = cand


@njit(cache=True, parallel=True)
def _dense_shortest_path_tiled(m):
    dim = m.shape[0]
    for p in range(dim):
        # Snapshot the pivot lines before the sweep (the NumPy kernel's
        # staging buffer); every row is then independent.
        rowp = m[p, :].copy()
        colp = m[:, p].copy()
        for i in prange(dim):
            ci = colp[i]
            for j in range(dim):
                cand = ci + rowp[j]
                cur = m[i, j]
                if cand < cur or cand != cand:
                    m[i, j] = cand


@njit(cache=True)
def _strengthen_full(m):
    dim = m.shape[0]
    d = np.empty(dim, dtype=np.float64)
    for i in range(dim):
        d[i] = m[i, i ^ 1]
    for i in range(dim):
        di = d[i]
        for j in range(dim):
            cand = (di + d[j ^ 1]) * 0.5
            cur = m[i, j]
            if cand < cur or cand != cand:
                m[i, j] = cand


@njit(cache=True)
def _finish_closure(m):
    """Bottom check + diagonal reset; returns True iff empty."""
    dim = m.shape[0]
    empty = False
    for i in range(dim):
        if m[i, i] < 0.0:
            empty = True
    if empty:
        return True
    for i in range(dim):
        m[i, i] = 0.0
    return False


def dense_closure(m: np.ndarray, counter: Optional[OpCounter] = None) -> bool:
    dim = m.shape[0]
    if dim == 0:
        return False
    if _use_tiling(dim):
        _dense_shortest_path_tiled(m)
    else:
        _dense_shortest_path(m)
    _strengthen_full(m)
    if counter is not None:
        counter.tick(2 * 2 * dim ** 3 + 3 * dim ** 2)
    return _finish_closure(m)


def dense_shortest_path(m: np.ndarray,
                        counter: Optional[OpCounter] = None) -> None:
    dim = m.shape[0]
    if dim == 0:
        return
    if _use_tiling(dim):
        _dense_shortest_path_tiled(m)
    else:
        _dense_shortest_path(m)
    if counter is not None:
        counter.tick(2 * 2 * dim ** 3)


def strengthen(m: np.ndarray) -> None:
    if m.shape[0] == 0:
        return
    _strengthen_full(m)


# ----------------------------------------------------------------------
# sparse closure
# ----------------------------------------------------------------------
@njit(cache=True)
def _sparse_shortest_path(m):
    dim = m.shape[0]
    fin_i = np.empty(dim, dtype=np.int64)
    fin_j = np.empty(dim, dtype=np.int64)
    colv = np.empty(dim, dtype=np.float64)
    rowv = np.empty(dim, dtype=np.float64)
    candidates = 0
    for p in range(dim):
        nj = 0
        for j in range(dim):
            if np.isfinite(m[p, j]):
                fin_j[nj] = j
                nj += 1
        ni = 0
        for i in range(dim):
            if np.isfinite(m[i, p]):
                fin_i[ni] = i
                ni += 1
        if ni == 0 or nj == 0:
            continue
        # Snapshot the live pivot operands (the NumPy kernel gathers
        # them before its fancy-indexed minimum).
        for a in range(ni):
            colv[a] = m[fin_i[a], p]
        for b in range(nj):
            rowv[b] = m[p, fin_j[b]]
        for a in range(ni):
            ia = fin_i[a]
            ca = colv[a]
            for b in range(nj):
                jb = fin_j[b]
                cand = ca + rowv[b]
                cur = m[ia, jb]
                if cand < cur or cand != cand:
                    m[ia, jb] = cand
        candidates += ni * nj
    return candidates


@njit(cache=True)
def _strengthen_sparse(m):
    dim = m.shape[0]
    d = np.empty(dim, dtype=np.float64)
    for i in range(dim):
        d[i] = m[i, i ^ 1]
    finite = np.empty(dim, dtype=np.int64)
    nf = 0
    for i in range(dim):
        if np.isfinite(d[i]):
            finite[nf] = i
            nf += 1
    if nf == 0:
        return 0
    for a in range(nf):
        ia = finite[a]
        da = d[ia]
        for b in range(nf):
            jb = finite[b] ^ 1  # columns are the mirrored finite rows
            cand = (da + d[finite[b]]) * 0.5
            cur = m[ia, jb]
            if cand < cur or cand != cand:
                m[ia, jb] = cand
    return nf * nf


def sparse_shortest_path(m: np.ndarray,
                         counter: Optional[OpCounter] = None) -> int:
    if m.shape[0] == 0:
        return 0
    candidates = int(_sparse_shortest_path(m))
    if counter is not None:
        counter.tick(2 * candidates)
    return candidates


def strengthen_sparse(m: np.ndarray) -> int:
    if m.shape[0] == 0:
        return 0
    return int(_strengthen_sparse(m))


def sparse_closure(m: np.ndarray, counter: Optional[OpCounter] = None) -> bool:
    sparse_shortest_path(m, counter)
    performed = strengthen_sparse(m)
    if counter is not None:
        counter.tick(3 * performed)
    return _finish_closure(m)


# ----------------------------------------------------------------------
# incremental closure
# ----------------------------------------------------------------------
@njit(cache=True)
def _incremental_closure(m, p0, p1):
    dim = m.shape[0]
    d0 = np.empty(dim, dtype=np.float64)
    d1 = np.empty(dim, dtype=np.float64)
    # Phase 1: min-plus line refresh out of +v / -v (snapshot fold,
    # sequential like ``np.minimum.reduce``).
    for j in range(dim):
        best0 = m[p0, 0] + m[0, j]
        best1 = m[p1, 0] + m[0, j]
        for x in range(1, dim):
            v = m[p0, x] + m[x, j]
            if v < best0 or v != v:
                best0 = v
            v = m[p1, x] + m[x, j]
            if v < best1 or v != v:
                best1 = v
        d0[j] = best0
        d1[j] = best1
    # Phase 2: routes through the opposite sign of v.
    dd01 = d0[0] + m[0, p1]
    dd10 = d1[0] + m[0, p0]
    dd00 = d0[0] + m[0, p0]
    dd11 = d1[0] + m[0, p1]
    for x in range(1, dim):
        v = d0[x] + m[x, p1]
        if v < dd01 or v != v:
            dd01 = v
        v = d1[x] + m[x, p0]
        if v < dd10 or v != v:
            dd10 = v
        v = d0[x] + m[x, p0]
        if v < dd00 or v != v:
            dd00 = v
        v = d1[x] + m[x, p1]
        if v < dd11 or v != v:
            dd11 = v
    r0 = np.empty(dim, dtype=np.float64)
    r1 = np.empty(dim, dtype=np.float64)
    for i in range(dim):
        a = d0[i]
        b = d1[i] + dd01
        r0[i] = b if (b < a or b != b) else a
        a = d1[i]
        b = d0[i] + dd10
        r1[i] = b if (b < a or b != b) else a
    if dd01 < r0[p1]:
        r0[p1] = dd01
    if dd10 < r1[p0]:
        r1[p0] = dd10
    if dd00 < r0[p0]:
        r0[p0] = dd00
    if dd11 < r1[p1]:
        r1[p1] = dd11
    # Install the refreshed lines coherently.
    for j in range(dim):
        v = r0[j]
        cur = m[p0, j]
        if v < cur or v != v:
            m[p0, j] = v
        v = r1[j]
        cur = m[p1, j]
        if v < cur or v != v:
            m[p1, j] = v
    col0 = np.empty(dim, dtype=np.float64)
    col1 = np.empty(dim, dtype=np.float64)
    for i in range(dim):
        col0[i] = r1[i ^ 1]
        col1[i] = r0[i ^ 1]
    for i in range(dim):
        v = col0[i]
        cur = m[i, p0]
        if v < cur or v != v:
            m[i, p0] = v
        v = col1[i]
        cur = m[i, p1]
        if v < cur or v != v:
            m[i, p1] = v
    # Phase 3: one fused pivot-pair sweep from the refreshed lines.
    for i in range(dim):
        c0 = col0[i]
        c1 = col1[i]
        for j in range(dim):
            t = c0 + r0[j]
            t2 = c1 + r1[j]
            if t2 < t or t2 != t2:
                t = t2
            cur = m[i, j]
            if t < cur or t != t:
                m[i, j] = t


def incremental_closure(m: np.ndarray, v: int,
                        counter: Optional[OpCounter] = None) -> bool:
    dim = m.shape[0]
    p0, p1 = 2 * v, 2 * v + 1
    if not 0 <= p1 < dim:
        raise IndexError(f"variable {v} out of range for dim {dim}")
    _incremental_closure(m, p0, p1)
    _strengthen_full(m)
    if counter is not None:
        counter.tick(2 * dim * dim + 2 * dim * dim + dim * dim)
    return _finish_closure(m)


# ----------------------------------------------------------------------
# NNI count
# ----------------------------------------------------------------------
@njit(cache=True)
def _count_nni(m):
    dim = m.shape[0]
    count = 0
    for i in range(dim):
        for j in range((i | 1) + 1):  # stored half: j <= (i | 1)
            if np.isfinite(m[i, j]):
                count += 1
    return count


def count_nni(m: np.ndarray) -> int:
    return int(_count_nni(m))


# ----------------------------------------------------------------------
# APRON baseline closure (half layout, scalar reference semantics)
# ----------------------------------------------------------------------
@njit(cache=True, inline="always")
def _matpos2(i, j):
    if j > (i | 1):
        i2 = j ^ 1
        j2 = i ^ 1
        return j2 + ((i2 + 1) * (i2 + 1)) // 2
    return j + ((i + 1) * (i + 1)) // 2


@njit(cache=True)
def _apron_closure(data, dim):
    # Algorithm 2 shortest path (plain ``<``: the scalar reference
    # never writes NaN candidates).
    for k in range(dim):
        kb = k ^ 1
        for i in range(dim):
            oik = data[_matpos2(i, k)]
            oikb = data[_matpos2(i, kb)]
            base = (i + 1) * (i + 1) // 2
            for j in range((i | 1) + 1):
                p = base + j
                cand = oik + data[_matpos2(k, j)]
                if cand < data[p]:
                    data[p] = cand
                cand = oikb + data[_matpos2(kb, j)]
                if cand < data[p]:
                    data[p] = cand
    # Strengthening (scalar reference: buffered diagonal, /2.0).
    diag = np.empty(dim, dtype=np.float64)
    for i in range(dim):
        diag[i] = data[_matpos2(i, i ^ 1)]
    for i in range(dim):
        di = diag[i]
        base = (i + 1) * (i + 1) // 2
        for j in range((i | 1) + 1):
            cand = (di + diag[j ^ 1]) / 2.0
            if cand < data[base + j]:
                data[base + j] = cand
    # Emptiness, then diagonal reset.
    for i in range(dim):
        if data[_matpos2(i, i)] < 0.0:
            return True
    for i in range(dim):
        data[_matpos2(i, i)] = 0.0
    return False


def apron_closure(half: HalfMat, counter: Optional[OpCounter] = None) -> bool:
    dim = 2 * half.n
    data = np.asarray(half.data, dtype=np.float64)
    empty = bool(_apron_closure(data, dim))
    half.data = data.tolist()
    if counter is not None:
        size = len(half.data)
        # Algorithm 2: 2 candidate mins (2 ops each) per stored entry
        # per outer iteration; strengthening: 3 ops per stored entry.
        counter.tick(2 * (2 * dim * size) + 3 * size)
    return empty


# ----------------------------------------------------------------------
# registration
# ----------------------------------------------------------------------
def warmup() -> None:
    """Compile the dense closure on a tiny DBM (the ``auto`` probe)."""
    m = np.full((4, 4), np.inf, dtype=np.float64)
    np.fill_diagonal(m, 0.0)
    m[0, 1] = 3.0
    m[1, 0] = 3.0  # keep it coherent: O[0,1] mirrors O[1,0] under xor
    _dense_shortest_path(m.copy())
    _strengthen_full(m.copy())
    _finish_closure(m.copy())


TABLE = {
    "dense_closure": dense_closure,
    "dense_shortest_path": dense_shortest_path,
    "sparse_shortest_path": sparse_shortest_path,
    "sparse_closure": sparse_closure,
    "strengthen_sparse": strengthen_sparse,
    "incremental_closure": incremental_closure,
    "strengthen": strengthen,
    "count_nni": count_nni,
    "apron_closure": apron_closure,
}
