"""Bound arithmetic for difference bound matrices.

Octagon DBM entries are *bounds* ``c`` in ``R U {+inf}``: the entry
``O[i, j] = c`` encodes the inequality ``vhat_j - vhat_i <= c``.  The
special value ``+inf`` encodes the trivial (always true) inequality.

This module centralises inf-aware arithmetic so that both the
pure-Python half-matrix backend and the NumPy backend agree on the
semantics of bound addition, halving and comparison.  All functions are
tiny and branch-free where possible; the scalar closure loops are the
hottest pure-Python code in the baseline implementation.
"""

from __future__ import annotations

import math

#: The trivial bound (the inequality always holds).
INF: float = math.inf

#: Negative infinity -- never a legal DBM entry, but useful as an
#: identity element when maximising over bounds.
NEG_INF: float = -math.inf


def is_finite(c: float) -> bool:
    """Return True if ``c`` is a non-trivial (finite) bound."""
    return c != INF and c != NEG_INF


def is_trivial(c: float) -> bool:
    """Return True if ``c`` is the trivial bound ``+inf``."""
    return c == INF


def badd(a: float, b: float) -> float:
    """Add two bounds.

    ``inf + x == inf`` for every bound ``x`` (including ``inf``); finite
    bounds add normally.  ``-inf`` never appears in well-formed DBMs, so
    we do not special-case ``inf + (-inf)``.
    """
    if a == INF or b == INF:
        return INF
    return a + b


def bmin(a: float, b: float) -> float:
    """Minimum of two bounds (the *meet* of two inequalities)."""
    return a if a <= b else b


def bmax(a: float, b: float) -> float:
    """Maximum of two bounds (the *join* of two inequalities)."""
    return a if a >= b else b


def bhalf(a: float) -> float:
    """Halve a bound; used by the strengthening step."""
    if a == INF:
        return INF
    return a / 2.0


def bhalf_floor(a: float) -> float:
    """Halve a bound rounding down; used by integer tightening."""
    if a == INF:
        return INF
    return math.floor(a / 2.0)


def bounds_equal(a: float, b: float, *, tol: float = 0.0) -> bool:
    """Compare two bounds, treating two infinities as equal.

    A non-zero ``tol`` admits floating-point slack between finite
    bounds; infinite bounds must match exactly.
    """
    if a == INF or b == INF:
        return a == b
    if tol == 0.0:
        return a == b
    return abs(a - b) <= tol
