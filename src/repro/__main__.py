"""Command-line interface: ``python -m repro <subcommand>``.

Subcommands:

* ``analyze FILE``      -- run the static analyzer on a mini-language
                           source file and report assertion results.
* ``precondition FILE`` -- backward analysis: the necessary
                           precondition of reaching the program exit.
* ``bench NAME``        -- run one suite benchmark through both octagon
                           implementations and print the comparison.
* ``suite``             -- list the 17-benchmark suite with its paper
                           statistics.
* ``demo``              -- analyse the paper's Figure 2 example.
"""

from __future__ import annotations

import argparse
import sys

from .analysis import Analyzer
from .core.bounds import INF


def _fmt(value: float) -> str:
    if value == INF:
        return "+oo"
    if value == -INF:
        return "-oo"
    return f"{value:g}"


def cmd_analyze(args) -> int:
    with open(args.file) as fh:
        source = fh.read()
    analyzer = Analyzer(domain=args.domain,
                        widening_delay=args.widening_delay)
    result = analyzer.analyze(source)
    failures = 0
    for proc in result.procedures:
        print(f"proc {proc.name}:")
        names = proc.cfg.variables
        exit_state = proc.invariant_at_exit()
        if exit_state.is_bottom():
            print("  exit: unreachable")
        else:
            for v, name in enumerate(names):
                lo, hi = exit_state.bounds(v)
                print(f"  {name} in [{_fmt(lo)}, {_fmt(hi)}] at exit")
        for check in proc.checks:
            ok = "VERIFIED" if check.verified else "FAILED TO PROVE"
            failures += 0 if check.verified else 1
            print(f"  assert({check.cond_text}): {ok}")
    total = len(result.checks)
    print(f"{total - failures}/{total} assertions verified "
          f"({args.domain}, {result.seconds:.3f}s)")
    return 1 if failures else 0


def cmd_precondition(args) -> int:
    from .analysis.backward import necessary_precondition
    from .frontend.cfg import build_cfg
    from .frontend.parser import parse_program

    with open(args.file) as fh:
        source = fh.read()
    cfg = build_cfg(parse_program(source).procedures[0])
    pre = necessary_precondition(cfg, domain=args.domain)
    print("necessary precondition of reaching the exit:")
    if pre.is_bottom():
        print("  false (the exit is unreachable)")
    else:
        text = pre.pretty(names=cfg.variables) if hasattr(pre, "pretty") else repr(pre)
        for line in text.splitlines():
            print(f"  {line}")
    return 0


def cmd_bench(args) -> int:
    from .bench import fig8_row
    from .workloads import get_benchmark

    bench = get_benchmark(args.name)
    row = fig8_row(bench, scale=args.scale)
    print(f"benchmark {bench.name} ({bench.analyzer}), scale={args.scale}")
    print(f"  apron octagon time: {row['apron_oct_s']:.3f}s")
    print(f"  opt octagon time:   {row['opt_oct_s']:.3f}s")
    print(f"  speedup:            {row['speedup']:.1f}x "
          f"(paper: {row['paper_speedup']:g}x)")
    print(f"  copies avoided:     {row['copies_avoided']}")
    print(f"  workspace hits:     {row['workspace_hits']}")
    print(f"  closure cache hits: {row['closure_cache_hits']}")
    return 0


def cmd_suite(_args) -> int:
    from .workloads import BENCHMARKS

    print(f"{'benchmark':14s} {'analyzer':8s} {'nmin':>5s} {'nmax':>5s} "
          f"{'#closures':>9s} {'oct speedup':>11s}")
    for bench in BENCHMARKS:
        p = bench.paper
        print(f"{bench.name:14s} {bench.analyzer:8s} {p.nmin:5d} {p.nmax:5d} "
              f"{p.closures:9d} {p.oct_speedup:10.1f}x")
    return 0


def cmd_demo(args) -> int:
    from .workloads.programs import fig2_program

    source = fig2_program() + "\nassert(y >= x - 1);\n"
    print("the paper's Figure 2 example:")
    print(source)
    result = Analyzer(domain=args.domain).analyze(source)
    for check in result.checks:
        ok = "VERIFIED" if check.verified else "FAILED TO PROVE"
        print(f"assert({check.cond_text}): {ok}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduction of 'Making Numerical Program Analysis "
                    "Fast' (PLDI 2015)")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("analyze", help="analyze a source file")
    p.add_argument("file")
    p.add_argument("--domain", default="octagon",
                   choices=["octagon", "apron", "interval", "zone", "pentagon"])
    p.add_argument("--widening-delay", type=int, default=2)
    p.set_defaults(func=cmd_analyze)

    p = sub.add_parser("precondition",
                       help="necessary precondition of reaching the exit")
    p.add_argument("file")
    p.add_argument("--domain", default="octagon", choices=["octagon", "apron"])
    p.set_defaults(func=cmd_precondition)

    p = sub.add_parser("bench", help="run one suite benchmark")
    p.add_argument("name")
    p.add_argument("--scale", default="paper",
                   choices=["small", "paper", "large"])
    p.set_defaults(func=cmd_bench)

    p = sub.add_parser("suite", help="list the benchmark suite")
    p.set_defaults(func=cmd_suite)

    p = sub.add_parser("demo", help="analyse the paper's Figure 2 example")
    p.add_argument("--domain", default="octagon",
                   choices=["octagon", "apron", "interval", "zone", "pentagon"])
    p.set_defaults(func=cmd_demo)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
