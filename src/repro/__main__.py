"""Command-line interface: ``python -m repro <subcommand>``.

Subcommands:

* ``analyze FILE...``   -- run the static analyzer on mini-language
                           source files and report assertion results
                           (multiple files route through the batch
                           service).
* ``batch FILE...``     -- the batch front door: many programs through
                           the job scheduler, process-pool workers and
                           the persistent result cache
                           (``--suite`` runs the 17-benchmark suite).
* ``precondition FILE`` -- backward analysis: the necessary
                           precondition of reaching the program exit.
* ``bench NAME``        -- run one suite benchmark through both octagon
                           implementations and print the comparison.
* ``suite``             -- list the 17-benchmark suite with its paper
                           statistics.
* ``demo``              -- analyse the paper's Figure 2 example.
"""

from __future__ import annotations

import argparse
import sys

from .analysis import Analyzer
from .core import stats
from .core.bounds import INF
from .obs import events


def _run_context(args):
    """The telemetry :class:`RunContext` main() attached, if any."""
    return getattr(args, "run_context", None)


def _fmt(value: float) -> str:
    if value == INF:
        return "+oo"
    if value == -INF:
        return "-oo"
    return f"{value:g}"


def _apply_paranoid(args) -> None:
    """Honour ``--paranoid`` (REPRO_PARANOID=1 works without the flag)."""
    if getattr(args, "paranoid", False):
        from .core.sentinel import set_paranoid

        set_paranoid(True)


def _budget_kwargs(args) -> dict:
    return {"time_budget": args.time_budget,
            "iteration_budget": args.iteration_budget,
            "cell_budget": args.cell_budget}


def _telemetry(args) -> tuple:
    """The job telemetry tuple implied by the CLI flags."""
    ctx = _run_context(args)
    if ctx is None:
        return ()
    wanted = []
    if ctx.trace_path:
        wanted.append("trace")
    if ctx.log_path or ctx.metrics_path:
        wanted.append("metrics")
    return tuple(wanted)


def cmd_analyze(args) -> int:
    _apply_paranoid(args)
    if len(args.files) > 1:
        return _analyze_many(args)
    from .core import kernels

    kernels.use(args.kernel_backend)
    with open(args.files[0]) as fh:
        source = fh.read()
    analyzer = Analyzer(domain=args.domain,
                        widening_delay=args.widening_delay,
                        compile_transfer=not args.no_compile,
                        sparse_threshold=args.sparse_threshold,
                        **_budget_kwargs(args))
    ctx = _run_context(args)
    result = analyzer.analyze(source,
                              collect=ctx is not None and ctx.active)
    if ctx is not None and result.octagon_stats is not None:
        ctx.finish(result.octagon_stats, file=args.files[0])
    failures = 0
    for proc in result.procedures:
        note = ""
        if proc.degraded:
            used = "top" if proc.exhausted else proc.domain_used
            note = f" (degraded to {used})"
        print(f"proc {proc.name}:{note}")
        names = proc.cfg.variables
        exit_state = proc.invariant_at_exit()
        if exit_state.is_bottom():
            print("  exit: unreachable")
        else:
            for v, name in enumerate(names):
                lo, hi = exit_state.bounds(v)
                print(f"  {name} in [{_fmt(lo)}, {_fmt(hi)}] at exit")
        for check in proc.checks:
            ok = "VERIFIED" if check.verified else "FAILED TO PROVE"
            failures += 0 if check.verified else 1
            print(f"  assert({check.cond_text}): {ok}")
    total = len(result.checks)
    print(f"{total - failures}/{total} assertions verified "
          f"({args.domain}, {result.seconds:.3f}s)")
    return 1 if failures else 0


def _fmt_opt(value) -> str:
    return "oo" if value is None else f"{value:g}"


def _analyze_many(args) -> int:
    """N>1 files: same report per file, executed via the service.

    Exit-code contract matches the single-file path: nonzero iff any
    assertion fails to prove (a job that errors or times out has, in
    particular, not proved its assertions).
    """
    from .service import run_batch
    from .service.job import jobs_from_files

    jobs = jobs_from_files(args.files, domain=args.domain,
                           widening_delay=args.widening_delay,
                           compile_transfer=not args.no_compile,
                           kernel_backend=args.kernel_backend,
                           sparse_threshold=args.sparse_threshold,
                           telemetry=_telemetry(args),
                           **_budget_kwargs(args))
    batch = run_batch(jobs, workers=args.jobs)
    _finish_batch_run(args, batch)
    failures = 0
    for result in batch.results:
        print(f"== {result.label} ==")
        if not result.completed:
            failures += 1
            print(f"  {result.outcome}: {result.error}")
            continue
        if result.outcome == "degraded":
            rungs = ", ".join(f"{proc}->{dom}"
                              for proc, dom in sorted(result.rungs.items()))
            print(f"  degraded under budget ({rungs})")
        for proc in result.procedures:
            print(f"proc {proc.name}:")
            if not proc.reachable:
                print("  exit: unreachable")
            else:
                for name, (lo, hi) in zip(proc.variables, proc.box):
                    print(f"  {name} in [{_fmt_opt(lo)}, {_fmt_opt(hi)}] "
                          f"at exit")
        for check in result.checks:
            ok = "VERIFIED" if check.verified else "FAILED TO PROVE"
            failures += 0 if check.verified else 1
            print(f"  assert({check.cond_text}): {ok}")
    verified = batch.checks_verified
    total = batch.checks_total
    print(f"{verified}/{total} assertions verified over "
          f"{len(batch.results)} files ({args.domain}, "
          f"{batch.wall_seconds:.3f}s)")
    return 1 if failures else 0


def _finish_batch_run(args, batch) -> None:
    """Feed batch-level rollups into the telemetry run context."""
    ctx = _run_context(args)
    if ctx is None or not ctx.active:
        return
    from .obs import metrics

    counts = batch.outcome_counts()
    ctx.finish(
        counters=metrics.REGISTRY.counter_summary(batch.counters()),
        histograms=batch.merged_histograms(),
        jobs=len(batch.results),
        ok=counts.get("ok", 0),
        degraded=counts.get("degraded", 0),
        failed=counts.get("timeout", 0) + counts.get("error", 0),
        cache_hits=batch.cache_hits,
        cache_misses=batch.cache_misses,
        **batch.op_timings(),
    )


def _batch_cross_validate(args, jobs) -> int:
    """``batch --cross-validate``: dense vs sparse differential run."""
    import json as _json

    from .service.validate import cross_validate

    report = cross_validate(jobs, sparse_threshold=args.sparse_threshold)
    width = max((len(p.label) for p in report.programs), default=0)
    print(f"{'program':{width}s}  {'ok':>2s}  {'sparsity':>8s}  "
          f"{'cells d/s':>18s}  {'ratio':>6s}  {'peakB d/s':>18s}  "
          f"{'ratio':>6s}")
    for prog in report.programs:
        sp = prog.sparsity
        cr, br = prog.cell_ratio(), prog.peak_bytes_ratio()
        cd = prog.dense.counters.get("closure_cells", 0)
        cs = prog.sparse.counters.get("closure_cells", 0)
        pd = prog.dense.counters.get("dbm_peak_bytes", 0)
        ps = prog.sparse.counters.get("dbm_peak_bytes", 0)
        print(f"{prog.label:{width}s}  {'ok' if prog.ok else 'XX':>2s}  "
              f"{sp if sp is not None else float('nan'):8.3f}  "
              f"{cd:>8d}/{cs:<9d}  "
              f"{cr if cr is not None else float('nan'):5.1f}x  "
              f"{pd:>8d}/{ps:<9d}  "
              f"{br if br is not None else float('nan'):5.1f}x")
        for mismatch in prog.mismatches:
            print(f"  MISMATCH {mismatch}")
    n_bad = len(report.failures)
    print(f"cross-validate: {len(report.programs)} program(s), "
          f"{n_bad} mismatch(es)")
    if args.json:
        with open(args.json, "w") as fh:
            _json.dump(report.to_dict(), fh, indent=2)
        print(f"wrote {args.json}")
    return 1 if n_bad else 0


def cmd_batch(args) -> int:
    """Batch front door: files (or the suite) through the service."""
    from .service import BatchJournal, ResultCache, run_batch, suite_jobs
    from .service.job import jobs_from_files

    _apply_paranoid(args)
    if args.suite:
        if args.files:
            events.error("batch_usage",
                         message="give FILE arguments or --suite, not both")
            return 2
        jobs = suite_jobs(args.scale, domain=args.domain,
                          compile_transfer=not args.no_compile,
                          kernel_backend=args.kernel_backend,
                          sparse_threshold=args.sparse_threshold,
                          telemetry=_telemetry(args),
                          **_budget_kwargs(args))
    elif args.files:
        jobs = jobs_from_files(args.files, domain=args.domain,
                               compile_transfer=not args.no_compile,
                               kernel_backend=args.kernel_backend,
                               sparse_threshold=args.sparse_threshold,
                               telemetry=_telemetry(args),
                               **_budget_kwargs(args))
    else:
        events.error("batch_usage",
                     message="no input files (pass FILE... or --suite)")
        return 2

    if args.cross_validate:
        return _batch_cross_validate(args, jobs)

    cache = None if args.no_cache else ResultCache(args.cache_dir)
    # Journalling is on by default so an unplanned kill is always
    # resumable; --journal overrides the content-addressed default path.
    journal = None
    if not args.no_journal:
        journal = (BatchJournal(args.journal) if args.journal
                   else BatchJournal.for_jobs(jobs, root=args.cache_dir))
    batch = run_batch(jobs, workers=args.jobs, timeout=args.timeout,
                      cache=cache, journal=journal, resume=args.resume)
    _finish_batch_run(args, batch)

    width = max((len(r.label) for r in batch.results), default=0)
    for result in batch.results:
        note = " (cached)" if result.cached else ""
        if result.resumed:
            note = " (resumed)"
        if result.completed:
            detail = (f"{result.checks_verified}/{result.checks_total} "
                      f"verified  {result.seconds:7.3f}s")
            sparsity = stats.sparsity_ratio(result.counters)
            if sparsity is not None:
                detail += f"  sp={sparsity:.3f}"
            if result.rungs:
                rungs = ", ".join(f"{proc}->{dom}" for proc, dom
                                  in sorted(result.rungs.items()))
                detail += f"  [{rungs}]"
        else:
            detail = result.error or result.outcome
        print(f"{result.label:{width}s}  {result.outcome:8s}  {detail}{note}")
    counts = batch.outcome_counts()
    summary = ", ".join(f"{counts.get(k, 0)} {k}"
                        for k in ("ok", "degraded", "timeout", "error"))
    print(f"batch: {len(batch.results)} jobs in {batch.wall_seconds:.3f}s "
          f"with {batch.workers} worker(s) ({summary})")
    if batch.resumed:
        print(f"journal: {batch.resumed} job(s) resumed from "
              f"{journal.path}")
    if cache is not None:
        print(f"cache: {batch.cache_hits} hits, {batch.cache_misses} misses, "
              f"{cache.evictions} evictions ({cache.dir})")
    if batch.transport.get("bytes_shipped"):
        print(f"transport: {batch.transport['bytes_shipped']} B over pipes, "
              f"{batch.transport.get('bytes_zero_copy', 0)} B zero-copy "
              f"({batch.transport.get('shm_blocks_attached', 0)} shm "
              f"segment(s))")

    if args.json:
        from .core.serialize import job_result_to_dict
        from .obs import metrics
        import json as _json

        ctx = _run_context(args)
        timings = batch.op_timings()
        document = {
            "run": ctx.run_id if ctx is not None else None,
            "wall_seconds": batch.wall_seconds,
            "workers": batch.workers,
            "cache_hits": batch.cache_hits,
            "cache_misses": batch.cache_misses,
            "resumed": batch.resumed,
            "counters": metrics.REGISTRY.counter_summary(batch.counters()),
            "op_seconds": timings["op_seconds"],
            "op_self_seconds": timings["op_self_seconds"],
            "op_calls": timings["op_calls"],
            "histograms": batch.merged_histograms(),
            "jobs": [dict(job_result_to_dict(r),
                          sparsity=stats.sparsity_ratio(r.counters))
                     for r in batch.results],
        }
        with open(args.json, "w") as fh:
            _json.dump(document, fh, indent=2)
        print(f"wrote {args.json}")
    # A degraded job still produced a sound answer: only jobs with *no*
    # answer (timeout/error) fail the batch.
    return 0 if batch.all_completed else 1


def cmd_report(args) -> int:
    """Render a run report from exported artifacts (no re-analysis)."""
    from .obs.report import render_report

    try:
        sys.stdout.write(render_report(args.run, trace_path=args.trace))
    except (OSError, ValueError) as exc:
        print(f"report: {exc}", file=sys.stderr)
        return 2
    return 0


def cmd_precondition(args) -> int:
    from .analysis.backward import necessary_precondition
    from .frontend.cfg import build_cfg
    from .frontend.parser import parse_program

    with open(args.file) as fh:
        source = fh.read()
    cfg = build_cfg(parse_program(source).procedures[0])
    pre = necessary_precondition(cfg, domain=args.domain,
                                 compile_transfer=not args.no_compile)
    print("necessary precondition of reaching the exit:")
    if pre.is_bottom():
        print("  false (the exit is unreachable)")
    else:
        text = pre.pretty(names=cfg.variables) if hasattr(pre, "pretty") else repr(pre)
        for line in text.splitlines():
            print(f"  {line}")
    return 0


def cmd_bench(args) -> int:
    from .bench import fig8_row
    from .workloads import get_benchmark

    bench = get_benchmark(args.name)
    row = fig8_row(bench, scale=args.scale)
    print(f"benchmark {bench.name} ({bench.analyzer}), scale={args.scale}")
    print(f"  apron octagon time: {row['apron_oct_s']:.3f}s")
    print(f"  opt octagon time:   {row['opt_oct_s']:.3f}s")
    print(f"  speedup:            {row['speedup']:.1f}x "
          f"(paper: {row['paper_speedup']:g}x)")
    print(f"  copies avoided:     {row['copies_avoided']}")
    print(f"  workspace hits:     {row['workspace_hits']}")
    print(f"  closure cache hits: {row['closure_cache_hits']}")
    print(f"  plans compiled:     {row['plans_compiled']}")
    print(f"  plan executions:    {row['plan_exec']}")
    print(f"  constraints batched:{row['constraints_batched']:>6}")
    print(f"  closures avoided:   {row['closures_avoided']}")
    return 0


def cmd_suite(_args) -> int:
    from .core import kernels
    from .service.cache import default_cache_root
    from .workloads import BENCHMARKS

    # The same resolved configuration the server reports on `status`,
    # so CLI and daemon can be checked for agreement.
    print(f"kernel backend: {kernels.resolve(None)}")
    print(f"cache dir: {default_cache_root()}")
    print(f"{'benchmark':14s} {'analyzer':8s} {'nmin':>5s} {'nmax':>5s} "
          f"{'#closures':>9s} {'oct speedup':>11s}")
    for bench in BENCHMARKS:
        p = bench.paper
        print(f"{bench.name:14s} {bench.analyzer:8s} {p.nmin:5d} {p.nmax:5d} "
              f"{p.closures:9d} {p.oct_speedup:10.1f}x")
    return 0


def cmd_serve(args) -> int:
    import os as _os

    from .serve import AnalysisServer

    server = AnalysisServer(args.socket,
                            port=args.port,
                            host=args.host,
                            workers=args.workers,
                            pool=args.pool,
                            deadline_ms=args.deadline_ms or None,
                            queue_depth=args.queue_depth,
                            idle_timeout=args.idle_timeout,
                            drain_timeout=args.drain_timeout,
                            worker_restarts=args.worker_restarts,
                            cache_dir=args.cache_dir,
                            use_cache=not args.no_cache,
                            lru_procedures=args.lru_procedures,
                            http_port=args.http_port,
                            http_host=args.http_host,
                            slow_request_ms=args.slow_request_ms or None)
    try:
        server.install_signal_handlers()
        address = server.start()
    except (RuntimeError, OSError) as exc:
        print(f"serve: {exc}", file=sys.stderr)
        return 2
    http = (f", http=http://{server.http_host}:{server.http_port}"
            if server.http_port is not None else "")
    print(f"repro serve: listening on {address} "
          f"(workers={server.workers}, pool={server.pool}, "
          f"pid={_os.getpid()}{http})", flush=True)
    server.serve_forever()
    ctx = _run_context(args)
    if ctx is not None and ctx.active:
        ctx.finish(counters=server._counter_snapshot(),
                   histograms={key: data.to_dict()
                               for key, data in server._latency.items()},
                   requests=server.requests,
                   errors=server.errors)
    return 0


def cmd_top(args) -> int:
    from .obs.console import run_top

    return run_top(args.url, interval=args.interval, once=args.once)


def _client_render_analyze(response, label: str) -> int:
    """Render one analyze response like the batch report; returns the
    number of unproven assertions (the exit-code contribution)."""
    result = response["result"]
    tiers = response["tiers"]
    print(f"== {label} ==")
    if result["outcome"] == "degraded":
        rungs = ", ".join(f"{proc}->{dom}"
                          for proc, dom in sorted(result["rungs"].items()))
        print(f"  degraded under budget ({rungs})")
    for proc in result["procedures"]:
        print(f"proc {proc['name']}:")
        if not proc["reachable"]:
            print("  exit: unreachable")
        else:
            for name, (lo, hi) in zip(proc["variables"], proc["box"]):
                print(f"  {name} in [{_fmt_opt(lo)}, {_fmt_opt(hi)}] at exit")
    failures = 0
    for _, cond_text, verified in result["checks"]:
        ok = "VERIFIED" if verified else "FAILED TO PROVE"
        failures += 0 if verified else 1
        print(f"  assert({cond_text}): {ok}")
    trace_id = response.get("trace_id")
    trace_note = f"  trace={trace_id}" if trace_id else ""
    print(f"  tiers: memory={tiers['memory']} disk={tiers['disk']} "
          f"computed={tiers['computed']}  "
          f"({response['request_seconds']:.4f}s){trace_note}")
    return failures


def cmd_client(args) -> int:
    import json as _json

    from .serve import ServeClient, ServeError

    try:
        client = ServeClient(args.socket, host=args.host, port=args.port,
                             retries=args.retries)
    except OSError as exc:
        print(f"client: cannot connect: {exc}", file=sys.stderr)
        return 2
    with client:
        try:
            if args.action == "analyze":
                if not args.files:
                    print("client: analyze needs FILE arguments",
                          file=sys.stderr)
                    return 2
                options = {"domain": args.domain,
                           "widening_delay": args.widening_delay,
                           "compile_transfer": not args.no_compile}
                if args.kernel_backend is not None:
                    options["kernel_backend"] = args.kernel_backend
                if args.sparse_threshold is not None:
                    options["sparse_threshold"] = args.sparse_threshold
                for key, value in _budget_kwargs(args).items():
                    if value is not None:
                        options[key] = value
                failures = 0
                for path in args.files:
                    with open(path) as fh:
                        source = fh.read()
                    response = client.analyze(
                        source, label=str(path), options=options,
                        deadline_ms=args.deadline_ms or None)
                    failures += _client_render_analyze(response, str(path))
                return 1 if failures else 0
            if args.action == "metrics":
                sys.stdout.write(client.metrics())
                return 0
            if args.action == "shutdown":
                response = client.shutdown()
                print(f"server pid {response['pid']} stopping")
                return 0
            response = client.request({"cmd": args.action})
            response.pop("ok", None)
            print(_json.dumps(response, indent=2, sort_keys=True))
            return 0
        except ServeError as exc:
            print(f"client: server error: {exc}", file=sys.stderr)
            return 1
        except OSError as exc:
            print(f"client: {exc}", file=sys.stderr)
            return 2


def cmd_demo(args) -> int:
    from .workloads.programs import fig2_program

    source = fig2_program() + "\nassert(y >= x - 1);\n"
    print("the paper's Figure 2 example:")
    print(source)
    result = Analyzer(domain=args.domain).analyze(source)
    for check in result.checks:
        ok = "VERIFIED" if check.verified else "FAILED TO PROVE"
        print(f"assert({check.cond_text}): {ok}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduction of 'Making Numerical Program Analysis "
                    "Fast' (PLDI 2015)")
    sub = parser.add_subparsers(dest="command", required=True)

    def add_robustness_flags(p) -> None:
        p.add_argument("--paranoid", action="store_true",
                       help="validate DBM integrity after every octagon "
                            "operation (slow; also REPRO_PARANOID=1)")
        p.add_argument("--time-budget", type=float, default=None,
                       metavar="SECONDS",
                       help="wall-clock budget per procedure attempt; on "
                            "exhaustion the analysis degrades to a cheaper "
                            "domain instead of failing")
        p.add_argument("--iteration-budget", type=int, default=None,
                       metavar="N", help="fixpoint-iteration budget per "
                                         "procedure attempt")
        p.add_argument("--cell-budget", type=int, default=None, metavar="N",
                       help="DBM-cell (closure traffic) budget per "
                            "procedure attempt")

    def add_kernel_flags(p) -> None:
        p.add_argument("--kernel-backend", default=None,
                       choices=["auto", "numpy", "numba"],
                       help="closure-kernel backend (default: "
                            "REPRO_KERNEL_BACKEND or 'auto'; 'auto' uses "
                            "numba when it imports and warm-compiles, else "
                            "the numpy reference)")

    def add_telemetry_flags(p) -> None:
        p.add_argument("--trace", default=None, metavar="OUT",
                       help="record spans and write Chrome trace-event "
                            "JSON (open in Perfetto / chrome://tracing)")
        p.add_argument("--log-json", dest="log_json", default=None,
                       metavar="OUT",
                       help="append structured events as JSON lines; the "
                            "input of 'python -m repro report'")
        p.add_argument("--metrics", default=None, metavar="OUT",
                       help="write the final counter/histogram snapshot "
                            "in Prometheus text format")
        p.add_argument("-v", "--verbose", action="count", default=0,
                       help="more diagnostics on stderr (-v info, -vv "
                            "debug)")
        p.add_argument("-q", "--quiet", action="store_true",
                       help="errors only on stderr")

    def _sparse_flags(p):
        p.add_argument("--sparse-threshold", type=float, default=None,
                       metavar="T",
                       help="sparsity ratio above which the sparse-octagon "
                            "domain keeps the graph representation "
                            "(0..1; default: domain policy)")

    p = sub.add_parser("analyze", help="analyze one or more source files")
    add_robustness_flags(p)
    add_kernel_flags(p)
    add_telemetry_flags(p)
    p.add_argument("files", nargs="+", metavar="FILE")
    p.add_argument("--domain", default="octagon",
                   choices=["octagon", "sparse-octagon", "apron", "interval",
                            "zone", "pentagon"])
    p.add_argument("--widening-delay", type=int, default=2)
    _sparse_flags(p)
    p.add_argument("--jobs", type=int, default=None,
                   help="worker processes when analyzing several files "
                        "(default: cpu count)")
    p.add_argument("--no-compile", action="store_true",
                   help="interpret edge actions instead of running "
                        "compiled transfer plans (ablation; results are "
                        "identical, only slower)")
    p.set_defaults(func=cmd_analyze)

    p = sub.add_parser(
        "batch",
        help="run many programs through the batch analysis service")
    p.add_argument("files", nargs="*", metavar="FILE")
    p.add_argument("--suite", action="store_true",
                   help="run the 17-benchmark suite instead of files")
    p.add_argument("--scale", default=None,
                   choices=["small", "paper", "large"],
                   help="suite scale (default: REPRO_BENCH_SCALE or paper)")
    p.add_argument("--domain", default="octagon",
                   choices=["octagon", "sparse-octagon", "apron", "interval",
                            "zone", "pentagon"])
    _sparse_flags(p)
    p.add_argument("--cross-validate", action="store_true",
                   help="run every program under both the dense and the "
                        "sparse octagon backend and fail on any verdict "
                        "or bound disagreement")
    p.add_argument("--jobs", type=int, default=None,
                   help="worker processes (default: cpu count; 1 = inline)")
    p.add_argument("--timeout", type=float, default=None,
                   help="per-job wall-clock timeout in seconds")
    p.add_argument("--no-cache", action="store_true",
                   help="skip the persistent result cache")
    p.add_argument("--cache-dir", default=None,
                   help="cache root (default: REPRO_CACHE_DIR or "
                        "~/.cache/repro)")
    p.add_argument("--json", default=None, metavar="OUT",
                   help="also write the batch report as JSON")
    p.add_argument("--no-compile", action="store_true",
                   help="interpret edge actions instead of running "
                        "compiled transfer plans (ablation; jobs get "
                        "distinct cache keys)")
    p.add_argument("--journal", default=None, metavar="PATH",
                   help="journal file recording finished jobs (default: "
                        "content-addressed path under the cache root)")
    p.add_argument("--no-journal", action="store_true",
                   help="do not journal finished jobs (batch will not be "
                        "resumable)")
    p.add_argument("--resume", action="store_true",
                   help="serve jobs already recorded in the journal by an "
                        "earlier (killed) run of this batch; only "
                        "unfinished jobs re-run")
    add_robustness_flags(p)
    add_kernel_flags(p)
    add_telemetry_flags(p)
    p.set_defaults(func=cmd_batch)

    p = sub.add_parser(
        "report",
        help="render a run report from --log-json / --trace artifacts")
    p.add_argument("run", metavar="RUN",
                   help="a --log-json artifact (JSONL event log)")
    p.add_argument("--trace", default=None, metavar="FILE",
                   help="trace file for the per-phase table (default: the "
                        "path recorded in the run's summary event)")
    p.set_defaults(func=cmd_report)

    p = sub.add_parser("precondition",
                       help="necessary precondition of reaching the exit")
    p.add_argument("file")
    p.add_argument("--domain", default="octagon", choices=["octagon", "apron"])
    p.add_argument("--no-compile", action="store_true",
                   help="interpret edge actions instead of running "
                        "compiled transfer plans (ablation)")
    p.set_defaults(func=cmd_precondition)

    p = sub.add_parser("bench", help="run one suite benchmark")
    p.add_argument("name")
    p.add_argument("--scale", default="paper",
                   choices=["small", "paper", "large"])
    p.set_defaults(func=cmd_bench)

    p = sub.add_parser("suite", help="list the benchmark suite")
    p.set_defaults(func=cmd_suite)

    def add_endpoint_flags(p) -> None:
        p.add_argument("--socket", default=None, metavar="PATH",
                       help="Unix socket path (default: serve.sock under "
                            "the cache root)")
        p.add_argument("--port", type=int, default=None,
                       help="serve/connect over TCP on this port instead "
                            "of a Unix socket (0 = ephemeral)")
        p.add_argument("--host", default="127.0.0.1",
                       help="TCP host (with --port; default 127.0.0.1)")

    p = sub.add_parser(
        "serve",
        help="run the long-lived analysis server (incremental "
             "per-procedure re-analysis)")
    add_endpoint_flags(p)
    p.add_argument("--workers", type=int, default=4,
                   help="max concurrently executing requests (default 4)")
    p.add_argument("--pool", type=int, default=2,
                   help="supervised worker processes for the compute "
                        "tier; 0 = run fixpoints in the daemon process "
                        "(default 2)")
    p.add_argument("--deadline-ms", type=float, default=0,
                   help="server-default analyze deadline in milliseconds; "
                        "0 = none (clients can still send deadline_ms)")
    p.add_argument("--queue-depth", type=int, default=16,
                   help="analyze requests allowed to queue beyond "
                        "--workers before the server sheds load with an "
                        "'overloaded' response (default 16)")
    p.add_argument("--idle-timeout", type=float, default=300.0,
                   help="per-frame idle read timeout in seconds before a "
                        "stalled client is disconnected (default 300)")
    p.add_argument("--drain-timeout", type=float, default=30.0,
                   help="max seconds to wait for in-flight requests on "
                        "shutdown (default 30)")
    p.add_argument("--worker-restarts", type=int, default=5,
                   help="consecutive pool failures before the circuit "
                        "breaker falls back to in-process execution "
                        "(default 5)")
    p.add_argument("--cache-dir", default=None,
                   help="disk-cache root (default: REPRO_CACHE_DIR or "
                        "~/.cache/repro)")
    p.add_argument("--no-cache", action="store_true",
                   help="no disk tier: memory LRU only")
    p.add_argument("--lru-procedures", type=int, default=1024,
                   help="in-memory LRU capacity in procedure results "
                        "(default 1024)")
    p.add_argument("--http-port", type=int, default=None, metavar="PORT",
                   help="also serve the read-only HTTP observability "
                        "facade (/metrics /healthz /statusz /requestz) on "
                        "this port (0 = ephemeral; default: off)")
    p.add_argument("--http-host", default="127.0.0.1",
                   help="bind host for --http-port (default 127.0.0.1)")
    p.add_argument("--slow-request-ms", type=float, default=0,
                   metavar="MS",
                   help="log a structured serve_slow_request event (with "
                        "per-request counter deltas and trace id) for any "
                        "request at or over this wall time; 0 = off")
    add_telemetry_flags(p)
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "top",
        help="live ops console over a daemon's HTTP facade")
    p.add_argument("url", metavar="URL",
                   help="facade base URL, e.g. http://127.0.0.1:9100")
    p.add_argument("--interval", type=float, default=2.0,
                   help="poll interval in seconds (default 2)")
    p.add_argument("--once", action="store_true",
                   help="print one frame without ANSI control codes and "
                        "exit (nonzero if the daemon is unreachable)")
    p.set_defaults(func=cmd_top)

    p = sub.add_parser(
        "client",
        help="talk to a running analysis server")
    p.add_argument("action",
                   choices=["analyze", "ping", "status", "stats",
                            "metrics", "shutdown"])
    p.add_argument("files", nargs="*", metavar="FILE",
                   help="source files (analyze action)")
    add_endpoint_flags(p)
    p.add_argument("--domain", default="octagon",
                   choices=["octagon", "sparse-octagon", "apron", "interval",
                            "zone", "pentagon"])
    p.add_argument("--widening-delay", type=int, default=2)
    _sparse_flags(p)
    p.add_argument("--no-compile", action="store_true",
                   help="interpret edge actions instead of compiled "
                        "transfer plans")
    p.add_argument("--deadline-ms", type=float, default=0,
                   help="per-request deadline in milliseconds "
                        "(analyze action; 0 = server default)")
    p.add_argument("--retries", type=int, default=2,
                   help="client retries on transport faults and "
                        "'overloaded' sheds (default 2)")
    add_robustness_flags(p)
    add_kernel_flags(p)
    p.set_defaults(func=cmd_client)

    p = sub.add_parser("demo", help="analyse the paper's Figure 2 example")
    p.add_argument("--domain", default="octagon",
                   choices=["octagon", "sparse-octagon", "apron", "interval",
                            "zone", "pentagon"])
    p.set_defaults(func=cmd_demo)

    args = parser.parse_args(argv)
    # Subcommands with telemetry flags run under a RunContext: it sets
    # the stderr verbosity, arms the requested artifacts, and writes
    # them (trace JSON, event log's run_summary, Prometheus file) on
    # the way out.  `report` has --trace too but is a pure reader, so
    # the presence of --log-json is the marker.
    if hasattr(args, "log_json"):
        from .obs.report import RunContext

        ctx = RunContext(args.command, trace_path=args.trace,
                         log_path=args.log_json, metrics_path=args.metrics,
                         verbose=args.verbose, quiet=args.quiet)
        args.run_context = ctx
        with ctx:
            return args.func(args)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
