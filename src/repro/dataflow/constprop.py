"""Forward constant propagation over the flat constant lattice.

Per variable: ``UNDEF`` (bottom, no path), a concrete constant, or
``NAC`` (not a constant).  States are immutable dicts from variable to
constant; absent variables are UNDEF, the sentinel :data:`NAC` marks
conflicts.  This is the third "auxiliary analyzer component" used to
model the non-octagon fraction of the paper's end-to-end analyses.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Union

from ..frontend.ast_nodes import (
    AExpr, Assign, AssignInterval, Assume, BinOp, Havoc, Neg, Num, Var,
)
from ..frontend.cfg import CFG, CfgEdge
from .framework import DataflowProblem, solve_dataflow


class _NotAConstant:
    __slots__ = ()

    def __repr__(self) -> str:
        return "NAC"


NAC = _NotAConstant()

Value = Union[float, _NotAConstant]
State = Optional[Mapping[str, Value]]  # None = unreachable (bottom)


class ConstantPropagation:
    """Holder for the per-node results with convenience queries."""

    def __init__(self, values: Dict[int, State]):
        self.values = values

    def constant_at(self, node: int, var: str) -> Optional[float]:
        state = self.values.get(node)
        if state is None:
            return None
        value = state.get(var)
        return value if isinstance(value, float) else None


def _eval(expr: AExpr, state: Mapping[str, Value]) -> Value:
    if isinstance(expr, Num):
        return float(expr.value)
    if isinstance(expr, Var):
        return state.get(expr.name, NAC)
    if isinstance(expr, Neg):
        inner = _eval(expr.operand, state)
        return -inner if isinstance(inner, float) else NAC
    if isinstance(expr, BinOp):
        left, right = _eval(expr.left, state), _eval(expr.right, state)
        if isinstance(left, float) and isinstance(right, float):
            if expr.op == "+":
                return left + right
            if expr.op == "-":
                return left - right
            if expr.op == "*":
                return left * right
        # Algebraic shortcut: anything times the constant 0 is 0.
        if expr.op == "*" and (left == 0.0 or right == 0.0):
            return 0.0
        return NAC
    raise TypeError(f"cannot evaluate {expr!r}")


def _join(a: State, b: State) -> State:
    if a is None:
        return b
    if b is None:
        return a
    out: Dict[str, Value] = {}
    for var in set(a) | set(b):
        va, vb = a.get(var), b.get(var)
        if va is None:
            out[var] = vb  # undefined on one path: keep the other
        elif vb is None:
            out[var] = va
        elif isinstance(va, float) and isinstance(vb, float) and va == vb:
            out[var] = va
        else:
            out[var] = NAC
    return _freeze(out)


def _freeze(d: Dict[str, Value]) -> Mapping[str, Value]:
    # Hashable, equality-comparable snapshot.
    return dict(sorted(d.items(), key=lambda kv: kv[0]))


def constant_propagation(cfg: CFG) -> ConstantPropagation:
    """Run constant propagation; returns per-node variable valuations."""

    def transfer(state: State, edge: CfgEdge) -> State:
        if state is None:
            return None
        action = edge.action
        if action is None or isinstance(action, Assume):
            return state
        out = dict(state)
        if isinstance(action, Assign):
            out[action.target] = _eval(action.expr, state)
        elif isinstance(action, AssignInterval):
            out[action.target] = (float(action.lo) if action.lo == action.hi else NAC)
        elif isinstance(action, Havoc):
            out[action.target] = NAC
        return _freeze(out)

    problem = DataflowProblem(
        direction="forward",
        init=_freeze({}),
        bottom=None,
        join=_join,
        transfer=transfer,
    )
    return ConstantPropagation(solve_dataflow(cfg, problem))
