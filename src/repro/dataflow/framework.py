"""A generic iterative dataflow framework over the mini-language CFG.

Problems are described by a :class:`DataflowProblem`: direction,
lattice bottom, a join and per-edge transfer.  The solver is the
standard round-robin worklist over frozen sets / tuples, sufficient for
the bit-vector style problems shipped in this package.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Generic, List, TypeVar

from ..frontend.cfg import CFG, CfgEdge

T = TypeVar("T")


@dataclass
class DataflowProblem(Generic[T]):
    """A monotone dataflow problem."""

    direction: str  # 'forward' | 'backward'
    init: T  # value at the boundary node
    bottom: T  # identity of join
    join: Callable[[T, T], T]
    transfer: Callable[[T, CfgEdge], T]

    def __post_init__(self):
        if self.direction not in ("forward", "backward"):
            raise ValueError("direction must be 'forward' or 'backward'")


def solve_dataflow(cfg: CFG, problem: DataflowProblem[T]) -> Dict[int, T]:
    """Iterate to the least fixpoint; returns the value at each node."""
    forward = problem.direction == "forward"
    boundary = cfg.entry if forward else cfg.exit
    values: Dict[int, T] = {node: problem.bottom for node in range(cfg.n_nodes)}
    values[boundary] = problem.init

    if forward:
        in_edges: Dict[int, List[CfgEdge]] = cfg.predecessors
    else:
        in_edges = cfg.successors

    worklist = list(range(cfg.n_nodes))
    pending = set(worklist)
    while worklist:
        node = worklist.pop()
        pending.discard(node)
        if node == boundary:
            continue
        acc = problem.bottom
        for edge in in_edges.get(node, []):
            src = edge.src if forward else edge.dst
            acc = problem.join(acc, problem.transfer(values[src], edge))
        if acc != values[node]:
            values[node] = acc
            neighbours = (cfg.successors if forward else cfg.predecessors).get(node, [])
            for edge in neighbours:
                nxt = edge.dst if forward else edge.src
                if nxt not in pending:
                    pending.add(nxt)
                    worklist.append(nxt)
    return values
