"""Backward liveness analysis: which variables may be read later."""

from __future__ import annotations

from typing import Dict, FrozenSet, Tuple

from ..frontend.ast_nodes import (
    AExpr, Assign, AssignInterval, Assume, BExpr, BinOp, BoolLit, BoolOp,
    Cmp, Havoc, Neg, Not, Num, Var,
)
from ..frontend.cfg import CFG, CfgEdge
from .framework import DataflowProblem, solve_dataflow


def vars_of_aexpr(expr: AExpr) -> FrozenSet[str]:
    """Variables read by an arithmetic expression."""
    out = set()
    stack = [expr]
    while stack:
        e = stack.pop()
        if isinstance(e, Var):
            out.add(e.name)
        elif isinstance(e, BinOp):
            stack.extend((e.left, e.right))
        elif isinstance(e, Neg):
            stack.append(e.operand)
        elif not isinstance(e, Num):
            raise TypeError(f"not an arithmetic expression: {e!r}")
    return frozenset(out)


def vars_of_bexpr(cond: BExpr) -> FrozenSet[str]:
    """Variables read by a boolean expression."""
    out: FrozenSet[str] = frozenset()
    stack = [cond]
    while stack:
        b = stack.pop()
        if isinstance(b, Cmp):
            out |= vars_of_aexpr(b.left) | vars_of_aexpr(b.right)
        elif isinstance(b, BoolOp):
            stack.extend((b.left, b.right))
        elif isinstance(b, Not):
            stack.append(b.operand)
        elif not isinstance(b, BoolLit):
            raise TypeError(f"not a boolean expression: {b!r}")
    return out


def use_def(edge: CfgEdge) -> Tuple[FrozenSet[str], FrozenSet[str]]:
    """(used, defined) variable sets of one edge action."""
    action = edge.action
    if action is None:
        return frozenset(), frozenset()
    if isinstance(action, Assign):
        return vars_of_aexpr(action.expr), frozenset({action.target})
    if isinstance(action, (AssignInterval, Havoc)):
        return frozenset(), frozenset({action.target})
    if isinstance(action, Assume):
        return vars_of_bexpr(action.cond), frozenset()
    raise TypeError(f"unknown action {action!r}")


def liveness(cfg: CFG) -> Dict[int, FrozenSet[str]]:
    """Live variables at each node (backward may-analysis)."""

    def transfer(live_out: FrozenSet[str], edge: CfgEdge) -> FrozenSet[str]:
        used, defined = use_def(edge)
        return (live_out - defined) | used

    problem = DataflowProblem(
        direction="backward",
        init=frozenset(),
        bottom=frozenset(),
        join=lambda a, b: a | b,
        transfer=transfer,
    )
    return solve_dataflow(cfg, problem)
