"""Forward reaching-definitions analysis.

A *definition* is an edge that writes a variable (assignment, interval
assignment or havoc), identified by its index in ``cfg.edges``.  The
analysis computes, per node, the set of definitions that may reach it.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Optional, Tuple

from ..frontend.ast_nodes import Assign, AssignInterval, Havoc
from ..frontend.cfg import CFG, CfgEdge
from .framework import DataflowProblem, solve_dataflow


def defined_var(edge: CfgEdge) -> Optional[str]:
    """The variable written by an edge, if any."""
    action = edge.action
    if isinstance(action, (Assign, AssignInterval, Havoc)):
        return action.target
    return None


def reaching_definitions(cfg: CFG) -> Dict[int, FrozenSet[Tuple[int, str]]]:
    """Definitions reaching each node, as ``(edge_index, variable)``."""
    edge_ids = {id(edge): i for i, edge in enumerate(cfg.edges)}

    def transfer(defs: FrozenSet[Tuple[int, str]], edge: CfgEdge):
        var = defined_var(edge)
        if var is None:
            return defs
        killed = frozenset(d for d in defs if d[1] != var)
        return killed | {(edge_ids[id(edge)], var)}

    problem = DataflowProblem(
        direction="forward",
        init=frozenset(),
        bottom=frozenset(),
        join=lambda a, b: a | b,
        transfer=transfer,
    )
    return solve_dataflow(cfg, problem)
