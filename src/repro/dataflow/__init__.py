"""Classic dataflow analyses over the mini-language CFG.

These play the role of the "other analyzer components" in the paper's
Table 3: real (non-octagon) analysis work -- liveness, reaching
definitions and constant propagation -- that a host analyzer performs
alongside the numerical domain, bounding the end-to-end speedup.
"""

from .constprop import ConstantPropagation, constant_propagation
from .framework import DataflowProblem, solve_dataflow
from .liveness import liveness
from .reaching import reaching_definitions

__all__ = [
    "ConstantPropagation",
    "DataflowProblem",
    "constant_propagation",
    "liveness",
    "reaching_definitions",
    "solve_dataflow",
]
