"""Run identity, artifact wiring, and the ``repro report`` renderer.

Every CLI invocation that asks for telemetry gets a **run id** and a
:class:`RunContext` that turns flags into artifacts:

* ``--trace out.json``  -> span buffer enabled, exported as Chrome
  trace-event JSON on exit;
* ``--log-json run.jsonl`` -> the structured event log, ending with a
  ``run_summary`` event that snapshots operator timings, counters and
  histograms;
* ``--metrics out.prom`` -> Prometheus text exposition of the final
  counter/histogram snapshot.

``python -m repro report run.jsonl [--trace out.json]`` then renders
the per-operator split, counter table, and (when a trace is available)
the per-phase breakdown **from the artifacts alone** -- no re-analysis,
which is the property that makes reports shippable from a batch box.
"""

from __future__ import annotations

import os
import time
from typing import Dict, List, Optional, Sequence

from . import events, metrics, trace


def new_run_id(command: str = "run") -> str:
    """A human-sortable run id: command, wall-clock stamp, pid."""
    stamp = time.strftime("%Y%m%d-%H%M%S")
    return f"{command}-{stamp}-{os.getpid()}"


class RunContext:
    """Arms the requested telemetry for one CLI run and writes the
    artifacts on exit.  With no flags set it does (almost) nothing."""

    def __init__(self, command: str, *,
                 trace_path: Optional[str] = None,
                 log_path: Optional[str] = None,
                 metrics_path: Optional[str] = None,
                 verbose: int = 0, quiet: bool = False,
                 run_id: Optional[str] = None) -> None:
        self.command = command
        self.trace_path = trace_path
        self.log_path = log_path
        self.metrics_path = metrics_path
        self.run_id = run_id or new_run_id(command)
        self.verbose = verbose
        self.quiet = quiet
        self.summary: Dict[str, object] = {}
        self._start = 0.0
        self._metrics_prev = False

    @property
    def active(self) -> bool:
        """True when any telemetry artifact was requested."""
        return bool(self.trace_path or self.log_path or self.metrics_path)

    def __enter__(self) -> "RunContext":
        events.configure(
            stderr_level=events.verbosity_level(self.verbose, self.quiet),
            json_path=self.log_path, run_id=self.run_id)
        if self.trace_path:
            trace.reset()
            trace.enable()
        if self.log_path or self.metrics_path:
            self._metrics_prev = metrics.set_enabled(True)
        self._start = time.perf_counter()
        if self.active:
            events.info("run_start", command=self.command,
                        trace=self.trace_path, metrics=self.metrics_path)
        return self

    def finish(self, collector=None, *, counters: Optional[Dict] = None,
               histograms: Optional[Dict] = None, **extra) -> None:
        """Record the final measurement snapshot for the summary event.

        Accepts either a :class:`~repro.obs.collect.StatsCollector` or
        explicit pre-merged dicts (the batch path, where per-job results
        were already rolled up).
        """
        if collector is not None:
            self.summary.setdefault("op_seconds", dict(collector.op_seconds))
            self.summary.setdefault("op_self_seconds",
                                    dict(collector.op_self_seconds))
            self.summary.setdefault("op_calls", dict(collector.op_calls))
            self.summary.setdefault("counters", collector.counter_summary())
            self.summary.setdefault("histograms",
                                    collector.histograms_export())
        if counters is not None:
            self.summary["counters"] = dict(counters)
        if histograms is not None:
            self.summary["histograms"] = dict(histograms)
        self.summary.update(extra)

    def __exit__(self, exc_type, exc, tb) -> None:
        wall = time.perf_counter() - self._start
        try:
            if self.active and exc_type is None:
                self.summary.setdefault("command", self.command)
                self.summary["wall_seconds"] = wall
                if self.trace_path:
                    self.summary.setdefault("trace",
                                            os.path.abspath(self.trace_path))
                # Debug level: the snapshot is for the JSONL artifact
                # (where every event lands regardless of level), not
                # for scrolling past on stderr at -v.
                events.emit(events.DEBUG, "run_summary", **self.summary)
            if self.trace_path:
                written = trace.export(self.trace_path,
                                       process_name=f"repro {self.command}")
                trace.disable()
                events.info("trace_written", path=self.trace_path,
                            spans=written)
            if self.metrics_path:
                hist_dicts = self.summary.get("histograms") or {}
                histograms = metrics.merge_histogram_dicts([hist_dicts])
                text = metrics.prometheus_text(
                    self.summary.get("counters") or {}, histograms)
                with open(self.metrics_path, "w", encoding="utf-8") as fh:
                    fh.write(text)
                events.info("metrics_written", path=self.metrics_path)
        finally:
            if self.log_path or self.metrics_path:
                metrics.set_enabled(self._metrics_prev)
            events.close()


# ----------------------------------------------------------------------
# report rendering
# ----------------------------------------------------------------------
def _table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    cells = [[str(h) for h in headers]] + [[str(c) for c in row]
                                           for row in rows]
    widths = [max(len(row[i]) for row in cells)
              for i in range(len(headers))]
    lines = []
    for r, row in enumerate(cells):
        lines.append("  ".join(
            row[i].ljust(widths[i]) if i == 0 else row[i].rjust(widths[i])
            for i in range(len(row))).rstrip())
        if r == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def _fmt_s(seconds: float) -> str:
    return f"{seconds:.6f}"


def operator_rows(summary: Dict) -> List[List[object]]:
    op_seconds = summary.get("op_seconds") or {}
    op_self = summary.get("op_self_seconds") or {}
    op_calls = summary.get("op_calls") or {}
    total_self = sum(op_self.values()) or 1.0
    rows = []
    for name in sorted(op_seconds, key=lambda n: -op_self.get(n, 0.0)):
        self_s = op_self.get(name, op_seconds[name])
        rows.append([name, op_calls.get(name, 0), _fmt_s(op_seconds[name]),
                     _fmt_s(self_s), f"{100.0 * self_s / total_self:.1f}%"])
    return rows


def phase_rows(trace_events: Sequence[dict]) -> List[List[object]]:
    """Aggregate span durations by name from Chrome trace events."""
    totals: Dict[str, float] = {}
    counts: Dict[str, int] = {}
    for event in trace_events:
        if event.get("ph") != "X":
            continue
        name = event["name"]
        totals[name] = totals.get(name, 0.0) + float(event.get("dur", 0.0))
        counts[name] = counts.get(name, 0) + 1
    return [[name, counts[name], f"{totals[name] / 1e3:.3f}"]
            for name in sorted(totals, key=lambda n: -totals[n])]


def histogram_rows(histograms: Dict[str, Dict]) -> List[List[object]]:
    rows = []
    for key in sorted(histograms):
        raw = histograms[key]
        total = int(raw.get("total", 0))
        mean = float(raw.get("sum", 0.0)) / total if total else 0.0
        rows.append([key.replace("|", " "), total, f"{mean:.6g}"])
    return rows


#: Worker-lifecycle and per-request events that reconstruct pool
#: history from a ``--log-json`` artifact of a serve run.
_SERVE_EVENTS = (
    "serve_pool_started", "serve_pool_stopped", "serve_worker_died",
    "serve_worker_killed", "serve_worker_respawned", "serve_breaker_open",
    "serve_breaker_closed", "serve_job_retry", "serve_slow_request",
)


def server_section(records: Sequence[Dict],
                   summary: Dict) -> List[str]:
    """Render the server portion of a report, if the artifacts carry
    one: serve counters, per-command latency percentiles, and the pool
    lifecycle history (deaths, kills, respawns, breaker transitions)
    reconstructed from the structured event log."""
    counters = summary.get("counters") or {}
    histograms = summary.get("histograms") or {}
    latency = {key: raw for key, raw in histograms.items()
               if str(raw.get("name")) == "serve_request_seconds"}
    lifecycle = [r for r in records if r.get("event") in _SERVE_EVENTS]
    if not (counters.get("serve_requests") or latency or lifecycle):
        return []
    lines: List[str] = ["Server:"]
    facts = [[key, counters[key]] for key in (
        "serve_requests", "serve_errors", "serve_connections",
        "serve_pool_jobs", "serve_pool_inline", "worker_restarts",
        "worker_crashes", "worker_hangs", "serve_breaker_opens")
        if counters.get(key)]
    if facts:
        lines.append(_table(["counter", "value"], facts))
    if latency:
        rows = []
        for key in sorted(latency):
            data = metrics.HistogramData.from_dict(latency[key])
            p50, p95 = data.quantile(0.5), data.quantile(0.95)
            mean = data.sum / data.total if data.total else 0.0
            rows.append([data.label_value or "", data.total,
                         f"{mean * 1e3:.3f}",
                         f"{(p50 or 0.0) * 1e3:.3f}",
                         f"{(p95 or 0.0) * 1e3:.3f}"])
        lines.append("")
        lines.append("Per-command request latency:")
        lines.append(_table(
            ["command", "count", "mean ms", "p50 ms", "p95 ms"], rows))
    if lifecycle:
        lines.append("")
        lines.append(f"Pool lifecycle ({len(lifecycle)} event(s)):")
        for record in lifecycle[:30]:
            fields = {k: v for k, v in record.items()
                      if k not in ("ts", "level", "event", "run")
                      and v is not None}
            parts = []
            for k, v in sorted(fields.items()):
                text = str(v)
                if len(text) > 60:  # e.g. slow-request counter deltas
                    text = text[:57] + "..."
                parts.append(f"{k}={text}")
            lines.append(f"  {record.get('event')} " + " ".join(parts))
        if len(lifecycle) > 30:
            lines.append(f"  ... {len(lifecycle) - 30} more")
    return lines


def render_report(log_path: str,
                  trace_path: Optional[str] = None) -> str:
    """Render a human-readable run report from exported artifacts."""
    records = events.read_jsonl(log_path)
    summaries = [r for r in records if r.get("event") == "run_summary"]
    if not summaries:
        raise ValueError(
            f"{log_path}: no run_summary event -- was the run aborted, or "
            f"is this not a --log-json artifact?")
    summary = summaries[-1]
    out: List[str] = []
    out.append(f"{'run:':<14}{summary.get('run')}")
    out.append(f"{'command:':<14}{summary.get('command')}")
    if summary.get("wall_seconds") is not None:
        out.append(f"{'wall:':<14}{float(summary['wall_seconds']):.3f} s")
    for key in ("jobs", "ok", "degraded", "failed", "cache_hits",
                "cache_misses"):
        if summary.get(key) is not None:
            out.append(f"{key + ':':<14}{summary[key]}")

    rows = operator_rows(summary)
    if rows:
        out.append("")
        out.append("Per-operator time (self time excludes nested operators):")
        out.append(_table(
            ["operator", "calls", "total s", "self s", "self %"], rows))

    trace_file = trace_path or summary.get("trace")
    if trace_file and os.path.exists(str(trace_file)):
        spans = trace.load(str(trace_file))
        rows = phase_rows(spans)
        if rows:
            out.append("")
            out.append(f"Per-phase spans (from {trace_file}):")
            out.append(_table(["phase", "spans", "total ms"], rows))

    counters = summary.get("counters") or {}
    nonzero = {k: v for k, v in counters.items() if v}
    if nonzero:
        out.append("")
        out.append("Counters (zero-valued omitted):")
        out.append(_table(["counter", "value"],
                          [[k, nonzero[k]] for k in sorted(nonzero)]))

    histograms = summary.get("histograms") or {}
    rows = histogram_rows(histograms)
    if rows:
        out.append("")
        out.append("Distributions:")
        out.append(_table(["histogram", "count", "mean"], rows))

    server_lines = server_section(records, summary)
    if server_lines:
        out.append("")
        out.extend(server_lines)

    warn_events = [r for r in records
                   if r.get("level") in ("warning", "error")
                   and r.get("event") not in ("run_summary",) + _SERVE_EVENTS]
    if warn_events:
        out.append("")
        out.append(f"Diagnostics ({len(warn_events)} warning/error events):")
        for r in warn_events[:20]:
            fields = {k: v for k, v in r.items()
                      if k not in ("ts", "level", "event", "run")}
            out.append(f"  [{r.get('level')}] {r.get('event')} "
                       + " ".join(f"{k}={v}" for k, v in sorted(
                           fields.items())))
    return "\n".join(out) + "\n"


__all__ = [
    "RunContext",
    "histogram_rows",
    "new_run_id",
    "operator_rows",
    "phase_rows",
    "render_report",
    "server_section",
]
