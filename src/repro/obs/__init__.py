"""Telemetry subsystem: span tracing, metrics registry, event logging.

Four cooperating modules, importable with no telemetry cost until a
run opts in:

* :mod:`repro.obs.trace`   -- nested spans, Chrome trace-event export,
  cross-process re-parenting for batch workers.
* :mod:`repro.obs.metrics` -- the metric registry (counters declared by
  their owning modules, histograms, derived counters) and the
  Prometheus / JSONL exporters.
* :mod:`repro.obs.collect` -- scoped :class:`StatsCollector` capture of
  operator timings (with self-time attribution), closure records and
  counters; the engine behind the ``repro.core.stats`` shim.
* :mod:`repro.obs.events`  -- structured diagnostics (stderr + JSONL
  sinks) replacing ad-hoc prints and warnings.
* :mod:`repro.obs.report`  -- run ids, the :class:`RunContext` artifact
  wiring, and the ``python -m repro report`` renderer.
"""

from . import collect, events, metrics, report, trace  # noqa: F401

__all__ = ["collect", "events", "metrics", "report", "trace"]
