"""Live ops console for the analysis daemon: ``python -m repro top``.

A deliberately small terminal view over the HTTP observability facade
(:mod:`repro.serve.httpd`): poll ``GET /statusz`` on an interval and
redraw one screen of the numbers an operator reaches for first --
worker states, in-flight vs capacity, cache-tier hit rates, per-command
p50/p95, breaker state.  Stdlib only (``urllib``), read-only, and
degrades to a plain one-shot dump with ``--once`` (no ANSI), which is
also what the tests and CI drive.
"""

from __future__ import annotations

import json
import sys
import time
import urllib.error
import urllib.request
from typing import List, Optional

#: ANSI: clear screen + home.  Emitted only in the live loop.
_CLEAR = "\x1b[2J\x1b[H"


def fetch_status(url: str, timeout: float = 5.0) -> dict:
    """GET ``<url>/statusz`` and parse the JSON document."""
    target = url.rstrip("/") + "/statusz"
    with urllib.request.urlopen(target, timeout=timeout) as response:
        return json.loads(response.read().decode("utf-8"))


def _rate(part: int, whole: int) -> str:
    return f"{100.0 * part / whole:5.1f}%" if whole else "    --"


def _ms(value: Optional[float]) -> str:
    return f"{value:9.2f}" if value is not None else "       --"


def render_status(doc: dict) -> str:
    """One screenful of ops state from a ``/statusz`` document."""
    lines: List[str] = []
    uptime = float(doc.get("uptime_seconds", 0.0))
    breaker = doc.get("breaker_open")
    lines.append(
        f"repro serve  pid={doc.get('pid')}  up={uptime:,.0f}s  "
        f"{doc.get('address', '')}")
    pool = doc.get("pool", 0)
    pool_state = (f"pool={doc.get('pool_alive', '?')}/{pool} "
                  f"breaker={'OPEN' if breaker else 'closed'}"
                  if pool else "pool=inline")
    lines.append(
        f"inflight={doc.get('inflight', 0)}/"
        f"{doc.get('workers', 0)}+{doc.get('queue_depth', 0)}  "
        f"{pool_state}  "
        f"requests={doc.get('requests', 0)}  "
        f"lru={doc.get('lru_entries', 0)} entries "
        f"({doc.get('lru_bytes', 0):,} B)")

    counters = doc.get("counters") or {}
    memory = int(counters.get("serve_procs_memory", 0))
    disk = int(counters.get("serve_procs_disk", 0))
    computed = int(counters.get("serve_procs_computed", 0))
    procs = memory + disk + computed
    lines.append(
        f"tiers: memory={memory} ({_rate(memory, procs).strip()})  "
        f"disk={disk} ({_rate(disk, procs).strip()})  "
        f"computed={computed} ({_rate(computed, procs).strip()})  "
        f"restarts={counters.get('worker_restarts', 0)}")

    red = doc.get("red") or {}
    commands = red.get("commands") or {}
    if commands:
        lines.append("")
        lines.append(f"{'command':<10} {'count':>8} {'mean ms':>9} "
                     f"{'p50 ms':>9} {'p95 ms':>9}")
        for cmd, row in commands.items():
            lines.append(f"{cmd:<10} {row.get('count', 0):>8} "
                         f"{_ms(row.get('mean_ms'))} "
                         f"{_ms(row.get('p50_ms'))} "
                         f"{_ms(row.get('p95_ms'))}")
        errors = red.get("errors_by_cause") or {}
        if errors:
            causes = ", ".join(f"{cause}={count}"
                               for cause, count in errors.items())
            lines.append(f"errors: {red.get('errors', 0)} ({causes})")

    table = doc.get("worker_table") or []
    if table:
        lines.append("")
        lines.append(f"{'slot':>4} {'pid':>8} {'state':<6} {'busy s':>8} "
                     f"{'fails':>5}  label")
        for row in table:
            lines.append(
                f"{row.get('slot', '?'):>4} {row.get('pid') or '-':>8} "
                f"{str(row.get('state', '?')):<6} "
                f"{row.get('busy_seconds', 0.0):>8.2f} "
                f"{row.get('fails', 0):>5}  {row.get('label') or ''}")
    return "\n".join(lines)


def run_top(url: str, *, interval: float = 2.0, once: bool = False,
            iterations: Optional[int] = None, out=None) -> int:
    """Poll the facade and render until interrupted; returns exit code.

    ``once`` renders a single frame without ANSI control codes;
    ``iterations`` bounds the live loop (tests).  Connection failures
    in the live loop are drawn and retried -- a daemon restart must not
    kill the console watching it.
    """
    out = out if out is not None else sys.stdout
    frames = 0
    while True:
        try:
            frame = render_status(fetch_status(url))
            failed = False
        except (urllib.error.URLError, OSError, ValueError) as exc:
            frame = f"repro top: cannot reach {url}: {exc}"
            failed = True
        if once:
            print(frame, file=out)
            return 1 if failed else 0
        print(f"{_CLEAR}{frame}\n\n(poll {interval:.0f}s; ctrl-c quits)",
              file=out, flush=True)
        frames += 1
        if iterations is not None and frames >= iterations:
            return 1 if failed else 0
        try:
            time.sleep(interval)
        except KeyboardInterrupt:
            return 0


__all__ = ["fetch_status", "render_status", "run_top"]
