"""Structured event logging: one logger, several sinks.

Replaces the ad-hoc ``print``/``warnings.warn`` diagnostics that used
to live in ``service/cache.py``, ``service/scheduler.py`` and the CLI.
An event is a name plus key=value fields (plus a level and timestamp);
it is rendered twice:

* **stderr** -- human-readable one-liners, filtered by the CLI
  verbosity (``--quiet`` = errors only, default = warnings, ``-v`` =
  info, ``-vv`` = debug).  Result tables and summary lines the test
  suite and CI grep for stay on *stdout*, untouched by this module.
* **JSONL file** (``--log-json run.jsonl``) -- every event regardless
  of verbosity, one JSON object per line, machine-readable; this file
  is the artifact ``python -m repro report`` renders.

Tests assert on diagnostics with :func:`capture` instead of
``warnings.catch_warnings``.
"""

from __future__ import annotations

import json
import sys
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, TextIO

DEBUG = 10
INFO = 20
WARNING = 30
ERROR = 40

_LEVEL_NAMES = {DEBUG: "debug", INFO: "info", WARNING: "warning",
                ERROR: "error"}


@dataclass
class Event:
    """One structured diagnostic event."""

    level: int
    name: str
    fields: Dict[str, object] = field(default_factory=dict)
    ts: float = 0.0

    @property
    def level_name(self) -> str:
        return _LEVEL_NAMES.get(self.level, str(self.level))

    def render(self) -> str:
        parts = [f"repro: {self.level_name}: {self.name}"]
        for key, value in self.fields.items():
            parts.append(f"{key}={value}")
        return " ".join(parts)

    def to_json(self, run_id: Optional[str]) -> str:
        record = {"ts": self.ts, "level": self.level_name,
                  "event": self.name, "run": run_id}
        record.update(self.fields)
        return json.dumps(record, sort_keys=True, default=str)


# Module state: the stderr threshold, the JSONL sink, and any active
# test captures (captures see every event, like the JSONL sink).
_STDERR_LEVEL = WARNING
_JSON_FH: Optional[TextIO] = None
_RUN_ID: Optional[str] = None
_CAPTURES: List[List[Event]] = []


def verbosity_level(verbose: int = 0, quiet: bool = False) -> int:
    """Map CLI flags to a stderr threshold (``--quiet`` wins)."""
    if quiet:
        return ERROR
    if verbose >= 2:
        return DEBUG
    if verbose == 1:
        return INFO
    return WARNING


def configure(*, stderr_level: int = WARNING,
              json_path: Optional[str] = None,
              run_id: Optional[str] = None) -> None:
    """(Re)configure the process-wide logger; closes any prior sink."""
    global _STDERR_LEVEL, _JSON_FH, _RUN_ID
    _STDERR_LEVEL = stderr_level
    _RUN_ID = run_id
    if _JSON_FH is not None:
        _JSON_FH.close()
        _JSON_FH = None
    if json_path is not None:
        _JSON_FH = open(json_path, "a", encoding="utf-8")


def close() -> None:
    """Flush and detach the JSONL sink (stderr threshold is kept)."""
    global _JSON_FH
    if _JSON_FH is not None:
        _JSON_FH.close()
        _JSON_FH = None


def log_json_path_active() -> bool:
    return _JSON_FH is not None


def emit(level: int, name: str, **fields) -> Event:
    """Record one event and dispatch it to every sink."""
    event = Event(level, name, fields, ts=time.time())
    for buffer in _CAPTURES:
        buffer.append(event)
    if _JSON_FH is not None:
        _JSON_FH.write(event.to_json(_RUN_ID) + "\n")
        _JSON_FH.flush()
    if level >= _STDERR_LEVEL:
        print(event.render(), file=sys.stderr)
    return event


def debug(name: str, **fields) -> Event:
    return emit(DEBUG, name, **fields)


def info(name: str, **fields) -> Event:
    return emit(INFO, name, **fields)


def warning(name: str, **fields) -> Event:
    return emit(WARNING, name, **fields)


def error(name: str, **fields) -> Event:
    return emit(ERROR, name, **fields)


@contextmanager
def capture() -> Iterator[List[Event]]:
    """Collect every event emitted in the block (all levels), for tests."""
    buffer: List[Event] = []
    _CAPTURES.append(buffer)
    try:
        yield buffer
    finally:
        _CAPTURES.remove(buffer)


@contextmanager
def quiet_stderr() -> Iterator[None]:
    """Suppress stderr rendering inside the block (sinks still record)."""
    global _STDERR_LEVEL
    previous = _STDERR_LEVEL
    _STDERR_LEVEL = ERROR + 1
    try:
        yield
    finally:
        _STDERR_LEVEL = previous


def read_jsonl(path: str) -> List[dict]:
    """Load a JSONL event log, skipping blank lines."""
    records: List[dict] = []
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


__all__ = [
    "DEBUG",
    "ERROR",
    "Event",
    "INFO",
    "WARNING",
    "capture",
    "close",
    "configure",
    "debug",
    "emit",
    "error",
    "info",
    "quiet_stderr",
    "read_jsonl",
    "verbosity_level",
    "warning",
]
