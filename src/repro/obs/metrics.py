"""Unified metrics registry: counters, gauges and histograms.

Before this module existed, the set of counters the system reports was
a hand-maintained dictionary literal in ``core/stats.py`` that every
subsystem PR had to edit.  Now each subsystem *declares* its metrics
where it owns them (``cow.py`` declares ``cow_clones``, the result
cache declares ``result_cache_hits``, ...) and consumers enumerate the
registry instead of maintaining a list:

* :class:`MetricsRegistry` holds the declarations -- name, kind, help
  text, and (for derived counters such as ``copies_avoided =
  cow_clones - cow_materializations``) a compute function over the
  merged raw counters.
* ``register_counter_source`` / :func:`global_counters` absorb the
  hot-path plumbing that used to live in ``core/stats.py``: modules
  whose events are too frequent for per-event dispatch keep plain
  module globals and register a reader; collectors snapshot the totals
  and report deltas.
* Exporters render one snapshot (counters + histograms) as Prometheus
  text exposition format (:func:`prometheus_text`) or JSON lines
  (:func:`metrics_jsonl`), and :func:`validate_prometheus_text` is a
  strict-enough parser for CI to assert the exposition is well formed.

Histogram *declarations* live here; histogram *observations* accumulate
per :class:`~repro.obs.collect.StatsCollector` (scoped like every other
measurement) as :class:`HistogramData` snapshots, which merge across
jobs and processes.
"""

from __future__ import annotations

import bisect
import importlib
import json
import math
import re
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

# ----------------------------------------------------------------------
# hot-path counter sources (moved from core/stats.py)
# ----------------------------------------------------------------------
_COUNTER_SOURCES: List[Callable[[], Dict[str, int]]] = []


def register_counter_source(reader: Callable[[], Dict[str, int]]) -> None:
    """Register a callable returning cumulative global counter values."""
    _COUNTER_SOURCES.append(reader)


def global_counters() -> Dict[str, int]:
    """Current cumulative totals from every registered source."""
    out: Dict[str, int] = {}
    for reader in _COUNTER_SOURCES:
        out.update(reader())
    return out


# ----------------------------------------------------------------------
# metric declarations
# ----------------------------------------------------------------------
COUNTER = "counter"
GAUGE = "gauge"
HISTOGRAM = "histogram"

#: Default histogram bucket boundaries for second-valued observations.
LATENCY_BUCKETS = (1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1.0, 10.0)
#: Default buckets for DBM-size observations (number of variables).
SIZE_BUCKETS = (2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0)


@dataclass(frozen=True)
class MetricSpec:
    """One declared metric."""

    name: str
    kind: str
    help: str
    #: Derived counters compute their value from the merged raw
    #: counters instead of being bumped directly.
    derive: Optional[Callable[[Dict[str, int]], int]] = None
    #: Histogram bucket upper bounds (le), +Inf implied.
    buckets: Sequence[float] = ()
    #: Histogram label dimension (e.g. ``op`` or ``kind``), if any.
    label: Optional[str] = None


class MetricsRegistry:
    """Ordered registry of metric declarations.

    Registration is idempotent by name (several modules may declare the
    shared ``closure_cache_hits``); re-registering with a *different*
    kind is a programming error and raises.
    """

    def __init__(self) -> None:
        self._specs: Dict[str, MetricSpec] = {}

    # -- declaration ---------------------------------------------------
    def counter(self, name: str, help: str = "",
                derive: Optional[Callable[[Dict[str, int]], int]] = None,
                ) -> MetricSpec:
        return self._register(MetricSpec(name, COUNTER, help, derive=derive))

    def gauge(self, name: str, help: str = "") -> MetricSpec:
        return self._register(MetricSpec(name, GAUGE, help))

    def histogram(self, name: str, help: str = "",
                  buckets: Sequence[float] = LATENCY_BUCKETS,
                  label: Optional[str] = None) -> MetricSpec:
        return self._register(MetricSpec(
            name, HISTOGRAM, help, buckets=tuple(sorted(buckets)),
            label=label))

    def _register(self, spec: MetricSpec) -> MetricSpec:
        existing = self._specs.get(spec.name)
        if existing is not None:
            if existing.kind != spec.kind:
                raise ValueError(
                    f"metric {spec.name!r} already registered as "
                    f"{existing.kind}, cannot re-register as {spec.kind}")
            return existing
        self._specs[spec.name] = spec
        return spec

    # -- enumeration ---------------------------------------------------
    def get(self, name: str) -> Optional[MetricSpec]:
        return self._specs.get(name)

    def specs(self, kind: Optional[str] = None) -> List[MetricSpec]:
        return [s for s in self._specs.values()
                if kind is None or s.kind == kind]

    def counter_names(self) -> List[str]:
        return [s.name for s in self.specs(COUNTER)]

    def counter_summary(self, merged: Dict[str, int]) -> Dict[str, int]:
        """Every declared counter (derived ones computed), zero-filled,
        plus any merged raw counter that was never declared -- nothing
        observed is ever hidden by a missing declaration."""
        ensure_registered()
        out: Dict[str, int] = {}
        for spec in self.specs(COUNTER):
            if spec.derive is not None:
                out[spec.name] = int(spec.derive(merged))
            else:
                out[spec.name] = int(merged.get(spec.name, 0))
        for name, value in merged.items():
            if name not in out:
                out[name] = int(value)
        return out


#: The process-wide default registry.
REGISTRY = MetricsRegistry()


#: Modules that declare metrics at import time.  This is *not* a metric
#: list -- the declarations (names, kinds, help text) live with their
#: owners -- it only guarantees those owners are imported before the
#: registry is enumerated, so the key set does not depend on what the
#: caller happened to import first.
_OWNER_MODULES = (
    "repro.core.cow",
    "repro.core.workspace",
    "repro.core.budget",
    "repro.core.sentinel",
    "repro.core.octagon",
    "repro.core.kernels",
    "repro.service.transport",
    "repro.analysis.plan",
    "repro.analysis.analyzer",
    "repro.service.cache",
    "repro.service.journal",
    "repro.testing.faults",
)

_ensured = False


def ensure_registered() -> None:
    """Import every metric-owning module once (idempotent)."""
    global _ensured
    if _ensured:
        return
    _ensured = True
    for module in _OWNER_MODULES:
        importlib.import_module(module)


# ----------------------------------------------------------------------
# histogram data (per-collector, mergeable, JSON-clean)
# ----------------------------------------------------------------------
class HistogramData:
    """Cumulative bucket counts for one (metric, label-value) series."""

    __slots__ = ("name", "label_value", "bounds", "counts", "total", "sum")

    def __init__(self, name: str, bounds: Sequence[float],
                 label_value: Optional[str] = None) -> None:
        self.name = name
        self.label_value = label_value
        self.bounds = tuple(bounds)
        self.counts = [0] * (len(self.bounds) + 1)  # last slot = +Inf
        self.total = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        self.counts[bisect.bisect_left(self.bounds, value)] += 1
        self.total += 1
        self.sum += value

    def merge(self, other: "HistogramData") -> None:
        if other.bounds != self.bounds:
            raise ValueError(f"bucket mismatch for {self.name}")
        for i, c in enumerate(other.counts):
            self.counts[i] += c
        self.total += other.total
        self.sum += other.sum

    def quantile(self, q: float) -> Optional[float]:
        """Estimate the ``q``-quantile (0..1) by linear interpolation
        within the bucket that contains it -- the standard Prometheus
        ``histogram_quantile`` estimate, so the daemon's own p50/p95
        rollups agree with what a scraper would compute.  Returns
        ``None`` with no observations; values in the +Inf bucket clamp
        to the highest finite bound (the estimate is a floor there).
        """
        if self.total == 0:
            return None
        rank = q * self.total
        cumulative = 0
        for i, count in enumerate(self.counts):
            previous = cumulative
            cumulative += count
            if cumulative >= rank:
                if i >= len(self.bounds):  # +Inf bucket
                    return self.bounds[-1] if self.bounds else None
                lower = self.bounds[i - 1] if i > 0 else 0.0
                upper = self.bounds[i]
                if count == 0:
                    return upper
                return lower + (upper - lower) * (rank - previous) / count
        return self.bounds[-1] if self.bounds else None

    def to_dict(self) -> Dict:
        return {"name": self.name, "label": self.label_value,
                "bounds": list(self.bounds), "counts": list(self.counts),
                "total": self.total, "sum": self.sum}

    @classmethod
    def from_dict(cls, raw: Dict) -> "HistogramData":
        data = cls(str(raw["name"]), [float(b) for b in raw["bounds"]],
                   raw.get("label"))
        data.counts = [int(c) for c in raw["counts"]]
        data.total = int(raw["total"])
        data.sum = float(raw["sum"])
        return data


def histogram_key(name: str, label_value: Optional[str] = None) -> str:
    """Stable dict key for one histogram series."""
    return name if label_value is None else f"{name}|{label_value}"


def merge_histogram_dicts(snapshots: Sequence[Dict[str, Dict]]) -> Dict[str, HistogramData]:
    """Merge per-job histogram exports (``key -> to_dict()``) into one."""
    merged: Dict[str, HistogramData] = {}
    for snap in snapshots:
        for key, raw in snap.items():
            data = HistogramData.from_dict(raw)
            if key in merged:
                merged[key].merge(data)
            else:
                merged[key] = data
    return merged


# ----------------------------------------------------------------------
# exporters
# ----------------------------------------------------------------------
_PROM_PREFIX = "repro_"


def _prom_float(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def prometheus_text(counters: Dict[str, int],
                    histograms: Optional[Dict[str, HistogramData]] = None,
                    *, registry: Optional[MetricsRegistry] = None) -> str:
    """Render one snapshot in Prometheus text exposition format 0.0.4."""
    registry = registry if registry is not None else REGISTRY
    lines: List[str] = []
    for name in sorted(counters):
        spec = registry.get(name)
        metric = f"{_PROM_PREFIX}{name}_total"
        if spec is not None and spec.help:
            lines.append(f"# HELP {metric} {spec.help}")
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {int(counters[name])}")
    series_by_name: Dict[str, List[HistogramData]] = {}
    for data in (histograms or {}).values():
        series_by_name.setdefault(data.name, []).append(data)
    for name in sorted(series_by_name):
        spec = registry.get(name)
        metric = f"{_PROM_PREFIX}{name}"
        if spec is not None and spec.help:
            lines.append(f"# HELP {metric} {spec.help}")
        lines.append(f"# TYPE {metric} histogram")
        label = spec.label if spec is not None else None
        for data in sorted(series_by_name[name],
                           key=lambda d: d.label_value or ""):
            def tags(le: str) -> str:
                if label is not None and data.label_value is not None:
                    return f'{{{label}="{data.label_value}",le="{le}"}}'
                return f'{{le="{le}"}}'

            cumulative = 0
            for bound, count in zip(list(data.bounds) + [math.inf],
                                    data.counts):
                cumulative += count
                lines.append(f"{metric}_bucket{tags(_prom_float(bound))} "
                             f"{cumulative}")
            base = ""
            if label is not None and data.label_value is not None:
                base = f'{{{label}="{data.label_value}"}}'
            lines.append(f"{metric}_sum{base} {data.sum!r}")
            lines.append(f"{metric}_count{base} {data.total}")
    return "\n".join(lines) + "\n"


_SAMPLE_RE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})?\s+"
    r"([+-]?(\d+\.?\d*([eE][+-]?\d+)?|\.\d+|Inf|NaN))\s*$")


def validate_prometheus_text(text: str) -> int:
    """Check every line is a valid comment or sample; returns the number
    of samples.  Raises ``ValueError`` on the first malformed line."""
    samples = 0
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        if line.startswith("# HELP ") or line.startswith("# TYPE "):
            continue
        if line.startswith("#"):
            raise ValueError(f"line {lineno}: bad comment {line!r}")
        if not _SAMPLE_RE.match(line):
            raise ValueError(f"line {lineno}: bad sample {line!r}")
        samples += 1
    if samples == 0:
        raise ValueError("no samples in exposition")
    return samples


def metrics_jsonl(counters: Dict[str, int],
                  histograms: Optional[Dict[str, HistogramData]] = None,
                  *, run_id: Optional[str] = None) -> str:
    """Render one snapshot as JSON lines: one metric per line."""
    lines = []
    for name in sorted(counters):
        lines.append(json.dumps({"metric": name, "kind": COUNTER,
                                 "value": int(counters[name]),
                                 "run": run_id}, sort_keys=True))
    for key in sorted(histograms or {}):
        entry = (histograms or {})[key].to_dict()
        entry.update({"metric": entry.pop("name"), "kind": HISTOGRAM,
                      "run": run_id})
        lines.append(json.dumps(entry, sort_keys=True))
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# enabled flag for histogram collection
# ----------------------------------------------------------------------
# Histogram observation costs a bisect per event, so collectors only
# record distributions when metrics export was requested for the run.
_ENABLED = False


def enabled() -> bool:
    return _ENABLED


def set_enabled(flag: bool) -> bool:
    """Enable/disable histogram collection; returns the previous value."""
    global _ENABLED
    previous = _ENABLED
    _ENABLED = bool(flag)
    return previous


__all__ = [
    "COUNTER",
    "GAUGE",
    "HISTOGRAM",
    "HistogramData",
    "LATENCY_BUCKETS",
    "MetricSpec",
    "MetricsRegistry",
    "REGISTRY",
    "SIZE_BUCKETS",
    "enabled",
    "ensure_registered",
    "global_counters",
    "histogram_key",
    "merge_histogram_dicts",
    "metrics_jsonl",
    "prometheus_text",
    "register_counter_source",
    "set_enabled",
    "validate_prometheus_text",
]
