"""Scoped measurement collection: operator timers, closures, counters.

This is the engine behind ``repro.core.stats`` (now a compatibility
shim).  A :class:`StatsCollector` scopes every measurement to one
analysis/job; :func:`collecting` installs one for a block.  Three fixes
over the original ``core/stats.py`` implementation:

* **Self-time attribution.**  ``timed_op`` used to double-count nested
  operators: an outer ``assign`` timer included the inner
  ``meet_constraint`` time, so summing ``op_seconds`` over-reported
  total octagon time (the Fig. 8 decomposition no longer added up).
  The collector now keeps a timer stack; each frame accumulates its
  children's elapsed time, and ``op_self_seconds`` records elapsed
  minus children.  ``op_seconds`` stays *inclusive* (useful per
  operator); ``total_seconds`` sums the *self* times, which is
  non-overlapping by construction.
* **Nested collectors.**  Collectors nest (a batch-level collector
  around per-job collectors).  ``bump()`` events now propagate to
  every collector on the stack, so an inner collector no longer steals
  the outer one's per-event counters; global-source deltas were always
  safe (each collector snapshots its own base) and are pinned by tests
  now.
* **Histograms.**  When metrics collection is enabled for the run
  (:func:`repro.obs.metrics.set_enabled`), the collector also feeds
  closure-size, closure-latency and per-operator-latency histograms
  declared in the metrics registry.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from . import metrics

# Histogram declarations for the distributions this module observes.
metrics.REGISTRY.histogram(
    "closure_size", "Variables per full closure call",
    buckets=metrics.SIZE_BUCKETS, label="kind")
metrics.REGISTRY.histogram(
    "closure_seconds", "Wall seconds per closure call",
    buckets=metrics.LATENCY_BUCKETS, label="kind")
metrics.REGISTRY.histogram(
    "op_seconds", "Wall seconds per domain operator call",
    buckets=metrics.LATENCY_BUCKETS, label="op")


@dataclass
class ClosureRecord:
    """One closure call observed during an analysis."""

    n: int  # number of variables in the DBM
    kind: str  # DBM kind the closure ran on: dense/sparse/decomposed/top
    seconds: float
    components: int = 1  # component count for decomposed closures


@dataclass
class StatsCollector:
    """Accumulates operator timings, closure records and counters.

    With ``capture_closure_inputs`` set, every *full* closure performed
    by the optimised octagon also stores a copy of its input DBM and
    component partition, so the Fig. 7 benchmark can replay the exact
    same closure workload through every closure implementation.
    """

    #: Inclusive wall time per operator (a nested operator's time is
    #: counted in its parent too -- do not sum this across operators).
    op_seconds: Dict[str, float] = field(default_factory=dict)
    op_calls: Dict[str, int] = field(default_factory=dict)
    #: Exclusive (self) wall time per operator; sums without overlap.
    op_self_seconds: Dict[str, float] = field(default_factory=dict)
    closures: List[ClosureRecord] = field(default_factory=list)
    capture_closure_inputs: bool = False
    closure_inputs: List[tuple] = field(default_factory=list)
    counters: Dict[str, int] = field(default_factory=dict)
    counter_base: Dict[str, int] = field(
        default_factory=metrics.global_counters)
    #: Distribution collection (off unless metrics export is on).
    histograms_enabled: bool = field(default_factory=metrics.enabled)
    histograms: Dict[str, metrics.HistogramData] = field(default_factory=dict)
    #: Active ``timed_op`` frames: each entry accumulates child seconds.
    _op_stack: List[list] = field(default_factory=list, repr=False,
                                  compare=False)
    #: Set on ``collecting()`` exit: global-source deltas are folded in
    #: and the collector stops watching the process-wide counters.
    _counters_frozen: bool = field(default=False, repr=False, compare=False)

    def record_op(self, name: str, seconds: float,
                  self_seconds: Optional[float] = None) -> None:
        if self_seconds is None:
            self_seconds = seconds
        self.op_seconds[name] = self.op_seconds.get(name, 0.0) + seconds
        self.op_calls[name] = self.op_calls.get(name, 0) + 1
        self.op_self_seconds[name] = (
            self.op_self_seconds.get(name, 0.0) + self_seconds)
        if self.histograms_enabled:
            self.observe("op_seconds", seconds, name)

    def bump(self, name: str, amount: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + amount

    def bump_max(self, name: str, value: int) -> None:
        """Record a high-water mark: the counter keeps the maximum value
        observed instead of a running sum (e.g. peak DBM bytes)."""
        if value > self.counters.get(name, 0):
            self.counters[name] = value

    def record_closure(self, record: ClosureRecord) -> None:
        self.closures.append(record)
        if self.histograms_enabled:
            self.observe("closure_size", record.n, record.kind)
            self.observe("closure_seconds", record.seconds, record.kind)

    def record_closure_input(self, matrix, blocks) -> None:
        if self.capture_closure_inputs:
            self.closure_inputs.append((matrix, blocks))

    def observe(self, name: str, value: float,
                label_value: Optional[str] = None) -> None:
        """Feed one observation into a registry-declared histogram."""
        key = metrics.histogram_key(name, label_value)
        data = self.histograms.get(key)
        if data is None:
            spec = metrics.REGISTRY.get(name)
            bounds = spec.buckets if spec is not None else metrics.LATENCY_BUCKETS
            data = metrics.HistogramData(name, bounds, label_value)
            self.histograms[key] = data
        data.observe(value)

    def histograms_export(self) -> Dict[str, Dict]:
        """JSON-clean snapshot of every histogram series."""
        return {key: data.to_dict() for key, data in self.histograms.items()}

    # ------------------------------------------------------------------
    # summaries used by the benchmark harness
    # ------------------------------------------------------------------
    @property
    def total_seconds(self) -> float:
        """Total operator wall time, nested calls counted once."""
        return sum(self.op_self_seconds.values())

    @property
    def full_closures(self) -> List[ClosureRecord]:
        """Full (cubic) closures; incremental re-closures excluded."""
        return [rec for rec in self.closures if "incremental" not in rec.kind]

    @property
    def closure_seconds(self) -> float:
        """Time spent in *full* closures.

        Incremental closures run inside the ``assign``/``meet_constraint``
        operator timers and are already included in ``total_seconds``;
        full closures run outside any operator timer, so total octagon
        time is ``total_seconds + closure_seconds``.
        """
        return sum(rec.seconds for rec in self.full_closures)

    def closure_stats(self) -> Dict[str, float]:
        """The Table 2 statistics: nmin, nmax and #closures."""
        full = self.full_closures
        if not full:
            return {"nmin": 0, "nmax": 0, "closures": 0,
                    "incremental": len(self.closures)}
        sizes = [rec.n for rec in full]
        return {
            "nmin": min(sizes),
            "nmax": max(sizes),
            "closures": len(full),
            "incremental": len(self.closures) - len(full),
        }

    # ------------------------------------------------------------------
    # counters
    # ------------------------------------------------------------------
    def merged_counters(self) -> Dict[str, int]:
        """Per-event ``bump`` counters plus the global-source deltas
        accumulated since this collector was installed (or last
        frozen)."""
        merged = dict(self.counters)
        if not self._counters_frozen:
            for name, value in metrics.global_counters().items():
                delta = value - self.counter_base.get(name, 0)
                if delta:
                    merged[name] = merged.get(name, 0) + delta
        return merged

    def freeze_counters(self) -> None:
        """Fold the global-source deltas seen so far into ``counters``
        and stop watching the process-wide counters.  ``collecting()``
        calls this on exit so a collector read *after* its block
        reports what happened inside the block, not whatever the
        process did afterwards."""
        for name, value in metrics.global_counters().items():
            delta = value - self.counter_base.get(name, 0)
            if delta:
                self.counters[name] = self.counters.get(name, 0) + delta
        self._counters_frozen = True

    @property
    def copies_avoided(self) -> int:
        """Matrix copies the COW layer never had to perform.

        Eager semantics pay one copy per ``copy()`` call; COW pays one
        copy per materialisation, so the difference is the saving.  At
        most one materialisation exists per clone (the last owner of a
        share group writes in place), so this is never negative.
        """
        merged = self.merged_counters()
        return (merged.get("cow_clones", 0)
                - merged.get("cow_materializations", 0))

    def counter_summary(self) -> Dict[str, int]:
        """Every counter declared in the metrics registry (derived ones
        computed), in registration order -- no hand-maintained list."""
        return metrics.REGISTRY.counter_summary(self.merged_counters())


# The collector stack, **per thread**: the analysis server runs one
# ``collecting()`` block per request on concurrent handler threads, so
# a process-global stack would interleave push/pop from different
# requests (breaking nesting restoration) and cross-wire their
# ``bump`` events.  ``active`` is kept as its own attribute so the
# no-collector hot path stays one attribute load + test.
_TLS = threading.local()


def _stack() -> List[StatsCollector]:
    stack = getattr(_TLS, "stack", None)
    if stack is None:
        stack = _TLS.stack = []
    return stack


def active_collector() -> Optional[StatsCollector]:
    """The collector currently receiving events on this thread, or None."""
    return getattr(_TLS, "active", None)


@contextmanager
def collecting() -> Iterator[StatsCollector]:
    """Install a fresh collector for the duration of the block.

    Collectors nest *per thread*: timings and closure records go to the
    innermost collector only, while ``bump`` counters propagate to
    every collector on this thread's stack and global-source deltas are
    computed per collector from its own installation snapshot -- so an
    outer collector observes everything that happened inside inner
    blocks.  A collector never sees another thread's ``bump`` events;
    global-source counters (module-global tallies like the COW clone
    and workspace counts) remain process-wide, so their deltas can
    still include concurrent threads' work.
    """
    previous = getattr(_TLS, "active", None)
    collector = StatsCollector()
    _stack().append(collector)
    _TLS.active = collector
    try:
        yield collector
    finally:
        _stack().pop()
        _TLS.active = previous
        collector.freeze_counters()


@contextmanager
def timed_op(name: str) -> Iterator[None]:
    """Attribute the wall time of the block to operator ``name``.

    Nested timers are attributed correctly: the inclusive time lands in
    ``op_seconds`` while ``op_self_seconds`` gets elapsed minus the
    children's elapsed, so decomposition sums are exact.
    """
    collector = getattr(_TLS, "active", None)
    if collector is None:
        yield
        return
    frame = [0.0]  # children's elapsed seconds accumulate here
    stack = collector._op_stack
    stack.append(frame)
    start = time.perf_counter()
    try:
        yield
    finally:
        elapsed = time.perf_counter() - start
        stack.pop()
        if stack:
            stack[-1][0] += elapsed
        collector.record_op(name, elapsed, elapsed - frame[0])


def record_closure(n: int, kind: str, seconds: float, components: int = 1) -> None:
    active = getattr(_TLS, "active", None)
    if active is not None:
        active.record_closure(ClosureRecord(n, kind, seconds, components))


def record_closure_input(matrix, blocks) -> None:
    """Capture a full-closure input (matrix copy + partition blocks)."""
    active = getattr(_TLS, "active", None)
    if active is not None and active.capture_closure_inputs:
        active.record_closure_input(matrix, blocks)


def capturing_closure_inputs() -> bool:
    """True iff a collector wants full-closure inputs (callers can then
    skip the defensive matrix copy on the no-collector hot path)."""
    active = getattr(_TLS, "active", None)
    return active is not None and active.capture_closure_inputs


def bump(name: str, amount: int = 1) -> None:
    """Increment a named counter on every collector active on this
    thread (no-op otherwise) -- inner collectors must not steal the
    outer's events."""
    if getattr(_TLS, "active", None) is None:
        return
    for collector in _stack():
        collector.bump(name, amount)


def bump_max(name: str, value: int) -> None:
    """Raise a high-water-mark counter on every collector active on
    this thread (no-op otherwise); see :meth:`StatsCollector.bump_max`."""
    if getattr(_TLS, "active", None) is None:
        return
    for collector in _stack():
        collector.bump_max(name, value)


class OpCounter:
    """Counts scalar DBM operations for complexity verification.

    One ``count`` unit is one *candidate tightening*: evaluating
    ``min(O_ij, O_ik + O_kj)`` (one add + one compare), the unit the
    paper uses when stating ``16n^3 + 22n^2 + 6n``.
    """

    __slots__ = ("mins",)

    def __init__(self) -> None:
        self.mins = 0

    def tick(self, amount: int = 1) -> None:
        self.mins += amount

    def reset(self) -> None:
        self.mins = 0


__all__ = [
    "ClosureRecord",
    "OpCounter",
    "StatsCollector",
    "active_collector",
    "bump",
    "bump_max",
    "capturing_closure_inputs",
    "collecting",
    "record_closure",
    "record_closure_input",
    "timed_op",
]
