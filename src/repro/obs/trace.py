"""Span-based tracing with Chrome trace-event export.

The paper's performance story is a *decomposition* -- per-closure
traces (Fig. 7), per-operator splits (Fig. 8) -- and aggregate timers
cannot answer "where did this one slow batch spend its time".  Spans
can: a :func:`span` context manager records one timed, named, nested
interval, and the whole run exports as Chrome trace-event JSON that
Perfetto / ``chrome://tracing`` renders as a flame chart
(``python -m repro batch --suite --trace out.json``).

Design constraints, in order:

1. **Disabled means free.**  Tracing is off by default and the entire
   disabled path of :func:`span` is one module-global test; hot loops
   that would pay even for building the ``attrs`` dict (the fixpoint
   engine's per-edge transfer calls) check :func:`enabled` once at
   setup and install instrumented closures only when tracing is on.
   ``benchmarks/bench_obs_overhead.py`` gates this at < 2% end to end.
2. **Cross-process.**  Batch jobs run in forked worker processes.  A
   worker opens a fresh :func:`session` around its job (so it never
   re-ships events inherited from the parent's buffer), returns its
   span events with the :class:`~repro.service.job.JobResult`, and the
   scheduler *re-parents* them: each job gets a synthetic thread lane
   in the parent trace, the job span is emitted on that lane, and the
   worker's events are rewritten onto it (:func:`adopt`).  Timestamps
   are ``time.perf_counter`` -- CLOCK_MONOTONIC on Linux, one epoch
   per boot, so parent and child clocks agree under ``fork``.
3. **Plain data.**  Events are dicts in the Chrome trace-event schema
   (``ph="X"`` complete events plus ``ph="M"`` metadata); they pickle
   across the worker pipe and dump as JSON without translation.
"""

from __future__ import annotations

import dataclasses
import json
import os
import threading
import time
import uuid
from contextlib import contextmanager
from typing import Dict, List, Optional

_ENABLED = False
_EVENTS: List[dict] = []
_LOCK = threading.Lock()

# Ambient request context (thread-local): the serve tier parks the
# active TraceContext here around each request so every layer below --
# down to the supervisor's dispatch path -- can stamp outgoing jobs
# without threading an argument through the executor contract.
_CONTEXT = threading.local()

# Small stable ids instead of raw thread idents: lane 0 is reserved,
# real threads count up from 1, synthetic job lanes from 1000.
_THREAD_IDS: Dict[int, int] = {}
_NEXT_LANE = 1000


def enabled() -> bool:
    """True when spans are being recorded in this process."""
    return _ENABLED


def enable() -> None:
    global _ENABLED
    _ENABLED = True


def disable() -> None:
    global _ENABLED
    _ENABLED = False


def reset() -> None:
    """Drop all buffered events (does not change the enabled flag)."""
    with _LOCK:
        _EVENTS.clear()


def events() -> List[dict]:
    """A snapshot of the buffered events."""
    with _LOCK:
        return list(_EVENTS)


def _tid() -> int:
    ident = threading.get_ident()
    tid = _THREAD_IDS.get(ident)
    if tid is None:
        with _LOCK:
            tid = _THREAD_IDS.setdefault(ident, len(_THREAD_IDS) + 1)
    return tid


def current_lane() -> int:
    """The calling thread's stable trace lane id (public: the serve
    tier records it as :attr:`TraceContext.parent`)."""
    return _tid()


# ----------------------------------------------------------------------
# request-scoped trace context
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class TraceContext:
    """Identity of one serve request, propagated across the pool.

    Chrome ``ph="X"`` events carry no parent pointers -- nesting is
    implied by time containment within one ``(pid, tid)`` lane -- so
    the context is not a span *pointer* but a span *address*: the
    ``trace_id`` names the request, ``parent`` is the lane (thread id)
    of the originating ``serve_request`` span in the daemon, and
    ``deadline`` (absolute ``perf_counter`` seconds, or ``None``) rides
    along so workers can see the same budget the dispatcher enforces.
    Workers tag their spans with the id; :func:`adopt_into_current`
    rewrites them onto the caller's lane, where time containment under
    the still-open ``serve_request`` span restores the tree.
    """

    trace_id: str
    parent: int = 0
    deadline: Optional[float] = None


def new_trace_id() -> str:
    """A fresh 16-hex-digit request id (random, not time-derived)."""
    return uuid.uuid4().hex[:16]


def current_context() -> Optional[TraceContext]:
    """The ambient :class:`TraceContext` of this thread, if any."""
    return getattr(_CONTEXT, "value", None)


@contextmanager
def context(ctx: Optional[TraceContext]):
    """Install ``ctx`` as this thread's ambient context for the block."""
    previous = getattr(_CONTEXT, "value", None)
    _CONTEXT.value = ctx
    try:
        yield ctx
    finally:
        _CONTEXT.value = previous


# ----------------------------------------------------------------------
# spans
# ----------------------------------------------------------------------
class _NullSpan:
    """The shared no-op span handed out while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        return None

    def set(self, **attrs) -> None:
        return None


NULL_SPAN = _NullSpan()


class Span:
    """One live span; appends a complete ("X") event on exit."""

    __slots__ = ("name", "attrs", "start")

    def __init__(self, name: str, attrs: dict) -> None:
        self.name = name
        self.attrs = attrs
        self.start = 0.0

    def __enter__(self) -> "Span":
        self.start = time.perf_counter()
        return self

    def set(self, **attrs) -> None:
        """Attach attributes discovered while the span runs."""
        self.attrs.update(attrs)

    def __exit__(self, exc_type, exc, tb) -> None:
        end = time.perf_counter()
        if exc_type is not None:
            self.attrs["error"] = exc_type.__name__
        _append({
            "name": self.name, "cat": "repro", "ph": "X",
            "ts": self.start * 1e6, "dur": (end - self.start) * 1e6,
            "pid": os.getpid(), "tid": _tid(), "args": self.attrs,
        })


def span(name: str, /, **attrs):
    """Open a span; a shared no-op object when tracing is disabled."""
    if not _ENABLED:
        return NULL_SPAN
    return Span(name, attrs)


def emit(name: str, start: float, end: float, *,
         tid: Optional[int] = None, args: Optional[dict] = None) -> None:
    """Record a completed span from explicit ``perf_counter`` endpoints.

    Kernel code that already measures its own elapsed time uses this
    instead of :func:`span` so the enabled path adds no second pair of
    clock reads and the disabled path is a single flag test.
    """
    if not _ENABLED:
        return
    _append({
        "name": name, "cat": "repro", "ph": "X",
        "ts": start * 1e6, "dur": (end - start) * 1e6,
        "pid": os.getpid(), "tid": _tid() if tid is None else tid,
        "args": args or {},
    })


def _append(event: dict) -> None:
    with _LOCK:
        _EVENTS.append(event)


# ----------------------------------------------------------------------
# worker sessions and re-parenting
# ----------------------------------------------------------------------
class session:
    """Collect spans into a fresh buffer, restoring the previous state.

    Used by :func:`repro.service.job.execute_job` in worker processes:
    under ``fork`` the child inherits the parent's event buffer, so a
    job must swap in an empty one to ship only its own spans.  Works
    inline too -- the scheduler removes the job's events from the
    global buffer here and re-adds them onto the job's lane, so inline
    and forked jobs take the identical re-parenting path.
    """

    def __init__(self) -> None:
        self.events: List[dict] = []
        self._saved: Optional[List[dict]] = None
        self._saved_enabled = False

    def __enter__(self) -> "session":
        global _EVENTS, _ENABLED
        with _LOCK:
            self._saved = _EVENTS
            self._saved_enabled = _ENABLED
            _EVENTS = self.events
        _ENABLED = True
        return self

    def __exit__(self, *exc_info) -> None:
        global _EVENTS, _ENABLED
        with _LOCK:
            _EVENTS = self._saved
        _ENABLED = self._saved_enabled


def new_lane(label: str) -> int:
    """Allocate a synthetic thread lane (for one batch job) and name it."""
    global _NEXT_LANE
    with _LOCK:
        lane = _NEXT_LANE
        _NEXT_LANE += 1
        _EVENTS.append({
            "name": "thread_name", "ph": "M", "pid": os.getpid(),
            "tid": lane, "args": {"name": label},
        })
    return lane


def adopt(worker_events: List[dict], lane: int) -> int:
    """Re-parent a worker's span events onto a lane of this process.

    Rewrites ``pid``/``tid`` so the worker's spans nest under the job
    span the scheduler emitted on ``lane``; metadata events from the
    worker are dropped (the lane already has its name).  Returns the
    number of events adopted.
    """
    pid = os.getpid()
    adopted = 0
    with _LOCK:
        for event in worker_events:
            if event.get("ph") == "M":
                continue
            copied = dict(event)
            args = dict(copied.get("args") or {})
            args.setdefault("worker_pid", event.get("pid"))
            copied["args"] = args
            copied["pid"] = pid
            copied["tid"] = lane
            _EVENTS.append(copied)
            adopted += 1
    return adopted


def adopt_into_current(worker_events: List[dict],
                       trace_id: Optional[str] = None) -> int:
    """Re-parent a worker's span events onto the *calling thread's* lane.

    The serve path's analogue of :func:`adopt`: where the batch
    scheduler gives each job a synthetic lane, a serve request wants
    the worker's spans nested under the ``serve_request`` span that is
    still open on this very thread -- so the events are rewritten to
    this pid and this thread's lane.  Timestamps are shared-epoch
    ``perf_counter`` values, so time containment puts them inside the
    enclosing request span without further bookkeeping.  ``trace_id``
    (when given) is stamped into each event's args alongside the
    originating ``worker_pid``.  Returns the number of events adopted.
    """
    if not _ENABLED:
        return 0
    pid = os.getpid()
    lane = _tid()
    adopted = 0
    with _LOCK:
        for event in worker_events:
            if event.get("ph") == "M":
                continue
            copied = dict(event)
            args = dict(copied.get("args") or {})
            args.setdefault("worker_pid", event.get("pid"))
            if trace_id is not None:
                args.setdefault("trace_id", trace_id)
            copied["args"] = args
            copied["pid"] = pid
            copied["tid"] = lane
            _EVENTS.append(copied)
            adopted += 1
    return adopted


# ----------------------------------------------------------------------
# export
# ----------------------------------------------------------------------
def export(path: str, *, process_name: str = "repro") -> int:
    """Write the buffered events as Chrome trace-event JSON.

    Returns the number of events written.  The document is the object
    form (``{"traceEvents": [...]}``) which both Perfetto and
    ``chrome://tracing`` load directly.
    """
    with _LOCK:
        buffered = list(_EVENTS)
    meta = [{
        "name": "process_name", "ph": "M", "pid": os.getpid(), "tid": 0,
        "args": {"name": process_name},
    }]
    buffered.sort(key=lambda e: (e.get("ts", 0.0), -e.get("dur", 0.0)))
    document = {"traceEvents": meta + buffered, "displayTimeUnit": "ms"}
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(document, fh)
    return len(buffered)


def load(path: str) -> List[dict]:
    """Load a trace file back into a list of events (for the reporter)."""
    with open(path, encoding="utf-8") as fh:
        document = json.load(fh)
    if isinstance(document, list):  # bare-array form is also legal
        return document
    return list(document["traceEvents"])


def validate_chrome_trace(document) -> int:
    """Check a parsed trace document is well-formed Chrome trace JSON;
    returns the number of duration events.  Raises ``ValueError``."""
    if isinstance(document, dict):
        if "traceEvents" not in document:
            raise ValueError("missing traceEvents")
        events_ = document["traceEvents"]
    else:
        events_ = document
    if not isinstance(events_, list):
        raise ValueError("traceEvents is not a list")
    durations = 0
    for i, event in enumerate(events_):
        if not isinstance(event, dict):
            raise ValueError(f"event {i} is not an object")
        ph = event.get("ph")
        if not isinstance(event.get("name"), str) or ph not in ("X", "M",
                                                                "B", "E",
                                                                "i", "C"):
            raise ValueError(f"event {i} malformed: {event!r}")
        if ph == "X":
            for field in ("ts", "dur", "pid", "tid"):
                if not isinstance(event.get(field), (int, float)):
                    raise ValueError(f"event {i} missing {field}")
            durations += 1
    return durations


__all__ = [
    "NULL_SPAN",
    "Span",
    "TraceContext",
    "adopt",
    "adopt_into_current",
    "context",
    "current_context",
    "current_lane",
    "disable",
    "emit",
    "enable",
    "enabled",
    "events",
    "export",
    "load",
    "new_lane",
    "new_trace_id",
    "reset",
    "session",
    "span",
    "validate_chrome_trace",
]
