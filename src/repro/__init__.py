"""repro: a reproduction of "Making Numerical Program Analysis Fast"
(Singh, Puschel, Vechev; PLDI 2015).

The package provides:

* ``repro.core`` -- the optimised Octagon abstract domain (online
  decomposition + vectorised operators) and the APRON-style baseline;
* ``repro.domains`` -- a domain-generic protocol plus an Interval box
  domain;
* ``repro.frontend`` -- a mini imperative language (lexer, parser, CFG);
* ``repro.analysis`` -- an abstract-interpretation fixpoint engine;
* ``repro.dataflow`` -- classic dataflow analyses used as auxiliary
  analyzer components;
* ``repro.workloads`` -- the paper's 17-benchmark workload suite;
* ``repro.bench`` -- the measurement/reporting harness.
"""

from .core import (
    INF,
    ApronOctagon,
    DbmKind,
    LinExpr,
    OctConstraint,
    Octagon,
    SwitchPolicy,
)

__version__ = "1.0.0"

__all__ = [
    "ApronOctagon",
    "DbmKind",
    "INF",
    "LinExpr",
    "OctConstraint",
    "Octagon",
    "SwitchPolicy",
    "__version__",
]
