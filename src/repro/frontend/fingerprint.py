"""Per-procedure content hashing for incremental re-analysis.

The batch service keys whole files (:meth:`AnalysisJob.key` hashes the
raw source text), which is the right granularity for a batch: the file
is the unit of submission.  The analysis *server* re-analyzes edited
files, where the unit of change is one procedure -- so it needs a
content address per procedure that is stable under edits elsewhere in
the file.

The address is the SHA-256 of the procedure's *canonical* source: the
pretty-printer's rendering of its AST.  The pretty printer round-trips
through the parser (pinned by the frontend tests), so the canonical
form is a faithful identity, and because it is computed from the AST it
is insensitive to whitespace, comment-free formatting differences and
the textual position of the procedure in the file -- exactly the
non-semantic edits an editor loop produces.  Any change to the
procedure's statements changes the rendering and therefore the digest.

The analyzer treats procedures independently (no interprocedural
state), so a procedure's analysis result is a pure function of this
canonical source plus the analyzer options -- the invariant that makes
per-procedure caching sound.
"""

from __future__ import annotations

import hashlib

from .ast_nodes import Procedure
from .pretty import pretty


def procedure_source(proc: Procedure) -> str:
    """The canonical (pretty-printed) source of one procedure.

    Parsing the returned text yields a program with this single
    procedure, identical AST -- so it is both a fingerprint input and a
    valid standalone analysis job.
    """
    return pretty(proc) + "\n"


def procedure_digest(proc: Procedure) -> str:
    """SHA-256 of the canonical procedure source."""
    return hashlib.sha256(procedure_source(proc).encode("utf-8")).hexdigest()


__all__ = ["procedure_digest", "procedure_source"]
