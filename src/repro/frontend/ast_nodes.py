"""AST of the mini imperative language.

Arithmetic expressions are built from numbers, variables, unary minus
and the binary operators ``+ - *`` (division by a non-zero constant is
also accepted and folded by the parser).  Boolean expressions are
comparisons combined with ``&&``, ``||`` and ``!``.

Statements::

    x = e;            deterministic assignment
    x = [l, u];       non-deterministic choice from an interval
    havoc(x);         completely unknown value
    assume(b);        refine with a condition
    assert(b);        verification obligation (does not refine)
    if (b) {..} else {..}
    while (b) {..}
    skip;

A :class:`Program` is a list of named :class:`Procedure` bodies, each
analysed independently (mirroring how the paper's analyzers process one
function/handler at a time, which is what makes the DBM size vary
across closures -- Table 2's ``nmin``/``nmax``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Union


# ----------------------------------------------------------------------
# arithmetic expressions
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Num:
    value: float


@dataclass(frozen=True)
class Var:
    name: str


@dataclass(frozen=True)
class BinOp:
    op: str  # '+', '-', '*'
    left: "AExpr"
    right: "AExpr"


@dataclass(frozen=True)
class Neg:
    operand: "AExpr"


AExpr = Union[Num, Var, BinOp, Neg]


# ----------------------------------------------------------------------
# boolean expressions
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class BoolLit:
    value: bool


@dataclass(frozen=True)
class Cmp:
    op: str  # '<', '<=', '>', '>=', '==', '!='
    left: AExpr
    right: AExpr


@dataclass(frozen=True)
class BoolOp:
    op: str  # '&&', '||'
    left: "BExpr"
    right: "BExpr"


@dataclass(frozen=True)
class Not:
    operand: "BExpr"


BExpr = Union[BoolLit, Cmp, BoolOp, Not]


# ----------------------------------------------------------------------
# statements
# ----------------------------------------------------------------------
@dataclass
class Assign:
    target: str
    expr: AExpr


@dataclass
class AssignInterval:
    target: str
    lo: float
    hi: float


@dataclass
class Havoc:
    target: str


@dataclass
class Assume:
    cond: BExpr


@dataclass
class Assert:
    cond: BExpr
    label: Optional[str] = None


@dataclass
class If:
    cond: BExpr
    then_body: "Block"
    else_body: Optional["Block"] = None


@dataclass
class While:
    cond: BExpr
    body: "Block"


@dataclass
class Skip:
    pass


@dataclass
class Block:
    statements: List["Stmt"] = field(default_factory=list)


Stmt = Union[Assign, AssignInterval, Havoc, Assume, Assert, If, While, Skip, Block]


# ----------------------------------------------------------------------
# programs
# ----------------------------------------------------------------------
@dataclass
class Procedure:
    name: str
    body: Block
    variables: List[str] = field(default_factory=list)

    def __post_init__(self):
        if not self.variables:
            self.variables = collect_variables(self.body)


@dataclass
class Program:
    procedures: List[Procedure]

    def procedure(self, name: str) -> Procedure:
        for proc in self.procedures:
            if proc.name == name:
                return proc
        raise KeyError(f"no procedure named {name!r}")


# ----------------------------------------------------------------------
# helpers
# ----------------------------------------------------------------------
def collect_variables(node) -> List[str]:
    """All variable names in program order of first occurrence."""
    seen: List[str] = []

    def note(name: str) -> None:
        if name not in seen:
            seen.append(name)

    def walk_a(e: AExpr) -> None:
        if isinstance(e, Var):
            note(e.name)
        elif isinstance(e, BinOp):
            walk_a(e.left)
            walk_a(e.right)
        elif isinstance(e, Neg):
            walk_a(e.operand)

    def walk_b(b: BExpr) -> None:
        if isinstance(b, Cmp):
            walk_a(b.left)
            walk_a(b.right)
        elif isinstance(b, BoolOp):
            walk_b(b.left)
            walk_b(b.right)
        elif isinstance(b, Not):
            walk_b(b.operand)

    def walk_s(s: Stmt) -> None:
        if isinstance(s, Assign):
            note(s.target)
            walk_a(s.expr)
        elif isinstance(s, (AssignInterval, Havoc)):
            note(s.target)
        elif isinstance(s, (Assume, Assert)):
            walk_b(s.cond)
        elif isinstance(s, If):
            walk_b(s.cond)
            walk_s(s.then_body)
            if s.else_body is not None:
                walk_s(s.else_body)
        elif isinstance(s, While):
            walk_b(s.cond)
            walk_s(s.body)
        elif isinstance(s, Block):
            for sub in s.statements:
                walk_s(sub)

    walk_s(node if isinstance(node, Block) else Block([node]))
    return seen
