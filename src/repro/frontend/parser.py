"""Recursive-descent parser for the mini imperative language.

Grammar (EBNF)::

    program    ::= procedure* | block_items
    procedure  ::= 'proc' IDENT '{' stmt* '}'
    stmt       ::= IDENT '=' (aexpr | interval) ';'
                 | 'havoc' '(' IDENT ')' ';'
                 | 'assume' '(' bexpr ')' ';'
                 | 'assert' '(' bexpr ')' ';'
                 | 'if' '(' bexpr ')' block ('else' block)?
                 | 'while' '(' bexpr ')' block
                 | 'skip' ';'
    interval   ::= '[' aexpr ',' aexpr ']'        (constant bounds)
    block      ::= '{' stmt* '}'
    bexpr      ::= bterm ('||' bterm)*
    bterm      ::= bfactor ('&&' bfactor)*
    bfactor    ::= '!' bfactor | 'true' | 'false'
                 | '(' bexpr ')' | aexpr cmp aexpr
    aexpr      ::= term (('+'|'-') term)*
    term       ::= factor (('*'|'/'|'%') factor)*
    factor     ::= NUM | IDENT | '-' factor | '(' aexpr ')'

A source without ``proc`` headers is treated as a single procedure
named ``main``.  Division is only accepted with a constant non-zero
divisor and is folded into a multiplication by its reciprocal.
"""

from __future__ import annotations

from typing import List, Optional

from .ast_nodes import (
    AExpr, Assert, Assign, AssignInterval, Assume, BExpr, BinOp, Block,
    BoolLit, BoolOp, Cmp, Havoc, If, Neg, Not, Num, Procedure, Program,
    Skip,
    Var, While,
)
from .lexer import Token, tokenize


class ParseError(ValueError):
    def __init__(self, message: str, token: Token):
        super().__init__(f"{message} at line {token.line}, column {token.col} "
                         f"(got {token.text!r})")
        self.token = token


class _Parser:
    def __init__(self, tokens: List[Token]):
        self.tokens = tokens
        self.pos = 0

    # -- token plumbing -------------------------------------------------
    def peek(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.kind != "eof":
            self.pos += 1
        return tok

    def check(self, text: str) -> bool:
        return self.peek().text == text and self.peek().kind in ("op", "kw")

    def accept(self, text: str) -> bool:
        if self.check(text):
            self.advance()
            return True
        return False

    def expect(self, text: str) -> Token:
        if not self.check(text):
            raise ParseError(f"expected {text!r}", self.peek())
        return self.advance()

    def expect_ident(self) -> str:
        tok = self.peek()
        if tok.kind != "ident":
            raise ParseError("expected identifier", tok)
        self.advance()
        return tok.text

    # -- arithmetic ------------------------------------------------------
    def parse_aexpr(self) -> AExpr:
        node = self.parse_term()
        while self.peek().text in ("+", "-") and self.peek().kind == "op":
            op = self.advance().text
            right = self.parse_term()
            node = BinOp(op, node, right)
        return node

    def parse_term(self) -> AExpr:
        node = self.parse_factor()
        while self.peek().text in ("*", "/", "%") and self.peek().kind == "op":
            op = self.advance().text
            right = self.parse_factor()
            if op == "/":
                if not isinstance(right, Num) or right.value == 0:
                    raise ParseError("division requires a non-zero constant divisor",
                                     self.peek())
                node = BinOp("*", node, Num(1.0 / right.value))
            elif op == "%":
                raise ParseError("modulo is not supported", self.peek())
            else:
                node = BinOp("*", node, right)
        return node

    def parse_factor(self) -> AExpr:
        tok = self.peek()
        if tok.kind == "num":
            self.advance()
            return Num(float(tok.text))
        if tok.kind == "ident":
            self.advance()
            return Var(tok.text)
        if self.accept("-"):
            return Neg(self.parse_factor())
        if self.accept("("):
            node = self.parse_aexpr()
            self.expect(")")
            return node
        raise ParseError("expected expression", tok)

    # -- boolean ----------------------------------------------------------
    def parse_bexpr(self) -> BExpr:
        node = self.parse_bterm()
        while self.check("||"):
            self.advance()
            node = BoolOp("||", node, self.parse_bterm())
        return node

    def parse_bterm(self) -> BExpr:
        node = self.parse_bfactor()
        while self.check("&&"):
            self.advance()
            node = BoolOp("&&", node, self.parse_bfactor())
        return node

    def parse_bfactor(self) -> BExpr:
        if self.accept("!"):
            return Not(self.parse_bfactor())
        if self.accept("true"):
            return BoolLit(True)
        if self.accept("false"):
            return BoolLit(False)
        # Parenthesis ambiguity: '(' may open a boolean or arithmetic
        # grouping.  Try boolean first, then arithmetic comparison.
        if self.check("("):
            saved = self.pos
            self.advance()
            try:
                inner = self.parse_bexpr()
                self.expect(")")
                return inner
            except ParseError:
                self.pos = saved
        left = self.parse_aexpr()
        tok = self.peek()
        if tok.text not in ("<", "<=", ">", ">=", "==", "!="):
            raise ParseError("expected comparison operator", tok)
        self.advance()
        right = self.parse_aexpr()
        return Cmp(tok.text, left, right)

    # -- statements -------------------------------------------------------
    def parse_block(self) -> Block:
        self.expect("{")
        statements = []
        while not self.check("}"):
            statements.append(self.parse_stmt())
        self.expect("}")
        return Block(statements)

    def parse_stmt(self):
        tok = self.peek()
        if self.accept("skip"):
            self.expect(";")
            return Skip()
        if self.accept("havoc"):
            self.expect("(")
            name = self.expect_ident()
            self.expect(")")
            self.expect(";")
            return Havoc(name)
        if self.accept("assume"):
            self.expect("(")
            cond = self.parse_bexpr()
            self.expect(")")
            self.expect(";")
            return Assume(cond)
        if self.accept("assert"):
            self.expect("(")
            cond = self.parse_bexpr()
            self.expect(")")
            self.expect(";")
            return Assert(cond)
        if self.accept("if"):
            self.expect("(")
            cond = self.parse_bexpr()
            self.expect(")")
            then_body = self.parse_block()
            else_body = None
            if self.accept("else"):
                if self.check("if"):  # else-if chain: nest the If
                    else_body = Block([self.parse_stmt()])
                else:
                    else_body = self.parse_block()
            return If(cond, then_body, else_body)
        if self.accept("while"):
            self.expect("(")
            cond = self.parse_bexpr()
            self.expect(")")
            return While(cond, self.parse_block())
        if tok.kind == "ident":
            name = self.expect_ident()
            self.expect("=")
            if self.check("["):
                self.advance()
                lo = self._const_aexpr()
                self.expect(",")
                hi = self._const_aexpr()
                self.expect("]")
                self.expect(";")
                return AssignInterval(name, lo, hi)
            expr = self.parse_aexpr()
            self.expect(";")
            return Assign(name, expr)
        raise ParseError("expected statement", tok)

    def _const_aexpr(self) -> float:
        expr = self.parse_aexpr()
        value = _fold_const(expr)
        if value is None:
            raise ParseError("interval bounds must be constants", self.peek())
        return value

    # -- programs ----------------------------------------------------------
    def parse_program(self) -> Program:
        procedures = []
        if self.check("proc"):
            while self.accept("proc"):
                name = self.expect_ident()
                body = self.parse_block()
                procedures.append(Procedure(name, body))
            if self.peek().kind != "eof":
                raise ParseError("expected 'proc' or end of input", self.peek())
            return Program(procedures)
        statements = []
        while self.peek().kind != "eof":
            statements.append(self.parse_stmt())
        return Program([Procedure("main", Block(statements))])


def _fold_const(expr: AExpr) -> Optional[float]:
    if isinstance(expr, Num):
        return expr.value
    if isinstance(expr, Neg):
        inner = _fold_const(expr.operand)
        return None if inner is None else -inner
    if isinstance(expr, BinOp):
        left, right = _fold_const(expr.left), _fold_const(expr.right)
        if left is None or right is None:
            return None
        if expr.op == "+":
            return left + right
        if expr.op == "-":
            return left - right
        if expr.op == "*":
            return left * right
    return None


def parse_program(source: str) -> Program:
    """Parse a full (possibly multi-procedure) program."""
    return _Parser(tokenize(source)).parse_program()


def parse_procedure(source: str, name: str = "main") -> Procedure:
    """Parse a single-procedure source into a named Procedure."""
    program = parse_program(source)
    if len(program.procedures) != 1:
        raise ValueError("parse_procedure expects a single-procedure source")
    proc = program.procedures[0]
    proc.name = name
    return proc
