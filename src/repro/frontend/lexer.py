"""Lexer for the mini imperative language."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

KEYWORDS = {
    "if", "else", "while", "assume", "assert", "havoc", "skip",
    "true", "false", "proc",
}

TWO_CHAR = {"<=", ">=", "==", "!=", "&&", "||"}
ONE_CHAR = set("+-*/%(){}[],;<>=!")


class LexError(ValueError):
    """Raised on malformed input, with line/column context."""

    def __init__(self, message: str, line: int, col: int):
        super().__init__(f"{message} at line {line}, column {col}")
        self.line = line
        self.col = col


@dataclass(frozen=True)
class Token:
    kind: str  # 'num' | 'ident' | 'kw' | 'op' | 'eof'
    text: str
    line: int
    col: int

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.text!r}, {self.line}:{self.col})"


def tokenize(source: str) -> List[Token]:
    """Tokenise ``source``; ``//`` and ``#`` start line comments."""
    tokens: List[Token] = []
    line, col = 1, 1
    i, size = 0, len(source)
    while i < size:
        ch = source[i]
        if ch == "\n":
            line += 1
            col = 1
            i += 1
            continue
        if ch in " \t\r":
            i += 1
            col += 1
            continue
        if ch == "#" or source.startswith("//", i):
            while i < size and source[i] != "\n":
                i += 1
            continue
        start_col = col
        if ch.isdigit() or (ch == "." and i + 1 < size and source[i + 1].isdigit()):
            j = i
            seen_dot = False
            while j < size and (source[j].isdigit() or (source[j] == "." and not seen_dot)):
                if source[j] == ".":
                    seen_dot = True
                j += 1
            text = source[i:j]
            tokens.append(Token("num", text, line, start_col))
            col += j - i
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < size and (source[j].isalnum() or source[j] == "_"):
                j += 1
            text = source[i:j]
            kind = "kw" if text in KEYWORDS else "ident"
            tokens.append(Token(kind, text, line, start_col))
            col += j - i
            i = j
            continue
        pair = source[i:i + 2]
        if pair in TWO_CHAR:
            tokens.append(Token("op", pair, line, start_col))
            i += 2
            col += 2
            continue
        if ch in ONE_CHAR:
            tokens.append(Token("op", ch, line, start_col))
            i += 1
            col += 1
            continue
        raise LexError(f"unexpected character {ch!r}", line, col)
    tokens.append(Token("eof", "", line, col))
    return tokens
