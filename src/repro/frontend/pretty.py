"""Pretty printer for the mini language (round-trips through the parser)."""

from __future__ import annotations

from .ast_nodes import (
    AExpr, Assert, Assign, AssignInterval, Assume, BExpr, BinOp, Block,
    BoolLit, BoolOp, Cmp, Havoc, If, Neg, Not, Num, Procedure, Program,
    Skip, Stmt, Var, While,
)


def _num(value: float) -> str:
    if value == int(value):
        return str(int(value))
    return repr(value)


def pretty_aexpr(expr: AExpr) -> str:
    if isinstance(expr, Num):
        return _num(expr.value) if expr.value >= 0 else f"(-{_num(-expr.value)})"
    if isinstance(expr, Var):
        return expr.name
    if isinstance(expr, Neg):
        return f"(-{pretty_aexpr(expr.operand)})"
    if isinstance(expr, BinOp):
        return f"({pretty_aexpr(expr.left)} {expr.op} {pretty_aexpr(expr.right)})"
    raise TypeError(f"not an arithmetic expression: {expr!r}")


def pretty_bexpr(expr: BExpr) -> str:
    if isinstance(expr, BoolLit):
        return "true" if expr.value else "false"
    if isinstance(expr, Cmp):
        return f"{pretty_aexpr(expr.left)} {expr.op} {pretty_aexpr(expr.right)}"
    if isinstance(expr, BoolOp):
        return f"({pretty_bexpr(expr.left)}) {expr.op} ({pretty_bexpr(expr.right)})"
    if isinstance(expr, Not):
        return f"!({pretty_bexpr(expr.operand)})"
    raise TypeError(f"not a boolean expression: {expr!r}")


def pretty_stmt(stmt: Stmt, indent: int = 0) -> str:
    pad = "  " * indent
    if isinstance(stmt, Assign):
        return f"{pad}{stmt.target} = {pretty_aexpr(stmt.expr)};"
    if isinstance(stmt, AssignInterval):
        return f"{pad}{stmt.target} = [{_num(stmt.lo)}, {_num(stmt.hi)}];"
    if isinstance(stmt, Havoc):
        return f"{pad}havoc({stmt.target});"
    if isinstance(stmt, Assume):
        return f"{pad}assume({pretty_bexpr(stmt.cond)});"
    if isinstance(stmt, Assert):
        return f"{pad}assert({pretty_bexpr(stmt.cond)});"
    if isinstance(stmt, Skip):
        return f"{pad}skip;"
    if isinstance(stmt, If):
        out = [f"{pad}if ({pretty_bexpr(stmt.cond)}) {{"]
        out.extend(pretty_stmt(s, indent + 1) for s in stmt.then_body.statements)
        if stmt.else_body is not None:
            out.append(f"{pad}}} else {{")
            out.extend(pretty_stmt(s, indent + 1) for s in stmt.else_body.statements)
        out.append(f"{pad}}}")
        return "\n".join(out)
    if isinstance(stmt, While):
        out = [f"{pad}while ({pretty_bexpr(stmt.cond)}) {{"]
        out.extend(pretty_stmt(s, indent + 1) for s in stmt.body.statements)
        out.append(f"{pad}}}")
        return "\n".join(out)
    if isinstance(stmt, Block):
        return "\n".join(pretty_stmt(s, indent) for s in stmt.statements)
    raise TypeError(f"not a statement: {stmt!r}")


def pretty(node) -> str:
    """Render a Program / Procedure / statement / expression to source."""
    if isinstance(node, Program):
        return "\n\n".join(pretty(proc) for proc in node.procedures)
    if isinstance(node, Procedure):
        body = "\n".join(pretty_stmt(s, 1) for s in node.body.statements)
        return f"proc {node.name} {{\n{body}\n}}"
    if isinstance(node, (Assign, AssignInterval, Havoc, Assume, Assert,
                         If, While, Skip, Block)):
        return pretty_stmt(node)
    if isinstance(node, (BoolLit, Cmp, BoolOp, Not)):
        return pretty_bexpr(node)
    return pretty_aexpr(node)
