"""A concrete interpreter for the mini language.

Executes a procedure with concrete (integer) values, resolving the
non-deterministic constructs (``x = [l, u]``, ``havoc``) with a seeded
random generator.  Three uses:

* **soundness fuzzing** -- every completed concrete run must end inside
  the abstract interpreter's exit invariant, and must never violate an
  assertion the analyzer verified;
* **counterexample confirmation** for failed assertion checks;
* a reference semantics for documentation and examples.

Runs are bounded (``max_steps``): an execution that exceeds the budget
is reported as incomplete rather than silently truncated, since a
truncated environment is *not* a real exit state.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .ast_nodes import (
    AExpr, Assert, Assign, AssignInterval, Assume, BExpr, BinOp, Block,
    BoolLit, BoolOp, Cmp, Havoc, If, Neg, Not, Num, Procedure, Skip, Var,
    While,
)

#: Range used for unconstrained non-deterministic values (havoc).
HAVOC_RANGE = 64


class InfeasiblePath(Exception):
    """Raised when an ``assume`` fails: this execution does not exist."""


class StepBudgetExceeded(Exception):
    """Raised when the execution exceeds its step budget."""


@dataclass
class RunResult:
    """Outcome of one concrete execution."""

    env: Dict[str, float]
    assertion_failures: List[str] = field(default_factory=list)
    steps: int = 0

    @property
    def ok(self) -> bool:
        return not self.assertion_failures


class Interpreter:
    """Concrete executor over integer-valued environments."""

    def __init__(self, rng: Optional[random.Random] = None,
                 max_steps: int = 20_000):
        self.rng = rng if rng is not None else random.Random(0)
        self.max_steps = max_steps

    # ------------------------------------------------------------------
    # expressions
    # ------------------------------------------------------------------
    def eval_aexpr(self, expr: AExpr, env: Dict[str, float]) -> float:
        if isinstance(expr, Num):
            return float(expr.value)
        if isinstance(expr, Var):
            return env.setdefault(expr.name, self._fresh())
        if isinstance(expr, Neg):
            return -self.eval_aexpr(expr.operand, env)
        if isinstance(expr, BinOp):
            left = self.eval_aexpr(expr.left, env)
            right = self.eval_aexpr(expr.right, env)
            if expr.op == "+":
                return left + right
            if expr.op == "-":
                return left - right
            if expr.op == "*":
                return left * right
        raise TypeError(f"cannot evaluate {expr!r}")

    def eval_bexpr(self, cond: BExpr, env: Dict[str, float]) -> bool:
        if isinstance(cond, BoolLit):
            return cond.value
        if isinstance(cond, Not):
            return not self.eval_bexpr(cond.operand, env)
        if isinstance(cond, BoolOp):
            left = self.eval_bexpr(cond.left, env)
            if cond.op == "&&":
                return left and self.eval_bexpr(cond.right, env)
            return left or self.eval_bexpr(cond.right, env)
        if isinstance(cond, Cmp):
            left = self.eval_aexpr(cond.left, env)
            right = self.eval_aexpr(cond.right, env)
            return {
                "<": left < right, "<=": left <= right,
                ">": left > right, ">=": left >= right,
                "==": left == right, "!=": left != right,
            }[cond.op]
        raise TypeError(f"cannot evaluate {cond!r}")

    def _fresh(self) -> float:
        return float(self.rng.randint(-HAVOC_RANGE, HAVOC_RANGE))

    # ------------------------------------------------------------------
    # statements
    # ------------------------------------------------------------------
    def run(self, proc: Procedure) -> RunResult:
        """Execute one path through a procedure.

        Raises :class:`InfeasiblePath` if an ``assume`` fails and
        :class:`StepBudgetExceeded` if the budget runs out.
        """
        env: Dict[str, float] = {}
        result = RunResult(env)
        self._exec(proc.body, env, result)
        return result

    def _tick(self, result: RunResult) -> None:
        result.steps += 1
        if result.steps > self.max_steps:
            raise StepBudgetExceeded()

    def _exec(self, stmt, env: Dict[str, float], result: RunResult) -> None:
        self._tick(result)
        if isinstance(stmt, Block):
            for sub in stmt.statements:
                self._exec(sub, env, result)
        elif isinstance(stmt, Assign):
            env[stmt.target] = self.eval_aexpr(stmt.expr, env)
        elif isinstance(stmt, AssignInterval):
            lo, hi = int(stmt.lo), int(stmt.hi)
            env[stmt.target] = float(self.rng.randint(lo, hi))
        elif isinstance(stmt, Havoc):
            env[stmt.target] = self._fresh()
        elif isinstance(stmt, Assume):
            if not self.eval_bexpr(stmt.cond, env):
                raise InfeasiblePath()
        elif isinstance(stmt, Assert):
            if not self.eval_bexpr(stmt.cond, env):
                from .pretty import pretty_bexpr
                result.assertion_failures.append(pretty_bexpr(stmt.cond))
        elif isinstance(stmt, If):
            if self.eval_bexpr(stmt.cond, env):
                self._exec(stmt.then_body, env, result)
            elif stmt.else_body is not None:
                self._exec(stmt.else_body, env, result)
        elif isinstance(stmt, While):
            while self.eval_bexpr(stmt.cond, env):
                self._tick(result)
                self._exec(stmt.body, env, result)
        elif isinstance(stmt, Skip):
            pass
        else:
            raise TypeError(f"cannot execute {stmt!r}")


def sample_runs(proc: Procedure, *, tries: int = 50, seed: int = 0,
                max_steps: int = 20_000) -> List[RunResult]:
    """Collect completed concrete runs over random nondeterminism."""
    out: List[RunResult] = []
    rng = random.Random(seed)
    for _ in range(tries):
        interp = Interpreter(random.Random(rng.randrange(2 ** 30)), max_steps)
        try:
            out.append(interp.run(proc))
        except (InfeasiblePath, StepBudgetExceeded):
            continue
    return out
