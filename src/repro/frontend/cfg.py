"""Control-flow graph construction for the mini language.

Nodes are integer program points; edges carry an atomic *action*:

* ``Assign`` / ``AssignInterval`` / ``Havoc`` -- state updates,
* ``Assume`` -- a guard (branch conditions become complementary
  ``Assume`` edges), or
* ``None`` -- a no-op (block glue, loop back edges).

``assert`` statements do not alter control flow; they are recorded as
*checks* attached to the node where they execute, and the analyzer
discharges them against the invariant at that node.

``while`` condition nodes are collected in ``loop_heads`` -- the
widening points of the fixpoint engine.  A reverse-postorder of the
graph (back edges ignored) provides the worklist priority.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple, Union

from .ast_nodes import (
    Assert, Assign, AssignInterval, Assume, Block, Havoc, If, Not,
    Procedure, Skip, Stmt, While,
)

Action = Optional[Union[Assign, AssignInterval, Havoc, Assume]]


@dataclass(frozen=True)
class CfgEdge:
    src: int
    dst: int
    action: Action

    def describe(self) -> str:
        from .pretty import pretty
        if self.action is None:
            return "nop"
        return pretty(self.action).strip().rstrip(";")


@dataclass
class LoopInfo:
    """One ``while`` loop: its head, all nodes strictly inside (head
    included), and the nested loops.  Together these form the loop
    nesting tree that drives the fixpoint engine's recursive
    (Bourdoncle-style) iteration strategy."""

    head: int
    nodes: Set[int] = field(default_factory=set)
    subloops: List["LoopInfo"] = field(default_factory=list)


@dataclass
class CFG:
    """A per-procedure control-flow graph."""

    name: str
    entry: int
    exit: int
    n_nodes: int
    edges: List[CfgEdge]
    loop_heads: Set[int]
    checks: List[Tuple[int, Assert]]
    variables: List[str]
    successors: Dict[int, List[CfgEdge]] = field(default_factory=dict)
    predecessors: Dict[int, List[CfgEdge]] = field(default_factory=dict)
    #: Loop nesting tree (top-level loops).  None for hand-built CFGs,
    #: in which case the engine falls back to the generic worklist.
    loop_tree: Optional[List[LoopInfo]] = None

    def __post_init__(self):
        if not self.successors:
            for edge in self.edges:
                self.successors.setdefault(edge.src, []).append(edge)
                self.predecessors.setdefault(edge.dst, []).append(edge)

    @property
    def var_index(self) -> Dict[str, int]:
        return {name: i for i, name in enumerate(self.variables)}

    def reverse_postorder(self) -> List[int]:
        """Node order for the worklist (back edges ignored via DFS state)."""
        order: List[int] = []
        visited: Set[int] = set()
        # Iterative DFS (generated programs can have very deep CFGs).
        stack: List[Tuple[int, int]] = [(self.entry, 0)]
        visited.add(self.entry)
        while stack:
            node, child = stack[-1]
            succs = self.successors.get(node, [])
            if child < len(succs):
                stack[-1] = (node, child + 1)
                dst = succs[child].dst
                if dst not in visited:
                    visited.add(dst)
                    stack.append((dst, 0))
            else:
                stack.pop()
                order.append(node)
        # Unreachable nodes (e.g. after assume(false)) go last.
        for node in range(self.n_nodes):
            if node not in visited:
                order.append(node)
        order.reverse()
        return order


class _Builder:
    def __init__(self):
        self.n_nodes = 0
        self.edges: List[CfgEdge] = []
        self.loop_heads: Set[int] = set()
        self.checks: List[Tuple[int, Assert]] = []
        self.loop_tree: List[LoopInfo] = []
        self._loop_stack: List[LoopInfo] = []

    def new_node(self) -> int:
        node = self.n_nodes
        self.n_nodes += 1
        for loop in self._loop_stack:
            loop.nodes.add(node)
        return node

    def add_edge(self, src: int, dst: int, action: Action) -> None:
        self.edges.append(CfgEdge(src, dst, action))

    def lower_stmt(self, stmt: Stmt, cur: int) -> int:
        """Lower one statement; returns the node where control continues."""
        if isinstance(stmt, (Assign, AssignInterval, Havoc, Assume)):
            nxt = self.new_node()
            self.add_edge(cur, nxt, stmt)
            return nxt
        if isinstance(stmt, Assert):
            self.checks.append((cur, stmt))
            return cur
        if isinstance(stmt, Skip):
            return cur
        if isinstance(stmt, Block):
            for sub in stmt.statements:
                cur = self.lower_stmt(sub, cur)
            return cur
        if isinstance(stmt, If):
            then_entry = self.new_node()
            self.add_edge(cur, then_entry, Assume(stmt.cond))
            then_exit = self.lower_stmt(stmt.then_body, then_entry)
            else_entry = self.new_node()
            self.add_edge(cur, else_entry, Assume(Not(stmt.cond)))
            else_exit = (self.lower_stmt(stmt.else_body, else_entry)
                         if stmt.else_body is not None else else_entry)
            merge = self.new_node()
            self.add_edge(then_exit, merge, None)
            self.add_edge(else_exit, merge, None)
            return merge
        if isinstance(stmt, While):
            loop = LoopInfo(head=-1)
            (self._loop_stack[-1].subloops if self._loop_stack
             else self.loop_tree).append(loop)
            self._loop_stack.append(loop)
            head = self.new_node()
            loop.head = head
            self.loop_heads.add(head)
            self.add_edge(cur, head, None)
            body_entry = self.new_node()
            self.add_edge(head, body_entry, Assume(stmt.cond))
            body_exit = self.lower_stmt(stmt.body, body_entry)
            self.add_edge(body_exit, head, None)  # back edge
            self._loop_stack.pop()
            after = self.new_node()  # the exit node lives outside the loop
            self.add_edge(head, after, Assume(Not(stmt.cond)))
            return after
        raise TypeError(f"cannot lower {stmt!r}")


def build_cfg(proc: Procedure) -> CFG:
    """Build the control-flow graph of a procedure."""
    builder = _Builder()
    entry = builder.new_node()
    exit_node = builder.lower_stmt(proc.body, entry)
    return CFG(
        name=proc.name,
        entry=entry,
        exit=exit_node,
        n_nodes=builder.n_nodes,
        edges=builder.edges,
        loop_heads=builder.loop_heads,
        checks=builder.checks,
        variables=list(proc.variables),
        loop_tree=builder.loop_tree,
    )
