"""Mini imperative language front end.

The analyzer substrate consumes programs in a small C-like language
(assignments, ``if``/``while``, ``assume``/``assert``, ``havoc``,
non-deterministic interval assignments).  This package provides the
lexer, recursive-descent parser, AST, pretty printer and control-flow
graph builder.
"""

from .ast_nodes import (
    Assert,
    Assign,
    AssignInterval,
    Assume,
    BinOp,
    Block,
    BoolLit,
    BoolOp,
    Cmp,
    Havoc,
    If,
    Neg,
    Not,
    Num,
    Procedure,
    Program,
    Skip,
    Var,
    While,
)
from .cfg import CFG, CfgEdge, build_cfg
from .lexer import LexError, tokenize
from .parser import ParseError, parse_procedure, parse_program
from .pretty import pretty

__all__ = [
    "Assert", "Assign", "AssignInterval", "Assume", "BinOp", "Block",
    "BoolLit", "BoolOp", "CFG", "CfgEdge", "Cmp", "Havoc", "If", "LexError",
    "Neg", "Not", "Num", "ParseError", "Procedure", "Program", "Skip",
    "Var", "While", "build_cfg", "parse_procedure", "parse_program",
    "pretty", "tokenize",
]
