"""Fault injection: controlled failures at production hook points.

The chaos tests need to answer "what does the service do when a worker
segfaults mid-job / the disk fills / a cache file is half-written / a
DBM is corrupted in memory?" without waiting for those events to
happen.  This module is a tiny registry of named *fault points*;
production code asks :func:`fire` at the matching hook and the
default answer -- when nothing is armed -- is a single dict-emptiness
test, so the hooks cost nothing in normal operation.

Arming works two ways:

* **programmatic** -- :func:`inject` / :func:`clear` (or the
  :func:`injected` context manager) in the current process; forked
  worker processes inherit the armed registry.
* **environment** -- ``REPRO_FAULTS="point[:arg][,point...]"``, read at
  import and by every freshly spawned worker, so faults survive
  non-fork start methods and CLI subprocess tests.

Fault points wired into production code:

=====================  ====================================================
``worker_kill``        :func:`repro.service.job.execute_job` calls
                       ``os._exit(13)`` mid-job (after parsing, before
                       analysis).  Arg restricts to one job label.
``cache_enospc``       :meth:`repro.service.cache.ResultCache.put` raises
                       ``OSError(ENOSPC)`` instead of writing.
``dbm_corrupt``        :meth:`repro.core.octagon.Octagon.closure` breaks
                       matrix coherence after closing -- the paranoid
                       sentinel must catch it.
``serve_worker_kill``  The serve supervisor directs the next dispatched
                       worker to ``os._exit(13)`` after receiving its
                       job (a SIGKILL/segfault mid-request).  Arg
                       restricts to one job label.  One-shot: fired via
                       :func:`fire_once` so the retry after respawn
                       succeeds.
``serve_worker_hang``  The serve supervisor directs the next dispatched
                       worker to stop heartbeating and sleep forever (a
                       wedged fixpoint).  Arg restricts to one job
                       label.  One-shot.
``serve_conn_reset``   :meth:`repro.serve.server.AnalysisServer` drops
                       the client connection after computing a response
                       but before sending it (a mid-reply network
                       fault).  One-shot.
=====================  ====================================================

Each firing bumps the ``faults_injected`` stats counter.  Helpers
:func:`corrupt_octagon` and :func:`truncate_file` are direct-call
versions for unit tests.
"""

from __future__ import annotations

import errno
import os
from contextlib import contextmanager
from typing import Dict, Iterator, Optional

from ..core import stats
from ..obs import metrics

_FIRED = 0

stats.register_counter_source(lambda: {"faults_injected": _FIRED})

metrics.REGISTRY.counter("faults_injected",
                         "Armed fault points that fired this process")

#: Armed fault points: name -> optional argument (e.g. a job label).
_ACTIVE: Dict[str, Optional[str]] = {}

_ENV_VAR = "REPRO_FAULTS"


def _parse_env(value: str) -> Dict[str, Optional[str]]:
    armed: Dict[str, Optional[str]] = {}
    for item in value.split(","):
        item = item.strip()
        if not item:
            continue
        name, _, arg = item.partition(":")
        armed[name] = arg or None
    return armed


def _load_env() -> None:
    value = os.environ.get(_ENV_VAR, "")
    if value:
        _ACTIVE.update(_parse_env(value))


_load_env()


def inject(name: str, arg: Optional[str] = None) -> None:
    """Arm fault point ``name`` (also exported via the environment so
    spawned -- not just forked -- workers see it)."""
    _ACTIVE[name] = arg
    spec = ",".join(f"{k}:{v}" if v else k for k, v in sorted(_ACTIVE.items()))
    os.environ[_ENV_VAR] = spec


def clear(name: Optional[str] = None) -> None:
    """Disarm one fault point, or all of them."""
    if name is None:
        _ACTIVE.clear()
    else:
        _ACTIVE.pop(name, None)
    if _ACTIVE:
        os.environ[_ENV_VAR] = ",".join(
            f"{k}:{v}" if v else k for k, v in sorted(_ACTIVE.items()))
    else:
        os.environ.pop(_ENV_VAR, None)


@contextmanager
def injected(name: str, arg: Optional[str] = None) -> Iterator[None]:
    """Arm ``name`` for the duration of the block."""
    inject(name, arg)
    try:
        yield
    finally:
        clear(name)


def armed() -> Dict[str, Optional[str]]:
    """Snapshot of the armed fault points (testing/diagnostics)."""
    return dict(_ACTIVE)


def fire(name: str, arg: Optional[str] = None) -> bool:
    """Should fault ``name`` trigger here?

    Near-zero cost when nothing is armed.  If the armed point carries
    an argument it must equal ``arg`` (e.g. a specific job label).
    """
    if not _ACTIVE:
        return False
    if name not in _ACTIVE:
        return False
    want = _ACTIVE[name]
    if want is not None and want != arg:
        return False
    global _FIRED
    _FIRED += 1
    stats.bump("faults_injected_events")
    return True


def fire_once(name: str, arg: Optional[str] = None) -> bool:
    """Like :func:`fire`, but disarms the point when it fires.

    The serve chaos points use this: the fault hits exactly one
    dispatch, so the supervisor's retry-after-respawn path must then
    produce the *correct* result -- which is the recovery property the
    chaos tests assert.
    """
    if fire(name, arg):
        clear(name)
        return True
    return False


# ----------------------------------------------------------------------
# concrete fault actions (used at hook points and directly by tests)
# ----------------------------------------------------------------------
def kill_process(code: int = 13) -> None:
    """Die the way a segfault does: no cleanup, no exception, no report."""
    os._exit(code)


def raise_enospc(path: str = "<injected>") -> None:
    raise OSError(errno.ENOSPC, "No space left on device (injected)", path)


def corrupt_octagon(oct_) -> None:
    """Break the octagon's coherence invariant in place.

    Writes one off-diagonal cell without updating its coherent mirror
    (``mat[i, j]`` must always equal ``mat[j^1, i^1]``) -- exactly the
    kind of single-cell memory corruption the paranoid sentinel exists
    to catch.  Bypasses COW bookkeeping on purpose: real corruption
    does not announce itself.
    """
    m = oct_._cow.arr
    if m.shape[0] < 4:
        raise ValueError("need at least 2 variables to break coherence")
    m[0, 2] = -1234.5
    m[3, 1] = 999.25


def corrupt_sparse_octagon(oct_) -> None:
    """Tighten one stored cell of a graph-form octagon in place.

    The graph representation has no coherence mirror to break (keys are
    canonical by construction), so corruption here is a silently
    *wrong bound*: a stored cell strictly below its closed value, which
    the sentinel's closed-claim certification must catch.  Bypasses the
    cache-invalidation bookkeeping on purpose.
    """
    if oct_.cells:
        oct_.cells[min(oct_.cells)] = -1234.5
    elif oct_.snap is not None:
        oct_.snap[0] = -1234.5
    else:
        raise ValueError("nothing stored to corrupt (top octagon)")


def truncate_file(path: str, keep_bytes: Optional[int] = None) -> None:
    """Truncate a file the way a crash mid-write does.

    Default: drop the second half, which leaves a JSONL file with a
    dangling partial last line.
    """
    size = os.path.getsize(path)
    keep = size // 2 if keep_bytes is None else keep_bytes
    with open(path, "r+b") as fh:
        fh.truncate(keep)


__all__ = [
    "armed",
    "clear",
    "corrupt_octagon",
    "corrupt_sparse_octagon",
    "fire",
    "fire_once",
    "inject",
    "injected",
    "kill_process",
    "raise_enospc",
    "truncate_file",
]
