"""Test-support utilities shipped with the library.

:mod:`repro.testing.faults` is the fault-injection registry used by
the chaos tests (and available to operators reproducing incidents):
it can corrupt DBMs, kill workers mid-job, truncate cache/journal
files and fake ENOSPC at the hook points wired into production code.
"""

from . import faults

__all__ = ["faults"]
