"""A sparsity-preserving octagon backend (constraint-graph DBM).

:class:`SparseOctagon` implements the same abstract-domain interface as
the dense :class:`~repro.core.octagon.Octagon`, but never materialises
the ``(2n)^2`` matrix on the analysis path.  The representation
(following Jourdan, *Sparsity Preserving Algorithms for Octagons*, and
Chawdhary/Robbins/King, *Incrementally Closing Octagons*) is:

* ``cells`` -- a dict from canonical half keys ``(r, s)`` (``s <=
  (r | 1)``, ``r != s``) to bounds.  A finite value is an explicit DBM
  cell.  An ``INF`` value is a *sentinel*: the cell is explicitly
  trivial even though the unary snapshot below would imply a finite
  bound (widening produces these).
* ``snap`` -- the unary bounds ``m[i, i^1]`` as of the last closure
  (``None`` when never closed).  Strong closure's strengthening step
  makes every pair of unary-bounded variables relational
  (``m[i, j] <- (u_i + u_{j^1})/2``); storing those *mixed* cells
  explicitly would connect everything into one dense component.  They
  stay implicit: a cell absent from ``cells`` has the value implied by
  the snapshot.

The defining invariant is **cellwise mirroring**: at every point in an
operator sequence, ``val(i, j)`` equals the matrix cell the dense
backend would hold after the same sequence -- raw or closed.  This is
what makes the cross-backend differential mode (bit-identical verdicts
*and* bounds) a theorem about the representation rather than a hope;
the strengthening-implied cells are consequences of the unary bounds,
so a DBM whose only inter-component cells are implied mixes closes
per component (its concretisation is a product), and the snapshot
reproduces even the dense backend's *stale* mixes after an
unclosed meet, because it remembers the unaries of the closure that
created them rather than the current ones.

Closure gathers each explicit component into a tiny dense submatrix
and runs the registered closure kernels on it, so cell traffic (and
budget charge) is ``sum (2|B|)^2`` instead of ``(2n)^2``.  When the
stored representation densifies past ``GraphPolicy.threshold`` the
closure falls back to one dense sweep over a materialised matrix and
reduces the result back to cells (with hysteresis so the choice does
not thrash).  Exact arithmetic note: implied cells are recomputed from
the snapshot (``(a + b) * 0.5``) rather than stored and shifted, so
bit-parity with the dense backend relies on exact (dyadic) arithmetic
-- which all suite programs and the differential tests use.
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..core import budget as _budget
from ..core import kernels
from ..core import sentinel as _sentinel
from ..core import stats
from ..core.bounds import INF, is_finite
from ..core.cow import is_enabled as _cow_enabled
from ..core.constraints import (
    LinExpr,
    OctConstraint,
    constraint_of_cell,
    dbm_cells,
)
from ..core.indexing import half_size
from ..core.kernels.graph import Key, UnionFind, block_indices, canon
from ..core.kinds import DEFAULT_GRAPH_POLICY, DbmKind, GraphPolicy
from ..obs import metrics, trace
from ..testing import faults as _faults

metrics.REGISTRY.counter(
    "sparse_rep_switches",
    "Graph-octagon DBMs that crossed the dense/graph closure boundary")


class SparseOctagon:
    """An octagon over ``n`` variables in constraint-graph form."""

    __slots__ = ("n", "cells", "snap", "closed", "_bottom", "policy",
                 "dense_mode", "_ccache", "_alias")

    def __init__(
        self,
        n: int,
        cells: Optional[Dict[Key, float]] = None,
        snap: Optional[List[float]] = None,
        *,
        closed: bool = False,
        bottom: bool = False,
        policy: GraphPolicy = DEFAULT_GRAPH_POLICY,
        dense_mode: bool = False,
    ):
        self.n = n
        self.cells = cells if cells is not None else {}
        self.snap = snap
        self.closed = closed
        self._bottom = bottom
        self.policy = policy
        self.dense_mode = dense_mode
        self._ccache: Optional["SparseOctagon"] = None
        # Value-identity token mirroring the dense backend's COW matrix
        # identity: shared by copy(), replaced by every in-place write.
        # The dense backend short-circuits join/is_leq/is_eq on aliased
        # matrices (returning the *raw* operand), and bit-parity of
        # analysis trajectories requires taking those exact shortcuts.
        self._alias: object = object()

    # ------------------------------------------------------------------
    # cell access
    # ------------------------------------------------------------------
    def _val_key(self, k: Key) -> float:
        """Value of the canonical half cell ``k`` (not the diagonal)."""
        v = self.cells.get(k)
        if v is not None:
            return v
        s = self.snap
        if s is not None:
            a = s[k[0]]
            b = s[k[1] ^ 1]
            if a < INF and b < INF:
                return (a + b) * 0.5
        return INF

    def val(self, i: int, j: int) -> float:
        """The coherent DBM cell ``m[i, j]`` this representation denotes."""
        if i == j:
            return 0.0
        return self._val_key(canon(i, j))

    def _u(self, i: int) -> float:
        """Current unary value ``m[i, i^1]``."""
        v = self.cells.get((i, i ^ 1))
        if v is not None:
            return v
        if self.snap is not None:
            return self.snap[i]
        return INF

    def to_matrix(self) -> np.ndarray:
        """Materialise the full coherent DBM (tests, export, dense mode)."""
        size = 2 * self.n
        if self.snap is not None:
            s = np.asarray(self.snap, dtype=np.float64)
            s2 = s[np.arange(size) ^ 1]
            m = (s[:, None] + s2[None, :]) * 0.5
        else:
            m = np.full((size, size), INF, dtype=np.float64)
        for (r, c), v in self.cells.items():
            m[r, c] = v
            m[c ^ 1, r ^ 1] = v
        np.fill_diagonal(m, 0.0)
        return m

    @property
    def mat(self) -> np.ndarray:
        """Materialised matrix view (``keep_invariants`` / serialisation)."""
        return self.to_matrix()

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def top(cls, n: int, *,
            policy: GraphPolicy = DEFAULT_GRAPH_POLICY) -> "SparseOctagon":
        return cls(n, {}, None, closed=True, policy=policy)

    @classmethod
    def bottom(cls, n: int, *,
               policy: GraphPolicy = DEFAULT_GRAPH_POLICY) -> "SparseOctagon":
        return cls(n, {}, None, closed=True, bottom=True, policy=policy)

    @classmethod
    def from_constraints(
        cls, n: int, constraints: Iterable[OctConstraint], *,
        policy: GraphPolicy = DEFAULT_GRAPH_POLICY,
    ) -> "SparseOctagon":
        out = cls.top(n, policy=policy)
        for cons in constraints:
            out._meet_constraint_cells(cons)
        return out

    @classmethod
    def from_box(
        cls, bounds: Sequence[Tuple[float, float]], *,
        policy: GraphPolicy = DEFAULT_GRAPH_POLICY,
    ) -> "SparseOctagon":
        n = len(bounds)
        out = cls.top(n, policy=policy)
        for v, (lo, hi) in enumerate(bounds):
            if lo > hi:
                return cls.bottom(n, policy=policy)
            if hi != INF:
                out._meet_constraint_cells(OctConstraint.upper(v, hi))
            if lo != -INF:
                out._meet_constraint_cells(OctConstraint.lower(v, lo))
        return out

    @classmethod
    def from_matrix(
        cls, mat: np.ndarray, *,
        policy: GraphPolicy = DEFAULT_GRAPH_POLICY,
    ) -> "SparseOctagon":
        """Wrap a full coherent DBM as an (unclosed) graph octagon.

        Every finite off-diagonal cell of the canonical half becomes an
        explicit cell; there is no snapshot, so ``to_matrix`` round-trips
        bit-identically.
        """
        if mat.ndim != 2 or mat.shape[0] != mat.shape[1] or mat.shape[0] % 2:
            raise ValueError(f"expected a 2n x 2n matrix, got {mat.shape}")
        n = mat.shape[0] // 2
        cells: Dict[Key, float] = {}
        for r in range(2 * n):
            for s in range(min(r | 1, 2 * n - 1) + 1):
                if s == r:
                    continue
                v = mat[r, s]
                if v < INF:
                    cells[(r, s)] = float(v)
        return cls(n, cells, None, closed=False, policy=policy)

    @classmethod
    def from_dense(cls, oct_, *,
                   policy: GraphPolicy = DEFAULT_GRAPH_POLICY) -> "SparseOctagon":
        """Convert a dense :class:`~repro.core.octagon.Octagon`."""
        if oct_._bottom:
            return cls.bottom(oct_.n, policy=policy)
        out = cls.from_matrix(oct_.mat, policy=policy)
        out.closed = oct_.closed
        return out

    def to_dense(self):
        """Convert to the dense backend (representation-switch boundary)."""
        from ..core.octagon import Octagon

        if self._bottom:
            return Octagon.bottom(self.n)
        out = Octagon.from_matrix(self.to_matrix(), copy=False)
        out.closed = self.closed
        return out

    def copy(self) -> "SparseOctagon":
        out = SparseOctagon(
            self.n, dict(self.cells),
            list(self.snap) if self.snap is not None else None,
            closed=self.closed, bottom=self._bottom,
            policy=self.policy, dense_mode=self.dense_mode)
        out._ccache = self._ccache
        out._alias = self._alias
        return out

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    @property
    def kind(self) -> DbmKind:
        if not self.cells and self.snap is None:
            return DbmKind.TOP
        return DbmKind.DENSE if self.dense_mode else DbmKind.GRAPH

    def _finite_cell_count(self) -> int:
        return sum(1 for v in self.cells.values() if v < INF)

    @property
    def stored_cells(self) -> int:
        """Explicit finite binary/unary cells (sentinels excluded)."""
        return self._finite_cell_count()

    @property
    def sparsity(self) -> float:
        """Stored sparsity ``1 - (2n + cells)/(2n^2 + 2n)``."""
        return self.policy.sparsity(self._finite_cell_count(), self.n)

    def _become_bottom(self) -> None:
        self._bottom = True
        self._alias = object()
        self.closed = True
        self.cells = {}
        self.snap = None
        self._ccache = None

    def _gauges(self, workspace_cells: int) -> None:
        """Record the sparsity/memory gauges at a closure boundary.

        ``dbm_peak_bytes`` counts 8 bytes per materialised DBM cell --
        stored cells plus unary snapshot plus the largest kernel
        workspace -- the representation's payload, excluding container
        constants on both backends (the dense side likewise counts its
        ``8 * (2n)^2`` buffer, not the ndarray header).
        """
        stored = len(self.cells) + 2 * self.n
        stats.bump_max("dbm_finite_cells", 2 * self.n + self._finite_cell_count())
        stats.bump_max("dbm_half_size", half_size(self.n))
        stats.bump_max("dbm_peak_bytes", 8 * (stored + workspace_cells))

    # ------------------------------------------------------------------
    # closure
    # ------------------------------------------------------------------
    def closure(self) -> "SparseOctagon":
        """Closed canonical form; caches like the dense backend."""
        if self._bottom or self.closed:
            return self
        cc = self._ccache
        if cc is not None:
            stats.bump("closure_cache_hits")
            return cc
        out = self.copy()
        out._ccache = None
        out._close_in_place()
        if out._bottom:
            self._become_bottom()
            return self
        self._ccache = out
        return out

    def close(self) -> "SparseOctagon":
        return self.closure()

    def _close_in_place(self) -> None:
        if not self.cells and self.snap is None:
            stats.record_closure(self.n, str(DbmKind.TOP), 0.0, 0)
            self.closed = True
            return
        if stats.capturing_closure_inputs():
            stats.record_closure_input(self.to_matrix(), [])
        was_dense = self.dense_mode
        if self.policy.use_graph(self._finite_cell_count(), self.n,
                                 self.dense_mode):
            self._close_graph()
        else:
            self._close_densely()
        if self._bottom:
            return
        # Hysteresis: re-decide from the reduced (post-closure) size.
        next_dense = not self.policy.use_graph(
            self._finite_cell_count(), self.n, self.dense_mode)
        if next_dense != was_dense:
            stats.bump("sparse_rep_switches")
        self.dense_mode = next_dense
        if _faults.fire("dbm_corrupt"):
            _faults.corrupt_sparse_octagon(self)
        _sentinel.check(self)

    def _close_graph(self) -> None:
        self._alias = object()
        n = self.n
        size = 2 * n
        cells = self.cells
        snap = self.snap
        cu = [self._u(i) for i in range(size)]
        # Effective edges: finite explicit binaries, plus snapshot-implied
        # mixes that the *current* unaries no longer dominate (a widened
        # or threshold-bumped unary leaves the old mix as a real
        # constraint, so it must take part in component discovery).
        eff: Dict[Key, float] = {k: v for k, v in cells.items() if v < INF}
        if snap is not None:
            for g in range(size):
                if snap[g] < INF and cu[g] > snap[g]:
                    sg = snap[g]
                    for j in range(size):
                        if j == g or j == (g ^ 1):
                            continue
                        sj = snap[j ^ 1]
                        if sj >= INF:
                            continue
                        k = canon(g, j)
                        if k in cells:
                            continue
                        v = (sg + sj) * 0.5
                        prev = eff.get(k)
                        if prev is None or v < prev:
                            eff[k] = v
        uf = UnionFind(n)
        relational = set()
        for (r, s) in eff:
            vr, vs = r >> 1, s >> 1
            if vr != vs:
                uf.union(vr, vs)
                relational.add(vr)
                relational.add(vs)
        groups: Dict[int, List[int]] = {}
        for v in sorted(relational):
            groups.setdefault(uf.find(v), []).append(v)
        blocks = [sorted(g) for _, g in sorted(groups.items())]
        area = sum((2 * len(b)) ** 2 for b in blocks)
        singles = [v for v in range(n) if v not in relational
                   and (cu[2 * v] < INF or cu[2 * v + 1] < INF)]
        area += 4 * len(singles)
        _budget.charge_cells(area)
        stats.bump("closure_cells", area)
        start = time.perf_counter()
        new_snap = list(cu)
        # Singleton consistency: lo > hi shows up as a negative unary cycle.
        for v in singles:
            lo_hi = cu[2 * v] + cu[2 * v + 1]
            if lo_hi < 0:
                self._become_bottom()
                stats.record_closure(n, str(DbmKind.GRAPH),
                                     time.perf_counter() - start, len(blocks))
                return
        new_cells: Dict[Key, float] = {k: v for k, v in cells.items()
                                       if v < INF and (k[0] >> 1) not in relational}
        max_block = 0
        subs: List[Tuple[List[int], np.ndarray]] = []
        for block in blocks:
            idx = block_indices(block)
            bsize = len(idx)
            max_block = max(max_block, bsize * bsize)
            sub = np.empty((bsize, bsize), dtype=np.float64)
            for a in range(bsize):
                ia = idx[a]
                for b in range(bsize):
                    sub[a, b] = self.val(ia, idx[b])
            if kernels.dense_closure(sub):
                self._become_bottom()
                stats.record_closure(n, str(DbmKind.GRAPH),
                                     time.perf_counter() - start, len(blocks))
                return
            subs.append((idx, sub))
            for a in range(bsize):
                new_snap[idx[a]] = float(sub[a, a ^ 1])
        # Scatter-reduce: keep only cells strictly tighter than what the
        # new unaries imply (unaries live in the snapshot; everything the
        # final strengthening would materialise stays implicit).
        for idx, sub in subs:
            bsize = len(idx)
            for a in range(bsize):
                ia = idx[a]
                sa = new_snap[ia]
                for b in range(bsize):
                    jb = idx[b]
                    if jb == ia or jb > (ia | 1):
                        continue
                    v = float(sub[a, b])
                    if v >= INF:
                        continue
                    sb = new_snap[jb ^ 1]
                    if sa < INF and sb < INF and v >= (sa + sb) * 0.5:
                        continue
                    new_cells[(ia, jb)] = v
        # Drop explicit unary cells of untouched variables into the
        # snapshot too (the snapshot is *all* current unaries).
        for i in range(size):
            new_cells.pop((i, i ^ 1), None)
        elapsed = time.perf_counter() - start
        self.cells = new_cells
        self.snap = new_snap
        self.closed = True
        stats.record_closure(n, str(DbmKind.GRAPH), elapsed, max(len(blocks), 1))
        if trace.enabled():
            trace.emit("closure", start, start + elapsed,
                       args={"n": n, "kind": str(DbmKind.GRAPH),
                             "components": len(blocks),
                             "backend": kernels.active_backend()})
        self._gauges(max_block)

    def _close_densely(self) -> None:
        self._alias = object()
        n = self.n
        area = (2 * n) ** 2
        _budget.charge_cells(area)
        stats.bump("closure_cells", area)
        m = self.to_matrix()
        start = time.perf_counter()
        empty = kernels.dense_closure(m)
        elapsed = time.perf_counter() - start
        stats.record_closure(n, "graph-dense", elapsed, 1)
        if trace.enabled():
            trace.emit("closure", start, start + elapsed,
                       args={"n": n, "kind": "graph-dense",
                             "backend": kernels.active_backend()})
        if empty:
            self._become_bottom()
            return
        self._reduce_from_matrix(m)
        self.closed = True
        self._gauges(area)

    def _reduce_from_matrix(self, m: np.ndarray) -> None:
        """Adopt a *closed* matrix: snapshot its unaries, keep only the
        cells strictly tighter than the strengthening-implied values."""
        size = 2 * self.n
        idx = np.arange(size)
        xor = idx ^ 1
        snap = m[idx, xor]
        implied = (snap[:, None] + snap[xor][None, :]) * 0.5
        keep = np.isfinite(m) & (m < implied)
        keep[idx, idx] = False
        keep &= (idx[None, :] <= (idx[:, None] | 1))  # canonical half only
        rows, cols = np.nonzero(keep)
        self.cells = {(int(r), int(c)): float(m[r, c])
                      for r, c in zip(rows, cols)}
        self.snap = [float(x) for x in snap]

    def _incremental_close(self, v: int) -> None:
        """Re-close after changes confined to variable ``v``."""
        self._alias = object()
        n = self.n
        size = 2 * n
        if self.dense_mode:
            _budget.charge_cells(8 * n)
            stats.bump("closure_cells", 8 * n)
            m = self.to_matrix()
            start = time.perf_counter()
            empty = kernels.incremental_closure(m, v)
            elapsed = time.perf_counter() - start
            stats.record_closure(n, "graph-incremental", elapsed, 1)
            if empty:
                self._become_bottom()
                return
            self._reduce_from_matrix(m)
            self.closed = True
            self._gauges((2 * n) ** 2)
            _sentinel.check(self)
            return
        start = time.perf_counter()
        uf = UnionFind(n)
        for (r, s), val in self.cells.items():
            if val < INF and (r >> 1) != (s >> 1):
                uf.union(r >> 1, s >> 1)
        root = uf.find(v)
        comp = [w for w in range(n) if uf.find(w) == root]
        _budget.charge_cells(8 * len(comp))
        stats.bump("closure_cells", 8 * len(comp))
        if self.snap is None:
            self.snap = [INF] * size
        if len(comp) == 1:
            lo, hi = self._u(2 * v), self._u(2 * v + 1)
            if lo + hi < 0:
                self._become_bottom()
                stats.record_closure(n, "graph-incremental",
                                     time.perf_counter() - start, 1)
                return
            # The kernel's trailing strengthening updates v's mixed
            # cells against every unary-bounded variable; moving the new
            # unaries into the snapshot produces exactly those values
            # lazily.
            self.snap[2 * v] = lo
            self.snap[2 * v + 1] = hi
            self.cells.pop((2 * v, 2 * v + 1), None)
            self.cells.pop((2 * v + 1, 2 * v), None)
        else:
            idx = block_indices(comp)
            bsize = len(idx)
            sub = np.empty((bsize, bsize), dtype=np.float64)
            for a in range(bsize):
                ia = idx[a]
                for b in range(bsize):
                    sub[a, b] = self.val(ia, idx[b])
            empty = kernels.incremental_closure(sub, comp.index(v))
            if empty:
                self._become_bottom()
                stats.record_closure(n, "graph-incremental",
                                     time.perf_counter() - start, 1)
                return
            in_comp = set(comp)
            self.cells = {k: val for k, val in self.cells.items()
                          if (k[0] >> 1) not in in_comp}
            for a in range(bsize):
                self.snap[idx[a]] = float(sub[a, a ^ 1])
            for a in range(bsize):
                ia = idx[a]
                sa = self.snap[ia]
                for b in range(bsize):
                    jb = idx[b]
                    if jb == ia or jb > (ia | 1):
                        continue
                    val = float(sub[a, b])
                    if val >= INF:
                        continue
                    sb = self.snap[jb ^ 1]
                    if sa < INF and sb < INF and val >= (sa + sb) * 0.5:
                        continue
                    self.cells[(ia, jb)] = val
        elapsed = time.perf_counter() - start
        self.closed = True
        stats.record_closure(n, "graph-incremental", elapsed, 1)
        if trace.enabled():
            trace.emit("closure_inc", start, start + elapsed,
                       args={"n": n, "v": v,
                             "backend": kernels.active_backend()})
        self._gauges(4 * len(comp) * len(comp))
        _sentinel.check(self)

    # ------------------------------------------------------------------
    # predicates
    # ------------------------------------------------------------------
    def is_bottom(self) -> bool:
        if self._bottom:
            return True
        self.closure()
        return self._bottom

    def is_top(self) -> bool:
        if self.is_bottom():
            return False
        c = self.closure()
        if any(v < INF for v in c.cells.values()):
            return False
        return c.snap is None or all(s >= INF for s in c.snap)

    def is_leq(self, other: "SparseOctagon") -> bool:
        self._check_compat(other)
        if self.is_bottom():
            return True
        if other._bottom:
            return False
        if _cow_enabled() and self._alias is other._alias:
            return True  # aliases denote the same abstract value
        closed = self.closure()
        if self._bottom:
            return True
        with stats.timed_op("is_leq"):
            for k, v in other.cells.items():
                if v >= INF:
                    continue
                if not closed._val_key(k) <= v:
                    return False
            osnap = other.snap
            if osnap is not None:
                size = 2 * self.n
                # Unary dominance: an implied cell of ``other`` is
                # automatically satisfied when both contributing unaries
                # dominate ours; only rows where ours grew need checks.
                for i in range(size):
                    if osnap[i] >= INF or closed._u(i) <= osnap[i]:
                        continue
                    for m in range(size):
                        if osnap[m] >= INF or m == (i ^ 1):
                            continue
                        k = canon(i, m ^ 1)
                        if k in other.cells:
                            continue
                        if not closed._val_key(k) <= (osnap[i] + osnap[m]) * 0.5:
                            return False
            return True

    def is_eq(self, other: "SparseOctagon") -> bool:
        self._check_compat(other)
        if _cow_enabled() and self._alias is other._alias:
            return True
        if self.is_bottom() or other.is_bottom():
            return self.is_bottom() and other.is_bottom()
        a, b = self.closure(), other.closure()
        if self._bottom or other._bottom:
            return self._bottom and other._bottom
        # Closed forms are canonical for a given matrix: the snapshot is
        # the unary vector and the cells the strictly-tighter residue.
        size = 2 * self.n
        au = a.snap if a.snap is not None else [INF] * size
        bu = b.snap if b.snap is not None else [INF] * size
        return au == bu and a.cells == b.cells

    def _check_compat(self, other: "SparseOctagon") -> None:
        if self.n != other.n:
            raise ValueError(f"dimension mismatch: {self.n} vs {other.n}")

    # ------------------------------------------------------------------
    # lattice operators
    # ------------------------------------------------------------------
    def meet(self, other: "SparseOctagon") -> "SparseOctagon":
        """Cellwise min on the raw representations (rare; materialises
        both implied universes -- there is no lazy form of a min of two
        different snapshots)."""
        self._check_compat(other)
        if self._bottom or other._bottom:
            return SparseOctagon.bottom(self.n, policy=self.policy)
        with stats.timed_op("meet"):
            keys = set(self.cells) | set(other.cells)
            for rep in (self, other):
                if rep.snap is None:
                    continue
                finite = [i for i, s in enumerate(rep.snap) if s < INF]
                for i in finite:
                    for m in finite:
                        if m == (i ^ 1):
                            continue
                        keys.add(canon(i, m ^ 1))
            cells: Dict[Key, float] = {}
            for k in keys:
                v = min(self._val_key(k), other._val_key(k))
                if v < INF:
                    cells[k] = v
            result = SparseOctagon(
                self.n, cells, None, closed=False, policy=self.policy,
                dense_mode=self.dense_mode or other.dense_mode)
        _sentinel.check(result)
        return result

    def join(self, other: "SparseOctagon") -> "SparseOctagon":
        self._check_compat(other)
        if _cow_enabled() and self._alias is other._alias:
            return self.copy()  # join is idempotent on aliases
        if self.is_bottom():
            return other.copy()
        if other.is_bottom():
            return self.copy()
        a, b = self.closure(), other.closure()
        if self._bottom:
            return other.copy()
        if other._bottom:
            return self.copy()
        with stats.timed_op("join"):
            size = 2 * self.n
            au = a.snap if a.snap is not None else [INF] * size
            bu = b.snap if b.snap is not None else [INF] * size
            nu = [au[i] if au[i] >= bu[i] else bu[i] for i in range(size)]

            def implied(k: Key) -> float:
                x, y = nu[k[0]], nu[k[1] ^ 1]
                return (x + y) * 0.5 if x < INF and y < INF else INF

            cells: Dict[Key, float] = {}
            for k in set(a.cells) | set(b.cells):
                v = max(a._val_key(k), b._val_key(k))
                if v < INF and v < implied(k):
                    cells[k] = v
            # Implied-only cells survive the max strictly below the
            # joined implication exactly when the unary maxima come from
            # opposite operands.
            plus = [i for i in range(size) if bu[i] < au[i] < INF]
            minus = [i for i in range(size) if au[i] < bu[i] < INF]
            for i in plus:
                for m in minus:
                    if m == (i ^ 1):
                        continue
                    k = canon(i, m ^ 1)
                    if k in a.cells or k in b.cells or k in cells:
                        continue
                    v = max((au[i] + au[m]) * 0.5, (bu[i] + bu[m]) * 0.5)
                    if v < implied(k):
                        cells[k] = v
            result = SparseOctagon(
                self.n, cells, nu, closed=True, policy=self.policy,
                dense_mode=a.dense_mode or b.dense_mode)
        _sentinel.check(result)
        return result

    def widening(self, other: "SparseOctagon") -> "SparseOctagon":
        self._check_compat(other)
        if self._bottom:
            return other.copy()
        if other.is_bottom():
            return self.copy()
        b = other.closure()
        if other._bottom:
            return self.copy()
        with stats.timed_op("widening"):
            snap = self.snap
            cells: Dict[Key, float] = {}
            for k, v in self.cells.items():
                if v < INF and b._val_key(k) <= v:
                    cells[k] = v
                elif snap is not None and snap[k[0]] < INF \
                        and snap[k[1] ^ 1] < INF:
                    # Unstable (or already-sentinel) cell over a finite
                    # implied value: record the widened-away hole.
                    cells[k] = INF
            if snap is not None:
                # Implied cells are stable automatically unless one of
                # their unaries grew in ``b`` (``b`` is closed, so
                # ``b.val <= implied_b <= implied_snap`` otherwise).
                for g in range(2 * self.n):
                    if snap[g] >= INF or b._u(g) <= snap[g]:
                        continue
                    sg = snap[g]
                    for j in range(2 * self.n):
                        if j == g:
                            continue
                        sj = snap[j ^ 1]
                        if sj >= INF:
                            continue
                        k = canon(g, j)
                        if k in self.cells or k in cells:
                            continue
                        if not b._val_key(k) <= (sg + sj) * 0.5:
                            cells[k] = INF
            result = SparseOctagon(
                self.n, cells, list(snap) if snap is not None else None,
                closed=False, policy=self.policy, dense_mode=self.dense_mode)
        _sentinel.check(result)
        return result

    def widening_thresholds(
        self, other: "SparseOctagon", thresholds: Sequence[float],
    ) -> "SparseOctagon":
        self._check_compat(other)
        if self._bottom:
            return other.copy()
        if other.is_bottom():
            return self.copy()
        b = other.closure()
        if other._bottom:
            return self.copy()
        import bisect

        with stats.timed_op("widening"):
            ts = sorted(float(t) for t in thresholds)

            def bumped(bval: float) -> float:
                i = bisect.bisect_left(ts, bval)
                return ts[i] if i < len(ts) else INF

            snap = self.snap
            cells: Dict[Key, float] = {}

            def put(k: Key, value: float) -> None:
                if value < INF:
                    cells[k] = value
                elif snap is not None and snap[k[0]] < INF \
                        and snap[k[1] ^ 1] < INF:
                    cells[k] = INF

            for k, v in self.cells.items():
                bv = b._val_key(k)
                if bv <= v:
                    if v < INF:
                        cells[k] = v
                    else:
                        put(k, INF)
                else:
                    put(k, bumped(bv))
            if snap is not None:
                for g in range(2 * self.n):
                    if snap[g] >= INF or b._u(g) <= snap[g]:
                        continue
                    sg = snap[g]
                    for j in range(2 * self.n):
                        if j == g:
                            continue
                        sj = snap[j ^ 1]
                        if sj >= INF:
                            continue
                        k = canon(g, j)
                        if k in self.cells or k in cells:
                            continue
                        bv = b._val_key(k)
                        if not bv <= (sg + sj) * 0.5:
                            put(k, bumped(bv))
            result = SparseOctagon(
                self.n, cells, list(snap) if snap is not None else None,
                closed=False, policy=self.policy, dense_mode=self.dense_mode)
        _sentinel.check(result)
        return result

    def narrowing(self, other: "SparseOctagon") -> "SparseOctagon":
        self._check_compat(other)
        if self._bottom or other._bottom:
            return SparseOctagon.bottom(self.n, policy=self.policy)
        with stats.timed_op("narrowing"):
            cells = dict(self.cells)
            for k, v in other.cells.items():
                if v < INF and self._val_key(k) >= INF:
                    cells[k] = v
            osnap = other.snap
            if osnap is not None:
                finite = [i for i, s in enumerate(osnap) if s < INF]
                for i in finite:
                    for m in finite:
                        if m == (i ^ 1):
                            continue
                        k = canon(i, m ^ 1)
                        if k in other.cells:
                            continue
                        if self._val_key(k) >= INF:
                            cells[k] = (osnap[i] + osnap[m]) * 0.5
            result = SparseOctagon(
                self.n, cells,
                list(self.snap) if self.snap is not None else None,
                closed=False, policy=self.policy,
                dense_mode=self.dense_mode or other.dense_mode)
        _sentinel.check(result)
        return result

    # ------------------------------------------------------------------
    # constraint meets and tests
    # ------------------------------------------------------------------
    def _meet_constraint_cells(self, cons: OctConstraint) -> None:
        self._alias = object()
        for r, s, c in dbm_cells(cons):
            k = canon(r, s)
            if c < self._val_key(k):
                self.cells[k] = c
        self.closed = False
        self._ccache = None

    def meet_constraint(self, cons: OctConstraint) -> "SparseOctagon":
        if self._bottom:
            return self.copy()
        with stats.timed_op("meet_constraint"):
            base = (self.closure()
                    if self.closed or self._ccache is not None else self)
            out = base.copy()
            was_closed = out.closed
            out._meet_constraint_cells(cons)
            if was_closed:
                out._incremental_close(cons.i)
            else:
                _sentinel.check(out)
        return out

    def meet_constraints(
        self, constraints: Iterable[OctConstraint],
    ) -> "SparseOctagon":
        if self._bottom:
            return self.copy()
        with stats.timed_op("meet_constraint"):
            base = (self.closure()
                    if self.closed or self._ccache is not None else self)
            out = base.copy()
            was_closed = out.closed
            cons_list = list(constraints)
            for cons in cons_list:
                out._meet_constraint_cells(cons)
            if was_closed and cons_list:
                common = set(cons_list[0].variables())
                for cons in cons_list[1:]:
                    common &= set(cons.variables())
                if common:
                    out._incremental_close(min(common))
                else:
                    out.closed = False
                    _sentinel.check(out)
        return out

    def assume_linear(self, expr: LinExpr, *, strict: bool = False) -> "SparseOctagon":
        if self.is_bottom():
            return self.copy()
        closed = self.closure()
        if self._bottom:
            return self.copy()
        coeffs = {v: c for v, c in expr.coeffs.items() if c != 0.0}
        if not coeffs:
            return (self.copy() if expr.const <= 0
                    else SparseOctagon.bottom(self.n, policy=self.policy))
        items = sorted(coeffs.items())
        constraints: List[OctConstraint] = []

        def residual_neg_sup(excluded: Tuple[int, ...]) -> float:
            rest = LinExpr({v: c for v, c in coeffs.items() if v not in excluded},
                           expr.const)
            lo, _ = rest.interval(closed.bounds)
            return INF if lo == -INF else -lo

        for v, c in items:
            if c in (1.0, -1.0):
                bound = residual_neg_sup((v,))
                if is_finite(bound):
                    constraints.append(OctConstraint(v, int(c), v, 0, bound))
        for a_idx in range(len(items)):
            va, ca = items[a_idx]
            if ca not in (1.0, -1.0):
                continue
            for b_idx in range(a_idx + 1, len(items)):
                vb, cb = items[b_idx]
                if cb not in (1.0, -1.0):
                    continue
                bound = residual_neg_sup((va, vb))
                if is_finite(bound):
                    constraints.append(OctConstraint(va, int(ca), vb, int(cb), bound))
        if not constraints:
            return self.copy()
        return closed.meet_constraints(constraints)

    def sat_constraint(self, cons: OctConstraint) -> bool:
        if self.is_bottom():
            return True
        closed = self.closure()
        if self._bottom:
            return True
        (r, s, c) = dbm_cells(cons)[0]
        return bool(closed.val(r, s) <= c)

    # ------------------------------------------------------------------
    # projections and assignments
    # ------------------------------------------------------------------
    def forget(self, v: int) -> "SparseOctagon":
        if self.is_bottom():
            return self.copy()
        closed = self.closure()
        if self._bottom:
            return self.copy()
        with stats.timed_op("forget"):
            out = closed.copy()
            out._ccache = None
            out._alias = object()
            out.cells = {k: val for k, val in out.cells.items()
                         if (k[0] >> 1) != v and (k[1] >> 1) != v}
            if out.snap is not None:
                out.snap[2 * v] = INF
                out.snap[2 * v + 1] = INF
            out.closed = True  # dropping rows of a closed DBM keeps it closed
        _sentinel.check(out)
        return out

    def assign_const(self, v: int, c: float) -> "SparseOctagon":
        out = self.forget(v)
        if out._bottom:
            return out
        with stats.timed_op("assign"):
            out._meet_constraint_cells(OctConstraint.upper(v, c))
            out._meet_constraint_cells(OctConstraint.lower(v, c))
            out._incremental_close(v)
        return out

    def assign_interval(self, v: int, lo: float, hi: float) -> "SparseOctagon":
        if lo > hi:
            return SparseOctagon.bottom(self.n, policy=self.policy)
        out = self.forget(v)
        if out._bottom:
            return out
        with stats.timed_op("assign"):
            changed = False
            if hi != INF:
                out._meet_constraint_cells(OctConstraint.upper(v, hi))
                changed = True
            if lo != -INF:
                out._meet_constraint_cells(OctConstraint.lower(v, lo))
                changed = True
            if changed:
                out._incremental_close(v)
        return out

    def assign_translate(self, v: int, c: float) -> "SparseOctagon":
        """``v := v + c`` -- exact, linear in the stored cells."""
        if self._bottom:
            return self.copy()
        with stats.timed_op("assign"):
            out = self.copy()
            out._ccache = None
            out._alias = object()
            p0, p1 = 2 * v, 2 * v + 1
            cells: Dict[Key, float] = {}
            for (r, s), val in out.cells.items():
                # Mirror the dense row/column shifts in order, so even
                # non-dyadic offsets stay bit-identical.
                if val < INF:
                    if r == p0:
                        val = val - c
                    if r == p1:
                        val = val + c
                    if s == p0:
                        val = val + c
                    if s == p1:
                        val = val - c
                cells[(r, s)] = val
            out.cells = cells
            if out.snap is not None:
                if out.snap[p0] < INF:
                    out.snap[p0] = (out.snap[p0] - c) - c
                if out.snap[p1] < INF:
                    out.snap[p1] = (out.snap[p1] + c) + c
        _sentinel.check(out)
        return out

    def assign_negate(self, v: int, c: float = 0.0) -> "SparseOctagon":
        """``v := -v + c`` -- swap the signs of ``v`` then shift."""
        if self._bottom:
            return self.copy()
        with stats.timed_op("assign"):
            out = self.copy()
            out._ccache = None
            out._alias = object()

            def sw(i: int) -> int:
                return i ^ 1 if (i >> 1) == v else i

            out.cells = {canon(sw(r), sw(s)): val
                         for (r, s), val in out.cells.items()}
            if out.snap is not None:
                p0, p1 = 2 * v, 2 * v + 1
                out.snap[p0], out.snap[p1] = out.snap[p1], out.snap[p0]
        if c != 0.0:
            return out.assign_translate(v, c)
        _sentinel.check(out)
        return out

    def assign_var(self, v: int, w: int, *, coeff: int = 1,
                   offset: float = 0.0) -> "SparseOctagon":
        if coeff not in (-1, 1):
            raise ValueError("octagonal assignment needs coeff +-1")
        if w == v:
            if coeff == 1:
                return self.assign_translate(v, offset)
            return self.assign_negate(v, offset)
        out = self.forget(v)
        if out._bottom:
            return out
        with stats.timed_op("assign"):
            out._meet_constraint_cells(OctConstraint(v, 1, w, -coeff, offset))
            out._meet_constraint_cells(OctConstraint(v, -1, w, coeff, -offset))
            out._incremental_close(v)
        return out

    def assign_linexpr(self, v: int, expr: LinExpr) -> "SparseOctagon":
        coeffs = {w: c for w, c in expr.coeffs.items() if c != 0.0}
        if not coeffs:
            return self.assign_const(v, expr.const)
        if len(coeffs) == 1:
            ((w, c),) = coeffs.items()
            if c in (1.0, -1.0):
                return self.assign_var(v, w, coeff=int(c), offset=expr.const)
        if self.is_bottom():
            return self.copy()
        closed = self.closure()
        if self._bottom:
            return self.copy()
        lo, hi = expr.interval(closed.bounds)
        relational: List[Tuple[int, int, float, float]] = []
        for w, c in coeffs.items():
            if w == v or c not in (1.0, -1.0):
                continue
            rest = LinExpr({u: cu for u, cu in coeffs.items() if u != w}, expr.const)
            rlo, rhi = rest.interval(closed.bounds)
            relational.append((w, int(c), rlo, rhi))
        out = closed.forget(v)
        if out._bottom:
            return out
        with stats.timed_op("assign"):
            changed = False
            if hi != INF:
                out._meet_constraint_cells(OctConstraint.upper(v, hi))
                changed = True
            if lo != -INF:
                out._meet_constraint_cells(OctConstraint.lower(v, lo))
                changed = True
            for w, c, rlo, rhi in relational:
                if rhi != INF:
                    out._meet_constraint_cells(OctConstraint(v, 1, w, -c, rhi))
                    changed = True
                if rlo != -INF:
                    out._meet_constraint_cells(OctConstraint(v, -1, w, c, -rlo))
                    changed = True
            if changed:
                out._incremental_close(v)
        return out

    def substitute_linexpr(self, v: int, expr: LinExpr) -> "SparseOctagon":
        """Backward assignment via the temporary-dimension construction
        (mirrors the dense implementation step for step)."""
        if self._bottom:
            return self.copy()
        with stats.timed_op("substitute"):
            t = self.n
            ext = self.add_dimensions(1)
            perm = list(range(ext.n))
            perm[v], perm[t] = perm[t], perm[v]
            ext = ext.permute(perm)
            coeffs = {w: c for w, c in expr.coeffs.items() if c != 0.0}
            constraints: List[OctConstraint] = []
            if not coeffs:
                constraints.append(OctConstraint.upper(t, expr.const))
                constraints.append(OctConstraint.lower(t, expr.const))
            elif len(coeffs) == 1 and next(iter(coeffs.values())) in (1.0, -1.0):
                ((w, c),) = coeffs.items()
                constraints.append(OctConstraint(t, 1, w, -int(c), expr.const))
                constraints.append(OctConstraint(t, -1, w, int(c), -expr.const))
            else:
                closed = ext.closure()
                if ext._bottom:
                    return SparseOctagon.bottom(self.n, policy=self.policy)
                lo, hi = expr.interval(closed.bounds)
                if hi != INF:
                    constraints.append(OctConstraint(t, 1, t, 0, hi))
                if lo != -INF:
                    constraints.append(OctConstraint(t, -1, t, 0, -lo))
                for w, c in coeffs.items():
                    if c not in (1.0, -1.0):
                        continue
                    rest = LinExpr({u: cu for u, cu in coeffs.items() if u != w},
                                   expr.const)
                    rlo, rhi = rest.interval(closed.bounds)
                    if rhi != INF:
                        constraints.append(OctConstraint(t, 1, w, -int(c), rhi))
                    if rlo != -INF:
                        constraints.append(OctConstraint(t, -1, w, int(c), -rlo))
            if constraints:
                ext = ext.meet_constraints(constraints)
        return ext.remove_dimensions([t])

    def substitute_var(self, v: int, w: int, *, coeff: int = 1,
                       offset: float = 0.0) -> "SparseOctagon":
        return self.substitute_linexpr(v, LinExpr({w: float(coeff)}, offset))

    def substitute_const(self, v: int, c: float) -> "SparseOctagon":
        return self.substitute_linexpr(v, LinExpr({}, c))

    def tighten_integers(self) -> "SparseOctagon":
        """Integer tightening (Mine 2006); materialises once.

        This operator has no call site on the analysis hot path (the
        transfer functions build integer-mode constraints directly), so
        it pragmatically runs on a materialised matrix and wraps the
        result raw -- the next closure re-sparsifies it.
        """
        if self.is_bottom():
            return self.copy()
        closed = self.closure()
        if self._bottom:
            return self.copy()
        with stats.timed_op("tighten"):
            from ..core.strengthen import (
                is_bottom_numpy,
                reset_diagonal_numpy,
                tighten_integer_numpy,
            )
            m = closed.to_matrix()
            finite = np.isfinite(m)
            m[finite] = np.floor(m[finite])
            tighten_integer_numpy(m)
            kernels.strengthen(m)
            if is_bottom_numpy(m):
                return SparseOctagon.bottom(self.n, policy=self.policy)
            reset_diagonal_numpy(m)
            out = SparseOctagon.from_matrix(m, policy=self.policy)
            out.dense_mode = self.dense_mode
        _sentinel.check(out)
        return out

    # ------------------------------------------------------------------
    # bounds and export
    # ------------------------------------------------------------------
    def bounds(self, v: int) -> Tuple[float, float]:
        if self.is_bottom():
            return (INF, -INF)
        closed = self.closure()
        if self._bottom:
            return (INF, -INF)
        ub2 = closed._u(2 * v + 1)  # 2v <= ub2
        lb2 = closed._u(2 * v)      # -2v <= lb2
        hi = INF if not is_finite(ub2) else ub2 / 2.0
        lo = -INF if not is_finite(lb2) else -lb2 / 2.0
        return (lo, hi)

    def bound_linexpr(self, expr: LinExpr) -> Tuple[float, float]:
        if self.is_bottom():
            return (INF, -INF)
        closed = self.closure()
        if self._bottom:
            return (INF, -INF)
        coeffs = {v: c for v, c in expr.coeffs.items() if c != 0.0}
        if len(coeffs) == 2 and all(c in (1.0, -1.0) for c in coeffs.values()):
            (va, ca), (vb, cb) = sorted(coeffs.items())
            hi_cells = dbm_cells(OctConstraint(va, int(ca), vb, int(cb), 0.0))
            lo_cells = dbm_cells(OctConstraint(va, -int(ca), vb, -int(cb), 0.0))
            hi_raw = closed.val(hi_cells[0][0], hi_cells[0][1])
            lo_raw = closed.val(lo_cells[0][0], lo_cells[0][1])
            hi = INF if not is_finite(hi_raw) else hi_raw + expr.const
            lo = -INF if not is_finite(lo_raw) else -lo_raw + expr.const
            ilo, ihi = expr.interval(closed.bounds)
            return (max(lo, ilo), min(hi, ihi))
        return expr.interval(closed.bounds)

    def to_box(self) -> List[Tuple[float, float]]:
        return [self.bounds(v) for v in range(self.n)]

    def to_constraints(self) -> List[OctConstraint]:
        if self.is_bottom():
            return []
        c = self.closure()
        out: List[OctConstraint] = []
        emitted = set()
        for k, v in sorted(c.cells.items()):
            if v < INF:
                emitted.add(k)
                out.append(constraint_of_cell(k[0], k[1], v))
        snap = c.snap
        if snap is not None:
            finite = [i for i, s in enumerate(snap) if s < INF]
            for i in finite:
                for m in finite:
                    if m == (i ^ 1):
                        continue
                    k = canon(i, m ^ 1)
                    if k in c.cells or k in emitted:
                        continue
                    emitted.add(k)
                    out.append(constraint_of_cell(
                        k[0], k[1], (snap[k[0]] + snap[k[1] ^ 1]) * 0.5))
        return out

    def contains_point(self, values: Sequence[float], *,
                       tol: float = 1e-9) -> bool:
        if self._bottom:
            return False
        if len(values) != self.n:
            raise ValueError("point dimension mismatch")
        vals = np.asarray(values, dtype=np.float64)
        vhat = np.empty(2 * self.n)
        vhat[0::2] = vals
        vhat[1::2] = -vals
        diff = vhat[None, :] - vhat[:, None]
        m = self.to_matrix()
        finite = np.isfinite(m)
        return bool(np.all(diff[finite] <= m[finite] + tol))

    # ------------------------------------------------------------------
    # dimension management
    # ------------------------------------------------------------------
    def add_dimensions(self, k: int) -> "SparseOctagon":
        if k < 0:
            raise ValueError("cannot add a negative number of dimensions")
        snap = (self.snap + [INF] * (2 * k)) if self.snap is not None else None
        return SparseOctagon(
            self.n + k, dict(self.cells), snap, closed=self.closed,
            bottom=self._bottom, policy=self.policy, dense_mode=self.dense_mode)

    def remove_dimensions(self, variables: Sequence[int]) -> "SparseOctagon":
        drop = sorted(set(variables))
        if any(not 0 <= v < self.n for v in drop):
            raise ValueError("variable out of range")
        cur = self
        for v in drop:
            cur = cur.forget(v)
        keep = [v for v in range(self.n) if v not in set(drop)]
        remap = {v: i for i, v in enumerate(keep)}

        def re(i: int) -> int:
            return 2 * remap[i >> 1] | (i & 1)

        # The remap is monotone and parity-preserving, so canonical keys
        # stay canonical.
        cells = {(re(r), re(s)): val for (r, s), val in cur.cells.items()}
        snap = None
        if cur.snap is not None:
            snap = [cur.snap[2 * v + p] for v in keep for p in (0, 1)]
        return SparseOctagon(
            len(keep), cells, snap, closed=cur.closed, bottom=cur._bottom,
            policy=self.policy, dense_mode=cur.dense_mode)

    def expand(self, v: int, k: int) -> "SparseOctagon":
        if k <= 0:
            raise ValueError("expand needs at least one copy")
        if self._bottom:
            return SparseOctagon.bottom(self.n + k, policy=self.policy)
        closed = self.closure()
        if self._bottom:
            return SparseOctagon.bottom(self.n + k, policy=self.policy)
        out = closed.add_dimensions(k)
        out._ccache = None
        src = (2 * v, 2 * v + 1)
        copies = list(range(self.n, self.n + k))
        for dstv in copies:
            dst = (2 * dstv, 2 * dstv + 1)

            def re(i: int) -> int:
                return dst[i & 1] if (i >> 1) == v else i

            # Explicit constraints of v against the original variables.
            for (r, s), val in closed.cells.items():
                rv, sv = r >> 1, s >> 1
                if (rv == v) == (sv == v):
                    continue
                out.cells[canon(re(r), re(s))] = val
            if out.snap is not None:
                out.snap[dst[0]] = out.snap[src[0]]
                out.snap[dst[1]] = out.snap[src[1]]
        if out.snap is not None:
            # The copies are unrelated to v and to each other: the dense
            # backend writes INF there, so the snapshot-implied mixes
            # must be masked with sentinels.
            groups = [src] + [(2 * d, 2 * d + 1) for d in copies]
            for ai in range(len(groups)):
                for bi in range(ai + 1, len(groups)):
                    for x in groups[ai]:
                        for y in groups[bi]:
                            kk = canon(x, y)
                            if out.snap[kk[0]] < INF and out.snap[kk[1] ^ 1] < INF:
                                out.cells[kk] = INF
        out.closed = False
        return out

    def fold(self, variables: Sequence[int]) -> "SparseOctagon":
        folded = list(dict.fromkeys(variables))
        if len(folded) < 2:
            raise ValueError("fold needs at least two variables")
        if any(not 0 <= v < self.n for v in folded):
            raise ValueError("variable out of range")
        if self._bottom:
            keep_n = self.n - (len(folded) - 1)
            return SparseOctagon.bottom(keep_n, policy=self.policy)
        closed = self.closure()
        if self._bottom:
            keep_n = self.n - (len(folded) - 1)
            return SparseOctagon.bottom(keep_n, policy=self.policy)
        target = folded[0]
        others = folded[1:]
        acc = closed
        for w in others:
            perm = list(range(self.n))
            perm[target], perm[w] = perm[w], perm[target]
            acc = acc.join(closed.permute(perm))
        return acc.remove_dimensions(others)

    def permute(self, perm: Sequence[int]) -> "SparseOctagon":
        if sorted(perm) != list(range(self.n)):
            raise ValueError("not a permutation")
        inv = {old: new for new, old in enumerate(perm)}

        def re(i: int) -> int:
            return 2 * inv[i >> 1] | (i & 1)

        cells = {canon(re(r), re(s)): val for (r, s), val in self.cells.items()}
        snap = None
        if self.snap is not None:
            snap = [self.snap[2 * perm[v] + p]
                    for v in range(self.n) for p in (0, 1)]
        return SparseOctagon(
            self.n, cells, snap, closed=self.closed, bottom=self._bottom,
            policy=self.policy, dense_mode=self.dense_mode)

    def pretty(self, names: Optional[Sequence[str]] = None) -> str:
        if self.is_bottom():
            return "false"
        cons = self.to_constraints()
        if not cons:
            return "true"
        if names is None:
            names = [f"v{i}" for i in range(self.n)]

        def term(coeff: int, v: int) -> str:
            return f"{'-' if coeff < 0 else '+'}{names[v]}"

        lines = []
        for c in sorted(cons, key=lambda c: (c.i, c.j, c.coeff_i, c.coeff_j)):
            if c.coeff_j == 0:
                lines.append(f"{term(c.coeff_i, c.i)} <= {c.bound:g}")
            else:
                lines.append(f"{term(c.coeff_i, c.i)} {term(c.coeff_j, c.j)}"
                             f" <= {c.bound:g}")
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # dunder
    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        if self._bottom:
            return f"SparseOctagon(n={self.n}, bottom)"
        return (f"SparseOctagon(n={self.n}, kind={self.kind}, "
                f"cells={len(self.cells)}, closed={self.closed})")


class ConfiguredSparseOctagonFactory:
    """A sparse-octagon factory with a custom switching policy.

    Used by ``--sparse-threshold`` and the threshold-sweep benchmarks:
    the policy travels with the factory so every state the analyzer
    builds (tops, bottoms, initial boxes) shares it.
    """

    __slots__ = ("policy", "name")

    def __init__(self, policy: GraphPolicy, name: str = "sparse-octagon"):
        self.policy = policy
        self.name = name

    def top(self, n: int) -> SparseOctagon:
        return SparseOctagon.top(n, policy=self.policy)

    def bottom(self, n: int) -> SparseOctagon:
        return SparseOctagon.bottom(n, policy=self.policy)

    def from_box(self, bounds) -> SparseOctagon:
        return SparseOctagon.from_box(bounds, policy=self.policy)


__all__ = ["ConfiguredSparseOctagonFactory", "SparseOctagon"]
