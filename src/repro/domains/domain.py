"""The abstract-domain protocol used by the analyzer substrate.

The fixpoint engine and the transfer functions are generic over any
class implementing this structural protocol.  Three implementations
ship with the library:

* :class:`repro.core.Octagon` -- the optimised octagon (the paper's
  contribution),
* :class:`repro.core.ApronOctagon` -- the scalar APRON baseline,
* :class:`repro.domains.interval.Interval` -- a non-relational box
  domain.

``DomainFactory`` bundles the class-level constructors so callers can
pass a domain around as a value (e.g. ``get_domain("octagon")``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Protocol, Sequence, Tuple, runtime_checkable

from ..core import ApronOctagon, Octagon
from ..core.constraints import LinExpr, OctConstraint


@runtime_checkable
class AbstractDomain(Protocol):
    """Structural interface every abstract state must provide."""

    n: int

    # predicates
    def is_bottom(self) -> bool: ...
    def is_top(self) -> bool: ...
    def is_leq(self, other: "AbstractDomain") -> bool: ...
    def is_eq(self, other: "AbstractDomain") -> bool: ...

    # lattice
    def meet(self, other: "AbstractDomain") -> "AbstractDomain": ...
    def join(self, other: "AbstractDomain") -> "AbstractDomain": ...
    def widening(self, other: "AbstractDomain") -> "AbstractDomain": ...
    def narrowing(self, other: "AbstractDomain") -> "AbstractDomain": ...

    # transfer
    def forget(self, v: int) -> "AbstractDomain": ...
    def assign_const(self, v: int, c: float) -> "AbstractDomain": ...
    def assign_interval(self, v: int, lo: float, hi: float) -> "AbstractDomain": ...
    def assign_linexpr(self, v: int, expr: LinExpr) -> "AbstractDomain": ...
    def assume_linear(self, expr: LinExpr, *, strict: bool = False) -> "AbstractDomain": ...
    def meet_constraint(self, cons: OctConstraint) -> "AbstractDomain": ...

    # queries
    def bounds(self, v: int) -> Tuple[float, float]: ...
    def bound_linexpr(self, expr: LinExpr) -> Tuple[float, float]: ...
    def copy(self) -> "AbstractDomain": ...


@dataclass(frozen=True)
class DomainFactory:
    """A named constructor bundle for one abstract domain."""

    name: str
    cls: Any

    def top(self, n: int) -> AbstractDomain:
        return self.cls.top(n)

    def bottom(self, n: int) -> AbstractDomain:
        return self.cls.bottom(n)

    def from_box(self, bounds: Sequence[Tuple[float, float]]) -> AbstractDomain:
        return self.cls.from_box(bounds)


@dataclass(frozen=True)
class ConfiguredOctagonFactory:
    """An octagon factory with a custom switching policy.

    Used by the ablation benchmarks to sweep the sparsity threshold
    ``t`` and to switch the online decomposition off entirely.
    """

    policy: object  # SwitchPolicy
    name: str = "octagon"

    def top(self, n: int) -> AbstractDomain:
        return Octagon.top(n, policy=self.policy)

    def bottom(self, n: int) -> AbstractDomain:
        return Octagon.bottom(n, policy=self.policy)

    def from_box(self, bounds: Sequence[Tuple[float, float]]) -> AbstractDomain:
        return Octagon.from_box(bounds, policy=self.policy)


def _build_registry() -> Dict[str, DomainFactory]:
    from .interval import Interval
    from .pentagon import Pentagon
    from .sparse_octagon import SparseOctagon
    from .zone import Zone

    return {
        "octagon": DomainFactory("octagon", Octagon),
        "apron": DomainFactory("apron", ApronOctagon),
        "interval": DomainFactory("interval", Interval),
        "zone": DomainFactory("zone", Zone),
        "pentagon": DomainFactory("pentagon", Pentagon),
        "sparse-octagon": DomainFactory("sparse-octagon", SparseOctagon),
    }


DOMAINS: Dict[str, DomainFactory] = {}


def get_domain(name: str) -> DomainFactory:
    """Look up a factory: octagon | apron | interval | zone | pentagon."""
    if not DOMAINS:
        DOMAINS.update(_build_registry())
    try:
        return DOMAINS[name]
    except KeyError:
        raise KeyError(f"unknown domain {name!r}; available: {sorted(DOMAINS)}") from None
