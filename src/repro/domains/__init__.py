"""Abstract-domain layer: the protocol the analyzer is generic over,
plus a non-relational Interval (box) domain used as a cheap baseline
and in examples."""

from .domain import (DOMAINS, AbstractDomain, ConfiguredOctagonFactory,
                     DomainFactory, get_domain)
from .interval import Interval
from .pentagon import Pentagon
from .sparse_octagon import ConfiguredSparseOctagonFactory, SparseOctagon
from .zone import Zone

__all__ = [
    "AbstractDomain",
    "ConfiguredOctagonFactory",
    "ConfiguredSparseOctagonFactory",
    "DomainFactory",
    "DOMAINS",
    "get_domain",
    "Interval",
    "Pentagon",
    "SparseOctagon",
    "Zone",
]
