"""The Pentagon abstract domain (Logozzo & Faehndrich, SAC 2008).

Pentagons -- the paper's citation [22] -- combine interval bounds with
*strict* symbolic upper bounds ``x < y``.  They are cheaper than zones
and octagons (no DBM, no cubic closure) and were designed for exactly
the array-bounds workloads that motivate octagons, so they make a good
third point on the precision/cost spectrum explored by the examples.

State = a box (two vectors) plus ``less[v]`` = the set of variables
known to be strictly greater than ``v``.  The implementation follows
the published design:

* meet/join/widening act componentwise (intersection of the relation
  sets under join, per the original paper);
* a (cheap, quadratic) reduction propagates ``x < y`` into the interval
  bounds before queries;
* transfer functions extract ``x < y`` facts from assumes and simple
  assignments and drop relations whose variables are overwritten.

Implements the same protocol as the other domains
(``get_domain("pentagon")``).
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, List, Sequence, Tuple

import numpy as np

from ..core.bounds import INF
from ..core.constraints import LinExpr, OctConstraint


class Pentagon:
    """Box + strict-upper-bound relations ``v < w``."""

    __slots__ = ("n", "lo", "hi", "less", "_bottom")

    def __init__(self, n: int, lo: np.ndarray, hi: np.ndarray,
                 less: Tuple[FrozenSet[int], ...], *, bottom: bool = False):
        self.n = n
        self.lo = lo
        self.hi = hi
        self.less = less  # less[v] = {w | v < w}
        self._bottom = bottom

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def top(cls, n: int) -> "Pentagon":
        return cls(n, np.full(n, -INF), np.full(n, INF),
                   tuple(frozenset() for _ in range(n)))

    @classmethod
    def bottom(cls, n: int) -> "Pentagon":
        return cls(n, np.full(n, INF), np.full(n, -INF),
                   tuple(frozenset() for _ in range(n)), bottom=True)

    @classmethod
    def from_box(cls, bounds: Sequence[Tuple[float, float]]) -> "Pentagon":
        n = len(bounds)
        lo = np.array([b[0] for b in bounds], dtype=np.float64)
        hi = np.array([b[1] for b in bounds], dtype=np.float64)
        if np.any(lo > hi):
            return cls.bottom(n)
        return cls(n, lo, hi, tuple(frozenset() for _ in range(n)))

    def copy(self) -> "Pentagon":
        return Pentagon(self.n, self.lo.copy(), self.hi.copy(), self.less,
                        bottom=self._bottom)

    def _with(self, lo=None, hi=None, less=None) -> "Pentagon":
        return Pentagon(self.n,
                        self.lo.copy() if lo is None else lo,
                        self.hi.copy() if hi is None else hi,
                        self.less if less is None else less)

    # ------------------------------------------------------------------
    # reduction and predicates
    # ------------------------------------------------------------------
    def _reduced(self) -> "Pentagon":
        """Propagate ``v < w`` into the bounds to a local fixpoint."""
        if self._bottom:
            return self
        lo, hi = self.lo.copy(), self.hi.copy()
        changed = True
        rounds = 0
        while changed and rounds <= self.n + 1:
            changed = False
            rounds += 1
            for v in range(self.n):
                for w in self.less[v]:
                    # v < w over the integers: v <= w - 1, w >= v + 1.
                    if hi[w] != INF and hi[w] - 1 < hi[v]:
                        hi[v] = hi[w] - 1
                        changed = True
                    if lo[v] != -INF and lo[v] + 1 > lo[w]:
                        lo[w] = lo[v] + 1
                        changed = True
        out = Pentagon(self.n, lo, hi, self.less)
        if self.n and bool(np.any(lo > hi)):
            return Pentagon.bottom(self.n)
        # A relational cycle v < ... < v is empty too.
        if self._has_cycle():
            return Pentagon.bottom(self.n)
        return out

    def _has_cycle(self) -> bool:
        colour = [0] * self.n  # 0 unseen, 1 on stack, 2 done

        def dfs(v: int) -> bool:
            colour[v] = 1
            for w in self.less[v]:
                if colour[w] == 1:
                    return True
                if colour[w] == 0 and dfs(w):
                    return True
            colour[v] = 2
            return False

        return any(colour[v] == 0 and dfs(v) for v in range(self.n))

    def close(self) -> "Pentagon":
        return self

    def closure(self) -> "Pentagon":
        return self

    def is_bottom(self) -> bool:
        if self._bottom:
            return True
        reduced = self._reduced()
        return reduced._bottom

    def is_top(self) -> bool:
        if self.is_bottom():
            return False
        return (bool(np.all(np.isneginf(self.lo)))
                and bool(np.all(np.isposinf(self.hi)))
                and all(not s for s in self.less))

    def is_leq(self, other: "Pentagon") -> bool:
        self._check(other)
        if self.is_bottom():
            return True
        if other.is_bottom():
            return False
        a = self._reduced()
        # Interval inclusion plus relation-set inclusion, where a
        # missing relation may be implied by the intervals.
        if not (np.all(a.lo >= other.lo) and np.all(a.hi <= other.hi)):
            return False
        for v in range(self.n):
            for w in other.less[v]:
                implied = (a.hi[v] != INF and other.lo[w] != -INF and
                           a.hi[v] < other.lo[w] + 1)
                if w not in a.less[v] and not (
                        a.hi[v] != INF and a.lo[w] != -INF and a.hi[v] < a.lo[w]) \
                        and not implied:
                    return False
        return True

    def is_eq(self, other: "Pentagon") -> bool:
        return self.is_leq(other) and other.is_leq(self)

    def _check(self, other: "Pentagon") -> None:
        if self.n != other.n:
            raise ValueError(f"dimension mismatch: {self.n} vs {other.n}")

    # ------------------------------------------------------------------
    # lattice
    # ------------------------------------------------------------------
    def meet(self, other: "Pentagon") -> "Pentagon":
        self._check(other)
        if self._bottom or other._bottom:
            return Pentagon.bottom(self.n)
        less = tuple(self.less[v] | other.less[v] for v in range(self.n))
        out = Pentagon(self.n, np.maximum(self.lo, other.lo),
                       np.minimum(self.hi, other.hi), less)
        return out._reduced()

    def join(self, other: "Pentagon") -> "Pentagon":
        self._check(other)
        if self.is_bottom():
            return other.copy()
        if other.is_bottom():
            return self.copy()
        a, b = self._reduced(), other._reduced()
        less = []
        for v in range(self.n):
            # Keep v < w if it holds (explicitly or via bounds) on both sides.
            kept = set()
            for w in a.less[v] | b.less[v]:
                in_a = w in a.less[v] or (a.hi[v] != INF and a.lo[w] != -INF
                                          and a.hi[v] < a.lo[w])
                in_b = w in b.less[v] or (b.hi[v] != INF and b.lo[w] != -INF
                                          and b.hi[v] < b.lo[w])
                if in_a and in_b:
                    kept.add(w)
            less.append(frozenset(kept))
        return Pentagon(self.n, np.minimum(a.lo, b.lo),
                        np.maximum(a.hi, b.hi), tuple(less))

    def widening(self, other: "Pentagon") -> "Pentagon":
        self._check(other)
        if self._bottom:
            return other.copy()
        if other.is_bottom():
            return self.copy()
        lo = np.where(other.lo >= self.lo, self.lo, -INF)
        hi = np.where(other.hi <= self.hi, self.hi, INF)
        # Relations: keep only those still present in the new iterate
        # (finite set, so plain intersection terminates).
        less = tuple(self.less[v] & other.less[v] for v in range(self.n))
        return Pentagon(self.n, lo, hi, less)

    def narrowing(self, other: "Pentagon") -> "Pentagon":
        self._check(other)
        if self._bottom or other._bottom:
            return Pentagon.bottom(self.n)
        lo = np.where(np.isneginf(self.lo), other.lo, self.lo)
        hi = np.where(np.isposinf(self.hi), other.hi, self.hi)
        return Pentagon(self.n, lo, hi, self.less)

    # ------------------------------------------------------------------
    # transfer
    # ------------------------------------------------------------------
    def _drop_var(self, v: int) -> Tuple[FrozenSet[int], ...]:
        return tuple(frozenset() if u == v else (s - {v})
                     for u, s in enumerate(self.less))

    def forget(self, v: int) -> "Pentagon":
        if self.is_bottom():
            return self.copy()
        red = self._reduced()
        out = red._with(less=red._drop_var(v))
        out.lo[v], out.hi[v] = -INF, INF
        return out

    def assign_const(self, v: int, c: float) -> "Pentagon":
        out = self.forget(v)
        if out._bottom:
            return out
        out.lo[v] = out.hi[v] = c
        return out

    def assign_interval(self, v: int, lo: float, hi: float) -> "Pentagon":
        if lo > hi:
            return Pentagon.bottom(self.n)
        out = self.forget(v)
        if out._bottom:
            return out
        out.lo[v], out.hi[v] = lo, hi
        return out

    def assign_var(self, v: int, w: int, *, coeff: int = 1,
                   offset: float = 0.0) -> "Pentagon":
        return self.assign_linexpr(v, LinExpr({w: float(coeff)}, offset))

    def assign_linexpr(self, v: int, expr: LinExpr) -> "Pentagon":
        if self.is_bottom():
            return self.copy()
        red = self._reduced()
        lo, hi = expr.interval(red.bounds)
        coeffs = {w: c for w, c in expr.coeffs.items() if c != 0.0}
        out = red._with(less=red._drop_var(v))
        out.lo[v], out.hi[v] = lo, hi
        # Symbolic facts from shapes the pentagon understands:
        #   v := w + c with c < 0  gives  v < w;  with c > 0  gives  w < v.
        if len(coeffs) == 1:
            ((w, c),) = coeffs.items()
            if w != v and c == 1.0:
                less = list(out.less)
                if expr.const < 0:
                    less[v] = less[v] | {w}
                elif expr.const > 0:
                    less[w] = less[w] | {v}
                out = out._with(less=tuple(less))
        return out

    def assume_linear(self, expr: LinExpr, *, strict: bool = False) -> "Pentagon":
        """Meet with ``expr <= 0``; ``v - w <= -1`` records ``v < w``."""
        if self.is_bottom():
            return self.copy()
        red = self._reduced()
        coeffs = {v: c for v, c in expr.coeffs.items() if c != 0.0}
        if not coeffs:
            return self.copy() if expr.const <= 0 else Pentagon.bottom(self.n)
        out = red.copy()
        # Interval refinement (as in the box domain).
        for v, c in coeffs.items():
            rest = LinExpr({u: cu for u, cu in coeffs.items() if u != v},
                           expr.const)
            rlo, _ = rest.interval(red.bounds)
            if rlo == -INF:
                continue
            limit = -rlo / c
            if c > 0:
                out.hi[v] = min(out.hi[v], limit)
            else:
                out.lo[v] = max(out.lo[v], limit)
        # Relational handling of differences: v - w + k <= 0 means
        # v <= w - k.  With k >= 1 that is the pentagon fact v < w; with
        # k >= 0 it still contradicts a known strict w < v.
        items = sorted(coeffs.items())
        if len(items) == 2 and items[0][1] == -items[1][1] and \
                abs(items[0][1]) == 1.0:
            (va, ca), (vb, _) = items
            small, big = (va, vb) if ca == 1.0 else (vb, va)
            if expr.const >= 0.0 and small in out.less[big]:
                return Pentagon.bottom(self.n)  # big < small and small <= big
            if expr.const >= 1.0:
                less = list(out.less)
                less[small] = less[small] | {big}
                out = out._with(lo=out.lo, hi=out.hi, less=tuple(less))
        return out._reduced()

    def meet_constraint(self, cons: OctConstraint) -> "Pentagon":
        coeffs = {cons.i: float(cons.coeff_i)}
        if cons.coeff_j != 0:
            coeffs[cons.j] = coeffs.get(cons.j, 0.0) + float(cons.coeff_j)
        return self.assume_linear(LinExpr(coeffs, -cons.bound))

    def meet_constraints(self, constraints: Iterable[OctConstraint]) -> "Pentagon":
        out = self
        for cons in constraints:
            out = out.meet_constraint(cons)
        return out

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def bounds(self, v: int) -> Tuple[float, float]:
        if self.is_bottom():
            return (INF, -INF)
        red = self._reduced()
        return (float(red.lo[v]), float(red.hi[v]))

    def bound_linexpr(self, expr: LinExpr) -> Tuple[float, float]:
        if self.is_bottom():
            return (INF, -INF)
        red = self._reduced()
        lo, hi = expr.interval(red.bounds)
        # v - w with v < w known: upper bound -1.
        coeffs = sorted((v, c) for v, c in expr.coeffs.items() if c != 0.0)
        if len(coeffs) == 2 and coeffs[0][1] == -coeffs[1][1] and \
                abs(coeffs[0][1]) == 1.0:
            (va, ca), (vb, _) = coeffs
            small, big = (va, vb) if ca == 1.0 else (vb, va)
            if big in red.less[small]:
                hi = min(hi, -1.0 + expr.const)
        return (lo, hi)

    def to_box(self) -> List[Tuple[float, float]]:
        return [self.bounds(v) for v in range(self.n)]

    def contains_point(self, values: Sequence[float], *, tol: float = 1e-9) -> bool:
        if self._bottom:
            return False
        vals = np.asarray(values, dtype=np.float64)
        if not (np.all(vals >= self.lo - tol) and np.all(vals <= self.hi + tol)):
            return False
        return all(vals[v] < vals[w] + tol
                   for v in range(self.n) for w in self.less[v])

    def __repr__(self) -> str:
        if self._bottom:
            return f"Pentagon(n={self.n}, bottom)"
        rels = sum(len(s) for s in self.less)
        return f"Pentagon(n={self.n}, relations={rels})"
