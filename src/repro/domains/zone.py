"""The Zone abstract domain (difference-bound matrices).

Zones track constraints of the form ``v - w <= c``, ``v <= c`` and
``-v <= c`` -- the octagon's little sibling (no ``v + w`` sums).  The
paper's conclusion proposes carrying its optimisation approach to other
domains; this module does exactly that for zones:

* the DBM is an ``(n+1) x (n+1)`` matrix over the variables plus the
  special *zero* variable ``Z`` (index 0), with ``m[i, j] = c`` meaning
  ``x_j - x_i <= c`` (``x_0 = 0``);
* canonicalisation is plain Floyd-Warshall shortest paths (no
  strengthening step -- zones need no coherence machinery), vectorised
  exactly like the octagon's dense closure;
* the same *online decomposition* applies: variables unrelated by any
  finite constraint split into independent components, closure runs per
  component, and the partition is maintained across operators with
  union/intersection and refreshed exactly at closures.

The class implements the same protocol as the other domains, so the
analyzer runs on zones unchanged (``get_domain("zone")``).

One semantic caveat mirrors the octagon's bounded-variable effect:
any two variables with finite bounds are related *through Z*, so
decomposition pays on workloads where widening erases bounds.
"""

from __future__ import annotations

import time
from typing import Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..core import stats
from ..obs import trace
from ..core.bounds import INF, is_finite
from ..core.constraints import LinExpr, OctConstraint
from ..core.cow import CowMat, is_enabled as _cow_enabled
from ..core.partition import Partition, _connected_components


def _new_top(n: int) -> np.ndarray:
    m = np.full((n + 1, n + 1), INF, dtype=np.float64)
    np.fill_diagonal(m, 0.0)
    return m


def _close(m: np.ndarray) -> bool:
    """Floyd-Warshall; True iff a negative cycle exists (empty zone)."""
    dim = m.shape[0]
    for k in range(dim):
        np.minimum(m, m[:, k, None] + m[None, k, :], out=m)
    if bool((np.diagonal(m) < 0.0).any()):
        return True
    np.fill_diagonal(m, 0.0)
    return False


def _close_decomposed(m: np.ndarray, partition: Partition) -> bool:
    """Per-component Floyd-Warshall (indices shifted by the Z column).

    Sound for the same reason as the octagon's decomposed shortest
    path: transitive minimisation cannot relate variables that share no
    finite constraint.  The Z row/column participates in every
    component (bounds route through Z), so each submatrix includes
    index 0.
    """
    for block in partition.blocks:
        idx = np.array([0] + [v + 1 for v in block], dtype=np.intp)
        gather = np.ix_(idx, idx)
        sub = np.ascontiguousarray(m[gather])
        dim = sub.shape[0]
        for k in range(dim):
            np.minimum(sub, sub[:, k, None] + sub[None, k, :], out=sub)
        m[gather] = sub
    if bool((np.diagonal(m) < 0.0).any()):
        return True
    np.fill_diagonal(m, 0.0)
    return False


def _partition_from_matrix(m: np.ndarray) -> Partition:
    """Exact components: variables related by finite entries.

    Entries against Z (bounds) do not relate two variables directly,
    but two *bounded* variables are transitively related through Z in a
    closed matrix anyway (``v - w <= ub(v) - lb(w)`` becomes a direct
    finite entry), so reading the variable-variable block suffices.
    """
    n = m.shape[0] - 1
    finite = np.isfinite(m[1:, 1:])
    np.fill_diagonal(finite, False)
    adj = finite | finite.T
    # Bounded variables form their own support through Z.
    bounded = np.isfinite(m[0, 1:]) | np.isfinite(m[1:, 0])
    support = adj.any(axis=1) | bounded
    part = Partition(n)
    if not support.any():
        return part
    labels = _connected_components(adj)
    groups = {}
    for v in np.nonzero(support)[0].tolist():
        groups.setdefault(int(labels[v]), []).append(v)
    for block in groups.values():
        part.add_block(block)
    return part


class Zone:
    """A zone (DBM) over ``n`` program variables, with decomposition."""

    __slots__ = ("n", "_cow", "partition", "closed", "_bottom", "_ccache",
                 "_ccache_version", "decompose")

    def __init__(self, n: int, mat: Union[np.ndarray, CowMat],
                 partition: Partition, *,
                 closed: bool = False, bottom: bool = False,
                 decompose: bool = True):
        self.n = n
        self._cow = mat if isinstance(mat, CowMat) else CowMat(mat)
        self.partition = partition
        self.closed = closed
        self._bottom = bottom
        self._ccache: Optional["Zone"] = None
        self._ccache_version = -1
        self.decompose = decompose

    # ------------------------------------------------------------------
    # copy-on-write storage (same discipline as Octagon)
    # ------------------------------------------------------------------
    @property
    def mat(self) -> np.ndarray:
        """The DBM (may be shared with aliases; use :meth:`_write_mat`
        before any in-place mutation)."""
        return self._cow.arr

    @mat.setter
    def mat(self, arr: np.ndarray) -> None:
        self._cow = arr if isinstance(arr, CowMat) else CowMat(arr)

    def _write_mat(self) -> np.ndarray:
        self._ccache = None
        return self._cow.written()

    def _cached_closure(self) -> Optional["Zone"]:
        cc = self._ccache
        if cc is not None and self._ccache_version == self._cow.version:
            return cc
        return None

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def top(cls, n: int) -> "Zone":
        return cls(n, _new_top(n), Partition.empty(n), closed=True)

    @classmethod
    def bottom(cls, n: int) -> "Zone":
        return cls(n, _new_top(n), Partition.empty(n), closed=True, bottom=True)

    @classmethod
    def from_box(cls, bounds: Sequence[Tuple[float, float]]) -> "Zone":
        n = len(bounds)
        zone = cls.top(n)
        for v, (lo, hi) in enumerate(bounds):
            if lo > hi:
                return cls.bottom(n)
            if hi != INF:
                zone.mat[0, v + 1] = hi  # x_v - Z <= hi
            if lo != -INF:
                zone.mat[v + 1, 0] = -lo  # Z - x_v <= -lo
            if lo != -INF or hi != INF:
                zone.partition = zone.partition.merge_blocks_containing([v])
        zone.closed = False
        return zone

    def copy(self) -> "Zone":
        """O(1) aliasing copy; the partition is shared (immutable by
        convention) and a valid cached closed form is carried over."""
        part = self.partition if _cow_enabled() else self.partition.copy()
        out = Zone(self.n, self._cow.clone(), part,
                   closed=self.closed, bottom=self._bottom,
                   decompose=self.decompose)
        if _cow_enabled():
            out._ccache = self._ccache
            out._ccache_version = self._ccache_version
        return out

    # ------------------------------------------------------------------
    # closure
    # ------------------------------------------------------------------
    def closure(self) -> "Zone":
        """Cached closed copy; the original matrix is preserved."""
        if self._bottom or self.closed:
            return self
        cc = self._cached_closure()
        if cc is not None:
            stats.bump("closure_cache_hits")
            return cc
        out = self.copy()
        start = time.perf_counter()
        use_decomposed = (self.decompose and self.partition.blocks and
                          len(self.partition.support) < self.n)
        if self.partition.is_empty():
            empty = False
        elif use_decomposed:
            empty = _close_decomposed(out._write_mat(), self.partition)
        else:
            empty = _close(out._write_mat())
        elapsed = time.perf_counter() - start
        stats.record_closure(self.n, "zone", elapsed,
                             len(self.partition.blocks))
        if trace.enabled():  # skip the args dict on the disabled path
            trace.emit("closure", start, start + elapsed,
                       args={"n": self.n, "kind": "zone",
                             "components": len(self.partition.blocks)})
        if empty:
            self._become_bottom()
            return self
        out.partition = (_partition_from_matrix(out.mat) if self.decompose
                         else Partition.single_block(self.n))
        out.closed = True
        self._ccache = out
        self._ccache_version = self._cow.version
        return out

    def close(self) -> "Zone":
        return self.closure()

    def _become_bottom(self) -> None:
        self._bottom = True
        self.closed = True
        self.mat = _new_top(self.n)
        self.partition = Partition.empty(self.n)
        self._ccache = None

    # ------------------------------------------------------------------
    # predicates
    # ------------------------------------------------------------------
    def is_bottom(self) -> bool:
        if self._bottom:
            return True
        self.closure()
        return self._bottom

    def is_top(self) -> bool:
        if self.is_bottom():
            return False
        c = self.closure()
        off = ~np.eye(self.n + 1, dtype=bool)
        return bool(np.all(np.isinf(c.mat[off])))

    def is_leq(self, other: "Zone") -> bool:
        self._check(other)
        if _cow_enabled() and self._cow.arr is other._cow.arr:
            return True  # COW aliases denote the same abstract value
        if self.is_bottom():
            return True
        if other._bottom:
            return False
        closed = self.closure()
        if self._bottom:
            return True
        return bool(np.all(closed.mat <= other.mat))

    def is_eq(self, other: "Zone") -> bool:
        self._check(other)
        if self.is_bottom() or other.is_bottom():
            return self.is_bottom() and other.is_bottom()
        a, b = self.closure(), other.closure()
        if self._bottom or other._bottom:
            return self._bottom and other._bottom
        fa, fb = np.isfinite(a.mat), np.isfinite(b.mat)
        return bool(np.array_equal(fa, fb) and
                    np.allclose(a.mat[fa], b.mat[fb]))

    def _check(self, other: "Zone") -> None:
        if self.n != other.n:
            raise ValueError(f"dimension mismatch: {self.n} vs {other.n}")

    # ------------------------------------------------------------------
    # lattice
    # ------------------------------------------------------------------
    def meet(self, other: "Zone") -> "Zone":
        self._check(other)
        if self._bottom or other._bottom:
            return Zone.bottom(self.n)
        with stats.timed_op("meet"):
            out = np.minimum(self.mat, other.mat)
            part = self.partition.union(other.partition)
            return Zone(self.n, out, part, decompose=self.decompose)

    def join(self, other: "Zone") -> "Zone":
        self._check(other)
        if self.is_bottom():
            return other.copy()
        if other.is_bottom():
            return self.copy()
        a, b = self.closure(), other.closure()
        if self._bottom:
            return other.copy()
        if other._bottom:
            return self.copy()
        with stats.timed_op("join"):
            out = np.maximum(a.mat, b.mat)
            part = a.partition.intersection(b.partition)
            return Zone(self.n, out, part, closed=True, decompose=self.decompose)

    def widening(self, other: "Zone") -> "Zone":
        self._check(other)
        if self._bottom:
            return other.copy()
        if other.is_bottom():
            return self.copy()
        b = other.closure()
        if other._bottom:
            return self.copy()
        with stats.timed_op("widening"):
            out = np.where(b.mat <= self.mat, self.mat, INF)
            np.fill_diagonal(out, 0.0)
            part = self.partition.intersection(b.partition)
            return Zone(self.n, out, part, decompose=self.decompose)

    def narrowing(self, other: "Zone") -> "Zone":
        self._check(other)
        if self._bottom or other._bottom:
            return Zone.bottom(self.n)
        with stats.timed_op("narrowing"):
            out = np.where(np.isinf(self.mat), other.mat, self.mat)
            part = self.partition.union(other.partition)
            return Zone(self.n, out, part, decompose=self.decompose)

    # ------------------------------------------------------------------
    # transfer
    # ------------------------------------------------------------------
    def forget(self, v: int) -> "Zone":
        if self.is_bottom():
            return self.copy()
        out = self.closure().copy()
        with stats.timed_op("forget"):
            m = out._write_mat()
            m[v + 1, :] = INF
            m[:, v + 1] = INF
            m[v + 1, v + 1] = 0.0
            out.partition = out.partition.remove_var(v)
            out.closed = True
        return out

    def assign_const(self, v: int, c: float) -> "Zone":
        out = self.forget(v)
        if out._bottom:
            return out
        with stats.timed_op("assign"):
            m = out._write_mat()
            m[0, v + 1] = c
            m[v + 1, 0] = -c
            out.partition = out.partition.merge_blocks_containing([v])
            out.closed = False
        return out

    def assign_interval(self, v: int, lo: float, hi: float) -> "Zone":
        if lo > hi:
            return Zone.bottom(self.n)
        out = self.forget(v)
        if out._bottom:
            return out
        with stats.timed_op("assign"):
            changed = False
            if hi != INF or lo != -INF:
                m = out._write_mat()
                if hi != INF:
                    m[0, v + 1] = hi
                    changed = True
                if lo != -INF:
                    m[v + 1, 0] = -lo
                    changed = True
            if changed:
                out.partition = out.partition.merge_blocks_containing([v])
                out.closed = False
        return out

    def assign_var(self, v: int, w: int, *, coeff: int = 1,
                   offset: float = 0.0) -> "Zone":
        if coeff == -1:
            # Negation leaves the zone fragment: interval fallback.
            lo, hi = self.bounds(w)
            nlo = -hi + offset if hi != INF else -INF
            nhi = -lo + offset if lo != -INF else INF
            return self.assign_interval(v, nlo, nhi)
        if v == w:  # translation: v := v + offset, exact
            if self._bottom:
                return self.copy()
            out = self.copy()
            with stats.timed_op("assign"):
                # m[i, j] bounds x_j - x_i; substituting x_i = x_i' - off
                # shifts row i down by off and column i up by off.
                i = v + 1
                m = out._write_mat()
                fin_row = np.isfinite(m[i, :])
                fin_col = np.isfinite(m[:, i])
                m[i, fin_row] -= offset
                m[fin_col, i] += offset
                m[i, i] = 0.0
            return out
        out = self.forget(v)
        if out._bottom:
            return out
        with stats.timed_op("assign"):
            m = out._write_mat()
            m[w + 1, v + 1] = offset  # v - w <= offset
            m[v + 1, w + 1] = -offset
            out.partition = out.partition.merge_blocks_containing([v, w])
            out.closed = False
        return out

    def assign_linexpr(self, v: int, expr: LinExpr) -> "Zone":
        coeffs = {w: c for w, c in expr.coeffs.items() if c != 0.0}
        if not coeffs:
            return self.assign_const(v, expr.const)
        if len(coeffs) == 1:
            ((w, c),) = coeffs.items()
            if c in (1.0, -1.0):
                return self.assign_var(v, w, coeff=int(c), offset=expr.const)
        if self.is_bottom():
            return self.copy()
        closed = self.closure()
        if self._bottom:
            return self.copy()
        lo, hi = expr.interval(closed.bounds)
        # Relational refinement for +1-coefficient terms: v - w in rest.
        relational: List[Tuple[int, float, float]] = []
        for w, c in coeffs.items():
            if w == v or c != 1.0:
                continue
            rest = LinExpr({u: cu for u, cu in coeffs.items() if u != w},
                           expr.const)
            rlo, rhi = rest.interval(closed.bounds)
            relational.append((w, rlo, rhi))
        out = closed.forget(v)
        if out._bottom:
            return out
        with stats.timed_op("assign"):
            touched = [v]
            m = out._write_mat()
            if hi != INF:
                m[0, v + 1] = hi
            if lo != -INF:
                m[v + 1, 0] = -lo
            for w, rlo, rhi in relational:
                if rhi != INF:
                    m[w + 1, v + 1] = min(m[w + 1, v + 1], rhi)
                    touched.append(w)
                if rlo != -INF:
                    m[v + 1, w + 1] = min(m[v + 1, w + 1], -rlo)
                    touched.append(w)
            out.partition = out.partition.merge_blocks_containing(touched)
            out.closed = False
        return out

    def assume_linear(self, expr: LinExpr, *, strict: bool = False) -> "Zone":
        """Meet with ``expr <= 0``; difference shapes are exact."""
        if self.is_bottom():
            return self.copy()
        closed = self.closure()
        if self._bottom:
            return self.copy()
        coeffs = {v: c for v, c in expr.coeffs.items() if c != 0.0}
        if not coeffs:
            return self.copy() if expr.const <= 0 else Zone.bottom(self.n)
        out = closed.copy()
        changed = False
        with stats.timed_op("meet_constraint"):
            items = sorted(coeffs.items())
            # v - w <= c (exact zone constraint)
            if len(items) == 2 and items[0][1] == -items[1][1] and \
                    abs(items[0][1]) == 1.0:
                (va, ca), (vb, _) = items
                pos, neg = (va, vb) if ca == 1.0 else (vb, va)
                m = out._write_mat()
                m[neg + 1, pos + 1] = min(m[neg + 1, pos + 1], -expr.const)
                out.partition = out.partition.merge_blocks_containing([pos, neg])
                changed = True
            else:
                m = None
                for v, c in items:
                    rest = LinExpr({u: cu for u, cu in coeffs.items() if u != v},
                                   expr.const)
                    rlo, _ = rest.interval(closed.bounds)
                    if rlo == -INF:
                        continue
                    if m is None:
                        m = out._write_mat()
                    limit = -rlo / c
                    if c > 0:
                        m[0, v + 1] = min(m[0, v + 1], limit)
                    else:
                        m[v + 1, 0] = min(m[v + 1, 0], -limit)
                    out.partition = out.partition.merge_blocks_containing([v])
                    changed = True
            if changed:
                out.closed = False
        return out

    def meet_constraint(self, cons: OctConstraint) -> "Zone":
        coeffs = {cons.i: float(cons.coeff_i)}
        if cons.coeff_j != 0:
            coeffs[cons.j] = coeffs.get(cons.j, 0.0) + float(cons.coeff_j)
        return self.assume_linear(LinExpr(coeffs, -cons.bound))

    def meet_constraints(self, constraints: Iterable[OctConstraint]) -> "Zone":
        out = self
        for cons in constraints:
            out = out.meet_constraint(cons)
        return out

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def bounds(self, v: int) -> Tuple[float, float]:
        if self.is_bottom():
            return (INF, -INF)
        c = self.closure()
        if self._bottom:
            return (INF, -INF)
        hi = c.mat[0, v + 1]
        lo = c.mat[v + 1, 0]
        return (-lo if is_finite(lo) else -INF, hi if is_finite(hi) else INF)

    def bound_linexpr(self, expr: LinExpr) -> Tuple[float, float]:
        if self.is_bottom():
            return (INF, -INF)
        c = self.closure()
        if self._bottom:
            return (INF, -INF)
        coeffs = {v: k for v, k in expr.coeffs.items() if k != 0.0}
        items = sorted(coeffs.items())
        if len(items) == 2 and items[0][1] == -items[1][1] and \
                abs(items[0][1]) == 1.0:
            (va, ca), (vb, _) = items
            pos, neg = (va, vb) if ca == 1.0 else (vb, va)
            hi = c.mat[neg + 1, pos + 1]
            lo = c.mat[pos + 1, neg + 1]
            ilo, ihi = expr.interval(c.bounds)
            return (max(-lo + expr.const if is_finite(lo) else -INF, ilo),
                    min(hi + expr.const if is_finite(hi) else INF, ihi))
        return expr.interval(c.bounds)

    def to_box(self) -> List[Tuple[float, float]]:
        return [self.bounds(v) for v in range(self.n)]

    def contains_point(self, values: Sequence[float], *, tol: float = 1e-9) -> bool:
        if self._bottom:
            return False
        ext = np.concatenate([[0.0], np.asarray(values, dtype=np.float64)])
        diff = ext[None, :] - ext[:, None]
        finite = np.isfinite(self.mat)
        return bool(np.all(diff[finite] <= self.mat[finite] + tol))

    def __repr__(self) -> str:
        if self._bottom:
            return f"Zone(n={self.n}, bottom)"
        return (f"Zone(n={self.n}, components={len(self.partition.blocks)}, "
                f"closed={self.closed})")
