"""The Interval (box) abstract domain.

A non-relational baseline implementing the same protocol as the
octagons: each variable carries an independent ``[lo, hi]`` bound,
stored in two NumPy vectors.  It is used by the examples to contrast
precision (the octagon proves relational facts the box cannot), and by
the analyzer substrate as the cheap domain for auxiliary passes.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

import numpy as np

from ..core.bounds import INF
from ..core.constraints import LinExpr, OctConstraint


class Interval:
    """A box: per-variable lower/upper bound vectors."""

    __slots__ = ("n", "lo", "hi", "_bottom")

    def __init__(self, n: int, lo: np.ndarray, hi: np.ndarray, *, bottom: bool = False):
        self.n = n
        self.lo = lo
        self.hi = hi
        self._bottom = bottom

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def top(cls, n: int) -> "Interval":
        return cls(n, np.full(n, -INF), np.full(n, INF))

    @classmethod
    def bottom(cls, n: int) -> "Interval":
        return cls(n, np.full(n, INF), np.full(n, -INF), bottom=True)

    @classmethod
    def from_box(cls, bounds: Sequence[Tuple[float, float]]) -> "Interval":
        n = len(bounds)
        lo = np.array([b[0] for b in bounds], dtype=np.float64)
        hi = np.array([b[1] for b in bounds], dtype=np.float64)
        if np.any(lo > hi):
            return cls.bottom(n)
        return cls(n, lo, hi)

    def copy(self) -> "Interval":
        return Interval(self.n, self.lo.copy(), self.hi.copy(), bottom=self._bottom)

    def _normalised(self) -> "Interval":
        if not self._bottom and self.n and bool(np.any(self.lo > self.hi)):
            return Interval.bottom(self.n)
        return self

    # ------------------------------------------------------------------
    # predicates
    # ------------------------------------------------------------------
    def is_bottom(self) -> bool:
        return self._bottom or (self.n > 0 and bool(np.any(self.lo > self.hi)))

    def is_top(self) -> bool:
        if self.is_bottom():
            return False
        return bool(np.all(np.isneginf(self.lo)) and np.all(np.isposinf(self.hi)))

    def is_leq(self, other: "Interval") -> bool:
        if self.is_bottom():
            return True
        if other.is_bottom():
            return False
        return bool(np.all(self.lo >= other.lo) and np.all(self.hi <= other.hi))

    def is_eq(self, other: "Interval") -> bool:
        if self.is_bottom() or other.is_bottom():
            return self.is_bottom() and other.is_bottom()
        return bool(np.array_equal(self.lo, other.lo) and np.array_equal(self.hi, other.hi))

    # no-op for protocol compatibility: boxes need no closure
    def close(self) -> "Interval":
        return self

    # ------------------------------------------------------------------
    # lattice
    # ------------------------------------------------------------------
    def meet(self, other: "Interval") -> "Interval":
        if self.is_bottom() or other.is_bottom():
            return Interval.bottom(self.n)
        return Interval(self.n, np.maximum(self.lo, other.lo),
                        np.minimum(self.hi, other.hi))._normalised()

    def join(self, other: "Interval") -> "Interval":
        if self.is_bottom():
            return other.copy()
        if other.is_bottom():
            return self.copy()
        return Interval(self.n, np.minimum(self.lo, other.lo),
                        np.maximum(self.hi, other.hi))

    def widening(self, other: "Interval") -> "Interval":
        if self.is_bottom():
            return other.copy()
        if other.is_bottom():
            return self.copy()
        lo = np.where(other.lo >= self.lo, self.lo, -INF)
        hi = np.where(other.hi <= self.hi, self.hi, INF)
        return Interval(self.n, lo, hi)

    def narrowing(self, other: "Interval") -> "Interval":
        if self.is_bottom() or other.is_bottom():
            return Interval.bottom(self.n)
        lo = np.where(np.isneginf(self.lo), other.lo, self.lo)
        hi = np.where(np.isposinf(self.hi), other.hi, self.hi)
        return Interval(self.n, lo, hi)._normalised()

    # ------------------------------------------------------------------
    # transfer
    # ------------------------------------------------------------------
    def forget(self, v: int) -> "Interval":
        if self.is_bottom():
            return self.copy()
        out = self.copy()
        out.lo[v], out.hi[v] = -INF, INF
        return out

    def assign_const(self, v: int, c: float) -> "Interval":
        if self.is_bottom():
            return self.copy()
        out = self.copy()
        out.lo[v] = out.hi[v] = c
        return out

    def assign_interval(self, v: int, lo: float, hi: float) -> "Interval":
        if lo > hi:
            return Interval.bottom(self.n)
        if self.is_bottom():
            return self.copy()
        out = self.copy()
        out.lo[v], out.hi[v] = lo, hi
        return out

    def assign_var(self, v: int, w: int, *, coeff: int = 1, offset: float = 0.0) -> "Interval":
        return self.assign_linexpr(v, LinExpr({w: float(coeff)}, offset))

    def assign_linexpr(self, v: int, expr: LinExpr) -> "Interval":
        if self.is_bottom():
            return self.copy()
        lo, hi = expr.interval(self.bounds)
        out = self.copy()
        out.lo[v], out.hi[v] = lo, hi
        return out

    def assume_linear(self, expr: LinExpr, *, strict: bool = False) -> "Interval":
        """Meet with ``expr <= 0`` by bound propagation on each variable."""
        if self.is_bottom():
            return self.copy()
        out = self.copy()
        for v, c in expr.coeffs.items():
            if c == 0.0:
                continue
            rest = LinExpr({u: cu for u, cu in expr.coeffs.items() if u != v},
                           expr.const)
            rlo, _ = rest.interval(self.bounds)
            if rlo == -INF:
                continue
            # c*v <= -rest  =>  c*v <= -rlo.
            limit = -rlo
            if c > 0:
                out.hi[v] = min(out.hi[v], limit / c)
            else:
                out.lo[v] = max(out.lo[v], limit / c)
        if not expr.coeffs and expr.const > 0:
            return Interval.bottom(self.n)
        return out._normalised()

    def meet_constraint(self, cons: OctConstraint) -> "Interval":
        coeffs = {cons.i: float(cons.coeff_i)}
        if cons.coeff_j != 0:
            coeffs[cons.j] = coeffs.get(cons.j, 0.0) + float(cons.coeff_j)
        return self.assume_linear(LinExpr(coeffs, -cons.bound))

    def meet_constraints(self, constraints: Iterable[OctConstraint]) -> "Interval":
        out = self
        for cons in constraints:
            out = out.meet_constraint(cons)
        return out

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def bounds(self, v: int) -> Tuple[float, float]:
        if self.is_bottom():
            return (INF, -INF)
        return (float(self.lo[v]), float(self.hi[v]))

    def bound_linexpr(self, expr: LinExpr) -> Tuple[float, float]:
        if self.is_bottom():
            return (INF, -INF)
        return expr.interval(self.bounds)

    def to_box(self) -> List[Tuple[float, float]]:
        return [self.bounds(v) for v in range(self.n)]

    def contains_point(self, values: Sequence[float], *, tol: float = 1e-9) -> bool:
        if self.is_bottom():
            return False
        vals = np.asarray(values, dtype=np.float64)
        return bool(np.all(vals >= self.lo - tol) and np.all(vals <= self.hi + tol))

    def __repr__(self) -> str:
        if self.is_bottom():
            return f"Interval(n={self.n}, bottom)"
        parts = ", ".join(f"v{v}:[{self.lo[v]:g},{self.hi[v]:g}]" for v in range(self.n))
        return f"Interval({parts})"
