"""Plain-text table/series rendering and result persistence.

Benchmarks print the same rows/series the paper reports and also save
them under ``results/`` so EXPERIMENTS.md can reference stable output.
"""

from __future__ import annotations

import math
import os
from typing import Iterable, Optional, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]],
                 title: Optional[str] = None) -> str:
    """Align columns; floats rendered with 3 significant digits."""

    def cell(x: object) -> str:
        if isinstance(x, float):
            if x == 0:
                return "0"
            if abs(x) >= 1000 or abs(x) < 0.001:
                return f"{x:.2e}"
            return f"{x:.3g}"
        return str(x)

    str_rows = [[cell(x) for x in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, text in enumerate(row):
            widths[i] = max(widths[i], len(text))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(t.ljust(w) for t, w in zip(row, widths)))
    return "\n".join(lines)


def geomean(values: Sequence[float]) -> float:
    vals = [v for v in values if v > 0]
    if not vals:
        return 0.0
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def render_ascii_series(series: dict, *, width: int = 72, height: int = 16,
                        logy: bool = True, title: str = "") -> str:
    """Render named numeric series as an ASCII chart (Fig. 7 style)."""
    symbols = "*o+x#@"
    all_vals = [v for vals in series.values() for v in vals if v > 0]
    if not all_vals:
        return title + "\n(no data)"
    lo, hi = min(all_vals), max(all_vals)
    if logy:
        lo, hi = math.log10(lo), math.log10(max(hi, lo * 1.0000001))
    span = max(hi - lo, 1e-12)
    length = max(len(vals) for vals in series.values())
    grid = [[" "] * width for _ in range(height)]
    for si, (name, vals) in enumerate(series.items()):
        sym = symbols[si % len(symbols)]
        for i, v in enumerate(vals):
            if v <= 0:
                continue
            x = int(i * (width - 1) / max(length - 1, 1))
            y = math.log10(v) if logy else v
            row = int((y - lo) / span * (height - 1))
            grid[height - 1 - row][x] = sym
    lines = [title] if title else []
    axis = "log10" if logy else "linear"
    lines.append(f"y: {axis}  range [{10**lo:.2e}, {10**hi:.2e}]" if logy
                 else f"y range [{lo:.3g}, {hi:.3g}]")
    for si, name in enumerate(series):
        lines.append(f"  {symbols[si % len(symbols)]} = {name}")
    lines.extend("|" + "".join(row) for row in grid)
    lines.append("+" + "-" * width)
    return "\n".join(lines)


def results_dir() -> str:
    base = os.environ.get("REPRO_RESULTS_DIR")
    if base is None:
        here = os.path.dirname(os.path.dirname(os.path.dirname(
            os.path.dirname(os.path.abspath(__file__)))))
        base = os.path.join(here, "results")
    os.makedirs(base, exist_ok=True)
    return base


def save_result(name: str, text: str) -> str:
    """Persist one experiment's rendered output; returns the path."""
    path = os.path.join(results_dir(), f"{name}.txt")
    with open(path, "w") as fh:
        fh.write(text)
        if not text.endswith("\n"):
            fh.write("\n")
    return path
