"""Measurement and reporting harness for the paper's tables and figures."""

from .reporting import format_table, geomean, render_ascii_series, save_result
from .runner import (
    ClosureComparison,
    batch_suite_rows,
    closure_comparison,
    fig8_row,
    table2_row,
    table3_row,
)

__all__ = [
    "ClosureComparison",
    "batch_suite_rows",
    "closure_comparison",
    "fig8_row",
    "format_table",
    "geomean",
    "render_ascii_series",
    "save_result",
    "table2_row",
    "table3_row",
]
