"""Benchmark measurement logic shared by the ``benchmarks/`` harness.

The central trick mirrors the paper's methodology: run each benchmark's
abstract interpretation once with the optimised octagon while
*capturing every full-closure input* (DBM + maintained partition), then
replay the identical closure workload through each closure
implementation under timing.  That gives the closure-level comparisons
(Fig. 6 and the Fig. 7 per-closure trace) on exactly the DBMs the
analysis produced.  End-to-end rows (Fig. 8, Table 3) re-run the whole
analysis per domain.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core.closure_apron import closure_apron
from ..core.closure_dense import closure_dense_numpy
from ..core.closure_reference import closure_full_numpy
from ..core.densemat import count_nni
from ..core.halfmat import HalfMat
from ..core.kinds import DEFAULT_POLICY
from ..core.octagon import Octagon
from ..core.partition import Partition
from ..workloads.analyzers import run_workload
from ..workloads.suite import Benchmark


@dataclass
class ClosureEvent:
    """Timings of one captured closure input under each implementation."""

    n: int
    kind: str  # kind the OptOctagon dispatch chose
    t_apron: float
    t_fw: float
    t_dense: float
    t_opt: float


@dataclass
class ClosureComparison:
    """Fig. 6 aggregates + the Fig. 7 per-closure trace."""

    benchmark: str
    events: List[ClosureEvent] = field(default_factory=list)

    def aggregate(self, attr: str) -> float:
        return sum(getattr(e, attr) for e in self.events)

    @property
    def fw_speedup(self) -> float:
        """Fig. 6 gray bar: vectorised Floyd-Warshall over APRON."""
        fw = self.aggregate("t_fw")
        return self.aggregate("t_apron") / fw if fw > 0 else 0.0

    @property
    def opt_speedup(self) -> float:
        """Fig. 6 black bar: the OptOctagon closure over APRON."""
        opt = self.aggregate("t_opt")
        return self.aggregate("t_apron") / opt if opt > 0 else 0.0


def _time(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def closure_comparison(benchmark: Benchmark, *, scale: Optional[str] = None,
                       max_events: Optional[int] = None) -> ClosureComparison:
    """Capture the benchmark's closure workload and replay it through
    APRON / FW / Dense / OptOctagon closure implementations."""
    run = run_workload(benchmark, "octagon", scale=scale, capture_closures=True)
    events: List[ClosureEvent] = []
    inputs = run.closure_inputs
    if max_events is not None:
        inputs = inputs[:max_events]
    for mat, blocks in inputs:
        n = mat.shape[0] // 2
        half = HalfMat.from_full(mat)
        t_apron = _time(lambda: closure_apron(half))
        fw_mat = mat.copy()
        t_fw = _time(lambda: closure_full_numpy(fw_mat))
        dn_mat = mat.copy()
        t_dense = _time(lambda: closure_dense_numpy(dn_mat))
        # The OptOctagon dispatch: rebuild the octagon exactly as the
        # analysis had it (same matrix, same maintained partition).
        oct_mat = mat.copy()
        part = Partition(n, blocks)
        nni = count_nni(oct_mat)
        oct_ = Octagon(n, oct_mat, part, nni, closed=False, policy=DEFAULT_POLICY)
        kind = str(oct_.kind)
        t_opt = _time(oct_._close_in_place)
        events.append(ClosureEvent(n, kind, t_apron, t_fw, t_dense, t_opt))
    return ClosureComparison(benchmark.name, events)


def fig8_row(benchmark: Benchmark, *, scale: Optional[str] = None) -> Dict[str, object]:
    """End-to-end octagon-analysis speedup (Fig. 8)."""
    opt = run_workload(benchmark, "octagon", scale=scale)
    apron = run_workload(benchmark, "apron", scale=scale)
    speedup = apron.octagon_seconds / max(opt.octagon_seconds, 1e-12)
    return {
        "benchmark": benchmark.name,
        "analyzer": benchmark.analyzer,
        "apron_oct_s": apron.octagon_seconds,
        "opt_oct_s": opt.octagon_seconds,
        "speedup": speedup,
        "paper_speedup": benchmark.paper.oct_speedup,
        "copies_avoided": opt.counters.get("copies_avoided", 0),
        "workspace_hits": opt.counters.get("workspace_hits", 0),
        "closure_cache_hits": opt.counters.get("closure_cache_hits", 0),
        "plans_compiled": opt.counters.get("plans_compiled", 0),
        "plan_exec": opt.counters.get("plan_exec", 0),
        "constraints_batched": opt.counters.get("constraints_batched", 0),
        "closures_avoided": opt.counters.get("closures_avoided", 0),
    }


def table2_row(benchmark: Benchmark, *, scale: Optional[str] = None) -> Dict[str, object]:
    """Closure statistics (Table 2), measured vs paper."""
    run = run_workload(benchmark, "octagon", scale=scale)
    return {
        "benchmark": benchmark.name,
        "analyzer": benchmark.analyzer,
        "nmin": run.nmin,
        "nmax": run.nmax,
        "closures": run.closures,
        "paper_nmin": benchmark.paper.nmin,
        "paper_nmax": benchmark.paper.nmax,
        "paper_closures": benchmark.paper.closures,
    }


def batch_suite_rows(*, scale: Optional[str] = None,
                     workers: Optional[int] = None,
                     timeout: Optional[float] = None,
                     use_cache: bool = False, **options) -> Dict[str, object]:
    """The whole suite through the batch service (one row per job).

    This is the same execution path as ``python -m repro batch
    --suite``; benchmark tables therefore measure exactly what the
    service serves, including its scheduling and cache behaviour.
    """
    from ..service import run_suite

    batch = run_suite(scale, workers=workers, timeout=timeout,
                      use_cache=use_cache, **options)
    rows = [{
        "benchmark": r.label,
        "outcome": r.outcome,
        "seconds": r.seconds,
        "octagon_s": r.octagon_seconds,
        "verified": r.checks_verified,
        "checks": r.checks_total,
        "cached": r.cached,
        "rungs": dict(r.rungs),
        "copies_avoided": r.counters.get("copies_avoided", 0),
        "workspace_hits": r.counters.get("workspace_hits", 0),
        "closure_cache_hits": r.counters.get("closure_cache_hits", 0),
        "plans_compiled": r.counters.get("plans_compiled", 0),
        "plan_exec": r.counters.get("plan_exec", 0),
        "constraints_batched": r.counters.get("constraints_batched", 0),
        "closures_avoided": r.counters.get("closures_avoided", 0),
        "budget_checkpoints": r.counters.get("budget_checkpoints", 0),
        "budget_interrupts": r.counters.get("budget_interrupts", 0),
        "degradations": r.counters.get("degradations", 0),
    } for r in batch.results]
    return {"batch": batch, "rows": rows}


def table3_row(benchmark: Benchmark, *, scale: Optional[str] = None,
               aux_passes: int = 3) -> Dict[str, object]:
    """End-to-end program analysis comparison (Table 3)."""
    opt = run_workload(benchmark, "octagon", scale=scale, aux_passes=aux_passes)
    apron = run_workload(benchmark, "apron", scale=scale, aux_passes=aux_passes)
    return {
        "benchmark": benchmark.name,
        "analyzer": benchmark.analyzer,
        "apron_total_s": apron.total_seconds,
        "apron_pct_oct": apron.pct_octagon,
        "opt_total_s": opt.total_seconds,
        "opt_pct_oct": opt.pct_octagon,
        "speedup": apron.total_seconds / max(opt.total_seconds, 1e-12),
        "paper_speedup": benchmark.paper.program_speedup,
        "paper_apron_pct_oct": benchmark.paper.apron_pct_oct,
        "copies_avoided": opt.counters.get("copies_avoided", 0),
        "workspace_hits": opt.counters.get("workspace_hits", 0),
        "closure_cache_hits": opt.counters.get("closure_cache_hits", 0),
        "plans_compiled": opt.counters.get("plans_compiled", 0),
        "plan_exec": opt.counters.get("plan_exec", 0),
        "constraints_batched": opt.counters.get("constraints_batched", 0),
        "closures_avoided": opt.counters.get("closures_avoided", 0),
    }
