"""The paper's 17-benchmark suite (Table 2 / Table 3 registry).

Each entry records the statistics the paper published for the original
benchmark -- closure DBM sizes (``nmin``/``nmax``), closure count,
octagon-analysis speedup (Fig. 8), end-to-end times and the octagon
fraction (Table 3) -- together with a seeded generator that regenerates
a workload with the same analyzer-family profile at an
interpreter-feasible scale.

Scaling: the original workloads run DBMs up to n=237 through thousands
of closures; a pure-Python scalar baseline (our APRON stand-in) needs
seconds *per* cubic closure at that size.  Every entry therefore
carries a ``scale`` used by its generator; the benchmark harness
reports paper-vs-measured side by side (EXPERIMENTS.md).  Set the
environment variable ``REPRO_BENCH_SCALE`` to ``small`` (CI), ``paper``
(default) or ``large`` to move the knob.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from .programs import gen_cpa_like, gen_dizy_like, gen_dps_like, gen_tb_like


@dataclass(frozen=True)
class PaperStats:
    """Numbers published in the paper for the original benchmark."""

    nmin: int
    nmax: int
    closures: int
    oct_speedup: float  # Fig. 8: octagon-analysis speedup
    apron_total_s: float  # Table 3: end-to-end APRON time
    apron_pct_oct: float  # Table 3: % time in octagons under APRON
    opt_total_s: float  # Table 3: end-to-end OptOctagon time
    opt_pct_oct: float  # Table 3: % time in octagons under OptOctagon
    program_speedup: float  # Table 3: end-to-end speedup


@dataclass(frozen=True)
class Benchmark:
    """One row of the suite."""

    name: str
    analyzer: str  # CPA | TB | DPS | DIZY
    paper: PaperStats
    source_builder: Callable[[str], str]  # scale -> program source

    def source(self, scale: Optional[str] = None) -> str:
        if scale is None:
            scale = os.environ.get("REPRO_BENCH_SCALE", "paper")
        if scale not in ("small", "paper", "large"):
            raise ValueError(f"unknown scale {scale!r}")
        return self.source_builder(scale)

    def job(self, scale: Optional[str] = None, *, domain: str = "octagon",
            **options):
        """This benchmark as a batch-service job (labelled by name)."""
        from ..service.job import AnalysisJob

        return AnalysisJob(source=self.source(scale), label=self.name,
                           domain=domain, **options)


def _cpa(name: str, seed: int, nvars: Dict[str, int], loops: Dict[str, int]):
    def build(scale: str) -> str:
        return gen_cpa_like(seed, n_vars=nvars[scale], n_loops=loops[scale],
                            stmts_per_loop=8)
    return build


def _tb(seed: int, groups: Dict[str, int], gsize: Dict[str, int],
        handlers: int = 1, spread: float = 0.0, phases: int = 2):
    def build(scale: str) -> str:
        return gen_tb_like(seed, n_groups=groups[scale], group_size=gsize[scale],
                           n_handlers=handlers, size_spread=spread,
                           n_phases=phases)
    return build


def _dps(seed: int, sizes: Dict[str, List[int]]):
    def build(scale: str) -> str:
        return gen_dps_like(seed, proc_sizes=sizes[scale])
    return build


def _dizy(seed: int, procs: Dict[str, int], mv: Dict[str, int]):
    def build(scale: str) -> str:
        return gen_dizy_like(seed, n_procs=procs[scale], max_vars=mv[scale])
    return build


def _s(small, paper, large):
    return {"small": small, "paper": paper, "large": large}


#: The 17 benchmarks of the paper's evaluation (Tables 2 and 3).
BENCHMARKS: List[Benchmark] = [
    # -- CPAchecker ------------------------------------------------------
    Benchmark("Prob6_00_f", "CPA", PaperStats(44, 58, 4813, 9.3, 29.9, 79.4, 11.2, 38.0, 2.7),
              _cpa("Prob6_00_f", 1101, _s(8, 18, 28), _s(2, 3, 4))),
    Benchmark("Prob6_30_t", "CPA", PaperStats(44, 58, 22170, 11.0, 97.5, 88.9, 26.7, 54.5, 3.7),
              _cpa("Prob6_30_t", 1102, _s(8, 18, 28), _s(2, 4, 5))),
    Benchmark("s3_clnt_2_f", "CPA", PaperStats(72, 72, 708, 60.0, 7.2, 76.4, 1.7, 3.6, 4.2),
              _cpa("s3_clnt_2_f", 1103, _s(10, 24, 36), _s(2, 3, 4))),
    Benchmark("s3_clnt_3_t", "CPA", PaperStats(79, 79, 715, 115.0, 9.0, 80.8, 1.7, 3.7, 5.3),
              _cpa("s3_clnt_3_t", 1104, _s(10, 26, 40), _s(2, 3, 4))),
    # -- TouchBoost ------------------------------------------------------
    Benchmark("gwsfmlau", "TB", PaperStats(166, 186, 837, 30.0, 83.5, 96.3, 8.9, 65.2, 9.4),
              _tb(1201, _s(3, 6, 9), _s(3, 6, 8), phases=3)),
    Benchmark("blwd", "TB", PaperStats(5, 50, 24170, 12.0, 79.1, 80.4, 16.0, 5.0, 4.9),
              _tb(1202, _s(2, 4, 6), _s(2, 5, 7), handlers=4, spread=0.8,
                  phases=3)),
    Benchmark("eeorzcap", "TB", PaperStats(7, 93, 5398, 20.0, 89.1, 92.6, 11.6, 46.6, 7.7),
              _tb(1203, _s(3, 5, 8), _s(2, 5, 8), handlers=3, spread=0.85,
                  phases=2)),
    Benchmark("jwgqbjzs", "TB", PaperStats(187, 190, 1884, 70.0, 266.0, 98.5, 14.2, 69.7, 18.7),
              _tb(1204, _s(3, 7, 10), _s(3, 6, 8), phases=4)),
    # -- DPS -------------------------------------------------------------
    Benchmark("crypt", "DPS", PaperStats(9, 237, 861, 146.0, 147.0, 77.8, 34.7, 2.0, 4.2),
              _dps(1301, _s([3, 6], [4, 8, 16, 30], [4, 10, 24, 44]))),
    Benchmark("moldyn", "DPS", PaperStats(9, 67, 5365, 15.0, 31.9, 17.4, 27.0, 2.0, 1.2),
              _dps(1302, _s([3, 5], [4, 8, 14, 22], [5, 12, 20, 30]))),
    Benchmark("lufact", "DPS", PaperStats(12, 31, 142, 8.0, 20.0, 0.3, 19.2, 0.06, 1.0),
              _dps(1303, _s([3, 4], [6, 10, 16], [8, 14, 22]))),
    Benchmark("sor", "DPS", PaperStats(16, 54, 70, 7.0, 19.2, 0.6, 19.3, 0.1, 1.0),
              _dps(1304, _s([3, 5], [6, 10, 18], [8, 14, 24]))),
    Benchmark("series", "DPS", PaperStats(8, 21, 37, 2.7, 19.7, 0.09, 19.4, 0.03, 1.0),
              _dps(1305, _s([3], [6, 14], [8, 18]))),
    Benchmark("matmult", "DPS", PaperStats(8, 24, 10, 2.7, 19.6, 0.03, 19.4, 0.01, 1.0),
              _dps(1306, _s([3], [6, 15], [8, 20]))),
    # -- DIZY ------------------------------------------------------------
    Benchmark("linux_full", "DIZY", PaperStats(1, 78, 15900, 6.0, 1681.0, 27.5, 1244.0, 2.9, 1.4),
              _dizy(1401, _s(4, 12, 20), _s(6, 14, 20))),
    Benchmark("seq", "DIZY", PaperStats(1, 35, 11216, 5.0, 155.0, 11.6, 129.0, 3.4, 1.2),
              _dizy(1402, _s(4, 10, 16), _s(4, 10, 14))),
    Benchmark("firefox", "DIZY", PaperStats(1, 24, 1061, 4.0, 6.0, 13.9, 5.0, 4.9, 1.2),
              _dizy(1403, _s(3, 8, 12), _s(4, 12, 14))),
]

_BY_NAME = {b.name: b for b in BENCHMARKS}


def get_benchmark(name: str) -> Benchmark:
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(f"unknown benchmark {name!r}; "
                       f"available: {sorted(_BY_NAME)}") from None


def load_suite(analyzer: Optional[str] = None) -> List[Benchmark]:
    """All benchmarks, optionally filtered by analyzer family."""
    if analyzer is None:
        return list(BENCHMARKS)
    return [b for b in BENCHMARKS if b.analyzer == analyzer]
