"""Workload suite reproducing the paper's 17 benchmarks.

Real benchmark programs (CPAchecker/TouchBoost/DPS/DIZY inputs) are not
available; per the reproduction's substitution rule, each benchmark is
regenerated as a seeded mini-language program whose *octagon workload
characteristics* follow the published per-benchmark statistics of
Table 2 (DBM sizes, closure counts, analyzer family behaviour), scaled
to interpreter-feasible sizes.  See DESIGN.md and EXPERIMENTS.md.
"""

from .programs import (
    fig2_program,
    gen_cpa_like,
    gen_dizy_like,
    gen_dps_like,
    gen_tb_like,
)
from .suite import BENCHMARKS, Benchmark, get_benchmark, load_suite
from .analyzers import WorkloadRun, run_workload

__all__ = [
    "BENCHMARKS",
    "Benchmark",
    "WorkloadRun",
    "fig2_program",
    "gen_cpa_like",
    "gen_dizy_like",
    "gen_dps_like",
    "gen_tb_like",
    "get_benchmark",
    "load_suite",
    "run_workload",
]
