"""Record/replay of abstract-domain operation traces.

A *trace* is the exact sequence of domain operations an analysis
performed, in SSA form: every abstract state has an integer id, and
each :class:`TraceOp` names the method, the ids it consumed and the id
it produced.  Traces serve three purposes:

* **benchmarking** -- replaying one identical operation sequence
  through different octagon implementations isolates domain time from
  analyzer overhead (the methodology behind Fig. 8);
* **debugging/minimisation** -- a diverging analysis can be captured
  once and replayed deterministically;
* **testing** -- a differential oracle: replaying any recorded trace
  through ``Octagon`` and ``ApronOctagon`` must produce semantically
  equal final states.

Traces are JSON-serialisable (:meth:`OpTrace.to_json`).

Record with :func:`tracing_factory`, which wraps a domain factory so
that every state the analyzer touches is a :class:`TracingState` proxy;
replay with :func:`replay`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..core.constraints import LinExpr, OctConstraint

#: Domain methods that produce a new abstract state.
STATE_METHODS = frozenset({
    "join", "meet", "widening", "narrowing", "forget", "assign_const",
    "assign_interval", "assign_var", "assign_linexpr", "assume_linear",
    "meet_constraint", "meet_constraints", "copy", "widening_thresholds",
})

#: Domain methods that only query a state.
QUERY_METHODS = frozenset({
    "is_bottom", "is_top", "is_leq", "is_eq", "bounds", "bound_linexpr",
    "to_box", "sat_constraint", "close", "closure",
})


@dataclass(frozen=True)
class TraceOp:
    """One recorded operation: ``result = method(state, *args)``."""

    result: Optional[int]  # state id produced, None for queries
    method: str
    target: int  # state id the method was invoked on
    args: Tuple[Any, ...] = ()


@dataclass
class OpTrace:
    """A full recorded run: initial constructors plus operations."""

    n: int
    ops: List[TraceOp] = field(default_factory=list)
    n_states: int = 0

    def fresh_id(self) -> int:
        sid = self.n_states
        self.n_states += 1
        return sid

    # ------------------------------------------------------------------
    # (de)serialisation
    # ------------------------------------------------------------------
    def to_json(self) -> str:
        return json.dumps({
            "n": self.n,
            "n_states": self.n_states,
            "ops": [[op.result, op.method, op.target, _encode_args(op.args)]
                    for op in self.ops],
        })

    @classmethod
    def from_json(cls, text: str) -> "OpTrace":
        raw = json.loads(text)
        trace = cls(n=raw["n"], n_states=raw["n_states"])
        for result, method, target, args in raw["ops"]:
            trace.ops.append(TraceOp(result, method, target,
                                     _decode_args(args)))
        return trace

    def __len__(self) -> int:
        return len(self.ops)


# ----------------------------------------------------------------------
# argument encoding (JSON-able, round-trips domain value types)
# ----------------------------------------------------------------------
def _encode_arg(arg: Any):
    if isinstance(arg, OctConstraint):
        return {"__cons__": [arg.i, arg.coeff_i, arg.j, arg.coeff_j, arg.bound]}
    if isinstance(arg, LinExpr):
        return {"__lin__": [sorted(arg.coeffs.items()), arg.const]}
    if isinstance(arg, StateRef):
        return {"__state__": arg.sid}
    if isinstance(arg, (list, tuple)):
        return {"__seq__": [_encode_arg(x) for x in arg]}
    if isinstance(arg, (int, float, str, bool)) or arg is None:
        return arg
    raise TypeError(f"cannot encode trace argument {arg!r}")


def _encode_args(args: Sequence[Any]):
    return [_encode_arg(a) for a in args]


def _decode_arg(raw):
    if isinstance(raw, dict):
        if "__cons__" in raw:
            i, ci, j, cj, bound = raw["__cons__"]
            return OctConstraint(i, ci, j, cj, bound)
        if "__lin__" in raw:
            items, const = raw["__lin__"]
            return LinExpr({int(v): float(c) for v, c in items}, const)
        if "__state__" in raw:
            return StateRef(raw["__state__"])
        if "__seq__" in raw:
            return tuple(_decode_arg(x) for x in raw["__seq__"])
        raise TypeError(f"cannot decode {raw!r}")
    return raw


def _decode_args(raw) -> Tuple[Any, ...]:
    return tuple(_decode_arg(a) for a in raw)


@dataclass(frozen=True)
class StateRef:
    """A reference to another recorded state inside an argument list."""

    sid: int


# ----------------------------------------------------------------------
# recording
# ----------------------------------------------------------------------
class TracingState:
    """Proxy around an abstract state that records every operation."""

    __slots__ = ("inner", "sid", "trace")

    def __init__(self, inner, sid: int, trace: OpTrace):
        self.inner = inner
        self.sid = sid
        self.trace = trace

    @property
    def n(self) -> int:
        return self.inner.n

    def __getattr__(self, name: str):
        attr = getattr(self.inner, name)
        if name in STATE_METHODS:
            def call(*args, **kwargs):
                enc, dec = _split_args(args)
                result = attr(*dec, **kwargs)
                sid = self.trace.fresh_id()
                self.trace.ops.append(TraceOp(sid, name, self.sid, enc))
                return TracingState(result, sid, self.trace)
            return call
        if name in QUERY_METHODS:
            def call(*args, **kwargs):
                enc, dec = _split_args(args)
                self.trace.ops.append(TraceOp(None, name, self.sid, enc))
                result = attr(*dec, **kwargs)
                if result is self.inner:  # close()/closure() return self
                    return self
                return result
            return call
        return attr

    def __repr__(self) -> str:
        return f"TracingState(sid={self.sid}, inner={self.inner!r})"


def _split_args(args):
    """Unwrap TracingState arguments; produce the encoded twin list."""
    encoded = []
    decoded = []
    for arg in args:
        if isinstance(arg, TracingState):
            encoded.append(StateRef(arg.sid))
            decoded.append(arg.inner)
        elif isinstance(arg, (list, tuple)):
            enc_inner, dec_inner = _split_args(arg)
            encoded.append(tuple(enc_inner))
            decoded.append(type(arg)(dec_inner) if isinstance(arg, list)
                           else tuple(dec_inner))
        else:
            encoded.append(arg)
            decoded.append(arg)
    return tuple(encoded), tuple(decoded)


class TracingFactory:
    """A DomainFactory wrapper whose states record into one OpTrace."""

    def __init__(self, factory, trace: Optional[OpTrace] = None, n: int = 0):
        self.factory = factory
        self.trace = trace if trace is not None else OpTrace(n=n)
        self.name = f"traced-{getattr(factory, 'name', 'domain')}"

    def _fresh(self, method: str, inner, args=()):
        sid = self.trace.fresh_id()
        self.trace.ops.append(TraceOp(sid, method, -1, args))
        return TracingState(inner, sid, self.trace)

    def top(self, n: int):
        self.trace.n = max(self.trace.n, n)
        return self._fresh("top", self.factory.top(n), (n,))

    def bottom(self, n: int):
        self.trace.n = max(self.trace.n, n)
        return self._fresh("bottom", self.factory.bottom(n), (n,))

    def from_box(self, bounds):
        self.trace.n = max(self.trace.n, len(bounds))
        enc = tuple((float(lo), float(hi)) for lo, hi in bounds)
        return self._fresh("from_box", self.factory.from_box(bounds), (enc,))


def tracing_factory(factory) -> TracingFactory:
    """Wrap a domain factory so analyses record an operation trace."""
    return TracingFactory(factory)


# ----------------------------------------------------------------------
# replay
# ----------------------------------------------------------------------
def replay(trace: OpTrace, factory) -> Dict[int, object]:
    """Re-execute a trace against a domain factory.

    Returns the mapping from state id to the final abstract states (so
    differential tests can compare any intermediate result).
    """
    states: Dict[int, object] = {}

    def resolve(arg):
        if isinstance(arg, StateRef):
            return states[arg.sid]
        if isinstance(arg, tuple):
            return tuple(resolve(x) for x in arg)
        return arg

    for op in trace.ops:
        args = tuple(resolve(a) for a in op.args)
        if op.target == -1:  # constructor
            if op.method == "top":
                states[op.result] = factory.top(*args)
            elif op.method == "bottom":
                states[op.result] = factory.bottom(*args)
            elif op.method == "from_box":
                states[op.result] = factory.from_box(list(args[0]))
            else:
                raise ValueError(f"unknown constructor {op.method}")
            continue
        target = states[op.target]
        method = getattr(target, op.method)
        result = method(*args)
        if op.result is not None:
            states[op.result] = result
    return states
