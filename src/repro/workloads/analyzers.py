"""Run a benchmark workload through the analyzer with a chosen domain.

:func:`run_workload` is the measurement entry point used by every
benchmark: it parses the benchmark's generated program once, runs the
full abstract interpretation with the requested octagon implementation
under a stats collector, and returns wall times split into octagon
time vs. everything else, plus the closure statistics of Table 2.

The optional auxiliary passes (liveness, reaching definitions, constant
propagation over the same CFGs) model the non-octagon components of the
paper's host analyzers for the Table 3 comparison.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..analysis.analyzer import Analyzer
from ..core import stats
from ..dataflow import constant_propagation, liveness, reaching_definitions
from ..frontend.cfg import build_cfg
from ..frontend.parser import parse_program
from .suite import Benchmark


@dataclass
class WorkloadRun:
    """Measurements from one benchmark run under one domain."""

    benchmark: str
    domain: str
    total_seconds: float
    octagon_seconds: float
    closure_seconds: float
    closures: int
    nmin: int
    nmax: int
    op_seconds: Dict[str, float] = field(default_factory=dict)
    closure_records: List[stats.ClosureRecord] = field(default_factory=list)
    closure_inputs: List[tuple] = field(default_factory=list)
    checks_verified: int = 0
    checks_total: int = 0
    counters: Dict[str, int] = field(default_factory=dict)

    @property
    def pct_octagon(self) -> float:
        if self.total_seconds == 0:
            return 0.0
        return 100.0 * self.octagon_seconds / self.total_seconds


def run_workload(
    benchmark: Benchmark,
    domain: str,
    *,
    scale: Optional[str] = None,
    aux_passes: int = 0,
    capture_closures: bool = False,
    widening_delay: int = 2,
    compile_transfer: bool = True,
) -> WorkloadRun:
    """Analyze one benchmark's generated program with one domain.

    ``aux_passes`` repeats the auxiliary dataflow analyses that many
    times over every procedure's CFG, modelling the non-octagon
    analyzer components (Table 3); 0 measures pure octagon analysis
    (Fig. 8).
    """
    source = benchmark.source(scale)
    analyzer = Analyzer(domain=domain, widening_delay=widening_delay,
                        narrowing_steps=3, compile_transfer=compile_transfer)
    start = time.perf_counter()
    with stats.collecting() as collector:
        collector.capture_closure_inputs = capture_closures
        # Front-end work (lexing/parsing) counts towards the end-to-end
        # time, as in the paper's Table 3.
        program = parse_program(source)
        result_checks = []
        for proc in program.procedures:
            res = analyzer.analyze(proc)
            result_checks.extend(res.checks)
        aux_seconds = 0.0
        if aux_passes:
            aux_start = time.perf_counter()
            for proc in program.procedures:
                cfg = build_cfg(proc)
                for _ in range(aux_passes):
                    liveness(cfg)
                    reaching_definitions(cfg)
                    constant_propagation(cfg)
            aux_seconds = time.perf_counter() - aux_start
    total = time.perf_counter() - start
    cstats = collector.closure_stats()
    return WorkloadRun(
        benchmark=benchmark.name,
        domain=domain,
        total_seconds=total,
        octagon_seconds=collector.total_seconds + collector.closure_seconds,
        closure_seconds=collector.closure_seconds,
        closures=int(cstats["closures"]),
        nmin=int(cstats["nmin"]),
        nmax=int(cstats["nmax"]),
        op_seconds=dict(collector.op_seconds),
        closure_records=list(collector.closures),
        closure_inputs=list(collector.closure_inputs),
        checks_verified=sum(1 for c in result_checks if c.verified),
        checks_total=len(result_checks),
        counters=collector.counter_summary(),
    )
