"""Seeded program generators, one per analyzer family in the paper.

Each generator emits mini-language source whose octagon-operation
profile matches how that analyzer family exercised APRON:

* **CPA-like** (CPAchecker verification tasks): one or two procedures
  with a fixed, fully interrelated variable set -- state-machine loops
  and branch ladders over counters.  DBMs stay mostly dense; ``nmin``
  is close to ``nmax`` (Table 2: Prob6/s3_clnt rows).
* **TB-like** (TouchBoost event-driven apps): one large procedure in
  which an outer event loop dispatches over handlers, each handler
  touching only its own variable group plus a couple of globals.  The
  variable set decomposes into independent components, and widening on
  the event loop drives the DBM from dense to sparse midway -- the
  Fig. 7 profile.
* **DPS-like** (Java numerical kernels): many procedures of widely
  varying size (triangular loop nests with index arithmetic), giving a
  wide ``nmin``..``nmax`` spread (Table 2: crypt 9..237).
* **DIZY-like** (semantic differencing): many small procedures, each a
  pair of program variants analysed together with branch-heavy control
  flow; tiny DBMs, closure counts dominated by joins.

All randomness is seeded -- a benchmark's workload is reproducible.
"""

from __future__ import annotations

import random
from typing import List


def fig2_program() -> str:
    """The paper's running example (Figure 2)."""
    return """
    x = 1;
    y = x;
    while (x <= m) {
      x = x + 1;
      y = y + x;
    }
    """


# ----------------------------------------------------------------------
# small building blocks
# ----------------------------------------------------------------------
def _affine_rhs(rng: random.Random, variables: List[str], target: str) -> str:
    """A random octagon-friendly right-hand side."""
    kind = rng.random()
    if kind < 0.25:
        return str(rng.randint(-10, 10))
    other = rng.choice(variables)
    offset = rng.randint(-5, 5)
    if kind < 0.6:
        return f"{other} + {offset}" if offset >= 0 else f"{other} - {-offset}"
    if kind < 0.8:
        return f"-{other} + {rng.randint(0, 8)}"
    third = rng.choice(variables)
    return f"{other} + {third}"  # general linear: interval-linearised


def _assign(rng: random.Random, variables: List[str], indent: str) -> str:
    target = rng.choice(variables)
    if rng.random() < 0.08:
        lo = rng.randint(-20, 0)
        return f"{indent}{target} = [{lo}, {lo + rng.randint(0, 40)}];"
    return f"{indent}{target} = {_affine_rhs(rng, variables, target)};"


def _guard(rng: random.Random, variables: List[str]) -> str:
    a = rng.choice(variables)
    if rng.random() < 0.5:
        return f"{a} <= {rng.randint(0, 60)}"
    b = rng.choice(variables)
    op = rng.choice(["<=", "<", ">=", ">"])
    return f"{a} {op} {b}"


def _counter_loop(rng: random.Random, variables: List[str], counter: str,
                  bound: int, body_lines: List[str], indent: str) -> List[str]:
    out = [f"{indent}{counter} = 0;",
           f"{indent}while ({counter} < {bound}) {{"]
    out.extend(body_lines)
    out.append(f"{indent}  {counter} = {counter} + 1;")
    out.append(f"{indent}}}")
    return out


# ----------------------------------------------------------------------
# CPA-like: verification tasks, dense fixed-size DBMs
# ----------------------------------------------------------------------
def gen_cpa_like(seed: int, n_vars: int = 16, n_loops: int = 3,
                 stmts_per_loop: int = 10, n_procs: int = 1) -> str:
    """A CPAchecker-style verification task."""
    rng = random.Random(seed)
    procs = []
    for p in range(n_procs):
        variables = [f"x{p}_{i}" for i in range(n_vars)]
        lines = [f"proc cpa_{p} {{"]
        # Initialisation chains relate all variables (dense DBMs).
        lines.append(f"  {variables[0]} = [0, 4];")
        for prev, cur in zip(variables, variables[1:]):
            delta = rng.randint(0, 3)
            lines.append(f"  {cur} = {prev} + {delta};")
        state, limit = variables[0], variables[-1]
        for loop in range(n_loops):
            body = []
            for _ in range(stmts_per_loop):
                if rng.random() < 0.3:
                    cond = _guard(rng, variables)
                    body.append(f"    if ({cond}) {{")
                    body.append(_assign(rng, variables, "      "))
                    body.append("    } else {")
                    body.append(_assign(rng, variables, "      "))
                    body.append("    }")
                else:
                    body.append(_assign(rng, variables, "    "))
            counter = variables[1 + loop % (n_vars - 1)]
            lines.extend(_counter_loop(rng, variables, counter,
                                       rng.randint(8, 40), body, "  "))
        lines.append(f"  assert({state} >= -1000);")
        lines.append("}")
        procs.append("\n".join(lines))
    return "\n\n".join(procs)


# ----------------------------------------------------------------------
# TB-like: event-driven, decomposable variable groups
# ----------------------------------------------------------------------
def _tb_handler_assign(rng: random.Random, group: List[str], indent: str) -> str:
    """A handler statement that keeps *relative* intra-group constraints
    stable while making the *absolute* bounds drift in both directions.

    This reproduces the decomposition profile of event-driven apps
    (paper Fig. 7): widening erases the unary bounds (the state drifts
    up and down across events), after which the strengthening step no
    longer relates variables across handlers, and the octagon
    decomposes into one component per handler group.
    """
    target = rng.choice(group)
    roll = rng.random()
    if roll < 0.45:  # relational: target = other +- c (stable relation)
        other = rng.choice(group)
        delta = rng.randint(-4, 4)
        sign = "+" if delta >= 0 else "-"
        return f"{indent}{target} = {other} {sign} {abs(delta)};"
    if roll < 0.85:  # bidirectional drift: bounds widen away
        delta = rng.randint(1, 3)
        sign = rng.choice(["+", "-"])
        return f"{indent}{target} = {target} {sign} {delta};"
    if roll < 0.95:  # negation (octagonal, bound-flipping)
        other = rng.choice(group)
        return f"{indent}{target} = -{other} + {rng.randint(0, 4)};"
    return f"{indent}havoc({target});"


def _tb_event_app(rng: random.Random, name: str, n_groups: int,
                  group_size: int, n_globals: int, handler_stmts: int,
                  event_bound: int, n_phases: int) -> str:
    """One TouchBoost-style event-driven app (one procedure).

    Several sequential event-loop *phases* drive the Fig. 7 profile:
    early phases see densely initialised handler state; each loop's
    widening erases the drifting bounds, so later closures run on
    sparser, well-decomposed DBMs.
    """
    globals_ = [f"g{i}" for i in range(n_globals)]
    groups = [[f"h{g}_{i}" for i in range(group_size)] for g in range(n_groups)]
    lines = [f"proc {name} {{"]
    for g in globals_:
        lines.append(f"  {g} = 0;")
    # Handler-local state: initialised within the group only, so the
    # octagon decomposes into one component per handler.
    for group in groups:
        lines.append(f"  {group[0]} = [0, 2];")
        for prev, cur in zip(group, group[1:]):
            lines.append(f"  {cur} = {prev} + {rng.randint(0, 2)};")
    for phase in range(n_phases):
        # Event loops run until the environment stops them: the guard is
        # a havoced flag, as in real event-driven apps.  (A counter
        # guard would keep a stable unary bound alive, and bounded
        # variables are all mutually related under strong closure --
        # decomposition would never materialise.)
        running = f"run{phase}"
        lines.append(f"  {running} = 1;")
        lines.append(f"  while ({running} >= 1) {{")
        lines.append("    sel = [0, %d];" % (n_groups - 1))
        for g, group in enumerate(groups):
            kw = "if" if g == 0 else "} else if"
            lines.append(f"    {kw} (sel == {g}) {{")
            # A guaranteed bidirectional random-walk step on the group
            # anchor, then the whole group state re-derived from it.
            # Every group variable drifts with the anchor, so all the
            # *absolute* bounds widen away while the *relative*
            # intra-group constraints stay stable -- which is what lets
            # the octagon decompose (bounded variables are all mutually
            # related under strong closure).
            lines.append(f"      d{g} = [{-rng.randint(1, 3)}, {rng.randint(1, 3)}];")
            lines.append(f"      {group[0]} = {group[0]} + d{g};")
            for prev, cur in zip(group, group[1:]):
                delta = rng.randint(-3, 3)
                sign = "+" if delta >= 0 else "-"
                lines.append(f"      {cur} = {prev} {sign} {abs(delta)};")
            for _ in range(handler_stmts):
                lines.append(_tb_handler_assign(rng, group, "      "))
            # A guarded branch: more joins per event, as real
            # TouchBoost handlers produce.
            counter = group[0]
            lines.append(f"      if ({counter} <= 40) {{")
            lines.append(_tb_handler_assign(rng, group, "        "))
            lines.append("      }")
        lines.append("    } else { skip; }")
        lines.append(f"    havoc({running});")
        lines.append("  }")
    lines.append(f"  assert({globals_[0]} >= 0);")
    lines.append("}")
    return "\n".join(lines)


def gen_tb_like(seed: int, n_groups: int = 6, group_size: int = 6,
                n_globals: int = 2, handler_stmts: int = 6,
                event_bound: int = 20, n_phases: int = 3,
                n_handlers: int = 1, size_spread: float = 0.0) -> str:
    """A TouchBoost-style event-driven application.

    ``n_handlers`` > 1 emits several apps of varying size (scaled by
    ``size_spread``), reproducing the wide nmin..nmax range of the
    blwd/eeorzcap rows in Table 2.
    """
    rng = random.Random(seed)
    apps = []
    for h in range(n_handlers):
        scale = 1.0 - size_spread * (h / max(n_handlers - 1, 1))
        groups = max(1, round(n_groups * scale))
        gsize = max(2, round(group_size * scale))
        apps.append(_tb_event_app(rng, f"tb_app_{h}", groups, gsize,
                                  n_globals, handler_stmts, event_bound,
                                  n_phases))
    return "\n\n".join(apps)


# ----------------------------------------------------------------------
# DPS-like: numeric kernels, widely varying procedure sizes
# ----------------------------------------------------------------------
def gen_dps_like(seed: int, proc_sizes: List[int] = (4, 8, 16, 28),
                 loops_per_proc: int = 2) -> str:
    """DPS-style numeric kernels (one procedure per method analysed)."""
    rng = random.Random(seed)
    procs = []
    for p, size in enumerate(proc_sizes):
        variables = [f"k{p}_{i}" for i in range(size)]
        lines = [f"proc dps_{p} {{"]
        lines.append(f"  {variables[0]} = 0;")
        for prev, cur in zip(variables, variables[1:]):
            lines.append(f"  {cur} = {prev} + {rng.randint(0, 2)};")
        i_var, j_var = variables[0], variables[min(1, size - 1)]
        n_bound = rng.randint(10, 50)
        # Triangular nest: while (i < n) { j = i; while (j < n) ... }
        inner_body = []
        for _ in range(3):
            inner_body.append(_assign(rng, variables, "      "))
        body = [f"    {j_var} = {i_var};",
                f"    while ({j_var} < {n_bound}) {{"]
        body.extend(inner_body)
        body.append(f"      {j_var} = {j_var} + 1;")
        body.append("    }")
        lines.extend(_counter_loop(rng, variables, i_var, n_bound, body, "  "))
        for _ in range(loops_per_proc - 1):
            extra = [_assign(rng, variables, "    ") for _ in range(4)]
            counter = rng.choice(variables[2:] or variables)
            lines.extend(_counter_loop(rng, variables, counter,
                                       rng.randint(8, 30), extra, "  "))
        lines.append(f"  assert({i_var} >= 0);")
        lines.append("}")
        procs.append("\n".join(lines))
    return "\n\n".join(procs)


# ----------------------------------------------------------------------
# DIZY-like: many small branch-heavy procedures
# ----------------------------------------------------------------------
def gen_dizy_like(seed: int, n_procs: int = 8, max_vars: int = 10,
                  branches: int = 5) -> str:
    """DIZY-style semantic-difference checks (pairs of small variants)."""
    rng = random.Random(seed)
    procs = []
    for p in range(n_procs):
        size = rng.randint(2, max_vars)
        variables = [f"d{p}_{i}" for i in range(size)]
        lines = [f"proc dizy_{p} {{"]
        lines.append(f"  {variables[0]} = [0, 8];")
        for prev, cur in zip(variables, variables[1:]):
            lines.append(f"  {cur} = {prev};")
        # The 'patch': a ladder of branches with small divergences,
        # followed by a short loop so closures and joins both occur.
        for _ in range(branches):
            cond = _guard(rng, variables)
            lines.append(f"  if ({cond}) {{")
            lines.append(_assign(rng, variables, "    "))
            lines.append("  } else {")
            lines.append(_assign(rng, variables, "    "))
            lines.append("  }")
        counter = variables[0]
        body = [_assign(rng, variables, "    ")]
        lines.extend(_counter_loop(rng, variables, counter,
                                   rng.randint(4, 12), body, "  "))
        lines.append(f"  assert({variables[0]} >= 0);")
        lines.append("}")
        procs.append("\n".join(lines))
    return "\n\n".join(procs)
