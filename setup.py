"""Setup shim for environments whose pip cannot build PEP 660 editable
wheels (no `wheel` package available offline)."""
from setuptools import setup

setup()
