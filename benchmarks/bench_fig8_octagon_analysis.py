"""Figure 8: end-to-end octagon-analysis speedup, OptOctagon vs APRON.

The paper runs each benchmark's full analysis twice -- once on original
APRON, once on OptOctagon -- and reports the ratio of total time spent
inside octagon operations (log scale): up to 146x (crypt) and 115x
(s3_clnt_3_t), >10x for 9 of 17 benchmarks, minimum 2.7x.

We repeat the measurement with the identical analysis logic over both
implementations.  Expected shape: every benchmark speeds up at paper
scale, and speedups grow with ``nmax`` and closure count (compare with
the Table 2 output), with the largest wins where decomposition kicks
in.  Absolute factors differ from the paper (interpreted baseline vs
compiled C; scaled workloads) -- see EXPERIMENTS.md.
"""

from conftest import bench_scale, run_once

from repro.bench import fig8_row, format_table, geomean, save_result
from repro.workloads import BENCHMARKS


def _measure():
    return [fig8_row(b, scale=bench_scale()) for b in BENCHMARKS]


def test_fig8_octagon_analysis_speedup(benchmark):
    rows = run_once(benchmark, _measure)
    for key in ("copies_avoided", "workspace_hits", "closure_cache_hits"):
        benchmark.extra_info[key] = sum(r[key] for r in rows)
    table = format_table(
        ["benchmark", "analyzer", "apron_oct_s", "opt_oct_s",
         "speedup", "paper_speedup", "copies_avoided"],
        [[r["benchmark"], r["analyzer"], r["apron_oct_s"], r["opt_oct_s"],
          r["speedup"], r["paper_speedup"], r["copies_avoided"]] for r in rows],
        title=("Figure 8: octagon analysis speedup over APRON "
               f"(geomean {geomean([r['speedup'] for r in rows]):.1f}x)"))
    print("\n" + table)
    save_result("fig8_octagon_analysis", table)
    assert geomean([r["speedup"] for r in rows]) > 1.0
