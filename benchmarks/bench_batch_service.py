"""Batch service: the full suite through the scheduler and cache.

Four passes over the 17-benchmark suite, all via the same
``run_suite`` path the CLI uses:

1. inline (``workers=1``, no fork) -- the baseline execution mode;
2. parallel (``workers=4``) -- the process-pool path; on multi-core
   hosts this is the wall-clock win, on single-core CI it only proves
   the fan-out costs little;
3. cold cached run -- parallel plus a fresh persistent cache;
4. warm cached run -- every job answered from the cache, no worker
   processes spawned at all.

The determinism assertions mirror the service tests: every mode must
produce identical verdicts and exit bounds.
"""

import os
import shutil
import tempfile

from conftest import run_once

from repro.bench import format_table, save_result
from repro.service import ResultCache, run_suite


def _measure(scale):
    inline = run_suite(scale, workers=1)
    parallel = run_suite(scale, workers=4)
    cache_root = tempfile.mkdtemp(prefix="repro-bench-cache-")
    try:
        cache = ResultCache(cache_root)
        cold = run_suite(scale, workers=4, cache=cache)
        warm = run_suite(scale, workers=4, cache=cache)
    finally:
        shutil.rmtree(cache_root, ignore_errors=True)
    return {"inline": inline, "parallel": parallel, "cold": cold,
            "warm": warm}


def test_batch_service(benchmark, scale):
    result = run_once(benchmark, lambda: _measure(scale))
    inline, parallel = result["inline"], result["parallel"]
    cold, warm = result["cold"], result["warm"]

    rows = [
        ["inline (jobs=1)", f"{inline.wall_seconds:.3f}", "-", "-"],
        ["parallel (jobs=4)", f"{parallel.wall_seconds:.3f}",
         f"{inline.wall_seconds / max(parallel.wall_seconds, 1e-12):.2f}x",
         "-"],
        ["cold cache (jobs=4)", f"{cold.wall_seconds:.3f}", "-",
         f"{cold.cache_hits}/{len(cold.results)}"],
        ["warm cache", f"{warm.wall_seconds:.3f}",
         f"{cold.wall_seconds / max(warm.wall_seconds, 1e-12):.0f}x",
         f"{warm.cache_hits}/{len(warm.results)}"],
    ]
    table = format_table(
        ["mode", "wall s", "speedup", "cache hits"], rows,
        title=(f"Batch service, 17-benchmark suite, scale={scale}, "
               f"ncpu={os.cpu_count()}"))
    print("\n" + table)
    save_result("batch_service", table)
    benchmark.extra_info.update({
        "inline_s": round(inline.wall_seconds, 4),
        "parallel_s": round(parallel.wall_seconds, 4),
        "warm_cache_s": round(warm.wall_seconds, 4),
        "warm_cache_hits": warm.cache_hits,
    })

    # Every mode completes every job and agrees on what was proved.
    for batch in (inline, parallel, cold, warm):
        assert batch.all_ok
        assert len(batch.results) == 17
    for seq, par, wrm in zip(inline.results, parallel.results, warm.results):
        assert seq.verdicts() == par.verdicts() == wrm.verdicts()
        assert seq.procedures == par.procedures == wrm.procedures

    # The warm pass is served entirely from the persistent cache.
    assert warm.cache_hits == 17 and warm.cache_misses == 0
    assert warm.wall_seconds < cold.wall_seconds
