"""Extra study: wall-clock scaling of the decomposed closure.

The paper's asymptotic claim (Table 1): a decomposed octagon with
components of bounded size closes in time proportional to the *sum of
component costs* -- effectively linear in n -- while the monolithic
dense closure is cubic.  We fix the component size (8 variables),
sweep the total variable count, and time both closures on the same
matrices.  Expected shape: the dense curve grows ~n^3, the decomposed
curve ~n, and the gap at the top of the sweep reaches two orders of
magnitude.
"""

import time

import numpy as np
from conftest import run_once

from repro.bench import format_table, save_result
from repro.core.closure_decomposed import closure_decomposed
from repro.core.closure_dense import closure_dense_numpy
from repro.core.constraints import OctConstraint, dbm_cells
from repro.core.densemat import new_top
from repro.core.partition import Partition

GROUP = 8


def _grouped_matrix(n, rng):
    m = new_top(n)
    for base in range(0, n, GROUP):
        vars_ = list(range(base, min(base + GROUP, n)))
        for v, w in zip(vars_, vars_[1:]):
            for r, s, c in dbm_cells(OctConstraint.diff(v, w, float(rng.integers(0, 9)))):
                m[r, s] = min(m[r, s], c)
        for r, s, c in dbm_cells(OctConstraint.sum(vars_[0], vars_[-1], 30.0)):
            m[r, s] = min(m[r, s], c)
    return m


def _time(fn, *args, reps=3):
    best = float("inf")
    for _ in range(reps):
        start = time.perf_counter()
        fn(*args)
        best = min(best, time.perf_counter() - start)
    return best


def _measure():
    rng = np.random.default_rng(8)
    rows = []
    for n in (16, 32, 64, 128, 256):
        m = _grouped_matrix(n, rng)
        part = Partition.from_matrix(m)
        t_dense = _time(lambda: closure_dense_numpy(m.copy()))
        t_dec = _time(lambda: closure_decomposed(m.copy(), part.copy()))
        rows.append([n, len(part.blocks), t_dense, t_dec,
                     t_dense / max(t_dec, 1e-12)])
    return rows


def test_decomposition_scaling(benchmark):
    rows = run_once(benchmark, _measure)
    table = format_table(
        ["n", "components", "dense_s", "decomposed_s", "speedup"],
        rows,
        title=f"Closure scaling, fixed component size {GROUP} "
              "(paper Table 1: sum of component costs vs n^3)")
    print("\n" + table)
    save_result("scaling_decomposition", table)
    # The decomposition advantage must grow with n ...
    speedups = [r[4] for r in rows]
    assert speedups[-1] > speedups[0]
    # ... and be decisive at the top of the sweep.
    assert speedups[-1] > 10
    # The dense closure exhibits superlinear growth across the sweep.
    assert rows[-1][2] / rows[0][2] > (256 / 16) ** 1.5
