"""Shared configuration for the benchmark harness.

Every benchmark measures a full workload once (``pedantic`` mode with a
single round): the workloads are deterministic, seconds-long end-to-end
analyses, not microkernels, so statistical repetition would multiply
hours for no insight.  Scale is controlled by ``REPRO_BENCH_SCALE``
(small | paper | large, default paper).
"""

import os

import pytest


def bench_scale() -> str:
    return os.environ.get("REPRO_BENCH_SCALE", "paper")


@pytest.fixture
def scale() -> str:
    return bench_scale()


def run_once(benchmark, fn, *, counters=None):
    """Run ``fn`` exactly once under pytest-benchmark timing.

    ``counters`` (a dict, or a callable producing one once the run is
    done) lands in ``benchmark.extra_info`` so persisted results capture
    the hot-path memory counters next to the wall time.
    """
    result = benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
    if counters is not None:
        info = counters() if callable(counters) else counters
        benchmark.extra_info.update(info)
    return result
