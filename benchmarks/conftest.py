"""Shared configuration for the benchmark harness.

Every benchmark measures a full workload once (``pedantic`` mode with a
single round): the workloads are deterministic, seconds-long end-to-end
analyses, not microkernels, so statistical repetition would multiply
hours for no insight.  Scale is controlled by ``REPRO_BENCH_SCALE``
(small | paper | large, default paper).
"""

import os

import pytest


def bench_scale() -> str:
    return os.environ.get("REPRO_BENCH_SCALE", "paper")


@pytest.fixture
def scale() -> str:
    return bench_scale()


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
