"""Compiled transfer plans: end-to-end compiled-vs-interpreted ablation.

Runs every suite benchmark through the optimised octagon analyzer twice
in-process: once interpreting edge actions on every fixpoint iteration
(``compile_transfer=False`` -- the pre-optimisation path) and once
executing the per-edge compiled plans.  Both modes run the identical
abstract operations (the plan layer is matrix-identical by
construction, enforced by ``tests/test_plan.py``), so the ratio
isolates the constant-factor win of compiling the driver loop.

Honesty rules: per-program numbers are reported individually --
including any no-win programs -- and the counters prove the layer
engaged (``plans_compiled``/``plan_exec`` non-zero compiled, zero
interpreted).  Modes are interleaved per round and each benchmark keeps
its fastest round per mode (deterministic workloads, so the minimum is
the least-noise estimate).
"""

import gc

from conftest import run_once

from repro.bench import format_table, save_result
from repro.workloads import BENCHMARKS, run_workload

_ROUNDS = 5


def _measure(scale):
    # Warm imports/caches outside the timed region.
    run_workload(BENCHMARKS[0], "octagon", scale="small")
    run_workload(BENCHMARKS[0], "octagon", scale="small",
                 compile_transfer=False)

    best = {}  # (name, mode) -> (seconds, run)
    for _ in range(_ROUNDS):
        for compiled in (False, True):
            gc.collect()
            for bench in BENCHMARKS:
                run = run_workload(bench, "octagon", scale=scale,
                                   compile_transfer=compiled)
                key = (bench.name, compiled)
                if key not in best or run.total_seconds < best[key][0]:
                    best[key] = (run.total_seconds, run)

    rows = []
    interp_total = compiled_total = 0.0
    for bench in BENCHMARKS:
        init_s, init_run = best[(bench.name, False)]
        comp_s, comp_run = best[(bench.name, True)]
        interp_total += init_s
        compiled_total += comp_s
        rows.append({
            "benchmark": bench.name,
            "interp_s": init_s,
            "compiled_s": comp_s,
            "speedup": init_s / max(comp_s, 1e-12),
            "interp_run": init_run,
            "compiled_run": comp_run,
        })
    return {
        "rows": rows,
        "interp_total": interp_total,
        "compiled_total": compiled_total,
        "speedup": interp_total / max(compiled_total, 1e-12),
    }


def _sum_counters(runs):
    total = {}
    for run in runs:
        for key, value in run.counters.items():
            total[key] = total.get(key, 0) + value
    return total


def test_transfer_compile(benchmark, scale):
    result = run_once(benchmark, lambda: _measure(scale))
    comp_counters = _sum_counters(r["compiled_run"] for r in result["rows"])
    interp_counters = _sum_counters(r["interp_run"] for r in result["rows"])
    benchmark.extra_info["transfer_compile_speedup"] = round(result["speedup"], 3)
    for key in ("plans_compiled", "plan_exec", "constraints_batched",
                "closures_avoided"):
        benchmark.extra_info[key] = comp_counters.get(key, 0)

    table_rows = [[
        r["benchmark"],
        f"{r['interp_s']:.3f}",
        f"{r['compiled_s']:.3f}",
        f"{r['speedup']:.2f}x",
        r["compiled_run"].counters.get("plans_compiled", 0),
        r["compiled_run"].counters.get("plan_exec", 0),
        r["compiled_run"].counters.get("constraints_batched", 0),
        r["compiled_run"].counters.get("closures_avoided", 0),
    ] for r in result["rows"]]
    table_rows.append([
        "TOTAL",
        f"{result['interp_total']:.3f}",
        f"{result['compiled_total']:.3f}",
        f"{result['speedup']:.2f}x",
        comp_counters.get("plans_compiled", 0),
        comp_counters.get("plan_exec", 0),
        comp_counters.get("constraints_batched", 0),
        comp_counters.get("closures_avoided", 0),
    ])
    table = format_table(
        ["benchmark", "interp s", "compiled s", "speedup",
         "plans", "plan execs", "cons batched", "closures avoided"],
        table_rows,
        title=f"Compiled transfer plans ablation, scale={scale}")
    print("\n" + table)
    save_result("transfer_compile", table)

    # Compilation must not change what the analysis proves.
    for r in result["rows"]:
        a, b = r["interp_run"], r["compiled_run"]
        assert (a.checks_verified, a.checks_total) == \
            (b.checks_verified, b.checks_total), r["benchmark"]

    # The layer engaged -- and only in compiled mode.
    assert comp_counters["plans_compiled"] > 0
    assert comp_counters["plan_exec"] > 0
    assert comp_counters["constraints_batched"] > 0
    assert interp_counters.get("plans_compiled", 0) == 0
    assert interp_counters.get("plan_exec", 0) == 0

    # End-to-end win at meaningful scale (smoke runs are noise-bound:
    # per-program times are milliseconds there, so no gate).  The
    # measured win is ~5% total (up to ~1.17x per program) because the
    # domain operations themselves dominate; single-benchmark jitter on
    # a shared machine is of the same order, so the gate asserts the
    # compiled path is not slower and leaves the exact ratio to the
    # recorded table.
    if scale != "small":
        assert result["speedup"] >= 1.0
