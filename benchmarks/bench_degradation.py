"""Resource governance: checkpoint overhead and the degradation ladder.

Three passes over the 17-benchmark suite, all inline (``workers=1``,
no fork noise):

1. ungoverned -- no budget at all, the pre-governance baseline;
2. governed -- generous budgets that never trip, measuring what the
   cooperative checkpoints themselves cost (the gate: < 2% overhead,
   because an un-tripped budget is a None-test in the engine loop and
   an integer add in the closure kernels);
3. tight -- an iteration budget small enough to interrupt most jobs,
   proving the ladder's contract: every job still completes (``ok`` or
   ``degraded``, never ``timeout``/``error``) and a degraded run never
   *proves* a check the full-precision run could not.

Each timing takes the best of three runs so the 2% gate measures the
checkpoints, not scheduler jitter.
"""

from conftest import run_once

from repro.bench import format_table, save_result
from repro.service import run_suite

#: Generous enough that no suite benchmark ever trips them.
GENEROUS = dict(time_budget=3600.0, iteration_budget=10**9,
                cell_budget=10**15)
TIGHT_ITERATIONS = 40
ROUNDS = 3


def _best_of(scale, **options):
    best = None
    for _ in range(ROUNDS):
        batch = run_suite(scale, workers=1, retries=0, **options)
        if best is None or batch.wall_seconds < best.wall_seconds:
            best = batch
    return best


def _verified(batch):
    return {r.label: {(c.procedure, c.cond_text)
                      for c in r.checks if c.verified}
            for r in batch.results}


def _measure(scale):
    free = _best_of(scale)
    governed = _best_of(scale, **GENEROUS)
    tight = run_suite(scale, workers=1, retries=0,
                      iteration_budget=TIGHT_ITERATIONS)
    return {"free": free, "governed": governed, "tight": tight}


def test_degradation(benchmark, scale):
    result = run_once(benchmark, lambda: _measure(scale))
    free, governed, tight = (result["free"], result["governed"],
                             result["tight"])

    overhead = (governed.wall_seconds / max(free.wall_seconds, 1e-12)
                - 1.0) * 100.0
    counts = tight.outcome_counts()
    checkpoints = governed.counters().get("budget_checkpoints", 0)

    rows = [
        ["ungoverned", f"{free.wall_seconds:.3f}", "-", "-",
         f"{free.checks_verified}/{free.checks_total}"],
        ["governed (generous)", f"{governed.wall_seconds:.3f}",
         f"{overhead:+.2f}%", "-",
         f"{governed.checks_verified}/{governed.checks_total}"],
        [f"tight (iters={TIGHT_ITERATIONS})",
         f"{tight.wall_seconds:.3f}", "-",
         f"{counts.get('degraded', 0)}/{len(tight.results)}",
         f"{tight.checks_verified}/{tight.checks_total}"],
    ]
    table = format_table(
        ["mode", "wall s", "checkpoint overhead", "degraded", "verified"],
        rows,
        title=(f"Resource governance, 17-benchmark suite, scale={scale}, "
               f"{checkpoints} checkpoints"))
    print("\n" + table)
    save_result("degradation", table)
    benchmark.extra_info.update({
        "ungoverned_s": round(free.wall_seconds, 4),
        "governed_s": round(governed.wall_seconds, 4),
        "overhead_pct": round(overhead, 3),
        "budget_checkpoints": checkpoints,
        "tight_degraded": counts.get("degraded", 0),
        "tight_verified": tight.checks_verified,
    })

    # An un-tripped budget must be invisible: identical verdicts...
    for a, b in zip(free.results, governed.results):
        assert a.verdicts() == b.verdicts()
        assert a.procedures == b.procedures
    # ...and (the gate) < 2% wall-clock overhead from the checkpoints.
    assert governed.wall_seconds <= free.wall_seconds * 1.02 + 0.02, (
        f"checkpoint overhead {overhead:.2f}% exceeds the 2% gate")

    # The ladder's contract under a budget that actually trips.
    assert tight.all_completed
    assert counts.get("timeout", 0) == 0
    assert counts.get("error", 0) == 0
    assert counts.get("degraded", 0) > 0
    free_v, tight_v = _verified(free), _verified(tight)
    for label, proved in tight_v.items():
        assert proved <= free_v[label], label
