"""Figure 7: per-closure runtime trace on the jwgqbjzs benchmark.

The paper plots, over the sequence of closures performed during the
analysis of jwgqbjzs, the runtime of four closure implementations
(APRON, vectorised Floyd-Warshall, Dense, Decomposed/OptOctagon) in
CPU cycles on a log scale.  The visible shape: DBMs are dense early in
the analysis, FW beats APRON ~7-8x, the new dense closure adds ~3x on
top -- and once widening makes the DBMs sparse midway, the library
switches to the Decomposed type and gains orders of magnitude.

We capture the actual closure inputs of our jwgqbjzs workload, replay
them through the same four implementations, print the per-closure
series (ASCII chart + CSV-ish rows) and assert the ordering of the
curves.  This benchmark runs jwgqbjzs at the ``large`` scale (n ~ 90,
closer to the paper's 190) regardless of REPRO_BENCH_SCALE -- the
decomposed-vs-dense gap only opens once the cubic term dominates the
per-component overhead -- and caps the number of replayed closures to
keep the scalar APRON replays affordable.
"""

from conftest import bench_scale, run_once

from repro.bench import closure_comparison, render_ascii_series, save_result
from repro.bench.reporting import format_table
from repro.workloads import get_benchmark


def _measure():
    scale = "small" if bench_scale() == "small" else "large"
    return closure_comparison(get_benchmark("jwgqbjzs"), scale=scale,
                              max_events=12)


def test_fig7_closure_trace(benchmark):
    cc = run_once(benchmark, _measure)
    assert cc.events, "no closures captured"
    series = {
        "APRON": [e.t_apron for e in cc.events],
        "FW": [e.t_fw for e in cc.events],
        "Dense": [e.t_dense for e in cc.events],
        "OptOctagon": [e.t_opt for e in cc.events],
    }
    chart = render_ascii_series(
        series, title="Figure 7: closure runtime trace on jwgqbjzs "
                      "(seconds, log scale; x = closure number)")
    rows = [[i, e.n, e.kind, e.t_apron, e.t_fw, e.t_dense, e.t_opt]
            for i, e in enumerate(cc.events)]
    table = format_table(
        ["closure#", "n", "opt_kind", "APRON_s", "FW_s", "Dense_s", "Opt_s"], rows)
    print("\n" + chart + "\n\n" + table)
    save_result("fig7_closure_trace", chart + "\n\n" + table)
    # Shape assertions: the APRON closure is the slowest in aggregate,
    # and the OptOctagon dispatch used the decomposed closure at least
    # once (the paper's sparsification effect).
    assert cc.aggregate("t_apron") > cc.aggregate("t_fw")
    assert cc.aggregate("t_apron") > cc.aggregate("t_opt")
    assert any(e.kind == "decomposed" for e in cc.events)
