"""Kernel backends and transport: the ablation behind ROADMAP item 3.

Three tables into ``results/kernel_backends.txt``:

1. **Per-kernel** -- the registered hot kernels on synthetic coherent
   DBMs at paper-ish dimensions, per available backend (plus the
   thread-tiled dense closure as a separate numba row).  When numba is
   not installed the table records that honestly instead of silently
   shrinking: the numpy rows are the reference either way.
2. **End-to-end** -- the 17-benchmark suite per backend (inline, so
   kernel time is not hidden behind fork overhead).
3. **Transport** -- the suite with ``keep_invariants`` through the
   process pool, pickled (zero-copy disabled) vs zero-copy, with the
   counter-verified ``bytes_shipped``/``bytes_zero_copy`` split.

Determinism assertions ride along: every backend and both transport
modes must agree on all verdicts, and kernel outputs must be
bit-identical across backends.
"""

import os
import time

import numpy as np
from conftest import run_once

from repro.bench import format_table, save_result
from repro.core import kernels
from repro.core.densemat import new_top
from repro.core.halfmat import HalfMat
from repro.service import run_suite
from repro.service import transport


def _coherent_dbm(n: int, density: float, seed: int) -> np.ndarray:
    """A deterministic random coherent DBM that closes non-empty."""
    rng = np.random.default_rng(seed)
    m = new_top(n)
    dim = 2 * n
    count = int(density * dim * dim)
    for _ in range(count):
        i, j = int(rng.integers(dim)), int(rng.integers(dim))
        if i == j:
            continue
        c = float(rng.integers(5, 60))  # positive bounds: never bottom
        m[i, j] = min(m[i, j], c)
        m[j ^ 1, i ^ 1] = m[i, j]
    return m


def _time_kernel(fn, matrices, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        copies = [m.copy() for m in matrices]
        start = time.perf_counter()
        for c in copies:
            fn(c)
        best = min(best, time.perf_counter() - start)
    return best


def _kernel_rows(n: int):
    """Per-kernel seconds per backend; returns (rows, outputs) where
    outputs holds the closed matrices for cross-backend bit-comparison."""
    dense = [_coherent_dbm(n, 0.4, seed) for seed in range(4)]
    sparse = [_coherent_dbm(n, 0.02, seed) for seed in range(4)]
    halves = [HalfMat.from_full(m) for m in dense]

    cases = [
        ("dense_closure", dense, lambda m: kernels.dense_closure(m)),
        ("sparse_closure", sparse, lambda m: kernels.sparse_closure(m)),
        ("incremental_closure", dense,
         lambda m: kernels.incremental_closure(m, 0)),
        ("strengthen", dense, lambda m: kernels.strengthen(m)),
        ("count_nni", dense, lambda m: kernels.count_nni(m)),
    ]
    rows = []
    outputs = {}
    timings = {}
    for backend in kernels.available_backends():
        with kernels.backend(backend):
            for name, mats, fn in cases:
                seconds = _time_kernel(fn, mats)
                timings[(name, backend)] = seconds
                closed = [m.copy() for m in mats]
                for c in closed:
                    fn(c)
                outputs.setdefault(name, {})[backend] = closed
            # The APRON scalar baseline operates on the half layout.
            seconds = _time_kernel(
                lambda h: kernels.apron_closure(h),
                halves if backend == "numpy" else halves)
            timings[("apron_closure", backend)] = seconds
        if backend == "numba":
            from repro.core.kernels import numba_backend

            numba_backend.set_tiling(True)
            try:
                with kernels.backend("numba"):
                    timings[("dense_closure", "numba+tiled")] = _time_kernel(
                        lambda m: kernels.dense_closure(m), dense)
            finally:
                numba_backend.set_tiling(False)

    kernel_names = ["dense_closure", "sparse_closure", "incremental_closure",
                    "strengthen", "count_nni", "apron_closure"]
    for name in kernel_names:
        numpy_s = timings[(name, "numpy")]
        row = [name, f"{numpy_s * 1e3:.2f}"]
        for variant in ("numba", "numba+tiled"):
            key = (name, variant)
            if key in timings:
                row.append(f"{timings[key] * 1e3:.2f}")
                row.append(f"{numpy_s / max(timings[key], 1e-12):.2f}x")
            else:
                row.append("-")
                row.append("-")
        rows.append(row)
    return rows, outputs


def _suite_rows(scale):
    rows = []
    fingerprints = []
    for backend in kernels.available_backends():
        batch = run_suite(scale, workers=1, kernel_backend=backend)
        assert batch.all_ok
        rows.append([backend, f"{batch.wall_seconds:.3f}",
                     str(batch.counters().get(f"kernel_calls_{backend}", 0))])
        fingerprints.append([r.verdicts() for r in batch.results])
    for fp in fingerprints[1:]:
        assert fp == fingerprints[0]
    return rows


def _transport_rows(scale):
    pickled = None
    transport.set_zero_copy(False)
    try:
        pickled = run_suite(scale, workers=4, keep_invariants=True)
    finally:
        transport.set_zero_copy(True)
    zero_copy = run_suite(scale, workers=4, keep_invariants=True)
    for batch in (pickled, zero_copy):
        assert batch.all_ok
    assert [r.verdicts() for r in pickled.results] \
        == [r.verdicts() for r in zero_copy.results]

    def row(label, batch):
        t = batch.transport
        return [label, f"{batch.wall_seconds:.3f}",
                str(t.get("bytes_shipped", 0)),
                str(t.get("bytes_zero_copy", 0)),
                str(t.get("shm_blocks_attached", 0))]

    return [row("pickled (protocol 5)", pickled),
            row("zero-copy (shm)", zero_copy)], pickled, zero_copy


def _measure(scale):
    n = {"small": 16, "paper": 50, "large": 100}.get(scale, 50)
    kernel_rows, outputs = _kernel_rows(n)
    # Cross-backend bit-identity on the benchmark matrices themselves.
    for name, per_backend in outputs.items():
        reference = per_backend["numpy"]
        for backend, closed in per_backend.items():
            for got, want in zip(closed, reference):
                assert got.tobytes() == want.tobytes(), (name, backend)
    suite_rows = _suite_rows(scale)
    transport_rows, pickled, zero_copy = _transport_rows(scale)
    return {"kernel_rows": kernel_rows, "suite_rows": suite_rows,
            "transport_rows": transport_rows,
            "pickled": pickled, "zero_copy": zero_copy, "n": n}


def test_kernel_backends(benchmark, scale):
    result = run_once(benchmark, lambda: _measure(scale))

    reason = kernels.numba_unavailable_reason()
    note = ("numba backends: available" if reason is None
            else f"numba unavailable ({reason.splitlines()[0]}); "
                 f"numpy reference rows only")
    tables = [
        format_table(
            ["kernel", "numpy ms", "numba ms", "speedup",
             "numba+tiled ms", "speedup"],
            result["kernel_rows"],
            title=(f"Per-kernel, n={result['n']} "
                   f"({2 * result['n']}x{2 * result['n']} DBMs), "
                   f"best of 3 -- {note}")),
        format_table(
            ["backend", "wall s", "kernel calls"], result["suite_rows"],
            title=f"End-to-end, 17-benchmark suite, scale={scale}, inline"),
        format_table(
            ["transport", "wall s", "bytes shipped", "bytes zero-copy",
             "shm blocks"],
            result["transport_rows"],
            title=(f"Result transport, suite + keep_invariants, jobs=4, "
                   f"scale={scale}, ncpu={os.cpu_count()}")),
    ]
    report = "\n\n".join(tables)
    print("\n" + report)
    save_result("kernel_backends", report)

    pickled, zero_copy = result["pickled"], result["zero_copy"]
    benchmark.extra_info.update({
        "numba_available": reason is None,
        "pickled_bytes_shipped": pickled.transport.get("bytes_shipped", 0),
        "zero_copy_bytes_shipped":
            zero_copy.transport.get("bytes_shipped", 0),
        "bytes_zero_copy": zero_copy.transport.get("bytes_zero_copy", 0),
    })
    # The acceptance bar, counter-verified: the zero-copy pass ships
    # strictly fewer pipe bytes whenever the shm lane engaged at all
    # (small scales may fit every DBM under the inline threshold -- an
    # honest no-win, recorded in the table either way).
    if zero_copy.transport.get("shm_blocks_attached", 0) > 0:
        assert zero_copy.transport["bytes_shipped"] \
            < pickled.transport["bytes_shipped"]
