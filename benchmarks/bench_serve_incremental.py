"""Analysis server: the editor loop over the 17-benchmark suite.

Three requests per suite program against one live daemon over a Unix
socket (protocol, framing and dispatch all on the measured path):

1. **cold**  -- first submission: every procedure is parsed, planned
   and run to fixpoint, results land in the memory LRU and disk cache;
2. **warm**  -- identical resubmission: every procedure served from
   the in-memory tier;
3. **edited** -- one procedure gains a statement (an AST-level edit,
   re-rendered to source): exactly that procedure is re-analyzed, the
   rest stay memory-tier.

The gates are the ISSUE acceptance bar, counter-verified per request:
a warm request recompiles **zero** transfer plans and re-runs **zero**
fixpoints; an edited request recomputes exactly **one** procedure.
Requests run serially, so the per-request counter deltas are exact.
"""

import json
import os
import tempfile
import threading
import time

from conftest import run_once

from repro.bench import format_table, save_result
from repro.bench.reporting import results_dir
from repro.frontend.ast_nodes import Assign, Num
from repro.frontend.parser import parse_program
from repro.frontend.pretty import pretty
from repro.serve import AnalysisServer, ServeClient
from repro.service.cache import ResultCache
from repro.workloads.suite import load_suite


def _edit_one_procedure(source: str, tick: int) -> str:
    """Append a harmless assignment to the *last* procedure and
    re-render: a one-procedure edit in canonical form."""
    program = parse_program(source)
    program.procedures[-1].body.statements.append(
        Assign("edit_tick", Num(tick)))
    return pretty(program) + "\n"


def _measure(scale):
    tmp = tempfile.mkdtemp(prefix="repro-serve-bench-")
    server = AnalysisServer(os.path.join(tmp, "serve.sock"),
                            cache=ResultCache(os.path.join(tmp, "cache")),
                            workers=2)
    server.start()
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    rows = []
    try:
        with ServeClient(server.socket_path) as client:
            for bench in load_suite():
                source = bench.job(scale=scale).source
                edited_source = _edit_one_procedure(source, 1)

                start = time.perf_counter()
                cold = client.analyze(source, label=bench.name)
                cold_s = time.perf_counter() - start
                start = time.perf_counter()
                warm = client.analyze(source, label=bench.name)
                warm_s = time.perf_counter() - start
                start = time.perf_counter()
                edited = client.analyze(edited_source, label=bench.name)
                edited_s = time.perf_counter() - start
                rows.append({"name": bench.name, "cold": cold, "warm": warm,
                             "edited": edited, "cold_s": cold_s,
                             "warm_s": warm_s, "edited_s": edited_s})
    finally:
        with ServeClient(server.socket_path) as client:
            client.shutdown()
        thread.join(timeout=10)
    return rows


def test_serve_incremental(benchmark, scale):
    rows = run_once(benchmark, lambda: _measure(scale))

    table_rows = []
    for row in rows:
        nprocs = sum(row["cold"]["tiers"].values())
        table_rows.append([
            row["name"], nprocs,
            f"{row['cold_s'] * 1e3:.2f}", f"{row['warm_s'] * 1e3:.2f}",
            f"{row['edited_s'] * 1e3:.2f}",
            f"{row['cold_s'] / max(row['warm_s'], 1e-9):.0f}x",
        ])
    total_cold = sum(r["cold_s"] for r in rows)
    total_warm = sum(r["warm_s"] for r in rows)
    total_edited = sum(r["edited_s"] for r in rows)
    table_rows.append([
        "TOTAL", sum(sum(r["cold"]["tiers"].values()) for r in rows),
        f"{total_cold * 1e3:.2f}", f"{total_warm * 1e3:.2f}",
        f"{total_edited * 1e3:.2f}",
        f"{total_cold / max(total_warm, 1e-9):.0f}x",
    ])
    table = format_table(
        ["benchmark", "procs", "cold ms", "warm ms", "edited ms",
         "warm speedup"],
        table_rows,
        title=(f"Analysis server editor loop, 17-benchmark suite, "
               f"scale={scale} (per-request wall time incl. protocol)"))
    print("\n" + table)
    save_result("serve_incremental", table)
    benchmark.extra_info.update({
        "cold_s": round(total_cold, 4),
        "warm_s": round(total_warm, 4),
        "edited_s": round(total_edited, 4),
        "warm_speedup": round(total_cold / max(total_warm, 1e-9), 1),
    })

    for row in rows:
        name = row["name"]
        cold, warm, edited = row["cold"], row["warm"], row["edited"]
        nprocs = sum(cold["tiers"].values())

        # Cold pass computed everything.
        assert cold["tiers"]["computed"] == nprocs, name

        # GATE: the warm request touched no analysis machinery at all --
        # zero plans compiled, zero fixpoints run, zero procedures
        # computed -- and still answered identically.
        assert warm["tiers"] == {"memory": nprocs, "disk": 0,
                                 "computed": 0}, name
        assert warm["result"]["counters"]["plans_compiled"] == 0, name
        assert warm["result"]["counters"]["fixpoint_runs"] == 0, name
        assert warm["result"]["checks"] == cold["result"]["checks"], name
        assert warm["result"]["procedures"] \
            == cold["result"]["procedures"], name

        # GATE: the one-procedure edit recomputed exactly one procedure;
        # the untouched ones stayed memory-tier (near-zero cost).
        assert edited["tiers"]["computed"] == 1, name
        assert edited["tiers"]["memory"] == nprocs - 1, name
        computed = [proc for proc, tier in edited["procedures"]
                    if tier == "computed"]
        assert computed == [edited["procedures"][-1][0]], name

    # The editor loop's point, in wall time: a full warm pass over the
    # suite is far cheaper than the cold pass.
    assert total_warm < total_cold / 5


# ----------------------------------------------------------------------
# robustness overhead: supervised pool vs inline execution
# ----------------------------------------------------------------------
def _measure_mode(scale, pool):
    """Cold pass then repeated warm passes over the suite against one
    server; returns (cold_total_s, best_warm_total_s)."""
    tmp = tempfile.mkdtemp(prefix="repro-serve-sup-bench-")
    server = AnalysisServer(os.path.join(tmp, "serve.sock"),
                            use_cache=False, workers=2, pool=pool)
    server.start()
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        with ServeClient(server.socket_path) as client:
            jobs = [(bench.name, bench.job(scale=scale).source)
                    for bench in load_suite()]
            start = time.perf_counter()
            for name, source in jobs:
                client.analyze(source, label=name)
            cold_total = time.perf_counter() - start
            warm_totals = []
            for _ in range(3):
                start = time.perf_counter()
                for name, source in jobs:
                    response = client.analyze(source, label=name)
                    assert response["tiers"]["computed"] == 0, name
                warm_totals.append(time.perf_counter() - start)
    finally:
        with ServeClient(server.socket_path) as client:
            client.shutdown()
        thread.join(timeout=30)
    return cold_total, min(warm_totals)


def test_serve_supervisor_overhead(benchmark, scale):
    """GATE: process isolation must not tax the warm path.

    The supervised pool only sits on the *compute* tier; memory-LRU
    hits never cross a process boundary, so a warm suite pass under
    ``pool=2`` must stay within 10% (+2ms/suite slack) of inline
    execution.  Cold-pass numbers are reported unguarded -- the
    dispatch/IPC overhead there is the price of crash isolation.
    """
    (inline, supervised) = run_once(
        benchmark,
        lambda: (_measure_mode(scale, pool=0), _measure_mode(scale, pool=2)))
    cold_inline, warm_inline = inline
    cold_sup, warm_sup = supervised

    table = format_table(
        ["mode", "cold ms", "warm ms", "warm vs inline"],
        [["inline (pool=0)", f"{cold_inline * 1e3:.2f}",
          f"{warm_inline * 1e3:.2f}", "1.00x"],
         ["supervised (pool=2)", f"{cold_sup * 1e3:.2f}",
          f"{warm_sup * 1e3:.2f}",
          f"{warm_sup / max(warm_inline, 1e-9):.2f}x"]],
        title=(f"Supervised pool overhead, 17-benchmark suite, "
               f"scale={scale} (full-suite wall time per pass)"))
    print("\n" + table)

    # Ride along in the serve_incremental report (satellite contract),
    # standalone if the editor-loop bench did not run first.
    path = os.path.join(results_dir(), "serve_incremental.txt")
    with open(path, "a") as fh:
        fh.write("\n" + table + "\n")

    doc = {
        "scale": scale,
        "cold_inline_s": round(cold_inline, 6),
        "cold_supervised_s": round(cold_sup, 6),
        "warm_inline_s": round(warm_inline, 6),
        "warm_supervised_s": round(warm_sup, 6),
        "warm_overhead_ratio": round(warm_sup / max(warm_inline, 1e-9), 4),
    }
    with open(os.path.join(results_dir(), "BENCH_serve_supervisor.json"),
              "w") as fh:
        json.dump(doc, fh, indent=2)
        fh.write("\n")
    benchmark.extra_info.update(doc)

    # GATE: <10% warm overhead (plus 2ms absolute slack for timer noise
    # on a sub-100ms suite pass).
    assert warm_sup <= warm_inline * 1.10 + 0.002 * len(load_suite())
