"""Extra study: precision/cost across the shipped abstract domains.

Not a paper figure, but the natural companion to the paper's
"expressivity vs efficiency" framing (section 1): run a slice of the
benchmark suite through interval, pentagon, zone, optimised octagon and
the scalar octagon baseline, measuring analysis time and the number of
assertions each domain proves.  Expected shape:

* precision ladder: interval <= pentagon <= zone <= octagon (the two
  octagon implementations prove identical facts);
* the cheap domains are faster than either octagon; the optimised
  octagon beats the scalar baseline.
"""

from conftest import bench_scale, run_once

from repro.bench import format_table, save_result
from repro.workloads import get_benchmark, run_workload

BENCH_SLICE = ["Prob6_00_f", "crypt", "firefox", "eeorzcap"]
DOMAINS = ["interval", "pentagon", "zone", "octagon", "apron"]


def _measure():
    rows = []
    for name in BENCH_SLICE:
        bench = get_benchmark(name)
        cells = [name]
        verified = {}
        seconds = {}
        for domain in DOMAINS:
            run = run_workload(bench, domain, scale=bench_scale())
            verified[domain] = (run.checks_verified, run.checks_total)
            seconds[domain] = run.total_seconds
        for domain in DOMAINS:
            v, t = verified[domain]
            cells.append(f"{v}/{t} ({seconds[domain]:.2f}s)")
        rows.append((cells, verified, seconds))
    return rows


def test_domain_comparison(benchmark):
    rows = run_once(benchmark, _measure)
    table = format_table(
        ["benchmark"] + DOMAINS, [cells for cells, _, _ in rows],
        title="Domain comparison: assertions proven (analysis seconds)")
    print("\n" + table)
    save_result("domain_comparison", table)
    for _, verified, seconds in rows:
        # The octagons prove at least as much as the cheaper domains.
        assert verified["octagon"][0] >= verified["interval"][0]
        assert verified["octagon"][0] >= verified["zone"][0]
        # The two octagon implementations prove the same facts.
        assert verified["octagon"] == verified["apron"]
        # And the optimised octagon is cheaper than the scalar baseline.
        assert seconds["octagon"] < seconds["apron"]
