"""Hot-path memory layer: end-to-end ablation of COW + workspaces.

Runs the full Table 2 workload suite through the optimised octagon
analyzer twice in-process: once with the copy-on-write DBM storage,
kernel workspaces and the versioned closure cache switched *off*
(restoring the pre-optimisation allocation behaviour: eager matrix
copies on ``copy()``, per-call kernel buffers, closure cache dropped on
aliasing) and once with them on.  Both passes execute the identical
analysis logic -- the toggles only change memory traffic -- so the
ratio isolates the constant-factor win of the memory layer.

The counters prove the layer actually engaged: ``copies_avoided``
(clones never materialised), ``workspace_hits`` (buffer reuses) and
``closure_cache_hits`` (closures answered from an alias's cached
closed form) must all be non-zero.
"""

import gc
import time

from conftest import run_once

from repro.bench import format_table, save_result
from repro.core import cow, workspace
from repro.workloads import BENCHMARKS, run_workload


def _run_suite(scale):
    """One full end-to-end pass; returns (wall seconds, runs)."""
    start = time.perf_counter()
    runs = [run_workload(b, "octagon", scale=scale) for b in BENCHMARKS]
    return time.perf_counter() - start, runs


def _sum_counters(runs):
    total = {}
    for run in runs:
        for key, value in run.counters.items():
            total[key] = total.get(key, 0) + value
    return total


_ROUNDS = 3


def _measure(scale):
    # Warm caches/imports outside the timed region so neither mode pays
    # first-touch costs (the baseline keeps its legacy per-module
    # scratch caches, which were already warm in pre-optimisation
    # steady state).
    run_workload(BENCHMARKS[0], "octagon", scale="small")

    # Interleave the two modes and keep the fastest round of each: the
    # workloads are deterministic, so the minimum is the least-noise
    # estimate of the true cost under CPU-frequency / scheduler jitter.
    base_seconds = opt_seconds = None
    base_runs = opt_runs = None
    for _ in range(_ROUNDS):
        gc.collect()
        with cow.disabled(), workspace.disabled():
            seconds, runs = _run_suite(scale)
        if base_seconds is None or seconds < base_seconds:
            base_seconds, base_runs = seconds, runs
        gc.collect()
        workspace.clear()
        seconds, runs = _run_suite(scale)
        if opt_seconds is None or seconds < opt_seconds:
            opt_seconds, opt_runs = seconds, runs

    return {
        "base_seconds": base_seconds,
        "opt_seconds": opt_seconds,
        "speedup": base_seconds / max(opt_seconds, 1e-12),
        "base_counters": _sum_counters(base_runs),
        "opt_counters": _sum_counters(opt_runs),
        "base_runs": base_runs,
        "opt_runs": opt_runs,
    }


def test_hotpath_memory_layer(benchmark, scale):
    result = run_once(benchmark, lambda: _measure(scale))
    benchmark.extra_info.update(result["opt_counters"])
    benchmark.extra_info["hotpath_speedup"] = round(result["speedup"], 3)
    opt = result["opt_counters"]
    base = result["base_counters"]
    rows = [
        ["end-to-end seconds", f"{result['base_seconds']:.3f}",
         f"{result['opt_seconds']:.3f}"],
        ["speedup", "1.0x", f"{result['speedup']:.2f}x"],
    ]
    for key in ("copies_avoided", "cow_clones", "cow_materializations",
                "workspace_hits", "workspace_misses", "closure_cache_hits"):
        rows.append([key, base.get(key, 0), opt.get(key, 0)])
    table = format_table(
        ["metric", "baseline (layer off)", "optimised (layer on)"],
        rows,
        title=("Hot-path memory layer ablation, full suite, "
               f"scale={scale}"))
    print("\n" + table)
    save_result("hotpath_memory_layer", table)

    # The toggles must not change what the analysis proves.
    for b, o in zip(result["base_runs"], result["opt_runs"]):
        assert (b.checks_verified, b.checks_total) == \
            (o.checks_verified, o.checks_total), b.benchmark

    assert opt["copies_avoided"] > 0
    assert opt["workspace_hits"] > 0
    assert opt["closure_cache_hits"] > 0
    # Baseline mode really is the pre-optimisation allocator.
    assert base.get("copies_avoided", 0) == 0
    assert base.get("workspace_hits", 0) == 0
    assert result["speedup"] >= 1.3
