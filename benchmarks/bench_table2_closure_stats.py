"""Table 2: closure statistics per benchmark.

The paper reports, for each of the 17 benchmarks, the minimum and
maximum number of variables in the DBMs reaching the closure operator
and the total number of closures.  We regenerate the same statistics
from our workloads and print them beside the paper's values.  The
workloads are scaled (see suite.py), so the measured columns are
expected to be proportionally smaller; what must reproduce is the
per-family profile: CPA benchmarks have nmin ~ nmax (fixed variable
set), DPS/DIZY have a wide nmin..nmax spread (many procedures of
varying size).
"""

from conftest import bench_scale, run_once

from repro.bench import format_table, save_result, table2_row
from repro.workloads import BENCHMARKS


def _measure():
    return [table2_row(b, scale=bench_scale()) for b in BENCHMARKS]


def test_table2_closure_stats(benchmark):
    rows = run_once(benchmark, _measure)
    table = format_table(
        ["benchmark", "analyzer", "nmin", "nmax", "#closures",
         "paper_nmin", "paper_nmax", "paper_#closures"],
        [[r["benchmark"], r["analyzer"], r["nmin"], r["nmax"], r["closures"],
          r["paper_nmin"], r["paper_nmax"], r["paper_closures"]] for r in rows],
        title="Table 2: closure statistics (measured, scaled workloads | paper)")
    print("\n" + table)
    save_result("table2_closure_stats", table)
    by_name = {r["benchmark"]: r for r in rows}
    # Per-family shape: CPA benchmarks have a fixed variable set.
    for name in ("Prob6_00_f", "s3_clnt_2_f", "s3_clnt_3_t"):
        assert by_name[name]["nmin"] == by_name[name]["nmax"]
    # DPS benchmarks span procedures of widely varying size.
    assert by_name["crypt"]["nmax"] >= 2 * by_name["crypt"]["nmin"]
    # Every benchmark actually performed closures.
    assert all(r["closures"] > 0 for r in rows)
