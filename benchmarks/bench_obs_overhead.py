"""Telemetry overhead: disabled observability must be (near) free.

Three passes over the 17-benchmark suite, all inline (``workers=1``,
no fork noise):

1. stripped -- the tracer's entry points (``span``/``emit``) replaced
   with bare no-op functions: what the code would cost if the
   instrumentation calls were deleted outright;
2. disabled -- the shipped default: tracing off, histograms off, so
   every instrumentation site is one module-global flag test (the hot
   fixpoint loops install their traced wrappers only when tracing is
   on, so they do not even pay the test per edge);
3. enabled -- spans recorded, histograms observed, worker events
   re-parented: the honest price of full telemetry, reported but not
   gated (you opted in).

The gate: the disabled pass must stay within 2% of the stripped pass.
All three modes run *interleaved* (stripped, disabled, enabled,
stripped, ...) and each comparison is estimated two ways: the ratio
of best-of-round wall times (the minimum converges to the
quiet-machine time as rounds accumulate) and the median of the
per-round paired ratios (adjacent runs see the same host load, so
the ratio cancels it).  Host load spikes can inflate either
estimator but only ever *inflate* it -- a real regression shifts
both -- so the gate (and the table) take the smaller of the two.
"""

import json
import os
import tempfile
import threading
import time
import urllib.request

from conftest import run_once

from repro.bench import format_table, save_result
from repro.bench.reporting import results_dir
from repro.obs import metrics, trace
from repro.serve import AnalysisServer, ServeClient
from repro.service import run_suite
from repro.workloads.suite import load_suite

ROUNDS = 7


def _null_span(name, /, **attrs):
    return trace.NULL_SPAN


def _null_emit(name, start, end, *, tid=None, args=None):
    return None


def _keep_best(best, batch):
    if best is None or batch.wall_seconds < best.wall_seconds:
        return batch
    return best


def _measure(scale):
    # One unmeasured pass: the first suite run of a process is a few
    # percent slower (imports, allocator warmup) and would otherwise be
    # charged entirely to whichever mode runs first.
    run_suite(scale, workers=1, retries=0)

    stripped = disabled = enabled = None
    spans = 0
    disabled_ratios = []
    enabled_ratios = []
    for _ in range(ROUNDS):
        real_span, real_emit = trace.span, trace.emit
        trace.span, trace.emit = _null_span, _null_emit
        try:
            s_batch = run_suite(scale, workers=1, retries=0)
        finally:
            trace.span, trace.emit = real_span, real_emit

        d_batch = run_suite(scale, workers=1, retries=0)

        previous = metrics.set_enabled(True)
        trace.reset()
        trace.enable()
        try:
            e_batch = run_suite(scale, workers=1, retries=0)
            if enabled is None or e_batch.wall_seconds < enabled.wall_seconds:
                spans = sum(1 for e in trace.events()
                            if e.get("ph") == "X")
        finally:
            trace.disable()
            trace.reset()
            metrics.set_enabled(previous)

        stripped = _keep_best(stripped, s_batch)
        disabled = _keep_best(disabled, d_batch)
        enabled = _keep_best(enabled, e_batch)
        base = max(s_batch.wall_seconds, 1e-12)
        disabled_ratios.append(d_batch.wall_seconds / base)
        enabled_ratios.append(e_batch.wall_seconds / base)

    def estimate(best, paired):
        median = sorted(paired)[len(paired) // 2]
        best_ratio = best.wall_seconds / max(stripped.wall_seconds, 1e-12)
        return min(median, best_ratio)

    return {"stripped": stripped, "disabled": disabled,
            "enabled": enabled, "spans": spans,
            "disabled_ratio": estimate(disabled, disabled_ratios),
            "enabled_ratio": estimate(enabled, enabled_ratios)}


def test_obs_overhead(benchmark, scale):
    result = run_once(benchmark, lambda: _measure(scale))
    stripped, disabled, enabled = (result["stripped"], result["disabled"],
                                   result["enabled"])

    disabled_pct = (result["disabled_ratio"] - 1.0) * 100.0
    enabled_pct = (result["enabled_ratio"] - 1.0) * 100.0
    rows = [
        ["stripped (no instrumentation)",
         f"{stripped.wall_seconds:.3f}", "-",
         f"{stripped.checks_verified}/{stripped.checks_total}"],
        ["disabled (shipped default)",
         f"{disabled.wall_seconds:.3f}", f"{disabled_pct:+.2f}%",
         f"{disabled.checks_verified}/{disabled.checks_total}"],
        [f"enabled (spans + histograms, {result['spans']} spans)",
         f"{enabled.wall_seconds:.3f}", f"{enabled_pct:+.2f}%",
         f"{enabled.checks_verified}/{enabled.checks_total}"],
    ]
    table = format_table(
        ["telemetry", "wall s", "vs stripped", "verified"],
        rows,
        title=f"Telemetry overhead, 17-benchmark suite, scale={scale}")
    print("\n" + table)
    save_result("obs_overhead", table)
    benchmark.extra_info.update({
        "stripped_s": round(stripped.wall_seconds, 4),
        "disabled_s": round(disabled.wall_seconds, 4),
        "enabled_s": round(enabled.wall_seconds, 4),
        "disabled_overhead_pct": round(disabled_pct, 3),
        "enabled_overhead_pct": round(enabled_pct, 3),
        "enabled_spans": result["spans"],
    })

    # Observation must not change the analysis: identical verdicts and
    # invariants in all three modes.
    for a, b in zip(stripped.results, disabled.results):
        assert a.verdicts() == b.verdicts()
        assert a.procedures == b.procedures
    for a, b in zip(stripped.results, enabled.results):
        assert a.verdicts() == b.verdicts()
        assert a.procedures == b.procedures

    # The gate: disabled telemetry within 2% of no instrumentation,
    # judged on the median paired ratio (plus a small absolute floor so
    # sub-second suites are not gated on scheduler granularity).
    slack = 0.02 / max(stripped.wall_seconds, 1e-12)
    assert result["disabled_ratio"] <= 1.02 + slack, (
        f"disabled-telemetry overhead {disabled_pct:.2f}% (median of "
        f"{ROUNDS} paired rounds) exceeds the 2% gate")
    # Enabled tracing recorded real work.
    assert result["spans"] > 0


# ----------------------------------------------------------------------
# the serve path: full observability plane armed
# ----------------------------------------------------------------------
def _measure_serve(scale, pool):
    """Cold pass then repeated warm passes against one daemon with the
    whole observability plane on: HTTP facade listening, per-request
    trace-context creation, RED accounting, slow-request checks and the
    /requestz ring all live on the measured path.  Returns
    (cold_total_s, best_warm_total_s, facade_probe_dict)."""
    tmp = tempfile.mkdtemp(prefix="repro-obs-serve-bench-")
    server = AnalysisServer(os.path.join(tmp, "serve.sock"),
                            use_cache=False, workers=2, pool=pool,
                            http_port=0, slow_request_ms=60_000.0)
    server.start()
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    probe = {}
    try:
        with ServeClient(server.socket_path) as client:
            jobs = [(bench.name, bench.job(scale=scale).source)
                    for bench in load_suite()]
            start = time.perf_counter()
            for name, source in jobs:
                client.analyze(source, label=name)
            cold_total = time.perf_counter() - start
            warm_totals = []
            for _ in range(3):
                start = time.perf_counter()
                for name, source in jobs:
                    response = client.analyze(source, label=name)
                    assert response["tiers"]["computed"] == 0, name
                warm_totals.append(time.perf_counter() - start)
        base = f"http://127.0.0.1:{server.http_port}"
        with urllib.request.urlopen(base + "/healthz", timeout=10) as r:
            probe["healthz"] = r.status
        with urllib.request.urlopen(base + "/metrics", timeout=10) as r:
            probe["metrics_bytes"] = len(r.read())
    finally:
        with ServeClient(server.socket_path) as client:
            client.shutdown()
        thread.join(timeout=30)
    return cold_total, min(warm_totals), probe


def test_obs_serve_overhead(benchmark, scale):
    """GATE: the observability plane must not tax the warm pooled path.

    PR 9 gated the supervised pool's warm overhead at 1.10x of inline;
    this PR adds trace contexts, RED rollups, the request ring and a
    live HTTP facade to every request -- and must stay under the *same*
    gate: warm pooled within 10% (+2ms/suite slack) of warm inline,
    with everything armed on both sides.
    """
    (inline, supervised) = run_once(
        benchmark,
        lambda: (_measure_serve(scale, pool=0),
                 _measure_serve(scale, pool=2)))
    cold_inline, warm_inline, _ = inline
    cold_sup, warm_sup, probe = supervised
    ratio = warm_sup / max(warm_inline, 1e-9)

    table = format_table(
        ["mode", "cold ms", "warm ms", "warm vs inline"],
        [["inline (pool=0)", f"{cold_inline * 1e3:.2f}",
          f"{warm_inline * 1e3:.2f}", "1.00x"],
         ["supervised (pool=2)", f"{cold_sup * 1e3:.2f}",
          f"{warm_sup * 1e3:.2f}", f"{ratio:.2f}x"]],
        title=(f"Observability plane on the serve path, 17-benchmark "
               f"suite, scale={scale} (facade + tracing contexts armed)"))
    print("\n" + table)
    save_result("obs_serve", table)

    doc = {
        "scale": scale,
        "cold_inline_s": round(cold_inline, 6),
        "cold_supervised_s": round(cold_sup, 6),
        "warm_inline_s": round(warm_inline, 6),
        "warm_supervised_s": round(warm_sup, 6),
        "warm_overhead_ratio": round(ratio, 4),
        "healthz_status": probe["healthz"],
        "metrics_bytes": probe["metrics_bytes"],
    }
    with open(os.path.join(results_dir(), "BENCH_obs_serve.json"),
              "w") as fh:
        json.dump(doc, fh, indent=2)
        fh.write("\n")
    benchmark.extra_info.update(doc)

    # The facade was alive and scrapable while the daemon was loaded.
    assert probe["healthz"] == 200
    assert probe["metrics_bytes"] > 0
    # GATE: PR 9's warm bar, now with the full observability plane on.
    assert warm_sup <= warm_inline * 1.10 + 0.002 * len(load_suite())
