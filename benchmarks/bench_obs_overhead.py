"""Telemetry overhead: disabled observability must be (near) free.

Three passes over the 17-benchmark suite, all inline (``workers=1``,
no fork noise):

1. stripped -- the tracer's entry points (``span``/``emit``) replaced
   with bare no-op functions: what the code would cost if the
   instrumentation calls were deleted outright;
2. disabled -- the shipped default: tracing off, histograms off, so
   every instrumentation site is one module-global flag test (the hot
   fixpoint loops install their traced wrappers only when tracing is
   on, so they do not even pay the test per edge);
3. enabled -- spans recorded, histograms observed, worker events
   re-parented: the honest price of full telemetry, reported but not
   gated (you opted in).

The gate: the disabled pass must stay within 2% of the stripped pass.
All three modes run *interleaved* (stripped, disabled, enabled,
stripped, ...) and each comparison is estimated two ways: the ratio
of best-of-round wall times (the minimum converges to the
quiet-machine time as rounds accumulate) and the median of the
per-round paired ratios (adjacent runs see the same host load, so
the ratio cancels it).  Host load spikes can inflate either
estimator but only ever *inflate* it -- a real regression shifts
both -- so the gate (and the table) take the smaller of the two.
"""

from conftest import run_once

from repro.bench import format_table, save_result
from repro.obs import metrics, trace
from repro.service import run_suite

ROUNDS = 7


def _null_span(name, /, **attrs):
    return trace.NULL_SPAN


def _null_emit(name, start, end, *, tid=None, args=None):
    return None


def _keep_best(best, batch):
    if best is None or batch.wall_seconds < best.wall_seconds:
        return batch
    return best


def _measure(scale):
    # One unmeasured pass: the first suite run of a process is a few
    # percent slower (imports, allocator warmup) and would otherwise be
    # charged entirely to whichever mode runs first.
    run_suite(scale, workers=1, retries=0)

    stripped = disabled = enabled = None
    spans = 0
    disabled_ratios = []
    enabled_ratios = []
    for _ in range(ROUNDS):
        real_span, real_emit = trace.span, trace.emit
        trace.span, trace.emit = _null_span, _null_emit
        try:
            s_batch = run_suite(scale, workers=1, retries=0)
        finally:
            trace.span, trace.emit = real_span, real_emit

        d_batch = run_suite(scale, workers=1, retries=0)

        previous = metrics.set_enabled(True)
        trace.reset()
        trace.enable()
        try:
            e_batch = run_suite(scale, workers=1, retries=0)
            if enabled is None or e_batch.wall_seconds < enabled.wall_seconds:
                spans = sum(1 for e in trace.events()
                            if e.get("ph") == "X")
        finally:
            trace.disable()
            trace.reset()
            metrics.set_enabled(previous)

        stripped = _keep_best(stripped, s_batch)
        disabled = _keep_best(disabled, d_batch)
        enabled = _keep_best(enabled, e_batch)
        base = max(s_batch.wall_seconds, 1e-12)
        disabled_ratios.append(d_batch.wall_seconds / base)
        enabled_ratios.append(e_batch.wall_seconds / base)

    def estimate(best, paired):
        median = sorted(paired)[len(paired) // 2]
        best_ratio = best.wall_seconds / max(stripped.wall_seconds, 1e-12)
        return min(median, best_ratio)

    return {"stripped": stripped, "disabled": disabled,
            "enabled": enabled, "spans": spans,
            "disabled_ratio": estimate(disabled, disabled_ratios),
            "enabled_ratio": estimate(enabled, enabled_ratios)}


def test_obs_overhead(benchmark, scale):
    result = run_once(benchmark, lambda: _measure(scale))
    stripped, disabled, enabled = (result["stripped"], result["disabled"],
                                   result["enabled"])

    disabled_pct = (result["disabled_ratio"] - 1.0) * 100.0
    enabled_pct = (result["enabled_ratio"] - 1.0) * 100.0
    rows = [
        ["stripped (no instrumentation)",
         f"{stripped.wall_seconds:.3f}", "-",
         f"{stripped.checks_verified}/{stripped.checks_total}"],
        ["disabled (shipped default)",
         f"{disabled.wall_seconds:.3f}", f"{disabled_pct:+.2f}%",
         f"{disabled.checks_verified}/{disabled.checks_total}"],
        [f"enabled (spans + histograms, {result['spans']} spans)",
         f"{enabled.wall_seconds:.3f}", f"{enabled_pct:+.2f}%",
         f"{enabled.checks_verified}/{enabled.checks_total}"],
    ]
    table = format_table(
        ["telemetry", "wall s", "vs stripped", "verified"],
        rows,
        title=f"Telemetry overhead, 17-benchmark suite, scale={scale}")
    print("\n" + table)
    save_result("obs_overhead", table)
    benchmark.extra_info.update({
        "stripped_s": round(stripped.wall_seconds, 4),
        "disabled_s": round(disabled.wall_seconds, 4),
        "enabled_s": round(enabled.wall_seconds, 4),
        "disabled_overhead_pct": round(disabled_pct, 3),
        "enabled_overhead_pct": round(enabled_pct, 3),
        "enabled_spans": result["spans"],
    })

    # Observation must not change the analysis: identical verdicts and
    # invariants in all three modes.
    for a, b in zip(stripped.results, disabled.results):
        assert a.verdicts() == b.verdicts()
        assert a.procedures == b.procedures
    for a, b in zip(stripped.results, enabled.results):
        assert a.verdicts() == b.verdicts()
        assert a.procedures == b.procedures

    # The gate: disabled telemetry within 2% of no instrumentation,
    # judged on the median paired ratio (plus a small absolute floor so
    # sub-second suites are not gated on scheduler granularity).
    slack = 0.02 / max(stripped.wall_seconds, 1e-12)
    assert result["disabled_ratio"] <= 1.02 + slack, (
        f"disabled-telemetry overhead {disabled_pct:.2f}% (median of "
        f"{ROUNDS} paired rounds) exceeds the 2% gate")
    # Enabled tracing recorded real work.
    assert result["spans"] > 0
