"""Figure 6: speedup of the new closures over the APRON closure.

For every benchmark, the paper reports (log scale):

* gray bar -- a vectorised Floyd-Warshall closure (processor-level
  optimisation only, no operation-count reduction): ~6-8x over APRON;
* black bar -- the OptOctagon closure (switching between dense, sparse
  and decomposed closures): usually >= FW, often ~20x, up to >600x.

This harness replays each benchmark's captured closure workload (the
exact DBMs + partitions the analysis produced) through the scalar APRON
closure, the vectorised full-DBM Floyd-Warshall, and the OptOctagon
dispatch, then prints the per-benchmark speedups.  In this Python
reproduction the FW/APRON gap is inflated (NumPy vs interpreted scalar
loops is a bigger gap than AVX vs scalar C) -- the *shape* to check is
OptOctagon >= FW with the largest wins on decomposable benchmarks.
"""

from conftest import bench_scale, run_once

from repro.bench import closure_comparison, format_table, geomean, save_result
from repro.workloads import BENCHMARKS


def _measure():
    rows = []
    for bench in BENCHMARKS:
        cc = closure_comparison(bench, scale=bench_scale())
        if not cc.events:
            continue
        kinds = sorted({e.kind for e in cc.events})
        rows.append([bench.name, bench.analyzer, len(cc.events),
                     ",".join(kinds), cc.fw_speedup, cc.opt_speedup])
    return rows


def test_fig6_closure_speedups(benchmark):
    rows = run_once(benchmark, _measure)
    text = format_table(
        ["benchmark", "analyzer", "#closures", "kinds",
         "FW_speedup", "OptOctagon_speedup"],
        rows,
        title="Figure 6: closure speedup over APRON closure "
              f"(geomean FW={geomean([r[4] for r in rows]):.1f}x, "
              f"Opt={geomean([r[5] for r in rows]):.1f}x)")
    print("\n" + text)
    save_result("fig6_closure_speedup", text)
    # Shape assertions: both optimised closures beat the scalar baseline
    # in aggregate.
    assert geomean([r[4] for r in rows]) > 1.0
    assert geomean([r[5] for r in rows]) > 1.0
