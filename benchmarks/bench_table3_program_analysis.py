"""Table 3: end-to-end program analysis speedup.

The paper's host analyzers do more than octagon analysis (parsing,
pointer analysis, other domains).  Table 3 therefore reports total
analysis time, the percentage of it spent in octagon operations, and
the resulting end-to-end speedup -- large where octagons dominate
(CPA/TB, up to 18.7x), negligible where they don't (most DPS/DIZY
rows, %oct < 1).

Our harness runs the identical full pipeline (parse -> CFG -> octagon
fixpoint -> auxiliary dataflow passes: liveness, reaching definitions,
constant propagation) over both octagon implementations.  The auxiliary
passes model the non-octagon analyzer components.  The Amdahl shape to
check: end-to-end speedup is bounded by the octagon fraction, so rows
with high %oct speed up the most.
"""

from conftest import bench_scale, run_once

from repro.bench import format_table, save_result, table3_row
from repro.workloads import BENCHMARKS

#: Auxiliary dataflow repetitions per family, tuned so the measured
#: %oct profile follows Table 3 (CPA/TB octagon-bound; DPS/DIZY not).
AUX_PASSES = {"CPA": 1, "TB": 1, "DPS": 300, "DIZY": 80}


def _measure():
    return [table3_row(b, scale=bench_scale(), aux_passes=AUX_PASSES[b.analyzer])
            for b in BENCHMARKS]


def test_table3_program_analysis(benchmark):
    rows = run_once(benchmark, _measure)
    table = format_table(
        ["benchmark", "analyzer", "apron_total_s", "apron_%oct",
         "opt_total_s", "opt_%oct", "speedup", "paper_speedup"],
        [[r["benchmark"], r["analyzer"], r["apron_total_s"], r["apron_pct_oct"],
          r["opt_total_s"], r["opt_pct_oct"], r["speedup"], r["paper_speedup"]]
         for r in rows],
        title="Table 3: end-to-end program analysis (measured | paper speedup)")
    print("\n" + table)
    save_result("table3_program_analysis", table)
    by_analyzer = {}
    for r in rows:
        by_analyzer.setdefault(r["analyzer"], []).append(r)
    # Amdahl shape: octagon-bound families speed up more than the
    # dataflow-bound ones.
    import statistics
    mean = lambda xs: statistics.fmean(xs)
    cpa_tb = mean([r["speedup"] for r in by_analyzer["CPA"] + by_analyzer["TB"]])
    dps_dizy = mean([r["speedup"] for r in by_analyzer["DPS"] + by_analyzer["DIZY"]])
    assert cpa_tb > dps_dizy
    # And the octagon fraction under APRON is what the speedup feeds on.
    for r in rows:
        assert r["speedup"] >= 0.5  # never pathological slowdown
