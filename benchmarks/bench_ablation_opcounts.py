"""Ablation: the operation-count halving of Algorithm 3 (section 5.2).

The paper claims the standard closure performs ``16n^3 + 22n^2 + 6n``
operations while the new dense closure needs ``8n^3 + 10n^2 + 2n`` --
the 2x algorithmic reduction that processor-level vectorisation then
multiplies.  Our instrumented scalar transcriptions count operations
exactly (one add + one compare per shortest-path candidate, one add +
one halve + one compare per strengthening candidate); the measured
counts match the closed-form polynomials for every n, and their ratio
converges to 1/2.
"""

from conftest import run_once

from repro.bench import format_table, save_result
from repro.core.closure_apron import apron_closure_op_count, closure_apron
from repro.core.closure_dense import closure_dense_scalar, dense_closure_op_count
from repro.core.halfmat import HalfMat
from repro.core.stats import OpCounter


def _measure():
    rows = []
    for n in (2, 4, 8, 16, 24, 32):
        half = HalfMat(n)
        counter = OpCounter()
        closure_apron(half, counter)
        apron_ops = counter.mins
        half = HalfMat(n)
        counter = OpCounter()
        closure_dense_scalar(half, counter)
        dense_ops = counter.mins
        rows.append([n, apron_ops, apron_closure_op_count(n),
                     dense_ops, dense_closure_op_count(n),
                     dense_ops / apron_ops])
    return rows


def test_opcount_halving(benchmark):
    rows = run_once(benchmark, _measure)
    table = format_table(
        ["n", "apron_ops", "16n^3+22n^2+6n", "dense_ops",
         "8n^3+6n^2+6n", "ratio"],
        rows,
        title=("Ablation: Algorithm 2 vs Algorithm 3 operation counts "
               "(paper: 16n^3+22n^2+6n vs 8n^3+10n^2+2n)"))
    print("\n" + table)
    save_result("ablation_opcounts", table)
    for n, apron_ops, apron_formula, dense_ops, dense_formula, ratio in rows:
        assert apron_ops == apron_formula
        assert dense_ops == dense_formula
    # The halving claim: ratio -> 1/2 as n grows.
    assert abs(rows[-1][5] - 0.5) < 0.02
