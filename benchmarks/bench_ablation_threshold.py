"""Ablation: the sparsity threshold ``t`` and online decomposition.

Two of the design choices DESIGN.md calls out:

* the switch-to-dense threshold ``t`` on the sparsity measure
  ``D = 1 - nni/(2n^2+2n)`` (the paper suggests t = 3/4);
* online decomposition itself (``SwitchPolicy.decompose``).

Decomposition pays inside the cubic closure and needs DBMs big enough
for the cubic term to dominate the per-component bookkeeping.  The
APRON baseline cannot run at such sizes in an interpreter, but this
ablation does not need it: we analyse a large TouchBoost-style app
(n ~ 135, beyond the apron-feasible suite scale) with the optimised
octagon only, capture its closure workload, and replay it under each
policy.  Expected shape: any decomposing policy beats ``no-decompose``
by a wide margin on the closure replay; the threshold value itself
matters less because the exact structural refresh at each closure keeps
the partition fresh.
"""

import time

from conftest import run_once

from repro.bench import format_table, save_result
from repro.core.densemat import count_nni
from repro.core.kinds import SwitchPolicy
from repro.core.octagon import Octagon
from repro.core.partition import Partition
from repro.domains import ConfiguredOctagonFactory
from repro.workloads import run_workload
from repro.workloads.programs import gen_tb_like
from repro.workloads.suite import Benchmark, PaperStats

POLICIES = [
    ("decompose,t=0.50", SwitchPolicy(threshold=0.50, decompose=True)),
    ("decompose,t=0.75", SwitchPolicy(threshold=0.75, decompose=True)),
    ("decompose,t=0.95", SwitchPolicy(threshold=0.95, decompose=True)),
    ("no-decompose", SwitchPolicy(threshold=0.75, decompose=False)),
]


def _big_tb_benchmark() -> Benchmark:
    return Benchmark(
        "tb_ablation", "TB", PaperStats(0, 0, 0, 0, 0, 0, 0, 0, 0),
        lambda scale: gen_tb_like(9001, n_groups=12, group_size=10,
                                  n_phases=2))


def _closure_replay(inputs, policy):
    total = 0.0
    for mat, blocks in inputs:
        n = mat.shape[0] // 2
        part = (Partition(n, blocks) if policy.decompose
                else Partition.single_block(n))
        oct_ = Octagon(n, mat.copy(), part, count_nni(mat),
                       closed=False, policy=policy)
        start = time.perf_counter()
        oct_._close_in_place()
        total += time.perf_counter() - start
    return total


def _measure():
    bench = _big_tb_benchmark()
    capture = run_workload(bench, ConfiguredOctagonFactory(
        policy=SwitchPolicy()), scale="paper", capture_closures=True)
    rows = []
    for label, policy in POLICIES:
        replay = _closure_replay(capture.closure_inputs, policy)
        rows.append([label, len(capture.closure_inputs), replay])
    return rows


def test_threshold_ablation(benchmark):
    rows = run_once(benchmark, _measure)
    table = format_table(
        ["policy", "#closures", "closure_replay_s"], rows,
        title="Ablation: switching policy, closure workload of a "
              "TouchBoost-style app with n~135")
    print("\n" + table)
    save_result("ablation_threshold", table)
    replay = {label: t for label, _, t in rows}
    best_decomposed = min(t for label, t in replay.items()
                          if label != "no-decompose")
    # Decomposition must win decisively inside the closures.
    assert best_decomposed * 2 < replay["no-decompose"]
