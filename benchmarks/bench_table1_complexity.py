"""Table 1: asymptotic cost of closure / join / meet per DBM type.

The paper's Table 1 states the complexity of the operators for each
DBM type: closure is O(1) on Top, O(n^2 + sum k_i l_i) on Sparse,
O(n^3) on Dense and sum_i s_i on Decomposed; join/meet reduce to the
component submatrices.  We verify the *scaling* empirically: candidate
operation counts of the instrumented closures over an n-sweep, with a
log-log slope fit per type, plus the reduction of join work under
decomposition.
"""

import math

import numpy as np
from conftest import run_once

from repro.bench import format_table, save_result
from repro.core.closure_dense import closure_dense_numpy
from repro.core.closure_sparse import closure_sparse, shortest_path_sparse
from repro.core.constraints import OctConstraint, dbm_cells
from repro.core.densemat import new_top
from repro.core.partition import Partition
from repro.core.stats import OpCounter
from repro.core.octagon import Octagon


def _random_dense(n, rng):
    m = new_top(n)
    dim = 2 * n
    for _ in range(4 * n * n):
        i, j = rng.integers(0, dim, 2)
        if i != j:
            c = float(rng.integers(0, 50))
            m[i, j] = min(m[i, j], c)
            m[j ^ 1, i ^ 1] = m[i, j]
    return m


def _random_sparse(n, rng, cluster: int = 4):
    """A sparse DBM that *stays* sparse under closure: constraints are
    confined to small variable clusters (uniformly random edges would
    transitively densify -- real-program sparsity is structured)."""
    m = new_top(n)
    for start in range(0, n, cluster):
        vars_ = range(start, min(start + cluster, n))
        idx = [2 * v + s for v in vars_ for s in (0, 1)]
        for _ in range(2 * cluster):
            i, j = rng.choice(idx, 2)
            if i != j:
                c = float(rng.integers(0, 50))
                m[i, j] = min(m[i, j], c)
                m[j ^ 1, i ^ 1] = m[i, j]
    return m


def _block_octagon(n, blocks, rng):
    """An octagon of ``blocks`` equal components, each *saturated* with
    intra-block constraints so every component takes the dense closure
    path (keeping the candidate-count measure comparable across rows)."""
    oct_ = Octagon.top(n)
    size = n // blocks
    for b in range(blocks):
        vars_ = list(range(b * size, (b + 1) * size))
        for v in vars_:
            oct_._meet_constraint_cells(OctConstraint.upper(v, 10.0))
            oct_._meet_constraint_cells(OctConstraint.lower(v, -10.0))
            for w in vars_:
                if v < w:
                    c = float(rng.integers(0, 9))
                    oct_._meet_constraint_cells(OctConstraint.diff(v, w, c))
                    oct_._meet_constraint_cells(OctConstraint.sum(v, w, c + 20))
    return oct_


def _slope(ns, counts):
    xs = [math.log(n) for n in ns]
    ys = [math.log(max(c, 1)) for c in counts]
    mx, my = sum(xs) / len(xs), sum(ys) / len(ys)
    num = sum((x - mx) * (y - my) for x, y in zip(xs, ys))
    den = sum((x - mx) ** 2 for x in xs)
    return num / den


def _measure():
    rng = np.random.default_rng(99)
    ns = [8, 16, 32, 64]
    rows = []
    dense_counts, sparse_counts = [], []
    for n in ns:
        counter = OpCounter()
        closure_dense_numpy(_random_dense(n, rng), counter)
        dense_counts.append(counter.mins)
        counter = OpCounter()
        closure_sparse(_random_sparse(n, rng), counter)  # clustered, stays sparse
        sparse_counts.append(counter.mins)
        rows.append([n, dense_counts[-1], sparse_counts[-1]])
    dense_slope = _slope(ns, dense_counts)
    sparse_slope = _slope(ns, sparse_counts)

    # Decomposed: candidate updates when closing k equal components of a
    # size-n octagon vs one monolithic component.
    decomp_rows = []
    n = 32
    for blocks in (1, 2, 4, 8):
        oct_ = _block_octagon(n, blocks, rng)
        counter = OpCounter()
        from repro.core.closure_decomposed import closure_decomposed
        closure_decomposed(oct_.mat.copy(), oct_.partition, counter=counter)
        decomp_rows.append([blocks, counter.mins])
    return rows, dense_slope, sparse_slope, decomp_rows


def test_table1_complexity(benchmark):
    rows, dense_slope, sparse_slope, decomp_rows = run_once(benchmark, _measure)
    table = format_table(["n", "dense_candidates", "sparse_candidates"], rows,
                         title=("Table 1 (empirical): candidate-min counts; "
                                f"log-log slope dense={dense_slope:.2f} "
                                f"(paper: 3), sparse={sparse_slope:.2f} "
                                "(paper: ~2 for near-linear entries)"))
    table2 = format_table(["components", "decomposed_candidates"], decomp_rows,
                          title="Decomposed closure: work vs component count (n=32)")
    print("\n" + table + "\n\n" + table2)
    save_result("table1_complexity", table + "\n\n" + table2)
    assert 2.6 <= dense_slope <= 3.2, f"dense closure should scale ~n^3, got {dense_slope}"
    assert sparse_slope <= 2.6, f"sparse closure should scale ~n^2, got {sparse_slope}"
    # More components => strictly less closure work.
    counts = [c for _, c in decomp_rows]
    assert counts == sorted(counts, reverse=True)
