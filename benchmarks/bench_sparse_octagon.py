"""Closure cell traffic and peak DBM memory: graph-sparse vs dense.

The sparse octagon's whole reason to exist is that most real DBMs are
mostly trivial: closing on the constraint graph should touch a small
fraction of the cells the dense kernels sweep, and the adjacency-list
representation should hold a small fraction of the bytes.  This
benchmark quantifies both over the full 17-program suite -- dense and
sparse runs of every program, side by side, with verdict/bound parity
asserted on each pair (a speedup over a wrong answer is worthless).

Rows where the dense backend wins are reported as honestly as the wins:
dense-profile programs (tight loop nests relating most variable pairs)
densify the graph until the per-component machinery is pure overhead,
which is exactly why the backend switches representation online instead
of betting on one.

Output: ``results/sparse_octagon.txt`` (the table) and
``results/BENCH_sparse_octagon.json`` (machine-readable, consumed by
CI to track the reduction ratios over time).
"""

import json
import os

from conftest import bench_scale, run_once

from repro.bench import format_table, geomean, save_result
from repro.bench.reporting import results_dir
from repro.service.validate import validate_job
from repro.workloads.suite import BENCHMARKS

#: Sparse-profile programs the acceptance criteria are pinned on
#: (mirrored by tests/test_sparse_octagon.py).
SPARSE_PROFILE = ("gwsfmlau", "blwd", "eeorzcap", "jwgqbjzs")


def _measure():
    rows = []
    for bench in BENCHMARKS:
        v = validate_job(bench.job(bench_scale()))
        assert v.ok, f"{bench.name}: backends disagree: {v.mismatches}"
        rows.append({
            "program": bench.name,
            "dense_cells": v.dense.counters.get("closure_cells", 0),
            "sparse_cells": v.sparse.counters.get("closure_cells", 0),
            "cell_ratio": v.cell_ratio(),
            "dense_peak_bytes": v.dense.counters.get("dbm_peak_bytes", 0),
            "sparse_peak_bytes": v.sparse.counters.get("dbm_peak_bytes", 0),
            "peak_bytes_ratio": v.peak_bytes_ratio(),
            "sparsity": v.sparsity,
            "dense_seconds": v.dense.seconds,
            "sparse_seconds": v.sparse.seconds,
            "rep_switches": v.sparse.counters.get("sparse_rep_switches", 0),
        })
    return rows


def test_sparse_octagon_traffic(benchmark):
    rows = run_once(benchmark, _measure)
    table = format_table(
        ["program", "cells dense", "cells sparse", "cells x",
         "peakB dense", "peakB sparse", "peakB x", "sparsity", "switches"],
        [[r["program"], r["dense_cells"], r["sparse_cells"],
          r["cell_ratio"] or 0.0, r["dense_peak_bytes"],
          r["sparse_peak_bytes"], r["peak_bytes_ratio"] or 0.0,
          r["sparsity"] if r["sparsity"] is not None else "-",
          r["rep_switches"]] for r in rows],
        title="Sparse vs dense octagon: closure cell traffic and peak "
              "DBM bytes (x = dense/sparse; <1 = dense wins, kept honest)")
    cell_gm = geomean([r["cell_ratio"] for r in rows if r["cell_ratio"]])
    byte_gm = geomean([r["peak_bytes_ratio"] for r in rows
                       if r["peak_bytes_ratio"]])
    table += (f"\n\ngeomean over suite: {cell_gm:.2f}x cell traffic, "
              f"{byte_gm:.2f}x peak bytes")
    print("\n" + table)
    save_result("sparse_octagon", table)
    doc = {
        "scale": bench_scale(),
        "geomean_cell_ratio": cell_gm,
        "geomean_peak_bytes_ratio": byte_gm,
        "programs": rows,
    }
    path = os.path.join(results_dir(), "BENCH_sparse_octagon.json")
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=2)
        fh.write("\n")
    benchmark.extra_info.update({
        "geomean_cell_ratio": cell_gm,
        "geomean_peak_bytes_ratio": byte_gm,
    })
    # Acceptance gate: on the sparse-profile programs the graph
    # representation must cut closure traffic >=5x and peak bytes >=2x.
    by_name = {r["program"]: r for r in rows}
    for name in SPARSE_PROFILE:
        row = by_name[name]
        assert row["cell_ratio"] >= 5.0, (name, row["cell_ratio"])
        assert row["peak_bytes_ratio"] >= 2.0, (name, row["peak_bytes_ratio"])
