"""End-to-end analyzer tests, including the paper's Figure 2 example."""

import pytest

from repro.analysis import Analyzer
from repro.analysis.analyzer import analyze_source
from repro.core import INF
from repro.core.constraints import LinExpr
from repro.workloads.programs import fig2_program


class TestFigure2:
    """The paper's running example: the analysis of

        x = 1; y = x; while (x <= m) { x = x + 1; y = y + x; }

    The octagon analysis must establish the relational facts the paper
    derives: x = y = 1 before the loop (with x + y <= 2 from the
    strengthening step), y >= x and x >= 1 as loop invariants.
    """

    def test_invariants_before_loop(self):
        src = "x = 1; y = x; m = [0, 10]; assert(x + y <= 2); assert(y == 1);"
        res = analyze_source(src)
        assert res.all_verified

    def test_loop_exit_facts(self):
        res = analyze_source(fig2_program() + """
            assert(y >= x - 1);
            assert(x >= 1);
        """)
        # y >= x holds when the loop ran; before it x=y=1, so y >= x - 1
        # holds universally.  x >= 1 always.
        assert res.all_verified

    def test_relational_invariant_beats_intervals(self):
        src = fig2_program() + "assert(y >= x - 1);"
        oct_res = analyze_source(src, domain="octagon")
        box_res = analyze_source(src, domain="interval")
        assert oct_res.all_verified
        assert not box_res.all_verified  # boxes cannot relate y and x

    def test_exit_bounds(self):
        res = analyze_source(fig2_program().replace("m", "mm") + "skip;")
        proc = res.procedures[0]
        x_lo, _ = proc.invariant_at_exit().bounds(0)
        assert x_lo >= 1.0


class TestChecks:
    def test_verified_and_refuted(self):
        res = analyze_source("x = [0, 5]; assert(x >= 0); assert(x >= 1);")
        outcomes = {c.cond_text: c.verified for c in res.checks}
        assert outcomes["x >= 0"] is True
        assert outcomes["x >= 1"] is False

    def test_unreachable_asserts_hold(self):
        res = analyze_source("assume(false); assert(1 <= 0);")
        assert res.all_verified

    def test_check_metadata(self):
        res = analyze_source("proc p { x = 1; assert(x == 1); }")
        (check,) = res.checks
        assert check.procedure == "p"
        assert check.cond_text == "x == 1"

    def test_all_verified_property(self):
        res = analyze_source("x = 1; assert(x == 1); assert(x == 2);")
        assert not res.all_verified


class TestMultiProcedure:
    SRC = """
    proc inc { a = [0, 3]; b = a + 1; assert(b >= 1); }
    proc dec { c = [0, 3]; d = c - 1; assert(d <= 2); }
    """

    def test_procedures_independent(self):
        res = analyze_source(self.SRC)
        assert [p.name for p in res.procedures] == ["inc", "dec"]
        assert res.all_verified
        assert res.procedure("inc").box_at_exit()[1] == (1.0, 4.0)

    def test_procedure_lookup_error(self):
        res = analyze_source(self.SRC)
        with pytest.raises(KeyError):
            res.procedure("nope")


class TestDomains:
    @pytest.mark.parametrize("domain", ["octagon", "apron", "interval"])
    def test_all_domains_run(self, domain):
        res = analyze_source("x = 0; while (x < 4) { x = x + 1; }",
                             domain=domain)
        assert res.procedures[0].box_at_exit()[0] == (4.0, 4.0)

    def test_octagon_apron_agree_end_to_end(self):
        src = """
        x = [0, 8]; y = x; z = 0;
        while (z < 5) { z = z + 1; y = y + 1; }
        """
        a = analyze_source(src, domain="octagon").procedures[0].box_at_exit()
        b = analyze_source(src, domain="apron").procedures[0].box_at_exit()
        assert a == b


class TestCollect:
    def test_stats_collection(self):
        analyzer = Analyzer(domain="octagon")
        res = analyzer.analyze("x = 0; while (x < 4) { x = x + 1; }",
                               collect=True)
        assert res.octagon_stats is not None
        assert res.octagon_stats.op_calls.get("join", 0) > 0
        stats = res.octagon_stats.closure_stats()
        assert stats["closures"] >= 0
        assert res.seconds > 0

    def test_no_collection_by_default(self):
        res = analyze_source("x = 1;")
        assert res.octagon_stats is None
