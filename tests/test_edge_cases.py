"""Edge cases across the core: empty dimensions, bottom propagation,
degenerate constraint lists, and pretty-printing corners."""

import numpy as np
import pytest

from repro.core import (
    INF,
    ApronOctagon,
    LinExpr,
    Octagon,
    OctConstraint,
    SwitchPolicy,
)


class TestZeroDimensions:
    @pytest.mark.parametrize("cls", [Octagon, ApronOctagon])
    def test_lattice_on_empty(self, cls):
        top = cls.top(0)
        bot = cls.bottom(0)
        assert top.is_top()
        assert bot.is_bottom()
        assert top.join(top).is_top()
        assert top.meet(bot).is_bottom()
        assert bot.is_leq(top)
        assert not top.is_leq(bot)

    def test_closure_on_empty(self):
        assert Octagon.top(0).closure().is_top()

    def test_to_constraints_empty(self):
        assert Octagon.top(0).to_constraints() == []


class TestBottomPropagation:
    @pytest.mark.parametrize("cls", [Octagon, ApronOctagon])
    def test_all_transfer_ops_preserve_bottom(self, cls):
        bot = cls.bottom(3)
        assert bot.forget(0).is_bottom()
        assert bot.assign_const(1, 5.0).is_bottom()
        assert bot.assign_var(0, 2).is_bottom()
        assert bot.assign_interval(0, 0.0, 1.0).is_bottom()
        assert bot.assign_linexpr(0, LinExpr({1: 2.0}, 1.0)).is_bottom()
        assert bot.assume_linear(LinExpr({0: 1.0})).is_bottom()
        assert bot.meet_constraint(OctConstraint.upper(0, 1.0)).is_bottom()

    def test_bottom_discovered_late(self):
        """An inconsistent unclosed octagon must report bottom through
        every query, not just closure."""
        o = Octagon.from_constraints(2, [OctConstraint.diff(0, 1, -1.0),
                                         OctConstraint.diff(1, 0, -1.0)])
        assert o.bounds(0) == (INF, -INF)
        assert o.to_box() == [(INF, -INF)] * 2
        assert o.to_constraints() == []
        assert o.is_bottom()

    def test_join_with_discovered_bottom(self):
        empty = Octagon.from_constraints(1, [OctConstraint.upper(0, 0.0),
                                             OctConstraint.lower(0, 1.0)])
        other = Octagon.from_box([(2.0, 3.0)])
        assert other.join(empty).is_eq(other)
        assert empty.join(other).is_eq(other)


class TestDegenerateInputs:
    def test_meet_constraints_empty_list(self):
        o = Octagon.from_box([(0.0, 1.0)])
        assert o.meet_constraints([]).is_eq(o)

    def test_assume_trivially_true_linexpr(self):
        o = Octagon.from_box([(0.0, 1.0)])
        assert o.assume_linear(LinExpr({}, -5.0)).is_eq(o)

    def test_assign_linexpr_constant_only(self):
        o = Octagon.top(2).assign_linexpr(0, LinExpr({}, 7.0))
        assert o.bounds(0) == (7.0, 7.0)

    def test_widening_identical_inputs_is_identity(self):
        o = Octagon.from_box([(0.0, 3.0), (1.0, 2.0)])
        w = o.widening(o.copy())
        assert w.is_eq(o)

    def test_add_zero_dimensions(self):
        o = Octagon.from_box([(0.0, 1.0)])
        assert o.add_dimensions(0).is_eq(o)

    def test_remove_no_dimensions(self):
        o = Octagon.from_box([(0.0, 1.0)])
        assert o.remove_dimensions([]).is_eq(o)


class TestPolicyEdges:
    def test_threshold_extremes(self):
        always_sparse = SwitchPolicy(threshold=0.0)
        never_sparse = SwitchPolicy(threshold=1.01)
        o1 = Octagon.top(4, policy=always_sparse).meet_constraint(
            OctConstraint.upper(0, 1.0))
        o2 = Octagon.top(4, policy=never_sparse).meet_constraint(
            OctConstraint.upper(0, 1.0))
        # Semantics never depend on the policy.
        assert o1.to_box() == o2.to_box()

    def test_policy_survives_operations(self):
        policy = SwitchPolicy(decompose=False)
        o = Octagon.top(3, policy=policy).assign_const(0, 1.0)
        assert o.policy is policy
        assert o.join(Octagon.top(3, policy=policy)).policy is policy


class TestPrettyCorners:
    def test_pretty_equalities_render_both_sides(self):
        o = Octagon.top(1).assign_const(0, 2.0)
        text = o.pretty(names=["x"])
        assert "+x <= 2" in text and "-x <= -2" in text

    def test_pretty_negative_bounds(self):
        o = Octagon.from_constraints(1, [OctConstraint.upper(0, -1.5)])
        assert "<= -1.5" in o.pretty()


class TestCopySemantics:
    def test_copy_isolated(self):
        o = Octagon.from_box([(0.0, 1.0)])
        c = o.copy()
        c2 = c.assign_const(0, 9.0)
        assert o.bounds(0) == (0.0, 1.0)
        assert c.bounds(0) == (0.0, 1.0)
        assert c2.bounds(0) == (9.0, 9.0)

    def test_closure_cache_carried_but_invalidated_on_write(self):
        o = Octagon.from_constraints(2, [OctConstraint.diff(0, 1, 1.0)])
        closed = o.closure()
        c = o.copy()
        # The versioned cache survives aliasing: an unmutated copy reuses
        # the already-computed closed form instead of re-closing ...
        assert c._cached_closure() is closed
        assert closed.closed
        # ... but a write through the copy invalidates *its* cache without
        # touching the original's.
        c._meet_constraint_cells(OctConstraint.upper(0, 0.25))
        assert c._cached_closure() is None
        assert o._cached_closure() is closed
        assert o.closure() is closed
        assert c.closure().bounds(0)[1] <= 0.25
