"""Tests for the measurement and reporting harness."""

import os

import pytest

from repro.bench import (
    closure_comparison,
    fig8_row,
    format_table,
    geomean,
    render_ascii_series,
    save_result,
    table2_row,
    table3_row,
)
from repro.workloads import get_benchmark


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["name", "value"],
                            [["a", 1.0], ["long-name", 123456.0]],
                            title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "value" in lines[1]
        assert len(lines) == 5

    def test_float_rendering(self):
        text = format_table(["x"], [[0.000001], [1234567.0], [1.5]])
        assert "e" in text  # scientific notation for extremes

    def test_geomean(self):
        assert geomean([2.0, 8.0]) == pytest.approx(4.0)
        assert geomean([]) == 0.0
        assert geomean([5.0, 0.0]) == pytest.approx(5.0)  # nonpositives dropped

    def test_render_ascii_series(self):
        chart = render_ascii_series({"a": [1.0, 10.0, 100.0],
                                     "b": [2.0, 2.0, 2.0]}, title="demo")
        assert "demo" in chart
        assert "* = a" in chart
        assert "o = b" in chart

    def test_render_empty(self):
        assert "(no data)" in render_ascii_series({"a": []}, title="t")

    def test_save_result(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        path = save_result("unit", "hello")
        assert os.path.exists(path)
        with open(path) as fh:
            assert fh.read() == "hello\n"


class TestRunner:
    BENCH = "firefox"  # smallest workload

    def test_closure_comparison(self):
        cc = closure_comparison(get_benchmark(self.BENCH), scale="small",
                                max_events=5)
        assert cc.events
        assert all(e.t_apron > 0 and e.t_opt > 0 for e in cc.events)
        assert cc.fw_speedup > 0 and cc.opt_speedup > 0

    def test_fig8_row(self):
        row = fig8_row(get_benchmark(self.BENCH), scale="small")
        assert row["speedup"] > 0
        assert row["paper_speedup"] == 4.0

    def test_table2_row(self):
        row = table2_row(get_benchmark(self.BENCH), scale="small")
        assert row["closures"] > 0
        assert row["paper_closures"] == 1061

    def test_table3_row(self):
        row = table3_row(get_benchmark(self.BENCH), scale="small", aux_passes=2)
        assert 0 < row["opt_pct_oct"] <= 100
        assert 0 < row["apron_pct_oct"] <= 100
        assert row["speedup"] > 0
