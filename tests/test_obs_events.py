"""Tests for the structured event logger."""

import json

import pytest

from repro.obs import events


@pytest.fixture(autouse=True)
def reset_logger():
    yield
    events.configure(stderr_level=events.WARNING)
    events.close()


class TestVerbosity:
    def test_flag_mapping(self):
        assert events.verbosity_level() == events.WARNING
        assert events.verbosity_level(verbose=1) == events.INFO
        assert events.verbosity_level(verbose=2) == events.DEBUG
        assert events.verbosity_level(verbose=5) == events.DEBUG
        assert events.verbosity_level(quiet=True) == events.ERROR
        # --quiet wins over -v.
        assert events.verbosity_level(verbose=2, quiet=True) == events.ERROR


class TestStderr:
    def test_threshold_filters(self, capsys):
        events.configure(stderr_level=events.WARNING)
        events.info("hidden", a=1)
        events.warning("shown", b=2)
        err = capsys.readouterr().err
        assert "hidden" not in err
        assert "repro: warning: shown b=2" in err

    def test_verbose_shows_info(self, capsys):
        events.configure(stderr_level=events.INFO)
        events.info("visible")
        assert "repro: info: visible" in capsys.readouterr().err

    def test_quiet_stderr_suppresses_even_errors(self, capsys):
        events.configure(stderr_level=events.WARNING)
        with events.quiet_stderr():
            events.error("silent")
        events.warning("loud")
        err = capsys.readouterr().err
        assert "silent" not in err
        assert "loud" in err

    def test_stdout_untouched(self, capsys):
        events.configure(stderr_level=events.DEBUG)
        events.warning("diag")
        assert capsys.readouterr().out == ""


class TestCapture:
    def test_capture_sees_all_levels(self):
        events.configure(stderr_level=events.ERROR)
        with events.capture() as caught:
            events.debug("d")
            events.info("i", k="v")
        assert [e.name for e in caught] == ["d", "i"]
        assert caught[1].fields == {"k": "v"}
        assert caught[1].level_name == "info"

    def test_capture_stops_at_exit(self):
        with events.capture() as caught:
            pass
        events.info("late")
        assert caught == []


class TestJsonlSink:
    def test_every_event_logged_regardless_of_level(self, tmp_path):
        path = tmp_path / "run.jsonl"
        events.configure(stderr_level=events.ERROR, json_path=str(path),
                         run_id="run-1")
        events.debug("below_threshold", n=1)
        events.warning("diag", err="boom")
        events.close()
        records = events.read_jsonl(str(path))
        assert [r["event"] for r in records] == ["below_threshold", "diag"]
        assert all(r["run"] == "run-1" for r in records)
        assert records[1]["level"] == "warning"
        assert records[1]["err"] == "boom"
        assert all("ts" in r for r in records)

    def test_configure_appends(self, tmp_path):
        path = tmp_path / "run.jsonl"
        events.configure(json_path=str(path), run_id="a")
        events.info("first")
        events.configure(json_path=str(path), run_id="b")
        events.info("second")
        events.close()
        records = events.read_jsonl(str(path))
        assert [(r["run"], r["event"]) for r in records] == [
            ("a", "first"), ("b", "second")]

    def test_non_json_fields_stringified(self, tmp_path):
        path = tmp_path / "run.jsonl"
        events.configure(json_path=str(path))
        events.info("odd", obj=object())
        events.close()
        (record,) = events.read_jsonl(str(path))
        assert isinstance(record["obj"], str)


class TestRender:
    def test_render_format(self):
        event = events.Event(events.WARNING, "cache_evicted",
                             {"path": "/x", "reason": "corrupt"})
        assert event.render() == ("repro: warning: cache_evicted "
                                  "path=/x reason=corrupt")

    def test_json_line_is_loadable(self):
        event = events.Event(events.INFO, "x", {"a": 1}, ts=2.0)
        record = json.loads(event.to_json("r"))
        assert record == {"ts": 2.0, "level": "info", "event": "x",
                          "run": "r", "a": 1}
