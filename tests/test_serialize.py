"""Tests for octagon and report serialisation."""

import json

import numpy as np
import pytest
from hypothesis import given, settings

from dbm_strategies import coherent_dbms
from repro.core import ApronOctagon, Octagon, OctConstraint
from repro.core.serialize import (
    analysis_report,
    octagon_from_dict,
    octagon_from_json,
    octagon_load_npz,
    octagon_save_npz,
    octagon_to_dict,
    octagon_to_json,
)


class TestJsonRoundtrip:
    def test_simple(self):
        o = Octagon.from_constraints(2, [OctConstraint.sum(0, 1, 5.0),
                                         OctConstraint.upper(0, 1.0)])
        back = octagon_from_json(octagon_to_json(o))
        assert back.is_eq(o)

    def test_top_and_bottom(self):
        assert octagon_from_json(octagon_to_json(Octagon.top(3))).is_top()
        assert octagon_from_json(octagon_to_json(Octagon.bottom(3))).is_bottom()

    @settings(max_examples=40, deadline=None)
    @given(coherent_dbms())
    def test_random_roundtrip(self, m):
        o = Octagon.from_matrix(m)
        back = octagon_from_json(octagon_to_json(o))
        assert back.is_eq(o)

    def test_cross_implementation(self):
        """JSON produced from the optimised octagon loads into the
        baseline (and vice versa) with identical meaning."""
        o = Octagon.from_constraints(3, [OctConstraint.diff(0, 1, 2.0),
                                         OctConstraint.lower(2, -1.0)])
        apron = octagon_from_json(octagon_to_json(o), cls=ApronOctagon)
        assert isinstance(apron, ApronOctagon)
        assert apron.to_box() == o.to_box()
        back = octagon_from_json(octagon_to_json(apron), cls=Octagon)
        assert back.is_eq(o)

    def test_version_check(self):
        with pytest.raises(ValueError):
            octagon_from_dict({"version": 99, "n": 1, "constraints": []})

    def test_json_is_textual_and_finite(self):
        o = Octagon.from_box([(0.0, 1.0), (-float("inf"), float("inf"))])
        text = octagon_to_json(o)
        json.loads(text)
        assert "Infinity" not in text


class TestNpzRoundtrip:
    def test_roundtrip(self, tmp_path):
        o = Octagon.from_constraints(4, [OctConstraint.sum(0, 3, 9.0)])
        path = tmp_path / "oct.npz"
        octagon_save_npz(o, str(path))
        back = octagon_load_npz(str(path))
        assert back.is_eq(o)
        assert np.array_equal(np.isinf(back.mat), np.isinf(o.mat))

    def test_bottom(self, tmp_path):
        path = tmp_path / "bot.npz"
        octagon_save_npz(Octagon.bottom(2), str(path))
        assert octagon_load_npz(str(path)).is_bottom()

    def test_closed_flag_preserved(self, tmp_path):
        o = Octagon.from_box([(0.0, 2.0)]).closure()
        path = tmp_path / "closed.npz"
        octagon_save_npz(o, str(path))
        assert octagon_load_npz(str(path)).closed


class TestAnalysisReport:
    def test_report_structure(self):
        from repro.analysis.analyzer import analyze_source
        result = analyze_source(
            "proc p { x = [0, 4]; assert(x >= 0); assert(x >= 2); }")
        report = analysis_report(result)
        assert report["checks_total"] == 2
        assert report["checks_verified"] == 1
        (proc,) = report["procedures"]
        assert proc["name"] == "p"
        assert proc["exit_box"]["x"] == [0.0, 4.0]
        json.dumps(report)  # must be JSON-able

    def test_unreachable_exit(self):
        from repro.analysis.analyzer import analyze_source
        result = analyze_source("assume(false);")
        report = analysis_report(result)
        assert report["procedures"][0]["exit_reachable"] is False

    def test_unbounded_variables_are_null(self):
        from repro.analysis.analyzer import analyze_source
        result = analyze_source("havoc(x);")
        report = analysis_report(result)
        assert report["procedures"][0]["exit_box"]["x"] == [None, None]


class TestJobResultRoundtrip:
    """Cache entries and --json output share one JobResult schema."""

    def _roundtrip(self, result):
        from repro.core.serialize import (job_result_from_dict,
                                          job_result_to_dict)
        raw = job_result_to_dict(result)
        # Through actual JSON text: what the cache writes to disk.
        restored = job_result_from_dict(json.loads(json.dumps(raw)))
        assert restored == result
        return raw

    def test_ok_result_roundtrips(self):
        from repro.service import AnalysisJob, execute_job
        result = execute_job(AnalysisJob(
            source="assume(x >= 0); y = x + 1; assert(y >= 1);",
            label="rt"))
        from repro.core.serialize import JOB_RESULT_SCHEMA
        raw = self._roundtrip(result)
        assert raw["schema"] == JOB_RESULT_SCHEMA
        assert raw["outcome"] == "ok"
        assert raw["compile_transfer"] is True
        # Unbounded endpoints serialise as null, not infinities.
        (proc,) = raw["procedures"]
        assert [0.0, None] in proc["box"]

    def test_failure_results_roundtrip(self):
        from repro.service.job import JobResult
        for outcome, error in (("timeout", "exceeded 5s wall-clock timeout"),
                               ("error", "Traceback ...")):
            self._roundtrip(JobResult(key="a" * 64, label="x",
                                      domain="octagon", outcome=outcome,
                                      attempts=2, error=error))

    def test_unknown_schema_rejected(self):
        from repro.core.serialize import job_result_from_dict
        with pytest.raises(ValueError):
            job_result_from_dict({"schema": 99})

    def test_v4_carries_operator_timings(self):
        """Schema v4: the Fig 8 per-operator split rides every result."""
        from repro.service import AnalysisJob, execute_job
        result = execute_job(AnalysisJob(
            source="x = [0, 3]; y = x + 1; assert(y <= 4);", label="ops"))
        raw = self._roundtrip(result)
        assert raw["op_calls"]["assign"] >= 1
        assert raw["op_seconds"]["assign"] > 0.0
        assert set(raw["op_self_seconds"]) == set(raw["op_seconds"])
        # Self time never exceeds inclusive time.
        for name, self_s in raw["op_self_seconds"].items():
            assert self_s <= raw["op_seconds"][name] + 1e-12

    def test_v4_histograms_roundtrip(self):
        from repro.obs import metrics
        from repro.service import AnalysisJob, execute_job
        result = execute_job(AnalysisJob(
            source="x = [0, 3]; y = x + 1; assert(y <= 4);", label="hist",
            telemetry=("metrics",)))
        raw = self._roundtrip(result)
        assert raw["histograms"]  # collected because telemetry asked
        merged = metrics.merge_histogram_dicts([raw["histograms"]])
        assert any(h.total > 0 for h in merged.values())

    def test_trace_events_never_serialised(self):
        """Spans ship over the worker pipe only -- telemetry is not
        part of the result schema."""
        from repro.core.serialize import job_result_to_dict
        from repro.service import AnalysisJob, execute_job
        result = execute_job(AnalysisJob(
            source="x = 1; assert(x == 1);", label="tr",
            telemetry=("trace",)))
        assert result.trace_events  # recorded in-process
        raw = job_result_to_dict(result)
        assert "trace_events" not in raw

    def test_telemetry_does_not_change_job_key(self):
        from repro.service import AnalysisJob
        src = "x = 1; assert(x == 1);"
        plain = AnalysisJob(source=src)
        watched = AnalysisJob(source=src, telemetry=("trace", "metrics"))
        assert plain.key() == watched.key()
