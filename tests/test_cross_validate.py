"""The cross-backend differential validation mode itself.

The 17-program parity run lives in ``test_sparse_octagon.py``; these
tests exercise the *machinery*: that :func:`compare_results` actually
detects disagreements (a validator that cannot fail validates
nothing), that :func:`validate_job` pins the right backends regardless
of the job's own domain, and that the report serialises for
``--json``.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.service.job import AnalysisJob, execute_job
from repro.service.validate import (DENSE_DOMAIN, SPARSE_DOMAIN,
                                    compare_results, cross_validate,
                                    validate_job)

SOURCE = """
proc main {
  x = [0, 10];
  y = x + 1;
  assert(y <= 11);
}
"""


@pytest.fixture(scope="module")
def validation():
    job = AnalysisJob(source=SOURCE, label="tiny")
    return validate_job(job)


def test_matching_backends_produce_empty_mismatch_list(validation):
    assert validation.ok
    assert validation.mismatches == []
    assert validation.dense.domain == DENSE_DOMAIN
    assert validation.sparse.domain == SPARSE_DOMAIN


def test_job_domain_is_overridden_not_trusted():
    v = validate_job(AnalysisJob(source=SOURCE, label="t", domain="interval"))
    assert v.dense.domain == DENSE_DOMAIN
    assert v.sparse.domain == SPARSE_DOMAIN
    assert v.ok


def test_detects_verdict_mismatch(validation):
    broken = dataclasses.replace(
        validation.sparse,
        checks=[dataclasses.replace(c, verified=not c.verified)
                for c in validation.sparse.checks])
    mismatches = compare_results(validation.dense, broken)
    assert mismatches and any("verdict" in m for m in mismatches)


def test_detects_bound_mismatch(validation):
    sp = validation.sparse.procedures[0]
    skew = [[lo, (hi + 1 if hi is not None else None)] for lo, hi in sp.box]
    broken = dataclasses.replace(
        validation.sparse,
        procedures=[dataclasses.replace(sp, box=skew)]
        + validation.sparse.procedures[1:])
    mismatches = compare_results(validation.dense, broken)
    assert mismatches and any("bounds" in m for m in mismatches)


def test_detects_outcome_mismatch(validation):
    broken = dataclasses.replace(validation.sparse, outcome="error")
    mismatches = compare_results(validation.dense, broken)
    assert mismatches == ["outcome: dense=ok sparse=error"]


def test_detects_reachability_mismatch(validation):
    sp = validation.sparse.procedures[0]
    broken = dataclasses.replace(
        validation.sparse,
        procedures=[dataclasses.replace(sp, reachable=not sp.reachable)]
        + validation.sparse.procedures[1:])
    mismatches = compare_results(validation.dense, broken)
    assert mismatches and any("reachable" in m for m in mismatches)


def test_report_rollup_and_serialisation(validation):
    report = cross_validate([AnalysisJob(source=SOURCE, label="tiny")])
    assert report.ok and not report.failures
    doc = report.to_dict()
    assert doc["ok"] is True
    (prog,) = doc["programs"]
    assert prog["label"] == "tiny"
    assert prog["ok"] is True
    assert prog["mismatches"] == []
    assert prog["dense_closure_cells"] > 0
    assert prog["sparse_closure_cells"] > 0


def test_sparse_threshold_is_forwarded():
    v = validate_job(AnalysisJob(source=SOURCE, label="t"),
                     sparse_threshold=0.25)
    assert v.ok
    assert v.sparse.counters.get("closure_cells", 0) > 0


def test_counters_collected_per_backend(validation):
    # both runs executed in-process with fresh collectors: the dense run
    # must not leak its cell traffic into the sparse run's counters
    dense_cells = validation.dense.counters["closure_cells"]
    sparse_cells = validation.sparse.counters["closure_cells"]
    assert dense_cells > 0 and sparse_cells > 0
    assert dense_cells != sparse_cells


def test_execute_job_honours_sparse_domain():
    result = execute_job(AnalysisJob(source=SOURCE, label="t",
                                     domain=SPARSE_DOMAIN))
    assert result.outcome == "ok"
    assert all(c.verified for c in result.checks)
