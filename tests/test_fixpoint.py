"""Fixpoint engine tests: convergence, widening, narrowing."""

import pytest

from repro.analysis import FixpointEngine
from repro.core import INF
from repro.domains import get_domain
from repro.frontend import build_cfg, parse_program


def solve(source, domain="octagon", **kwargs):
    proc = parse_program(source).procedures[0]
    cfg = build_cfg(proc)
    engine = FixpointEngine(**kwargs)
    return cfg, engine.analyze(cfg, get_domain(domain))


class TestStraightLine:
    def test_constant_propagates(self):
        cfg, fix = solve("x = 1; y = x + 2;")
        state = fix.at(cfg.exit)
        assert state.bounds(0) == (1.0, 1.0)
        assert state.bounds(1) == (3.0, 3.0)

    def test_branch_join(self):
        cfg, fix = solve("havoc(c); if (c > 0) { x = 1; } else { x = 5; }")
        state = fix.at(cfg.exit)
        assert state.bounds(1) == (1.0, 5.0)

    def test_unreachable_is_bottom(self):
        cfg, fix = solve("assume(false); x = 1;")
        assert fix.at(cfg.exit).is_bottom()


class TestLoops:
    def test_simple_counter(self):
        cfg, fix = solve("i = 0; while (i < 10) { i = i + 1; }")
        state = fix.at(cfg.exit)
        assert state.bounds(0) == (10.0, 10.0)

    def test_widening_finds_invariant(self):
        """Unbounded loop: widening must blow the upper bound to inf
        while the narrowing pass keeps the exit bound precise."""
        cfg, fix = solve("i = 0; n = [0, 100]; while (i < n) { i = i + 1; }")
        state = fix.at(cfg.exit)
        lo, hi = state.bounds(0)
        assert lo == 0.0
        assert hi <= 100.0  # narrowing recovered the bound at exit

    def test_widening_counter_increments(self):
        cfg, fix = solve("i = 0; while (i < 10) { i = i + 1; }",
                         widening_delay=0)
        assert fix.widenings > 0
        assert fix.at(cfg.exit).bounds(0)[0] >= 0.0

    def test_nested_loop_converges(self):
        cfg, fix = solve("""
            i = 0;
            while (i < 5) {
              j = 0;
              while (j < 5) { j = j + 1; }
              i = i + 1;
            }
        """)
        state = fix.at(cfg.exit)
        assert state.bounds(0) == (5.0, 5.0)

    def test_relational_loop_invariant(self):
        """The octagon keeps y >= x through the paper's Fig. 2 loop."""
        cfg, fix = solve("""
            x = 1; y = x; m = [0, 20];
            while (x <= m) { x = x + 1; y = y + x; }
        """)
        from repro.core.constraints import LinExpr
        state = fix.at(cfg.exit)
        lo, _ = state.bound_linexpr(LinExpr({1: 1.0, 0: -1.0}))  # y - x
        assert lo >= 0.0

    def test_interval_domain_converges_too(self):
        cfg, fix = solve("i = 0; while (i < 10) { i = i + 1; }",
                         domain="interval")
        assert fix.at(cfg.exit).bounds(0) == (10.0, 10.0)

    def test_apron_domain_matches_octagon(self):
        src = "i = 0; s = 0; while (i < 8) { i = i + 1; s = s + i; }"
        cfg_o, fix_o = solve(src, domain="octagon")
        cfg_a, fix_a = solve(src, domain="apron")
        assert fix_o.at(cfg_o.exit).to_box() == fix_a.at(cfg_a.exit).to_box()


class TestKnobs:
    def test_thresholds_keep_bound(self):
        src = "i = 0; while (i < 1000) { i = i + 1; }"
        cfg, fix = solve(src, widening_delay=0, narrowing_steps=0,
                         widening_thresholds=(1001.0,))
        hi = fix.at(cfg.exit).bounds(0)[1]
        assert hi <= 1001.0

    def test_no_narrowing_loses_bound(self):
        src = "i = 0; while (i < 1000) { i = i + 1; }"
        cfg, fix = solve(src, widening_delay=0, narrowing_steps=0)
        head = next(iter(cfg.loop_heads))
        assert fix.at(head).bounds(0)[1] == INF

    def test_max_iterations_guard(self):
        with pytest.raises(RuntimeError):
            solve("i = 0; while (i < 10) { i = i + 1; }",
                  max_iterations=2)

    def test_entry_state_respected(self):
        proc = parse_program("y = x + 1;").procedures[0]
        cfg = build_cfg(proc)
        factory = get_domain("octagon")
        # Variable order is first-occurrence: y is 0, x is 1.
        pre = factory.from_box([(-INF, INF), (5.0, 6.0)])
        fix = FixpointEngine().analyze(cfg, factory, entry_state=pre)
        assert fix.at(cfg.exit).bounds(0) == (6.0, 7.0)
