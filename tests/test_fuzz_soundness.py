"""End-to-end soundness fuzzing: abstract vs concrete semantics.

Hypothesis generates random mini-language programs; for each program we

1. run the full abstract interpretation with every domain, and
2. sample concrete executions with the reference interpreter,

then check the two pillars of soundness:

* every *completed* concrete run ends inside the abstract exit
  invariant;
* an assertion the analyzer VERIFIED is never violated concretely.

This is the strongest whole-pipeline oracle in the suite: it exercises
the parser, CFG, transfer functions, fixpoint engine (widening,
narrowing, recursive strategy) and every domain operator at once.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis import Analyzer
from repro.frontend import parse_program, pretty
from repro.frontend.interp import sample_runs

VARS = ["a", "b", "c"]


# ----------------------------------------------------------------------
# program generator
# ----------------------------------------------------------------------
def aexprs():
    num = st.integers(-8, 8).map(lambda k: str(k))
    var = st.sampled_from(VARS)
    simple = st.one_of(num, var)

    def binop(children):
        return st.tuples(children, st.sampled_from(["+", "-", "*"]),
                         children).map(lambda t: f"({t[0]} {t[1]} {t[2]})")

    return st.recursive(simple, binop, max_leaves=4)


def conditions():
    cmp_ = st.tuples(aexprs(), st.sampled_from(["<", "<=", ">", ">=", "==", "!="]),
                     aexprs()).map(lambda t: f"{t[0]} {t[1]} {t[2]}")

    def boolop(children):
        return st.tuples(children, st.sampled_from(["&&", "||"]),
                         children).map(lambda t: f"({t[0]}) {t[1]} ({t[2]})")

    return st.recursive(cmp_, boolop, max_leaves=3)


@st.composite
def statements(draw, depth=0):
    kind = draw(st.integers(0, 7 if depth < 2 else 4))
    var = draw(st.sampled_from(VARS))
    if kind <= 1:
        return f"{var} = {draw(aexprs())};"
    if kind == 2:
        lo = draw(st.integers(-10, 5))
        return f"{var} = [{lo}, {lo + draw(st.integers(0, 10))}];"
    if kind == 3:
        return f"havoc({var});"
    if kind == 4:
        return f"assume({draw(conditions())});"
    if kind == 5:
        then = draw(blocks(depth + 1))
        if draw(st.booleans()):
            return f"if ({draw(conditions())}) {then} else {draw(blocks(depth + 1))}"
        return f"if ({draw(conditions())}) {then}"
    if kind == 6:
        # Bounded counter loop: guaranteed to terminate concretely.
        bound = draw(st.integers(1, 6))
        body = draw(blocks(depth + 1, allow_counter_writes=False))
        counter = f"k{depth}"
        return (f"{counter} = 0; while ({counter} < {bound}) "
                f"{{ {body[1:-1]} {counter} = {counter} + 1; }}")
    return f"assert({draw(conditions())});"


@st.composite
def blocks(draw, depth=0, allow_counter_writes=True):
    stmts = draw(st.lists(statements(depth=depth), min_size=1, max_size=4))
    return "{ " + " ".join(stmts) + " }"


@st.composite
def programs(draw):
    init = " ".join(f"{v} = {draw(st.integers(-5, 5))};" for v in VARS)
    body = draw(blocks())
    return init + " " + body[1:-1].strip()


FUZZ = settings(max_examples=40, deadline=None,
                suppress_health_check=[HealthCheck.too_slow,
                                       HealthCheck.data_too_large,
                                       HealthCheck.filter_too_much])


@pytest.mark.parametrize("domain", ["octagon", "apron", "interval", "zone",
                                    "pentagon"])
class TestSoundness:
    @FUZZ
    @given(source=programs(), seed=st.integers(0, 10_000))
    def test_concrete_runs_inside_invariant(self, domain, source, seed):
        program = parse_program(source)
        proc = program.procedures[0]
        analyzer = Analyzer(domain=domain)
        result = analyzer.analyze(program)
        exit_state = result.procedures[0].invariant_at_exit()
        names = proc.variables
        runs = sample_runs(proc, tries=8, seed=seed, max_steps=5_000)
        for run in runs:
            point = [run.env.get(name, 0.0) for name in names]
            # Uninitialised reads are materialised lazily; only check
            # runs where every analyzer variable got a value.
            if any(name not in run.env for name in names):
                continue
            assert exit_state.contains_point(point), (
                f"{domain} lost concrete state {dict(zip(names, point))}\n"
                f"program:\n{pretty(program)}")

    @FUZZ
    @given(source=programs(), seed=st.integers(0, 10_000))
    def test_verified_assertions_never_fail_concretely(self, domain, source,
                                                       seed):
        program = parse_program(source)
        proc = program.procedures[0]
        result = Analyzer(domain=domain).analyze(program)
        # The concrete interpreter reports failures by condition text,
        # which cannot distinguish two asserts with the same text at
        # different program points (e.g. one reachable, one in dead
        # code where ⊥ verifies anything).  Only texts whose *every*
        # occurrence was verified are a sound oracle.
        by_text = {}
        for c in result.checks:
            by_text.setdefault(c.cond_text, []).append(c.verified)
        verified = {text for text, flags in by_text.items() if all(flags)}
        if not verified:
            return
        for run in sample_runs(proc, tries=8, seed=seed, max_steps=5_000):
            for failed in run.assertion_failures:
                assert failed not in verified, (
                    f"{domain} verified '{failed}' but a concrete run "
                    f"violates it\nprogram:\n{pretty(program)}")
